//! # em-bsp
//!
//! The coarse-grained parallel models of the paper — **BSP** (Valiant 1990),
//! **BSP\*** (Bäumker–Dittrich–Meyer auf der Heide 1995) and **CGM**
//! (Dehne–Fabri–Rau-Chaplin 1993) — as a programming API plus two in-memory
//! executors:
//!
//! * [`run_sequential`] — deterministic round-robin execution; the
//!   reference semantics every other runner (including the external-memory
//!   simulation in `em-core`) must match.
//! * [`ThreadedRunner`] — a real parallel BSP machine: worker threads,
//!   barrier-separated supersteps, message routing between workers.
//!
//! A parallel algorithm is a type implementing [`BspProgram`]: per virtual
//! processor state (`State`), a message type (`Msg`), and a `superstep`
//! function called once per superstep per virtual processor with a
//! [`Mailbox`] for communication. The same program value runs unchanged on
//! every executor — that is precisely the property the paper's simulation
//! technique exploits.
//!
//! Communication is *counted* (messages, bytes, per-superstep `h`), and the
//! ledgers price a run under any of the three cost models via
//! [`BspParams`], [`BspStarParams`] and [`CgmParams`].

#![warn(missing_docs)]

mod collectives;
mod cost;
mod error;
mod executor;
mod params;
mod program;
mod runner;

pub use collectives::{scatter_evenly, send_to_all};
pub use cost::{CommLedger, SuperstepComm};
pub use error::BspError;
pub use executor::{ExecError, Executor, SeqExecutor};
pub use params::{BspParams, BspStarParams, CgmParams};
pub use program::{BspProgram, Envelope, Mailbox, Step};
pub use runner::seq::{run_sequential, RunResult};
pub use runner::threads::ThreadedRunner;

/// Default guard against non-terminating programs.
pub const DEFAULT_MAX_SUPERSTEPS: usize = 100_000;
