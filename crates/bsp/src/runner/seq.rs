//! The sequential reference executor.
//!
//! Runs every virtual processor round-robin in pid order with canonical
//! message delivery. This executor defines the semantics that the threaded
//! runner and the external-memory simulators must reproduce exactly; the
//! workspace's differential tests compare their outputs against this one.

use crate::program::sort_envelopes;
use crate::{
    BspError, BspProgram, CommLedger, Envelope, Mailbox, Step, SuperstepComm,
    DEFAULT_MAX_SUPERSTEPS,
};
use em_serial::Serial;

/// One queued delivery: `(src pid, per-sender send order, envelope)`.
type Delivery<M> = (usize, u64, Envelope<M>);

/// Result of running a program to completion.
#[derive(Debug)]
pub struct RunResult<S> {
    /// Final state of every virtual processor, by pid.
    pub states: Vec<S>,
    /// Per-superstep communication ledger.
    pub ledger: CommLedger,
}

impl<S> RunResult<S> {
    /// λ — number of supersteps executed.
    pub fn supersteps(&self) -> usize {
        self.ledger.lambda()
    }
}

/// Run `prog` on `states.len()` virtual processors until all halt.
pub fn run_sequential<P: BspProgram>(
    prog: &P,
    states: Vec<P::State>,
) -> Result<RunResult<P::State>, BspError> {
    run_sequential_limited(prog, states, DEFAULT_MAX_SUPERSTEPS)
}

/// [`run_sequential`] with an explicit superstep limit.
pub fn run_sequential_limited<P: BspProgram>(
    prog: &P,
    mut states: Vec<P::State>,
    max_supersteps: usize,
) -> Result<RunResult<P::State>, BspError> {
    let v = states.len();
    if v == 0 {
        return Err(BspError::NoProcessors);
    }

    // inboxes[pid] holds (src, seq, envelope) awaiting delivery.
    let mut inboxes: Vec<Vec<Delivery<P::Msg>>> = (0..v).map(|_| Vec::new()).collect();
    let mut ledger = CommLedger::default();

    for step in 0..max_supersteps {
        let mut all_halted = true;
        let mut any_msgs = false;
        let mut step_comm = SuperstepComm::default();
        let mut next: Vec<Vec<Delivery<P::Msg>>> = (0..v).map(|_| Vec::new()).collect();

        for pid in 0..v {
            let mut pending = std::mem::take(&mut inboxes[pid]);
            sort_envelopes(&mut pending);
            let recv_bytes: u64 = pending.iter().map(|(_, _, e)| e.msg.encoded_len() as u64).sum();
            let recv_msgs = pending.len() as u64;
            let incoming = pending.into_iter().map(|(_, _, e)| e).collect();

            let mut mb = Mailbox::new(pid, v, incoming);
            let status = prog.superstep(step, &mut mb, &mut states[pid]);
            let (outgoing, msgs_sent, bytes_sent, work) = mb.into_outgoing();

            if status == Step::Continue {
                all_halted = false;
            }
            step_comm.msgs += msgs_sent;
            step_comm.bytes += bytes_sent;
            step_comm.h_bytes = step_comm.h_bytes.max(bytes_sent).max(recv_bytes);
            step_comm.h_msgs = step_comm.h_msgs.max(msgs_sent).max(recv_msgs);
            step_comm.w_comp = step_comm.w_comp.max(work);

            for (seq, (dst, msg)) in outgoing.into_iter().enumerate() {
                if dst >= v {
                    return Err(BspError::InvalidDestination { dst, nprocs: v });
                }
                any_msgs = true;
                next[dst].push((pid, seq as u64, Envelope { src: pid, msg }));
            }
        }

        ledger.push(step_comm);
        inboxes = next;

        if all_halted && !any_msgs {
            return Ok(RunResult { states, ledger });
        }
    }

    Err(BspError::SuperstepLimit { limit: max_supersteps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mailbox, Step};

    /// Ring token passing: each vproc forwards a counter around the ring
    /// `laps` times; tests message delivery, ordering and termination.
    struct Ring {
        laps: u64,
    }

    impl BspProgram for Ring {
        type State = u64; // tokens seen
        type Msg = u64;

        fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut u64) -> Step {
            let v = mb.nprocs();
            if step == 0 {
                if mb.pid() == 0 {
                    mb.send(1 % v, 1);
                }
                return Step::Continue;
            }
            for env in mb.take_incoming() {
                *state += 1;
                if env.msg < self.laps * v as u64 {
                    mb.send((mb.pid() + 1) % v, env.msg + 1);
                }
            }
            if *state > 0 || step > 0 {
                Step::Halt
            } else {
                Step::Continue
            }
        }

        fn max_state_bytes(&self) -> usize {
            8
        }
    }

    #[test]
    fn ring_passes_tokens_all_the_way_round() {
        let res = run_sequential(&Ring { laps: 2 }, vec![0u64; 4]).unwrap();
        // Token visits each processor twice (2 laps around 4 procs).
        assert_eq!(res.states, vec![2, 2, 2, 2]);
        // 8 hops + start + drain step.
        assert!(res.supersteps() >= 9);
        assert_eq!(res.ledger.total_msgs(), 8);
    }

    #[test]
    fn zero_processors_is_an_error() {
        let err = run_sequential(&Ring { laps: 1 }, Vec::new()).unwrap_err();
        assert_eq!(err, BspError::NoProcessors);
    }

    /// A program that never halts trips the superstep limit.
    struct Forever;
    impl BspProgram for Forever {
        type State = u8;
        type Msg = u8;
        fn superstep(&self, _: usize, _: &mut Mailbox<u8>, _: &mut u8) -> Step {
            Step::Continue
        }
        fn max_state_bytes(&self) -> usize {
            1
        }
    }

    #[test]
    fn superstep_limit_enforced() {
        let err = run_sequential_limited(&Forever, vec![0u8; 2], 10).unwrap_err();
        assert_eq!(err, BspError::SuperstepLimit { limit: 10 });
    }

    /// Sending to a nonexistent pid is a typed error.
    struct BadSend;
    impl BspProgram for BadSend {
        type State = u8;
        type Msg = u8;
        fn superstep(&self, _: usize, mb: &mut Mailbox<u8>, _: &mut u8) -> Step {
            mb.send(99, 1);
            Step::Halt
        }
        fn max_state_bytes(&self) -> usize {
            1
        }
    }

    #[test]
    fn invalid_destination_is_an_error() {
        let err = run_sequential(&BadSend, vec![0u8; 2]).unwrap_err();
        assert_eq!(err, BspError::InvalidDestination { dst: 99, nprocs: 2 });
    }

    /// Messages from multiple senders arrive sorted by (src, send order).
    struct OrderCheck;
    impl BspProgram for OrderCheck {
        type State = Vec<u64>;
        type Msg = u64;
        fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut Vec<u64>) -> Step {
            match step {
                0 => {
                    // Everyone sends two tagged messages to vproc 0.
                    let tag = mb.pid() as u64 * 10;
                    mb.send(0, tag);
                    mb.send(0, tag + 1);
                    Step::Continue
                }
                _ => {
                    if mb.pid() == 0 {
                        *state = mb.take_incoming().into_iter().map(|e| e.msg).collect();
                    }
                    Step::Halt
                }
            }
        }
        fn max_state_bytes(&self) -> usize {
            128
        }
    }

    #[test]
    fn canonical_delivery_order() {
        let res = run_sequential(&OrderCheck, vec![Vec::new(); 3]).unwrap();
        assert_eq!(res.states[0], vec![0, 1, 10, 11, 20, 21]);
    }
}
