//! Executors for [`crate::BspProgram`]s.

pub mod seq;
pub mod threads;
