//! A real parallel BSP machine: worker threads executing barrier-separated
//! supersteps with message routing between workers.
//!
//! Virtual processors are assigned to workers round-robin (`pid % workers`).
//! Each superstep has three phases separated by barriers:
//!
//! 1. every worker runs its virtual processors' computation, routing
//!    outgoing messages into shared next-superstep inboxes;
//! 2. worker 0 aggregates traffic counters into the ledger and decides
//!    whether the program has terminated;
//! 3. all workers observe the decision and either loop or exit.
//!
//! The output is bit-identical to [`crate::run_sequential`]: inboxes are
//! delivered in canonical `(src, send-order)` order, and BSP programs may
//! not depend on intra-superstep execution order.

use crate::program::sort_envelopes;
use crate::{
    BspError, BspProgram, CommLedger, Envelope, Mailbox, RunResult, Step, SuperstepComm,
    DEFAULT_MAX_SUPERSTEPS,
};
use em_serial::Serial;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;

/// One queued delivery: `(src pid, per-sender send order, envelope)`.
type Delivery<M> = (usize, u64, Envelope<M>);

/// One superstep's worth of shared inboxes, one locked queue per pid.
type InboxBuffer<M> = Vec<Mutex<Vec<Delivery<M>>>>;

/// Configuration for the threaded executor.
#[derive(Debug, Clone)]
pub struct ThreadedRunner {
    /// Number of OS threads (workers). Defaults to available parallelism.
    pub workers: usize,
    /// Superstep limit guarding non-terminating programs.
    pub max_supersteps: usize,
}

impl Default for ThreadedRunner {
    fn default() -> Self {
        ThreadedRunner {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            max_supersteps: DEFAULT_MAX_SUPERSTEPS,
        }
    }
}

impl ThreadedRunner {
    /// Executor with an explicit worker count.
    pub fn new(workers: usize) -> Self {
        ThreadedRunner { workers: workers.max(1), ..Default::default() }
    }

    /// Run `prog` on `states.len()` virtual processors until all halt.
    pub fn run<P: BspProgram>(
        &self,
        prog: &P,
        states: Vec<P::State>,
    ) -> Result<RunResult<P::State>, BspError> {
        let v = states.len();
        if v == 0 {
            return Err(BspError::NoProcessors);
        }
        let workers = self.workers.min(v);

        // Shared run state. Inboxes are double-buffered by superstep
        // parity: deliveries of superstep `s` are read from buffer `s % 2`
        // while sends go to buffer `(s + 1) % 2`, so a message can never be
        // observed in the superstep that sent it.
        let slots: Vec<Mutex<Option<P::State>>> =
            states.into_iter().map(|s| Mutex::new(Some(s))).collect();
        let inbox_buffers: [InboxBuffer<P::Msg>; 2] = [
            (0..v).map(|_| Mutex::new(Vec::new())).collect(),
            (0..v).map(|_| Mutex::new(Vec::new())).collect(),
        ];
        let barrier = Barrier::new(workers);
        let stop = AtomicBool::new(false);
        let failed: Mutex<Option<BspError>> = Mutex::new(None);
        let ledger: Mutex<CommLedger> = Mutex::new(CommLedger::default());

        // Per-superstep aggregates (reset by worker 0 between steps).
        let agg_msgs = AtomicU64::new(0);
        let agg_bytes = AtomicU64::new(0);
        let agg_h = AtomicU64::new(0);
        let agg_h_msgs = AtomicU64::new(0);
        let agg_w = AtomicU64::new(0);
        let any_continue = AtomicBool::new(false);
        let any_msgs = AtomicBool::new(false);

        std::thread::scope(|scope| {
            for w in 0..workers {
                let slots = &slots;
                let inbox_buffers = &inbox_buffers;
                let barrier = &barrier;
                let stop = &stop;
                let failed = &failed;
                let ledger = &ledger;
                let agg_msgs = &agg_msgs;
                let agg_bytes = &agg_bytes;
                let agg_h = &agg_h;
                let agg_h_msgs = &agg_h_msgs;
                let agg_w = &agg_w;
                let any_continue = &any_continue;
                let any_msgs = &any_msgs;
                let max_supersteps = self.max_supersteps;

                scope.spawn(move || {
                    // Worker-local ownership of its virtual processors.
                    let my_pids: Vec<usize> = (w..v).step_by(workers).collect();
                    let mut my_states: Vec<P::State> = my_pids
                        .iter()
                        .map(|&pid| slots[pid].lock().take().expect("state present at start"))
                        .collect();

                    for step in 0..max_supersteps {
                        let cur = &inbox_buffers[step % 2];
                        let next = &inbox_buffers[(step + 1) % 2];
                        // Phase 1: compute and route.
                        for (idx, &pid) in my_pids.iter().enumerate() {
                            let mut pending = std::mem::take(&mut *cur[pid].lock());
                            sort_envelopes(&mut pending);
                            let recv_bytes: u64 =
                                pending.iter().map(|(_, _, e)| e.msg.encoded_len() as u64).sum();
                            let recv_msgs = pending.len() as u64;
                            let incoming = pending.into_iter().map(|(_, _, e)| e).collect();

                            let mut mb = Mailbox::new(pid, v, incoming);
                            let status = prog.superstep(step, &mut mb, &mut my_states[idx]);
                            let (outgoing, msgs_sent, bytes_sent, work) = mb.into_outgoing();

                            if status == Step::Continue {
                                any_continue.store(true, Ordering::Relaxed);
                            }
                            agg_msgs.fetch_add(msgs_sent, Ordering::Relaxed);
                            agg_bytes.fetch_add(bytes_sent, Ordering::Relaxed);
                            agg_h.fetch_max(bytes_sent.max(recv_bytes), Ordering::Relaxed);
                            agg_h_msgs.fetch_max(msgs_sent.max(recv_msgs), Ordering::Relaxed);
                            agg_w.fetch_max(work, Ordering::Relaxed);

                            for (seq, (dst, msg)) in outgoing.into_iter().enumerate() {
                                if dst >= v {
                                    *failed.lock() =
                                        Some(BspError::InvalidDestination { dst, nprocs: v });
                                    stop.store(true, Ordering::SeqCst);
                                    break;
                                }
                                any_msgs.store(true, Ordering::Relaxed);
                                next[dst].lock().push((
                                    pid,
                                    seq as u64,
                                    Envelope { src: pid, msg },
                                ));
                            }
                        }

                        barrier.wait();

                        // Phase 2: worker 0 aggregates and decides.
                        if w == 0 {
                            ledger.lock().push(SuperstepComm {
                                msgs: agg_msgs.swap(0, Ordering::Relaxed),
                                bytes: agg_bytes.swap(0, Ordering::Relaxed),
                                h_bytes: agg_h.swap(0, Ordering::Relaxed),
                                h_msgs: agg_h_msgs.swap(0, Ordering::Relaxed),
                                h_packets: 0,
                                w_comp: agg_w.swap(0, Ordering::Relaxed),
                            });
                            let had_continue = any_continue.swap(false, Ordering::Relaxed);
                            let had_msgs = any_msgs.swap(false, Ordering::Relaxed);
                            let done = !had_continue && !had_msgs;
                            if done {
                                stop.store(true, Ordering::SeqCst);
                            }
                            if step + 1 == max_supersteps && !stop.load(Ordering::SeqCst) {
                                *failed.lock() =
                                    Some(BspError::SuperstepLimit { limit: max_supersteps });
                                stop.store(true, Ordering::SeqCst);
                            }
                        }

                        barrier.wait();

                        // Phase 3: everyone observes the decision.
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                    }

                    // Return states to the shared slots.
                    for (&pid, state) in my_pids.iter().zip(my_states) {
                        *slots[pid].lock() = Some(state);
                    }
                });
            }
        });

        if let Some(err) = failed.into_inner() {
            return Err(err);
        }
        let states: Vec<P::State> =
            slots.into_iter().map(|m| m.into_inner().expect("state returned by worker")).collect();
        Ok(RunResult { states, ledger: ledger.into_inner() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All-to-all exchange then local reduce; checks routing under real
    /// concurrency.
    struct AllToAll;
    impl BspProgram for AllToAll {
        type State = u64;
        type Msg = u64;

        fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut u64) -> Step {
            match step {
                0 => {
                    for dst in 0..mb.nprocs() {
                        mb.send(dst, (mb.pid() as u64 + 1) * 100 + dst as u64);
                    }
                    Step::Continue
                }
                _ => {
                    *state = mb.take_incoming().iter().map(|e| e.msg).sum();
                    Step::Halt
                }
            }
        }

        fn max_state_bytes(&self) -> usize {
            8
        }
    }

    #[test]
    fn matches_sequential_reference() {
        let v = 16;
        let seq = crate::run_sequential(&AllToAll, vec![0u64; v]).unwrap();
        let thr = ThreadedRunner::new(4).run(&AllToAll, vec![0u64; v]).unwrap();
        assert_eq!(seq.states, thr.states);
        assert_eq!(seq.ledger.total_msgs(), thr.ledger.total_msgs());
        assert_eq!(seq.ledger.total_bytes(), thr.ledger.total_bytes());
        assert_eq!(seq.supersteps(), thr.supersteps());
    }

    #[test]
    fn more_workers_than_vprocs_is_fine() {
        let res = ThreadedRunner::new(32).run(&AllToAll, vec![0u64; 3]).unwrap();
        assert_eq!(res.states.len(), 3);
    }

    #[test]
    fn single_worker_degenerates_to_sequential() {
        let seq = crate::run_sequential(&AllToAll, vec![0u64; 8]).unwrap();
        let one = ThreadedRunner::new(1).run(&AllToAll, vec![0u64; 8]).unwrap();
        assert_eq!(seq.states, one.states);
    }

    struct Forever;
    impl BspProgram for Forever {
        type State = u8;
        type Msg = u8;
        fn superstep(&self, _: usize, _: &mut Mailbox<u8>, _: &mut u8) -> Step {
            Step::Continue
        }
        fn max_state_bytes(&self) -> usize {
            1
        }
    }

    #[test]
    fn superstep_limit_enforced_in_threads() {
        let runner = ThreadedRunner { workers: 2, max_supersteps: 8 };
        let err = runner.run(&Forever, vec![0u8; 4]).unwrap_err();
        assert_eq!(err, BspError::SuperstepLimit { limit: 8 });
    }
}
