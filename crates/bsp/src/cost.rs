//! Communication ledgers: exact counted traffic per superstep, priced under
//! any of the three models after the fact.

use crate::{BspParams, BspStarParams};

/// Traffic counted during one communication superstep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SuperstepComm {
    /// Messages routed.
    pub msgs: u64,
    /// Total bytes routed.
    pub bytes: u64,
    /// `h` — the busiest virtual processor's `max(sent, received)` bytes
    /// (the h-relation size of the superstep in bytes).
    pub h_bytes: u64,
    /// The busiest virtual processor's message count (each message costs
    /// at least one BSP\* packet).
    pub h_msgs: u64,
    /// The busiest virtual processor's packet count when the router's
    /// packet granularity is known at run time (0 = derive from bytes and
    /// message count at pricing time).
    pub h_packets: u64,
    /// The busiest virtual processor's charged computation operations
    /// (`max t_j` of the BSP computation-cost definition).
    pub w_comp: u64,
}

/// Ledger of a whole run: one [`SuperstepComm`] per superstep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommLedger {
    /// Per-superstep traffic, in execution order.
    pub steps: Vec<SuperstepComm>,
}

impl CommLedger {
    /// λ — number of supersteps executed.
    pub fn lambda(&self) -> usize {
        self.steps.len()
    }

    /// Record one superstep.
    pub fn push(&mut self, step: SuperstepComm) {
        self.steps.push(step);
    }

    /// Total messages routed.
    pub fn total_msgs(&self) -> u64 {
        self.steps.iter().map(|s| s.msgs).sum()
    }

    /// Total bytes routed (`α` in Theorem 1, summed over supersteps).
    pub fn total_bytes(&self) -> u64 {
        self.steps.iter().map(|s| s.bytes).sum()
    }

    /// Largest h-relation (bytes) over all supersteps.
    pub fn max_h_bytes(&self) -> u64 {
        self.steps.iter().map(|s| s.h_bytes).max().unwrap_or(0)
    }

    /// `T_comm` under plain BSP: `Σ max(L, ĝ·h_i)`.
    pub fn bsp_comm_time(&self, params: &BspParams) -> f64 {
        self.steps.iter().map(|s| params.comm_cost(s.h_bytes)).sum()
    }

    /// `T_comm` under BSP\*: `Σ max(L, g·packets_i)`. When the runner
    /// recorded exact packet counts they are used; otherwise packets are
    /// estimated as `max(h_msgs, ⌈h_bytes/b⌉)` — exact when every message
    /// is either at most one packet (small-message regime) or much larger
    /// than `b` (bulk regime), a lower bound in between.
    pub fn bsp_star_comm_time(&self, params: &BspStarParams) -> f64 {
        self.steps
            .iter()
            .map(|s| {
                let packets = if s.h_packets > 0 {
                    s.h_packets
                } else {
                    s.h_msgs.max(s.h_bytes.div_ceil(params.b as u64))
                };
                params.comm_cost(packets)
            })
            .sum()
    }

    /// `T_comp` under BSP: `Σ max(L, w_comp_i)` — meaningful when the
    /// program charges its work via [`crate::Mailbox::charge`].
    pub fn bsp_comp_time(&self, l: f64) -> f64 {
        self.steps.iter().map(|s| (s.w_comp as f64).max(l)).sum()
    }

    /// Total charged computation across supersteps (the `β` of Theorem 1,
    /// per busiest processor).
    pub fn total_comp(&self) -> u64 {
        self.steps.iter().map(|s| s.w_comp).sum()
    }

    /// Merge another ledger's supersteps after this one's.
    pub fn extend(&mut self, other: CommLedger) {
        self.steps.extend(other.steps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> CommLedger {
        CommLedger {
            steps: vec![
                SuperstepComm {
                    msgs: 4,
                    bytes: 400,
                    h_bytes: 200,
                    h_msgs: 2,
                    h_packets: 4,
                    w_comp: 50,
                },
                SuperstepComm {
                    msgs: 2,
                    bytes: 100,
                    h_bytes: 100,
                    h_msgs: 1,
                    h_packets: 2,
                    w_comp: 10,
                },
            ],
        }
    }

    #[test]
    fn totals() {
        let l = ledger();
        assert_eq!(l.lambda(), 2);
        assert_eq!(l.total_msgs(), 6);
        assert_eq!(l.total_bytes(), 500);
        assert_eq!(l.max_h_bytes(), 200);
    }

    #[test]
    fn bsp_pricing() {
        let l = ledger();
        let p = BspParams { p: 4, g_hat: 1.0, l: 150.0 };
        // step 1: max(150, 200) = 200; step 2: max(150, 100) = 150.
        assert_eq!(l.bsp_comm_time(&p), 350.0);
    }

    #[test]
    fn bsp_star_pricing_uses_packets() {
        let l = ledger();
        let p = BspStarParams { p: 4, g: 10.0, b: 64, l: 0.0 };
        // 4 packets + 2 packets at g=10.
        assert_eq!(l.bsp_star_comm_time(&p), 60.0);
    }

    #[test]
    fn bsp_star_estimates_packets_from_msgs_when_unrecorded() {
        // 10 tiny messages of 8 bytes on a 64-byte packet router: bytes/b
        // would say 2 packets, message count says 10.
        let l = CommLedger {
            steps: vec![SuperstepComm {
                msgs: 10,
                bytes: 80,
                h_bytes: 80,
                h_msgs: 10,
                h_packets: 0,
                w_comp: 0,
            }],
        };
        let p = BspStarParams { p: 2, g: 1.0, b: 64, l: 0.0 };
        assert_eq!(l.bsp_star_comm_time(&p), 10.0);
    }

    #[test]
    fn comp_pricing_applies_latency_floor() {
        let l = ledger();
        // max(30, 50) + max(30, 10) = 80.
        assert_eq!(l.bsp_comp_time(30.0), 80.0);
        assert_eq!(l.total_comp(), 60);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = ledger();
        a.extend(ledger());
        assert_eq!(a.lambda(), 4);
    }
}
