//! Error type for BSP execution.

use std::fmt;

/// Errors raised by the in-memory BSP executors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BspError {
    /// The program was started with zero virtual processors.
    NoProcessors,
    /// A message was addressed to a virtual processor that does not exist.
    InvalidDestination {
        /// The bad destination.
        dst: usize,
        /// Number of virtual processors.
        nprocs: usize,
    },
    /// The program exceeded the superstep limit without halting.
    SuperstepLimit {
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for BspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BspError::NoProcessors => write!(f, "program started with zero virtual processors"),
            BspError::InvalidDestination { dst, nprocs } => {
                write!(f, "message sent to virtual processor {dst}, but only {nprocs} exist")
            }
            BspError::SuperstepLimit { limit } => {
                write!(f, "program did not halt within {limit} supersteps")
            }
        }
    }
}

impl std::error::Error for BspError {}
