//! The BSP programming API: programs, mailboxes, envelopes.

use em_serial::Serial;

/// What a virtual processor wants after a superstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Keep running: another superstep follows.
    Continue,
    /// This virtual processor is done. The program terminates once *every*
    /// virtual processor returns `Halt` in the same superstep and no
    /// messages are in flight; until then, halted processors keep being
    /// invoked (they may be woken by incoming messages).
    Halt,
}

/// A received message together with its sender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Virtual processor id of the sender.
    pub src: usize,
    /// The message payload.
    pub msg: M,
}

/// Per-virtual-processor communication endpoint for one superstep.
///
/// The runner fills `incoming` with the messages sent to this virtual
/// processor in the *previous* superstep — sorted by `(src, send order)`
/// so that every executor (sequential, threaded, external-memory) delivers
/// in the same canonical order — and collects `outgoing` afterwards.
#[derive(Debug)]
pub struct Mailbox<M> {
    pid: usize,
    nprocs: usize,
    incoming: Vec<Envelope<M>>,
    outgoing: Vec<(usize, M)>,
    bytes_sent: u64,
    msgs_sent: u64,
    work: u64,
}

impl<M: Serial> Mailbox<M> {
    /// Build a mailbox for virtual processor `pid` of `nprocs`, delivering
    /// `incoming` (already in canonical order).
    pub fn new(pid: usize, nprocs: usize, incoming: Vec<Envelope<M>>) -> Self {
        Mailbox {
            pid,
            nprocs,
            incoming,
            outgoing: Vec::new(),
            bytes_sent: 0,
            msgs_sent: 0,
            work: 0,
        }
    }

    /// This virtual processor's id, `0 ≤ pid < nprocs`.
    #[inline]
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// `v` — number of virtual processors in the program.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Send `msg` to virtual processor `dst`, delivered at the start of the
    /// next superstep. Self-sends are allowed. Destination validity is
    /// checked by the runner when it routes.
    #[inline]
    pub fn send(&mut self, dst: usize, msg: M) {
        self.bytes_sent += msg.encoded_len() as u64;
        self.msgs_sent += 1;
        self.outgoing.push((dst, msg));
    }

    /// Messages received this superstep, in canonical `(src, order)` order.
    /// Leaves the inbox empty.
    #[inline]
    pub fn take_incoming(&mut self) -> Vec<Envelope<M>> {
        std::mem::take(&mut self.incoming)
    }

    /// Borrow the inbox without consuming it.
    #[inline]
    pub fn incoming(&self) -> &[Envelope<M>] {
        &self.incoming
    }

    /// Number of messages waiting.
    #[inline]
    pub fn incoming_len(&self) -> usize {
        self.incoming.len()
    }

    /// Bytes queued for sending so far in this superstep.
    #[inline]
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Charge `ops` basic computation operations to this superstep — the
    /// `t_j` of the BSP computation-cost definition. Programs that skip
    /// charging are priced by communication and λ only.
    #[inline]
    pub fn charge(&mut self, ops: u64) {
        self.work = self.work.wrapping_add(ops);
    }

    /// Computation operations charged so far.
    #[inline]
    pub fn charged(&self) -> u64 {
        self.work
    }

    /// Consume the mailbox, returning the outgoing `(dst, msg)` pairs and
    /// the accounting triple `(msgs_sent, bytes_sent, charged_ops)`.
    pub fn into_outgoing(self) -> (Vec<(usize, M)>, u64, u64, u64) {
        (self.outgoing, self.msgs_sent, self.bytes_sent, self.work)
    }
}

/// A coarse-grained parallel algorithm in the BSP/BSP\*/CGM style.
///
/// A program runs on `v` virtual processors. Each holds a `State` (the
/// *context* of the paper, of size at most [`BspProgram::max_state_bytes`]
/// = μ when serialized) and exchanges `Msg` values through a [`Mailbox`].
/// The executor calls [`BspProgram::superstep`] once per virtual processor
/// per superstep until every processor halts.
///
/// Programs must be written so that the result does not depend on the
/// *relative* execution order of virtual processors within a superstep —
/// the defining property of bulk-synchronous computation, and the property
/// that lets the paper's simulation run them group by group from disk.
pub trait BspProgram: Sync {
    /// Per-virtual-processor context. Serialized when the program runs on
    /// an external-memory simulator.
    type State: Serial + Send + 'static;
    /// Message payload type.
    type Msg: Serial + Send + Clone + 'static;

    /// Execute superstep `step` for the virtual processor owning `state`.
    fn superstep(&self, step: usize, mb: &mut Mailbox<Self::Msg>, state: &mut Self::State) -> Step;

    /// μ — upper bound on the serialized size of any `State` at any
    /// superstep boundary. The EM simulation pads every context to this
    /// size; declaring it too small is a runtime error, too large wastes
    /// disk space but stays correct.
    fn max_state_bytes(&self) -> usize;

    /// γ — upper bound on the bytes any single virtual processor sends (or
    /// receives) in one superstep. Defaults to μ, matching the paper's
    /// standing assumption γ = O(μ).
    fn max_comm_bytes(&self) -> usize {
        self.max_state_bytes()
    }
}

impl<P: BspProgram> BspProgram for &P {
    type State = P::State;
    type Msg = P::Msg;

    fn superstep(&self, step: usize, mb: &mut Mailbox<Self::Msg>, state: &mut Self::State) -> Step {
        (**self).superstep(step, mb, state)
    }

    fn max_state_bytes(&self) -> usize {
        (**self).max_state_bytes()
    }

    fn max_comm_bytes(&self) -> usize {
        (**self).max_comm_bytes()
    }
}

/// Canonical inbox order: by sender id, then by per-sender send order.
/// All runners sort with this before delivering, so programs observe
/// identical inboxes regardless of executor.
pub(crate) fn sort_envelopes<M>(envelopes: &mut [(usize, u64, Envelope<M>)]) {
    envelopes.sort_by_key(|&(src, seq, _)| (src, seq));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mailbox_accounts_traffic() {
        let mut mb: Mailbox<u64> = Mailbox::new(0, 4, Vec::new());
        mb.send(1, 42);
        mb.send(3, 43);
        mb.charge(100);
        assert_eq!(mb.bytes_sent(), 16);
        assert_eq!(mb.charged(), 100);
        let (out, msgs, bytes, work) = mb.into_outgoing();
        assert_eq!(out, vec![(1, 42), (3, 43)]);
        assert_eq!(msgs, 2);
        assert_eq!(bytes, 16);
        assert_eq!(work, 100);
    }

    #[test]
    fn mailbox_take_incoming_drains() {
        let inbox = vec![Envelope { src: 2, msg: 7u32 }];
        let mut mb = Mailbox::new(1, 4, inbox);
        assert_eq!(mb.incoming_len(), 1);
        let got = mb.take_incoming();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].src, 2);
        assert_eq!(mb.incoming_len(), 0);
    }
}
