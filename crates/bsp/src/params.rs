//! Machine parameters and cost formulas for the three coarse-grained
//! models (Section 2.2 of the paper).

/// Parameters of a **BSP** computer (Valiant).
///
/// Communication in superstep `i` on processor `j` costs
/// `max(L, ĝ·(Σ r + Σ s))` where `r`/`s` are received/sent message sizes in
/// records; the superstep's cost is the maximum over processors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BspParams {
    /// `p` — number of processors.
    pub p: usize,
    /// `ĝ` — time to route one record (computation-ops per unit message).
    pub g_hat: f64,
    /// `L` — barrier synchronization latency.
    pub l: f64,
}

impl BspParams {
    /// Cost of one communication superstep in which the busiest processor
    /// moves `h_bytes` bytes (unit-size records of one byte each).
    pub fn comm_cost(&self, h_bytes: u64) -> f64 {
        (self.g_hat * h_bytes as f64).max(self.l)
    }
}

/// Parameters of a **BSP\*** computer (Bäumker–Dittrich–Meyer auf der
/// Heide): BSP plus a minimum packet size `b`; messages shorter than `b`
/// are charged as full packets, rewarding blockwise communication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BspStarParams {
    /// `p` — number of processors.
    pub p: usize,
    /// `g` — time to transport one packet of size `b`.
    pub g: f64,
    /// `b` — packet size in bytes.
    pub b: usize,
    /// `L` — barrier synchronization latency.
    pub l: f64,
}

impl BspStarParams {
    /// Packets charged for a single message of `bytes` bytes: `⌈bytes/b⌉`,
    /// with empty messages still charged one packet.
    pub fn packets_for(&self, bytes: u64) -> u64 {
        (bytes.max(1)).div_ceil(self.b as u64)
    }

    /// Cost of a communication superstep where the busiest processor sends
    /// and receives messages totalling `packet_count` packets:
    /// `max(L, g · packets)`.
    pub fn comm_cost(&self, packet_count: u64) -> f64 {
        (self.g * packet_count as f64).max(self.l)
    }
}

/// Parameters of a **CGM** computer (Dehne–Fabri–Rau-Chaplin): `p`
/// processors of `n/p` memory each; every communication round is a single
/// `h`-relation with `h ≤ n/p`, so the round cost is the constant
/// `H_{n,p}` and total communication is `λ · H_{n,p}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CgmParams {
    /// `n` — total problem size in records.
    pub n: usize,
    /// `p` — number of processors.
    pub p: usize,
}

impl CgmParams {
    /// Per-processor memory, `n/p` (rounded up).
    pub fn local_memory(&self) -> usize {
        self.n.div_ceil(self.p)
    }

    /// Check the coarse-grained slackness assumption `n/p ≥ p` used by the
    /// algorithms of Table 1.
    pub fn is_coarse_grained(&self) -> bool {
        self.local_memory() >= self.p
    }

    /// Total CGM communication time for `lambda` rounds priced as
    /// `λ · H_{n,p}` with `H_{n,p} = g·(n/p)/b + L` on an underlying BSP\*
    /// router (Observation 1).
    pub fn comm_time(&self, lambda: usize, star: &BspStarParams) -> f64 {
        let h_packets = (self.local_memory() as u64).div_ceil(star.b as u64);
        lambda as f64 * star.comm_cost(h_packets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsp_comm_cost_respects_latency_floor() {
        let p = BspParams { p: 4, g_hat: 2.0, l: 100.0 };
        assert_eq!(p.comm_cost(10), 100.0); // 2*10 < L
        assert_eq!(p.comm_cost(100), 200.0);
    }

    #[test]
    fn bsp_star_charges_whole_packets() {
        let p = BspStarParams { p: 4, g: 1.0, b: 64, l: 0.0 };
        assert_eq!(p.packets_for(0), 1); // empty message = one packet
        assert_eq!(p.packets_for(1), 1);
        assert_eq!(p.packets_for(64), 1);
        assert_eq!(p.packets_for(65), 2);
    }

    #[test]
    fn cgm_memory_and_slackness() {
        let c = CgmParams { n: 1000, p: 10 };
        assert_eq!(c.local_memory(), 100);
        assert!(c.is_coarse_grained());
        let tight = CgmParams { n: 16, p: 8 };
        assert!(!tight.is_coarse_grained());
    }

    #[test]
    fn cgm_comm_time_is_lambda_times_h() {
        let c = CgmParams { n: 1024, p: 4 };
        let star = BspStarParams { p: 4, g: 2.0, b: 64, l: 10.0 };
        // h = 256 bytes = 4 packets; cost per round = max(10, 8) = 8? no: 2*4=8 < 10 -> 10
        assert_eq!(c.comm_time(3, &star), 30.0);
    }
}
