//! The [`Executor`] abstraction: anything that can run a [`BspProgram`]
//! to completion.
//!
//! CGM algorithms are written as *pipelines* of BSP programs (sort, then
//! sweep, then gather, …). Writing the drivers against `Executor` means
//! the same algorithm code runs on the in-memory reference runner, the
//! threaded BSP machine, or the external-memory simulators of `em-core` —
//! which is exactly the portability claim of the paper's simulation
//! technique.

use crate::{run_sequential, BspProgram, RunResult, ThreadedRunner};

/// Boxed error used across executor implementations.
pub type ExecError = Box<dyn std::error::Error + Send + Sync + 'static>;

/// An engine that can execute a BSP program on `states.len()` virtual
/// processors and return the final states.
pub trait Executor: Sync {
    /// Run the program to completion.
    fn execute<P: BspProgram>(
        &self,
        prog: &P,
        states: Vec<P::State>,
    ) -> Result<RunResult<P::State>, ExecError>;
}

/// The sequential in-memory reference executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqExecutor;

impl Executor for SeqExecutor {
    fn execute<P: BspProgram>(
        &self,
        prog: &P,
        states: Vec<P::State>,
    ) -> Result<RunResult<P::State>, ExecError> {
        run_sequential(prog, states).map_err(|e| Box::new(e) as ExecError)
    }
}

impl Executor for ThreadedRunner {
    fn execute<P: BspProgram>(
        &self,
        prog: &P,
        states: Vec<P::State>,
    ) -> Result<RunResult<P::State>, ExecError> {
        self.run(prog, states).map_err(|e| Box::new(e) as ExecError)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mailbox, Step};

    struct Echo;
    impl BspProgram for Echo {
        type State = u64;
        type Msg = u64;
        fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut u64) -> Step {
            if step == 0 {
                mb.send(mb.pid(), mb.pid() as u64 * 2);
                Step::Continue
            } else {
                *state = mb.take_incoming()[0].msg;
                Step::Halt
            }
        }
        fn max_state_bytes(&self) -> usize {
            8
        }
    }

    #[test]
    fn executors_agree() {
        let a = SeqExecutor.execute(&Echo, vec![0; 4]).unwrap();
        let b = ThreadedRunner::new(2).execute(&Echo, vec![0; 4]).unwrap();
        assert_eq!(a.states, b.states);
        assert_eq!(a.states, vec![0, 2, 4, 6]);
    }
}
