//! Communication patterns used by the CGM algorithms.
//!
//! These are *in-superstep* helpers: they enqueue the message pattern of a
//! collective into the current mailbox; the data arrives at the start of
//! the next superstep. Each costs one communication round (one h-relation),
//! matching how the Table 1 algorithms count λ.

use crate::Mailbox;
use em_serial::Serial;

/// Broadcast: send a copy of `msg` to every virtual processor (including
/// the sender). One round; h = v·|msg| at the sender, so use only for
/// O(n/p²)-sized payloads as the CGM algorithms do.
pub fn send_to_all<M: Serial + Clone>(mb: &mut Mailbox<M>, msg: M) {
    for dst in 0..mb.nprocs() {
        mb.send(dst, msg.clone());
    }
}

/// Scatter `items` across all virtual processors as evenly as possible,
/// in pid order: processor `i` receives the `i`-th chunk (sizes differ by
/// at most one). Returns nothing; chunks arrive as individual messages.
pub fn scatter_evenly<M: Serial, I: IntoIterator<Item = M>>(mb: &mut Mailbox<M>, items: I) {
    let items: Vec<M> = items.into_iter().collect();
    let v = mb.nprocs();
    let n = items.len();
    let base = n / v;
    let extra = n % v;
    let mut it = items.into_iter();
    for dst in 0..v {
        let take = base + usize::from(dst < extra);
        for _ in 0..take {
            match it.next() {
                Some(m) => mb.send(dst, m),
                None => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_sequential, BspProgram, Step};

    struct Bcast;
    impl BspProgram for Bcast {
        type State = Vec<u64>;
        type Msg = u64;
        fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut Vec<u64>) -> Step {
            match step {
                0 => {
                    if mb.pid() == 2 {
                        send_to_all(mb, 99);
                    }
                    Step::Continue
                }
                _ => {
                    *state = mb.take_incoming().iter().map(|e| e.msg).collect();
                    Step::Halt
                }
            }
        }
        fn max_state_bytes(&self) -> usize {
            64
        }
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let res = run_sequential(&Bcast, vec![Vec::new(); 4]).unwrap();
        for s in res.states {
            assert_eq!(s, vec![99]);
        }
    }

    struct Scatter;
    impl BspProgram for Scatter {
        type State = Vec<u64>;
        type Msg = u64;
        fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut Vec<u64>) -> Step {
            match step {
                0 => {
                    if mb.pid() == 0 {
                        scatter_evenly(mb, 0..7u64);
                    }
                    Step::Continue
                }
                _ => {
                    *state = mb.take_incoming().iter().map(|e| e.msg).collect();
                    Step::Halt
                }
            }
        }
        fn max_state_bytes(&self) -> usize {
            64
        }
    }

    #[test]
    fn scatter_is_balanced_and_ordered() {
        let res = run_sequential(&Scatter, vec![Vec::new(); 3]).unwrap();
        // 7 items over 3 procs: sizes 3,2,2 in pid order.
        assert_eq!(res.states[0], vec![0, 1, 2]);
        assert_eq!(res.states[1], vec![3, 4]);
        assert_eq!(res.states[2], vec![5, 6]);
    }
}
