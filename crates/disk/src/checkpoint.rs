//! Durable barrier checkpoints: CRC-framed manifests and a pre-image
//! undo journal.
//!
//! The EM-BSP barrier is the natural consistency point — at `sync()` every
//! live byte of the simulation is on disk — so crash durability only needs
//! two small pieces of machinery next to the drive files:
//!
//! * **Manifests** (`manifest-<step>.ckpt`): a versioned, CRC-framed
//!   snapshot of the simulator's replay state, committed *atomically* at
//!   each barrier (write `.tmp` → fsync → rename). The payload is opaque
//!   to this crate — the simulator serializes whatever it needs (RNG seed
//!   position, allocator frontiers, ledgers, fingerprints). The last two
//!   manifests are retained, so a manifest torn by a mid-write crash is
//!   detected by its CRC and the previous committed one wins.
//! * **A pre-image journal** (`journal.bin`): before the first in-place
//!   overwrite of any track within a superstep, the track's prior content
//!   is appended as a CRC-framed record. A crash *between* barriers leaves
//!   partially overwritten context and message regions; replaying the
//!   journal in reverse restores the exact barrier image before the
//!   superstep is re-run. Records are logged before the data write is
//!   submitted, and undo is idempotent (every pre-image is captured at
//!   epoch start), so a crash during recovery itself is also safe.
//!
//! The commit protocol at barrier `s` is: data `sync()` → commit
//! `manifest-<s>` → truncate the journal. Whatever prefix of that sequence
//! a crash permits, recovery converges on barrier `s` or barrier `s-1`
//! with bit-identical drive bytes either way.

use crate::block::crc32;
use crate::{DiskError, DiskResult};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Magic prefix of a manifest file.
pub const MANIFEST_MAGIC: &[u8; 8] = b"EMCKPT01";
/// Magic prefix of the pre-image journal.
pub const JOURNAL_MAGIC: &[u8; 8] = b"EMJRNL01";
/// On-disk format version written into manifests and journal headers.
pub const CHECKPOINT_VERSION: u32 = 1;

/// How many committed manifests are retained (the newest may always be
/// torn by a crash, so its predecessor must survive).
const KEEP_MANIFESTS: u64 = 2;

/// Manifest-file mechanics for one checkpoint directory (normally the
/// directory that also holds the `disk-<i>.bin` drive files).
///
/// The store knows nothing about the payload it frames; simulators encode
/// and decode their own replay state.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Attach to (creating if needed) the checkpoint directory.
    pub fn attach<P: AsRef<Path>>(dir: P) -> DiskResult<Self> {
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(CheckpointStore { dir: dir.as_ref().to_path_buf() })
    }

    /// The directory this store manages.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the manifest committed at barrier `step`.
    pub fn manifest_path(&self, step: u64) -> PathBuf {
        self.dir.join(format!("manifest-{step}.ckpt"))
    }

    fn frame(step: u64, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(8 + 4 + 8 + 8 + payload.len() + 4);
        buf.extend_from_slice(MANIFEST_MAGIC);
        buf.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        buf.extend_from_slice(&step.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(payload);
        let crc = crc32(&buf[MANIFEST_MAGIC.len()..]);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Atomically commit the manifest for barrier `step`: the frame is
    /// written to a temporary file, fsynced, then renamed into place, so a
    /// crash at any instant leaves either the old manifest set or the new
    /// one — never a half-written current manifest (on filesystems with
    /// atomic rename). Manifests older than the previous one are pruned.
    pub fn commit_manifest(&self, step: u64, payload: &[u8]) -> DiskResult<()> {
        let tmp = self.dir.join(format!("manifest-{step}.ckpt.tmp"));
        let frame = Self::frame(step, payload);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&frame)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, self.manifest_path(step))?;
        self.prune_below(step.saturating_sub(KEEP_MANIFESTS - 1))?;
        Ok(())
    }

    /// Write a deliberately torn manifest for `step`: only the first
    /// `keep` bytes of the frame land, with no atomic rename. This is a
    /// test hook simulating a crash mid-manifest-write on a filesystem
    /// without atomic-rename guarantees; recovery must detect the bad CRC
    /// and fall back to the previous committed manifest.
    pub fn write_torn_manifest(&self, step: u64, payload: &[u8], keep: usize) -> DiskResult<()> {
        let frame = Self::frame(step, payload);
        let keep = keep.min(frame.len().saturating_sub(1));
        let mut f = File::create(self.manifest_path(step))?;
        f.write_all(&frame[..keep])?;
        f.sync_data()?;
        Ok(())
    }

    /// Remove every manifest with a step below `min_step`.
    fn prune_below(&self, min_step: u64) -> DiskResult<()> {
        for step in self.list_manifest_steps()? {
            if step < min_step {
                let _ = std::fs::remove_file(self.manifest_path(step));
            }
        }
        Ok(())
    }

    /// Steps of all manifest files present (valid or not), ascending.
    pub fn list_manifest_steps(&self) -> DiskResult<Vec<u64>> {
        let mut steps = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(step) = name
                .strip_prefix("manifest-")
                .and_then(|s| s.strip_suffix(".ckpt"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                steps.push(step);
            }
        }
        steps.sort_unstable();
        Ok(steps)
    }

    /// Load and verify the manifest for `step`. Returns `None` when the
    /// file is missing, torn or fails CRC/shape verification — a torn
    /// manifest is an expected crash artifact, not an error.
    pub fn load_manifest(&self, step: u64) -> DiskResult<Option<Vec<u8>>> {
        let mut bytes = Vec::new();
        match File::open(self.manifest_path(step)) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let header = MANIFEST_MAGIC.len() + 4 + 8 + 8;
        if bytes.len() < header + 4 || &bytes[..8] != MANIFEST_MAGIC {
            return Ok(None);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let stored_step = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let len = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes")) as usize;
        if version != CHECKPOINT_VERSION || stored_step != step || bytes.len() != header + len + 4 {
            return Ok(None);
        }
        let crc = u32::from_le_bytes(bytes[header + len..].try_into().expect("4 bytes"));
        if crc32(&bytes[8..header + len]) != crc {
            return Ok(None);
        }
        bytes.drain(..header);
        bytes.truncate(len);
        Ok(Some(bytes))
    }

    /// The newest manifest that passes CRC verification, as
    /// `(step, payload)`. Torn or partial manifests are skipped; the
    /// previous committed one wins.
    pub fn latest_manifest(&self) -> DiskResult<Option<(u64, Vec<u8>)>> {
        for step in self.list_manifest_steps()?.into_iter().rev() {
            if let Some(payload) = self.load_manifest(step)? {
                return Ok(Some((step, payload)));
            }
        }
        Ok(None)
    }

    /// Remove every checkpoint artifact (manifests and journal) from the
    /// directory, leaving the drive files untouched.
    pub fn clear(&self) -> DiskResult<()> {
        for step in self.list_manifest_steps()? {
            let _ = std::fs::remove_file(self.manifest_path(step));
        }
        let _ = std::fs::remove_file(self.dir.join(JOURNAL_FILE));
        Ok(())
    }
}

/// File name of the pre-image journal inside a checkpoint directory.
pub const JOURNAL_FILE: &str = "journal.bin";

/// Append-only writer for the pre-image undo journal.
///
/// One epoch (= one superstep attempt window) is live at a time:
/// [`JournalFile::begin_epoch`] truncates the file and stamps the epoch
/// header, [`JournalFile::append`] adds one CRC-framed pre-image record,
/// and [`JournalFile::clear`] truncates everything once the barrier's
/// manifest has committed. Records are flushed to the OS before the
/// overwrite they protect is submitted (log-before-data).
#[derive(Debug)]
pub struct JournalFile {
    path: PathBuf,
    writer: Option<BufWriter<File>>,
    epoch: u64,
}

impl JournalFile {
    /// Attach the journal inside `dir` (creating the directory if needed).
    /// The file itself is created lazily by [`JournalFile::begin_epoch`].
    pub fn attach<P: AsRef<Path>>(dir: P) -> DiskResult<Self> {
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(JournalFile { path: dir.as_ref().join(JOURNAL_FILE), writer: None, epoch: 0 })
    }

    /// The epoch most recently begun (0 before any epoch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Start a fresh epoch: truncate the journal and write the epoch
    /// header. Called at the start of every superstep attempt, so records
    /// from a replayed attempt never mix with the current one.
    pub fn begin_epoch(&mut self, epoch: u64) -> DiskResult<()> {
        let file = OpenOptions::new().write(true).create(true).truncate(true).open(&self.path)?;
        let mut w = BufWriter::new(file);
        let mut header = Vec::with_capacity(8 + 4 + 8 + 4);
        header.extend_from_slice(JOURNAL_MAGIC);
        header.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        header.extend_from_slice(&epoch.to_le_bytes());
        let crc = crc32(&header[JOURNAL_MAGIC.len()..]);
        header.extend_from_slice(&crc.to_le_bytes());
        w.write_all(&header)?;
        w.flush()?;
        w.get_ref().sync_data()?;
        self.writer = Some(w);
        self.epoch = epoch;
        Ok(())
    }

    /// Append one pre-image record for `(disk, track)` and flush it to the
    /// OS, so the record is observable before the overwrite it protects.
    pub fn append(&mut self, disk: usize, track: usize, pre_image: &[u8]) -> DiskResult<()> {
        let w = self
            .writer
            .as_mut()
            .ok_or(DiskError::InvalidConfig("journal append outside an epoch"))?;
        let mut rec = Vec::with_capacity(4 + 8 + 4 + pre_image.len() + 4);
        rec.extend_from_slice(&(disk as u32).to_le_bytes());
        rec.extend_from_slice(&(track as u64).to_le_bytes());
        rec.extend_from_slice(&(pre_image.len() as u32).to_le_bytes());
        rec.extend_from_slice(pre_image);
        let crc = crc32(&rec);
        rec.extend_from_slice(&crc.to_le_bytes());
        w.write_all(&rec)?;
        w.flush()?;
        Ok(())
    }

    /// Truncate the journal after the barrier's manifest has committed:
    /// the epoch it protected is durable, so its pre-images are obsolete.
    pub fn clear(&mut self) -> DiskResult<()> {
        self.writer = None;
        let f = OpenOptions::new().write(true).create(true).truncate(true).open(&self.path)?;
        f.sync_data()?;
        Ok(())
    }

    /// Read the journal in `dir` back. Returns `None` when the file is
    /// missing, empty, or its header is torn. A torn *tail* record is
    /// dropped silently: it was logged before its data write, so the write
    /// it would protect never reached the drive files.
    pub fn read<P: AsRef<Path>>(dir: P) -> DiskResult<Option<JournalContents>> {
        let path = dir.as_ref().join(JOURNAL_FILE);
        let mut bytes = Vec::new();
        match File::open(&path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let header = JOURNAL_MAGIC.len() + 4 + 8 + 4;
        if bytes.len() < header || &bytes[..8] != JOURNAL_MAGIC {
            return Ok(None);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let epoch = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
        if version != CHECKPOINT_VERSION || crc32(&bytes[8..20]) != crc {
            return Ok(None);
        }
        let mut records = Vec::new();
        let mut at = header;
        while bytes.len() - at >= 4 + 8 + 4 + 4 {
            let disk = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
            let track =
                u64::from_le_bytes(bytes[at + 4..at + 12].try_into().expect("8 bytes")) as usize;
            let len =
                u32::from_le_bytes(bytes[at + 12..at + 16].try_into().expect("4 bytes")) as usize;
            let end = at + 16 + len;
            if bytes.len() < end + 4 {
                break; // torn tail record
            }
            let crc = u32::from_le_bytes(bytes[end..end + 4].try_into().expect("4 bytes"));
            if crc32(&bytes[at..end]) != crc {
                break; // torn tail record
            }
            records.push((disk, track, bytes[at + 16..end].to_vec()));
            at = end + 4;
        }
        Ok(Some(JournalContents { epoch, records }))
    }
}

/// The readable contents of a pre-image journal: the epoch (superstep
/// attempt) it protects plus every complete record in append order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalContents {
    /// The superstep-attempt epoch the records belong to.
    pub epoch: u64,
    /// `(disk, track, pre-image bytes)` in the order they were captured.
    /// Undo applies them in reverse.
    pub records: Vec<(usize, usize, Vec<u8>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("em-disk-ckpt-{tag}-{}", std::process::id()))
    }

    #[test]
    fn manifest_round_trips_and_prunes() {
        let dir = tmp("roundtrip");
        let store = CheckpointStore::attach(&dir).unwrap();
        assert!(store.latest_manifest().unwrap().is_none());
        store.commit_manifest(0, b"zero").unwrap();
        store.commit_manifest(1, b"one").unwrap();
        store.commit_manifest(2, b"two").unwrap();
        assert_eq!(store.list_manifest_steps().unwrap(), vec![1, 2], "only two retained");
        assert_eq!(store.latest_manifest().unwrap(), Some((2, b"two".to_vec())));
        assert_eq!(store.load_manifest(1).unwrap(), Some(b"one".to_vec()));
        assert_eq!(store.load_manifest(0).unwrap(), None, "pruned manifest is gone");
        store.clear().unwrap();
        assert!(store.latest_manifest().unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_manifest_loses_to_the_previous_committed_one() {
        let dir = tmp("torn");
        let store = CheckpointStore::attach(&dir).unwrap();
        store.commit_manifest(4, b"committed").unwrap();
        for keep in [0, 8, 20, 30] {
            store.write_torn_manifest(5, b"torn-payload", keep).unwrap();
            assert_eq!(
                store.latest_manifest().unwrap(),
                Some((4, b"committed".to_vec())),
                "torn manifest with {keep} bytes must be rejected"
            );
        }
        // A fully committed 5 then wins.
        store.commit_manifest(5, b"now-good").unwrap();
        assert_eq!(store.latest_manifest().unwrap(), Some((5, b"now-good".to_vec())));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_with_wrong_internal_step_is_rejected() {
        let dir = tmp("misnamed");
        let store = CheckpointStore::attach(&dir).unwrap();
        store.commit_manifest(3, b"payload").unwrap();
        // Rename 3 to 7: the internal step no longer matches the name.
        std::fs::rename(store.manifest_path(3), store.manifest_path(7)).unwrap();
        assert_eq!(store.load_manifest(7).unwrap(), None);
        assert!(store.latest_manifest().unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_round_trips_and_drops_torn_tail() {
        let dir = tmp("journal");
        std::fs::create_dir_all(&dir).unwrap();
        let mut j = JournalFile::attach(&dir).unwrap();
        assert!(JournalFile::read(&dir).unwrap().is_none(), "no journal yet");
        j.begin_epoch(7).unwrap();
        j.append(0, 3, &[1u8; 16]).unwrap();
        j.append(2, 9, &[2u8; 16]).unwrap();
        let contents = JournalFile::read(&dir).unwrap().unwrap();
        assert_eq!(contents.epoch, 7);
        assert_eq!(contents.records, vec![(0, 3, vec![1u8; 16]), (2, 9, vec![2u8; 16])]);
        // Tear the last record: it is dropped, earlier ones survive.
        let path = dir.join(JOURNAL_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let contents = JournalFile::read(&dir).unwrap().unwrap();
        assert_eq!(contents.records, vec![(0, 3, vec![1u8; 16])]);
        // A fresh epoch truncates; clear empties the file entirely.
        j.begin_epoch(8).unwrap();
        let contents = JournalFile::read(&dir).unwrap().unwrap();
        assert_eq!((contents.epoch, contents.records.len()), (8, 0));
        j.clear().unwrap();
        assert!(JournalFile::read(&dir).unwrap().is_none(), "cleared journal reads as absent");
        std::fs::remove_dir_all(&dir).ok();
    }
}
