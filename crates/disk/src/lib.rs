//! # em-disk
//!
//! A faithful substrate for the **EM-BSP disk model** of Dehne, Dittrich and
//! Hutchinson (and of Vitter–Shriver's parallel disk model): each processor
//! owns `D` disk drives, each drive is a sequence of *tracks* addressed by
//! number, and a track stores exactly one block of `B` bytes. In a single
//! parallel I/O operation the processor may transfer **at most one track per
//! disk** — up to `D` blocks — at cost `G`.
//!
//! The paper's cost claims are all stated in counted parallel I/O
//! operations, so this crate's job is to *count exactly those*, while also
//! optionally performing real file I/O so wall-clock trends can be observed:
//!
//! * [`MemoryBackend`] — tracks held in memory; deterministic and fast.
//! * [`FileBackend`] — one file per simulated drive, positional reads and
//!   writes at `track * B` offsets. With [`IoMode::Parallel`] (the default)
//!   each drive's file is owned by a dedicated worker thread and the
//!   `≤ D` transfers of one stripe overlap in time — real `D`-way
//!   parallelism, joined before the operation returns so callers, counted
//!   [`IoStats`] and seeded I/O traces are unaffected.
//! * [`BlockCacheBackend`] — optional write-back cache over the whole
//!   backend stack ([`DiskConfig::with_cache`]): reads of resident tracks
//!   and buffered writes cost no backend I/O until the barrier flush,
//!   while counted [`IoStats`] stay bit-identical by construction and the
//!   absorbed traffic is tallied in
//!   [`IoStats::cache_hit_blocks`]/[`IoStats::cache_absorbed_writes`].
//! * [`SharedDiskSubstrate`] — a multi-tenant store: one set of physical
//!   drives carved into disjoint per-tenant track regions, each exposed as
//!   a [`RegionBackend`] under the tenant's own [`DiskArray`]. Concurrent
//!   stripes are serialized by a fair round-robin arbiter; counting stays
//!   in each tenant's array, so per-tenant [`IoStats`] are bit-identical
//!   to the same run on a private array.
//!
//! ## The canonical decorator stack
//!
//! [`DiskArray`] assembles the optional layers in one fixed order,
//! outermost first:
//!
//! ```text
//! DiskArray( Cache( Retrying( Checksum( FaultInjecting( raw ) ) ) ) )
//! ```
//!
//! Counting lives in [`DiskArray`] itself, *above* every decorator, so no
//! layer can change counted [`IoStats`]. Fault injection sits at the
//! bottom — directly on the raw media — so injected corruption is subject
//! to CRC verification and injected transients to the retry policy,
//! exactly like real media faults; the cache is the outermost layer, so a
//! hit short-circuits the whole stack and a flush re-traverses it like a
//! direct write. Every layer is opt-in via [`DiskConfig`]; the stack
//! order is not configurable.
//!
//! On top of the raw [`DiskArray`] this crate implements the paper's two
//! on-disk layouts:
//!
//! * [`ConsecutiveLayout`] — *standard consecutive format* (Definition 2):
//!   blocked records, per-disk block counts differing by at most one,
//!   consecutive tracks. Used for virtual-processor contexts and for
//!   reorganized message groups.
//! * [`BucketStore`] — *standard linked format*: per-disk tables of `D`
//!   bucket list heads, used by the Writing Phase of Algorithm 1 to absorb
//!   message blocks whose arrival order is randomized.

#![warn(missing_docs)]

mod affinity;
mod alloc;
mod array;
mod backend;
mod block;
mod cache;
mod checkpoint;
mod config;
mod consecutive;
mod engine;
mod error;
mod fault;
mod linked;
mod shared;
mod stats;
mod uring;

pub use affinity::pin_thread_to_core;
pub use alloc::TrackAllocator;
pub use array::{DiskArray, ReadStripeTicket, WriteBacklog, WriteStripeTicket};
pub use backend::{ChecksumBackend, DiskBackend, FileBackend, MemoryBackend, RetryingBackend};
pub use block::{crc32, Block, CRC_BYTES};
pub use cache::BlockCacheBackend;
pub use checkpoint::{
    CheckpointStore, JournalContents, JournalFile, CHECKPOINT_VERSION, JOURNAL_FILE, JOURNAL_MAGIC,
    MANIFEST_MAGIC,
};
pub use config::{DiskConfig, EngineKind, IoMode, Pipeline, RetryPolicy};
pub use consecutive::{check_consecutive_format, ConsecutiveLayout};
pub use engine::{ReadTicket, WriteTicket};
pub use error::DiskError;
pub use fault::{FaultCounts, FaultInjectingBackend, FaultKind, FaultPlan, FaultStats};
pub use linked::BucketStore;
pub use shared::{RegionBackend, SharedDiskSubstrate};
pub use stats::IoStats;
pub use uring::uring_available;

/// Convenience alias used throughout the workspace.
pub type DiskResult<T> = Result<T, DiskError>;
