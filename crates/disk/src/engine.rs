//! The `D`-way parallel I/O engine behind the file backend.
//!
//! The EM-BSP cost model's central object is the *parallel I/O operation*:
//! one operation moves up to `D` blocks — at most one per drive —
//! simultaneously, at cost `G`. The [`IoEngine`] makes the file backend
//! honour that "simultaneously": each simulated drive gets a dedicated
//! worker thread that owns the drive's `File` exclusively, and a stripe is
//! executed by handing every `(track, buffer)` pair to its drive's worker
//! at once, then joining all replies before the operation returns.
//!
//! Design points (see DESIGN.md §3.2 for the full contract):
//!
//! * **Ownership** — a drive's `File` lives on its worker thread; the
//!   engine only holds the command channel. No file handle is ever shared,
//!   so per-drive positional I/O needs no locking.
//! * **Submission and join are separable** — `submit_read_stripe` /
//!   `submit_write_stripe` dispatch one command per listed drive and
//!   return a [`ReadTicket`] / [`WriteTicket`] immediately; `join` on the
//!   ticket blocks until every listed drive has replied. The synchronous
//!   `read_stripe`/`write_stripe` are submit-then-join, so at the
//!   [`DiskArray`](crate::DiskArray) level the one-op-per-stripe cost
//!   accounting and the deterministic, seed-stable I/O traces are
//!   identical whether or not a caller overlaps tickets with other work.
//!   Per-drive command channels are FIFO: two submissions touching the
//!   same drive execute in submission order even when their joins overlap.
//! * **Error propagation** — each command carries a reply channel. A
//!   failed transfer comes back as [`DiskError::WorkerIo`] tagged with the
//!   drive index; a worker whose thread has died (panic, channel torn
//!   down) surfaces as [`DiskError::WorkerLost`]. On a multi-drive stripe
//!   all replies are joined first and the lowest-indexed drive's error is
//!   returned, so error selection is deterministic. A deferred error is
//!   *sticky*: it stays queued in the ticket's reply channel until the
//!   ticket is joined, even across an intervening `sync_all`.
//! * **Shutdown** — dropping the engine closes every command channel;
//!   workers drain and exit, and the engine joins them. A worker that
//!   errored stays alive and keeps serving subsequent commands (the drive
//!   is poisoned only for the failed track, not for the array).

use crate::{DiskError, DiskResult};
use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use std::fs::File;
use std::io;
use std::thread::JoinHandle;

/// One command to a drive worker. Buffers are owned so commands can cross
/// the thread boundary without borrowing from the caller; the engine pays
/// one `B`-byte copy per block, which is noise next to the file I/O the
/// workers overlap.
enum Cmd {
    /// Read the full track at `track` into `buf` and send it back.
    Read { track: usize, buf: Vec<u8>, reply: Sender<DiskResult<Vec<u8>>> },
    /// Write `data` as the full track at `track`.
    Write { track: usize, data: Vec<u8>, reply: Sender<DiskResult<()>> },
    /// Flush the drive's file to stable storage.
    Sync { reply: Sender<DiskResult<()>> },
}

/// Worker-thread-per-disk I/O engine. See the module docs for the
/// ownership, join and shutdown contract.
pub(crate) struct IoEngine {
    /// Command channel of worker `d` (same index as the drive).
    txs: Vec<Sender<Cmd>>,
    /// Join handles, drained on drop.
    handles: Vec<JoinHandle<()>>,
}

/// Read a full track (`buf.len()` bytes) at `offset`, zero-filling any
/// part past EOF — never-written tracks read back as zeros, matching the
/// memory backend and the model's "formatted" disks.
pub(crate) fn read_full_track(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match read_at(file, &mut buf[filled..], offset + filled as u64) {
            Ok(0) => break, // EOF: the rest of the track was never written
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    buf[filled..].fill(0);
    Ok(())
}

#[cfg(unix)]
pub(crate) fn read_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<usize> {
    use std::os::unix::fs::FileExt;
    file.read_at(buf, offset)
}

#[cfg(unix)]
pub(crate) fn write_at(file: &File, data: &[u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(data, offset)
}

#[cfg(not(unix))]
pub(crate) fn read_at(_file: &File, _buf: &mut [u8], _offset: u64) -> io::Result<usize> {
    Err(io::Error::new(io::ErrorKind::Unsupported, "FileBackend requires a unix platform"))
}

#[cfg(not(unix))]
pub(crate) fn write_at(_file: &File, _data: &[u8], _offset: u64) -> io::Result<()> {
    Err(io::Error::new(io::ErrorKind::Unsupported, "FileBackend requires a unix platform"))
}

/// The worker loop: serve commands until the engine drops the channel.
fn drive_worker(disk: usize, file: File, block_bytes: usize, rx: Receiver<Cmd>) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Read { track, mut buf, reply } => {
                let offset = (track * block_bytes) as u64;
                let res = read_full_track(&file, &mut buf, offset)
                    .map(|()| buf)
                    .map_err(|source| DiskError::WorkerIo { disk, source });
                // A dropped reply receiver means the engine gave up on the
                // stripe (it is being torn down); nothing left to do.
                let _ = reply.send(res);
            }
            Cmd::Write { track, data, reply } => {
                let offset = (track * block_bytes) as u64;
                let res = write_at(&file, &data, offset)
                    .map_err(|source| DiskError::WorkerIo { disk, source });
                let _ = reply.send(res);
            }
            Cmd::Sync { reply } => {
                let res = file.sync_data().map_err(|source| DiskError::WorkerIo { disk, source });
                let _ = reply.send(res);
            }
        }
    }
}

impl IoEngine {
    /// Spawn one worker per file; worker `d` takes exclusive ownership of
    /// `files[d]`. The workers live for the engine's lifetime — one
    /// `build_disks()` spawns them once and every subsequent
    /// `run_on()`/`resume()` on that array reuses them. With `pin`, drive
    /// worker `d` is best-effort pinned to core `d mod ncpus`.
    pub(crate) fn spawn(files: Vec<File>, block_bytes: usize, pin: bool) -> Self {
        let mut txs = Vec::with_capacity(files.len());
        let mut handles = Vec::with_capacity(files.len());
        let ncpus = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
        for (disk, file) in files.into_iter().enumerate() {
            let (tx, rx) = unbounded::<Cmd>();
            let handle = std::thread::Builder::new()
                .name(format!("em-disk-d{disk}"))
                .spawn(move || {
                    if pin {
                        crate::pin_thread_to_core(disk % ncpus);
                    }
                    drive_worker(disk, file, block_bytes, rx)
                })
                .expect("spawn disk worker thread");
            txs.push(tx);
            handles.push(handle);
        }
        IoEngine { txs, handles }
    }

    /// Dispatch one read per listed drive and return a joinable ticket
    /// without waiting for any transfer to complete. A drive whose worker
    /// is already gone is recorded in the ticket as a poisoned slot; the
    /// [`DiskError::WorkerLost`] surfaces at join, keeping submission
    /// non-blocking and infallible.
    pub(crate) fn submit_read_stripe(
        &self,
        addrs: &[(usize, usize)],
        block_bytes: usize,
    ) -> ReadTicket {
        let mut slots = Vec::with_capacity(addrs.len());
        for &(disk, track) in addrs {
            let (reply_tx, reply_rx) = bounded::<DiskResult<Vec<u8>>>(1);
            let buf = vec![0u8; block_bytes];
            let sent = self
                .txs
                .get(disk)
                .is_some_and(|tx| tx.send(Cmd::Read { track, buf, reply: reply_tx }).is_ok());
            slots.push((disk, sent.then_some(reply_rx)));
        }
        ReadTicket::pending(slots)
    }

    /// Dispatch one write per listed drive and return a joinable ticket
    /// without waiting (same lost-worker contract as
    /// [`IoEngine::submit_read_stripe`]).
    pub(crate) fn submit_write_stripe(&self, writes: &[(usize, usize, &[u8])]) -> WriteTicket {
        let mut slots = Vec::with_capacity(writes.len());
        for &(disk, track, data) in writes {
            let (reply_tx, reply_rx) = bounded::<DiskResult<()>>(1);
            let sent = self.txs.get(disk).is_some_and(|tx| {
                tx.send(Cmd::Write { track, data: data.to_vec(), reply: reply_tx }).is_ok()
            });
            slots.push((disk, sent.then_some(reply_rx)));
        }
        WriteTicket::pending(slots)
    }

    /// Dispatch one read per listed drive, join all replies, and copy the
    /// results into the caller's buffers (request order).
    pub(crate) fn read_stripe(
        &self,
        addrs: &[(usize, usize)],
        bufs: &mut [&mut [u8]],
    ) -> DiskResult<()> {
        debug_assert_eq!(addrs.len(), bufs.len());
        let block_bytes = bufs.first().map_or(0, |b| b.len());
        let data = self.submit_read_stripe(addrs, block_bytes).join()?;
        for (buf, track) in bufs.iter_mut().zip(data) {
            buf.copy_from_slice(&track);
        }
        Ok(())
    }

    /// Dispatch one write per listed drive and join all replies.
    pub(crate) fn write_stripe(&self, writes: &[(usize, usize, &[u8])]) -> DiskResult<()> {
        self.submit_write_stripe(writes).join()
    }

    /// Flush every drive to stable storage (joined like a stripe).
    pub(crate) fn sync_all(&self) -> DiskResult<()> {
        let mut replies = Vec::with_capacity(self.txs.len());
        for (disk, tx) in self.txs.iter().enumerate() {
            let (reply_tx, reply_rx) = bounded::<DiskResult<()>>(1);
            tx.send(Cmd::Sync { reply: reply_tx }).map_err(|_| DiskError::WorkerLost { disk })?;
            replies.push((disk, reply_rx));
        }
        let mut first_err: Option<DiskError> = None;
        for (disk, rx) in replies {
            match rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => merge_err(&mut first_err, e),
                Err(_) => merge_err(&mut first_err, DiskError::WorkerLost { disk }),
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

/// Keep the error of the lowest-indexed drive: replies are joined in disk
/// order, so the first error seen wins.
fn merge_err(slot: &mut Option<DiskError>, e: DiskError) {
    if slot.is_none() {
        *slot = Some(e);
    }
}

/// Reply slots of an in-flight engine stripe: `(disk, receiver)`, where a
/// `None` receiver marks a drive whose worker was already gone at
/// submission (joined as [`DiskError::WorkerLost`]).
pub(crate) type PendingSlots<T> = Vec<(usize, Option<Receiver<DiskResult<T>>>)>;

enum ReadInner {
    /// The transfers already happened (synchronous backend): the blocks,
    /// or the error they died with.
    Ready(DiskResult<Vec<Vec<u8>>>),
    /// One reply channel per dispatched drive, in request order.
    Pending(PendingSlots<Vec<u8>>),
}

/// A joinable handle for one submitted stripe read.
///
/// Produced by [`crate::DiskBackend::submit_read_stripe`]; the backend may
/// have executed the transfers synchronously (the default, and the memory
/// backend) or have them in flight on per-drive worker threads (the file
/// backend in [`crate::IoMode::Parallel`]). Either way [`ReadTicket::join`]
/// returns the blocks in request order, or the deferred error of the
/// lowest-indexed failing drive — deterministically, exactly as the
/// synchronous path would have reported it. Dropping a ticket without
/// joining abandons the results but never blocks or panics.
pub struct ReadTicket {
    inner: ReadInner,
}

impl ReadTicket {
    /// Wrap an already-completed stripe read (synchronous backends).
    pub fn ready(result: DiskResult<Vec<Vec<u8>>>) -> Self {
        ReadTicket { inner: ReadInner::Ready(result) }
    }

    /// Wrap in-flight reply slots (engine backends). Any engine — worker
    /// threads or a kernel ring — shares this join path, so the
    /// lowest-drive-wins error selection and sticky deferred errors are
    /// identical across engines by construction.
    pub(crate) fn pending(slots: PendingSlots<Vec<u8>>) -> Self {
        ReadTicket { inner: ReadInner::Pending(slots) }
    }

    /// Wait for every dispatched transfer and return the track bytes in
    /// request order. All replies are joined before any error is
    /// reported, and the first (lowest-indexed) failure wins.
    pub fn join(self) -> DiskResult<Vec<Vec<u8>>> {
        match self.inner {
            ReadInner::Ready(result) => result,
            ReadInner::Pending(slots) => {
                let mut out = Vec::with_capacity(slots.len());
                let mut first_err: Option<DiskError> = None;
                for (disk, rx) in slots {
                    match rx.map(|rx| rx.recv()) {
                        Some(Ok(Ok(data))) => out.push(data),
                        Some(Ok(Err(e))) => merge_err(&mut first_err, e),
                        Some(Err(_)) | None => {
                            merge_err(&mut first_err, DiskError::WorkerLost { disk })
                        }
                    }
                }
                match first_err {
                    None => Ok(out),
                    Some(e) => Err(e),
                }
            }
        }
    }
}

enum WriteInner {
    /// The transfers already happened (synchronous backend).
    Ready(DiskResult<()>),
    /// One reply channel per dispatched drive, in request order.
    Pending(PendingSlots<()>),
}

/// A joinable handle for one submitted stripe write (see [`ReadTicket`]
/// for the completion and error contract).
pub struct WriteTicket {
    inner: WriteInner,
}

impl WriteTicket {
    /// Wrap an already-completed stripe write (synchronous backends).
    pub fn ready(result: DiskResult<()>) -> Self {
        WriteTicket { inner: WriteInner::Ready(result) }
    }

    /// Wrap in-flight reply slots (engine backends; see
    /// [`ReadTicket::pending`]).
    pub(crate) fn pending(slots: PendingSlots<()>) -> Self {
        WriteTicket { inner: WriteInner::Pending(slots) }
    }

    /// Wait for every dispatched transfer; the first (lowest-indexed)
    /// failure wins, deterministically.
    pub fn join(self) -> DiskResult<()> {
        match self.inner {
            WriteInner::Ready(result) => result,
            WriteInner::Pending(slots) => {
                let mut first_err: Option<DiskError> = None;
                for (disk, rx) in slots {
                    match rx.map(|rx| rx.recv()) {
                        Some(Ok(Ok(()))) => {}
                        Some(Ok(Err(e))) => merge_err(&mut first_err, e),
                        Some(Err(_)) | None => {
                            merge_err(&mut first_err, DiskError::WorkerLost { disk })
                        }
                    }
                }
                match first_err {
                    None => Ok(()),
                    Some(e) => Err(e),
                }
            }
        }
    }
}

impl Drop for IoEngine {
    fn drop(&mut self) {
        // Closing the command channels lets each worker drain and exit.
        self.txs.clear();
        for handle in self.handles.drain(..) {
            // A panicked worker already surfaced as WorkerLost on its last
            // command; don't double-panic during drop.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;

    fn tmp_files(name: &str, n: usize) -> (std::path::PathBuf, Vec<File>) {
        let dir = std::env::temp_dir().join(format!("em-engine-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let files = (0..n)
            .map(|i| {
                OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(dir.join(format!("disk-{i}.bin")))
                    .unwrap()
            })
            .collect();
        (dir, files)
    }

    #[test]
    fn stripe_round_trip_through_workers() {
        let (dir, files) = tmp_files("rt", 3);
        let engine = IoEngine::spawn(files, 16, false);
        engine.write_stripe(&[(0, 0, &[1u8; 16]), (1, 2, &[2u8; 16]), (2, 1, &[3u8; 16])]).unwrap();
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        let mut c = [0u8; 16];
        {
            let mut bufs: Vec<&mut [u8]> = vec![&mut a[..], &mut b[..], &mut c[..]];
            engine.read_stripe(&[(0, 0), (1, 2), (2, 1)], &mut bufs).unwrap();
        }
        assert_eq!(a, [1u8; 16]);
        assert_eq!(b, [2u8; 16]);
        assert_eq!(c, [3u8; 16]);
        engine.sync_all().unwrap();
        drop(engine); // joins workers
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unwritten_tracks_read_zero_through_workers() {
        let (dir, files) = tmp_files("zero", 2);
        let engine = IoEngine::spawn(files, 8, false);
        engine.write_stripe(&[(0, 3, &[9u8; 8])]).unwrap();
        let mut hole = [0xAAu8; 8];
        let mut never = [0xBBu8; 8];
        {
            let mut bufs: Vec<&mut [u8]> = vec![&mut hole[..], &mut never[..]];
            engine.read_stripe(&[(0, 1), (1, 7)], &mut bufs).unwrap();
        }
        assert_eq!(hole, [0u8; 8]);
        assert_eq!(never, [0u8; 8]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tickets_overlap_and_drain_in_submission_order() {
        let (dir, files) = tmp_files("overlap", 4);
        let engine = IoEngine::spawn(files, 16, false);
        // Several writes in flight at once, including two generations on
        // the same (disk, track) — per-drive FIFO must apply them in
        // submission order.
        let old: Vec<(usize, usize, &[u8])> = vec![(0, 0, &[1u8; 16]), (1, 0, &[1u8; 16])];
        let new: Vec<(usize, usize, &[u8])> = vec![(0, 0, &[2u8; 16]), (1, 0, &[2u8; 16])];
        let t1 = engine.submit_write_stripe(&old);
        let t2 = engine.submit_write_stripe(&new);
        let t3 = engine.submit_read_stripe(&[(0, 0), (1, 0)], 16);
        t1.join().unwrap();
        t2.join().unwrap();
        let data = t3.join().unwrap();
        assert_eq!(data, vec![vec![2u8; 16]; 2], "later submission must win on the same track");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Forces real worker-side write failures by handing the engine
    /// read-only file handles.
    fn read_only_engine(name: &str, n: usize) -> (std::path::PathBuf, IoEngine) {
        let dir = std::env::temp_dir().join(format!("em-engine-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let files: Vec<File> = (0..n)
            .map(|i| {
                let path = dir.join(format!("disk-{i}.bin"));
                std::fs::write(&path, []).unwrap();
                OpenOptions::new().read(true).open(path).unwrap()
            })
            .collect();
        (dir, IoEngine::spawn(files, 8, false))
    }

    #[test]
    fn poisoned_ticket_survives_sync_and_reports_at_join() {
        let (dir, engine) = read_only_engine("poison", 2);
        let ticket = engine.submit_write_stripe(&[(1, 0, &[7u8; 8])]);
        // The error is already waiting in the reply channel, but the drive
        // keeps serving: sync_all succeeds (sync_data on a read-only handle
        // is fine), and the poisoned ticket still reports afterwards.
        engine.sync_all().unwrap();
        match ticket.join() {
            Err(DiskError::WorkerIo { disk: 1, .. }) => {}
            other => panic!("expected WorkerIo on drive 1 after sync, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multi_drive_failure_reports_lowest_drive_deterministically() {
        for _ in 0..20 {
            let (dir, engine) = read_only_engine("lowest", 4);
            let writes: Vec<(usize, usize, &[u8])> =
                (1..4).map(|d| (d, 0, &[0u8; 8][..])).collect();
            let ticket = engine.submit_write_stripe(&writes);
            match ticket.join() {
                Err(DiskError::WorkerIo { disk: 1, .. }) => {}
                other => panic!("expected the lowest failing drive (1), got {other:?}"),
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn lost_worker_mid_pipeline_surfaces_at_join() {
        let (dir, files) = tmp_files("lost", 2);
        let mut engine = IoEngine::spawn(files, 8, false);
        // A ticket submitted while the engine was healthy...
        let alive = engine.submit_write_stripe(&[(0, 0, &[3u8; 8])]);
        // ...then the workers are torn down mid-pipeline (they drain their
        // queues before exiting, so `alive` still completes).
        engine.txs.clear();
        for handle in engine.handles.drain(..) {
            handle.join().unwrap();
        }
        alive.join().unwrap();
        // Anything submitted afterwards is poisoned per-drive and reports
        // the lowest lost drive at join, like any other stripe failure.
        let dead_write = engine.submit_write_stripe(&[(1, 0, &[4u8; 8])]);
        assert!(matches!(dead_write.join(), Err(DiskError::WorkerLost { disk: 1 })));
        let dead_read = engine.submit_read_stripe(&[(0, 0), (1, 0)], 8);
        assert!(matches!(dead_read.join(), Err(DiskError::WorkerLost { disk: 0 })));
        std::fs::remove_dir_all(&dir).ok();
    }
}
