//! The `D`-way parallel I/O engine behind the file backend.
//!
//! The EM-BSP cost model's central object is the *parallel I/O operation*:
//! one operation moves up to `D` blocks — at most one per drive —
//! simultaneously, at cost `G`. The [`IoEngine`] makes the file backend
//! honour that "simultaneously": each simulated drive gets a dedicated
//! worker thread that owns the drive's `File` exclusively, and a stripe is
//! executed by handing every `(track, buffer)` pair to its drive's worker
//! at once, then joining all replies before the operation returns.
//!
//! Design points (see DESIGN.md §3.2 for the full contract):
//!
//! * **Ownership** — a drive's `File` lives on its worker thread; the
//!   engine only holds the command channel. No file handle is ever shared,
//!   so per-drive positional I/O needs no locking.
//! * **Join per stripe** — `read_stripe`/`write_stripe` block until every
//!   listed drive has replied. At the [`DiskArray`](crate::DiskArray)
//!   level an operation is therefore still synchronous and atomic: the
//!   one-op-per-stripe cost accounting and the deterministic, seed-stable
//!   I/O traces are untouched; only the wall-clock of the `≤ D` track
//!   transfers overlaps.
//! * **Error propagation** — each command carries a reply channel. A
//!   failed transfer comes back as [`DiskError::WorkerIo`] tagged with the
//!   drive index; a worker whose thread has died (panic, channel torn
//!   down) surfaces as [`DiskError::WorkerLost`]. On a multi-drive stripe
//!   all replies are joined first and the lowest-indexed drive's error is
//!   returned, so error selection is deterministic.
//! * **Shutdown** — dropping the engine closes every command channel;
//!   workers drain and exit, and the engine joins them. A worker that
//!   errored stays alive and keeps serving subsequent commands (the drive
//!   is poisoned only for the failed track, not for the array).

use crate::{DiskError, DiskResult};
use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use std::fs::File;
use std::io;
use std::thread::JoinHandle;

/// One command to a drive worker. Buffers are owned so commands can cross
/// the thread boundary without borrowing from the caller; the engine pays
/// one `B`-byte copy per block, which is noise next to the file I/O the
/// workers overlap.
enum Cmd {
    /// Read the full track at `track` into `buf` and send it back.
    Read { track: usize, buf: Vec<u8>, reply: Sender<DiskResult<Vec<u8>>> },
    /// Write `data` as the full track at `track`.
    Write { track: usize, data: Vec<u8>, reply: Sender<DiskResult<()>> },
    /// Flush the drive's file to stable storage.
    Sync { reply: Sender<DiskResult<()>> },
}

/// Worker-thread-per-disk I/O engine. See the module docs for the
/// ownership, join and shutdown contract.
pub(crate) struct IoEngine {
    /// Command channel of worker `d` (same index as the drive).
    txs: Vec<Sender<Cmd>>,
    /// Join handles, drained on drop.
    handles: Vec<JoinHandle<()>>,
}

/// Read a full track (`buf.len()` bytes) at `offset`, zero-filling any
/// part past EOF — never-written tracks read back as zeros, matching the
/// memory backend and the model's "formatted" disks.
pub(crate) fn read_full_track(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match read_at(file, &mut buf[filled..], offset + filled as u64) {
            Ok(0) => break, // EOF: the rest of the track was never written
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    buf[filled..].fill(0);
    Ok(())
}

#[cfg(unix)]
pub(crate) fn read_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<usize> {
    use std::os::unix::fs::FileExt;
    file.read_at(buf, offset)
}

#[cfg(unix)]
pub(crate) fn write_at(file: &File, data: &[u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(data, offset)
}

#[cfg(not(unix))]
pub(crate) fn read_at(_file: &File, _buf: &mut [u8], _offset: u64) -> io::Result<usize> {
    Err(io::Error::new(io::ErrorKind::Unsupported, "FileBackend requires a unix platform"))
}

#[cfg(not(unix))]
pub(crate) fn write_at(_file: &File, _data: &[u8], _offset: u64) -> io::Result<()> {
    Err(io::Error::new(io::ErrorKind::Unsupported, "FileBackend requires a unix platform"))
}

/// The worker loop: serve commands until the engine drops the channel.
fn drive_worker(disk: usize, file: File, block_bytes: usize, rx: Receiver<Cmd>) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Read { track, mut buf, reply } => {
                let offset = (track * block_bytes) as u64;
                let res = read_full_track(&file, &mut buf, offset)
                    .map(|()| buf)
                    .map_err(|source| DiskError::WorkerIo { disk, source });
                // A dropped reply receiver means the engine gave up on the
                // stripe (it is being torn down); nothing left to do.
                let _ = reply.send(res);
            }
            Cmd::Write { track, data, reply } => {
                let offset = (track * block_bytes) as u64;
                let res = write_at(&file, &data, offset)
                    .map_err(|source| DiskError::WorkerIo { disk, source });
                let _ = reply.send(res);
            }
            Cmd::Sync { reply } => {
                let res = file.sync_data().map_err(|source| DiskError::WorkerIo { disk, source });
                let _ = reply.send(res);
            }
        }
    }
}

impl IoEngine {
    /// Spawn one worker per file; worker `d` takes exclusive ownership of
    /// `files[d]`.
    pub(crate) fn spawn(files: Vec<File>, block_bytes: usize) -> Self {
        let mut txs = Vec::with_capacity(files.len());
        let mut handles = Vec::with_capacity(files.len());
        for (disk, file) in files.into_iter().enumerate() {
            let (tx, rx) = unbounded::<Cmd>();
            let handle = std::thread::Builder::new()
                .name(format!("em-disk-{disk}"))
                .spawn(move || drive_worker(disk, file, block_bytes, rx))
                .expect("spawn disk worker thread");
            txs.push(tx);
            handles.push(handle);
        }
        IoEngine { txs, handles }
    }

    /// Dispatch one read per listed drive, join all replies, and copy the
    /// results into the caller's buffers (request order).
    pub(crate) fn read_stripe(
        &self,
        addrs: &[(usize, usize)],
        bufs: &mut [&mut [u8]],
    ) -> DiskResult<()> {
        debug_assert_eq!(addrs.len(), bufs.len());
        let mut replies = Vec::with_capacity(addrs.len());
        for &(disk, track) in addrs {
            let (reply_tx, reply_rx) = bounded::<DiskResult<Vec<u8>>>(1);
            let buf = vec![0u8; bufs[replies.len()].len()];
            self.txs[disk]
                .send(Cmd::Read { track, buf, reply: reply_tx })
                .map_err(|_| DiskError::WorkerLost { disk })?;
            replies.push((disk, reply_rx));
        }
        // Join every in-flight transfer before touching any result, then
        // report the lowest-indexed failure deterministically.
        let mut first_err: Option<DiskError> = None;
        for (i, (disk, rx)) in replies.into_iter().enumerate() {
            match rx.recv() {
                Ok(Ok(data)) => bufs[i].copy_from_slice(&data),
                Ok(Err(e)) => merge_err(&mut first_err, e),
                Err(_) => merge_err(&mut first_err, DiskError::WorkerLost { disk }),
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Dispatch one write per listed drive and join all replies.
    pub(crate) fn write_stripe(&self, writes: &[(usize, usize, &[u8])]) -> DiskResult<()> {
        let mut replies = Vec::with_capacity(writes.len());
        for &(disk, track, data) in writes {
            let (reply_tx, reply_rx) = bounded::<DiskResult<()>>(1);
            self.txs[disk]
                .send(Cmd::Write { track, data: data.to_vec(), reply: reply_tx })
                .map_err(|_| DiskError::WorkerLost { disk })?;
            replies.push((disk, reply_rx));
        }
        let mut first_err: Option<DiskError> = None;
        for (disk, rx) in replies {
            match rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => merge_err(&mut first_err, e),
                Err(_) => merge_err(&mut first_err, DiskError::WorkerLost { disk }),
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Flush every drive to stable storage (joined like a stripe).
    pub(crate) fn sync_all(&self) -> DiskResult<()> {
        let mut replies = Vec::with_capacity(self.txs.len());
        for (disk, tx) in self.txs.iter().enumerate() {
            let (reply_tx, reply_rx) = bounded::<DiskResult<()>>(1);
            tx.send(Cmd::Sync { reply: reply_tx }).map_err(|_| DiskError::WorkerLost { disk })?;
            replies.push((disk, reply_rx));
        }
        let mut first_err: Option<DiskError> = None;
        for (disk, rx) in replies {
            match rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => merge_err(&mut first_err, e),
                Err(_) => merge_err(&mut first_err, DiskError::WorkerLost { disk }),
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

/// Keep the error of the lowest-indexed drive: replies are joined in disk
/// order, so the first error seen wins.
fn merge_err(slot: &mut Option<DiskError>, e: DiskError) {
    if slot.is_none() {
        *slot = Some(e);
    }
}

impl Drop for IoEngine {
    fn drop(&mut self) {
        // Closing the command channels lets each worker drain and exit.
        self.txs.clear();
        for handle in self.handles.drain(..) {
            // A panicked worker already surfaced as WorkerLost on its last
            // command; don't double-panic during drop.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;

    fn tmp_files(name: &str, n: usize) -> (std::path::PathBuf, Vec<File>) {
        let dir = std::env::temp_dir().join(format!("em-engine-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let files = (0..n)
            .map(|i| {
                OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(dir.join(format!("disk-{i}.bin")))
                    .unwrap()
            })
            .collect();
        (dir, files)
    }

    #[test]
    fn stripe_round_trip_through_workers() {
        let (dir, files) = tmp_files("rt", 3);
        let engine = IoEngine::spawn(files, 16);
        engine.write_stripe(&[(0, 0, &[1u8; 16]), (1, 2, &[2u8; 16]), (2, 1, &[3u8; 16])]).unwrap();
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        let mut c = [0u8; 16];
        {
            let mut bufs: Vec<&mut [u8]> = vec![&mut a[..], &mut b[..], &mut c[..]];
            engine.read_stripe(&[(0, 0), (1, 2), (2, 1)], &mut bufs).unwrap();
        }
        assert_eq!(a, [1u8; 16]);
        assert_eq!(b, [2u8; 16]);
        assert_eq!(c, [3u8; 16]);
        engine.sync_all().unwrap();
        drop(engine); // joins workers
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unwritten_tracks_read_zero_through_workers() {
        let (dir, files) = tmp_files("zero", 2);
        let engine = IoEngine::spawn(files, 8);
        engine.write_stripe(&[(0, 3, &[9u8; 8])]).unwrap();
        let mut hole = [0xAAu8; 8];
        let mut never = [0xBBu8; 8];
        {
            let mut bufs: Vec<&mut [u8]> = vec![&mut hole[..], &mut never[..]];
            engine.read_stripe(&[(0, 1), (1, 7)], &mut bufs).unwrap();
        }
        assert_eq!(hole, [0u8; 8]);
        assert_eq!(never, [0u8; 8]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
