//! Storage backends: where track bytes actually live.
//!
//! The [`DiskArray`](crate::DiskArray) front-end is backend-agnostic. The
//! memory backend gives deterministic, allocation-cheap simulation for unit
//! tests and I/O-op counting experiments; the file backend performs real
//! positional file I/O (one file per simulated drive) and, in
//! [`IoMode::Parallel`](crate::IoMode), overlaps the `≤ D` track transfers
//! of a stripe across one dedicated worker thread per drive — so the
//! wall-clock behaviour of the blocked access patterns can show the
//! model's `D`-way parallelism, not just count it.

use crate::block::{crc32, CRC_BYTES};
use crate::engine::{read_full_track, write_at, IoEngine};
use crate::{DiskError, DiskResult, EngineKind, IoMode, ReadTicket, RetryPolicy, WriteTicket};
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};

/// Raw track storage for an array of `D` drives.
///
/// Tracks that have never been written read back as zeros — the model's
/// disks are "formatted" at creation, matching the paper's preallocated
/// context and message regions.
///
/// The stripe methods have serial default implementations, so a backend
/// only needs `read_track`/`write_track` to be correct; backends with real
/// parallelism (the file backend's worker engine) override them to overlap
/// the per-drive transfers. Whatever the overlap, a stripe call returns
/// only after **every** listed track has completed — callers never observe
/// in-flight I/O.
pub trait DiskBackend: Send {
    /// Number of drives this backend was created with.
    fn num_disks(&self) -> usize;

    /// Read one track into `buf` (whose length is the block size `B`).
    fn read_track(&mut self, disk: usize, track: usize, buf: &mut [u8]) -> DiskResult<()>;

    /// Write one track from `data` (whose length is the block size `B`).
    fn write_track(&mut self, disk: usize, track: usize, data: &[u8]) -> DiskResult<()>;

    /// Read one track from each listed drive into the matching buffer.
    ///
    /// `addrs[i]` is `(disk, track)` and fills `bufs[i]`. The caller (the
    /// array front-end) has already validated the one-track-per-drive
    /// stripe rule; backends may execute the transfers in any order or in
    /// parallel, but must complete all of them before returning.
    fn read_stripe(&mut self, addrs: &[(usize, usize)], bufs: &mut [&mut [u8]]) -> DiskResult<()> {
        for (&(disk, track), buf) in addrs.iter().zip(bufs.iter_mut()) {
            self.read_track(disk, track, buf)?;
        }
        Ok(())
    }

    /// Write one track on each listed drive (same contract as
    /// [`DiskBackend::read_stripe`]).
    fn write_stripe(&mut self, writes: &[(usize, usize, &[u8])]) -> DiskResult<()> {
        for &(disk, track, data) in writes {
            self.write_track(disk, track, data)?;
        }
        Ok(())
    }

    /// Submit a stripe read and return a joinable ticket.
    ///
    /// The default implementation executes [`DiskBackend::read_stripe`]
    /// synchronously and wraps the outcome in an already-completed ticket,
    /// so every backend supports the submission API; backends with real
    /// asynchrony (the file backend's worker engine) override this to
    /// return with the transfers still in flight. Submission itself never
    /// fails — validation happens in the array front-end before this is
    /// called, and I/O errors are deferred to [`ReadTicket::join`].
    fn submit_read_stripe(&mut self, addrs: &[(usize, usize)], block_bytes: usize) -> ReadTicket {
        let mut data: Vec<Vec<u8>> = addrs.iter().map(|_| vec![0u8; block_bytes]).collect();
        let res = {
            let mut bufs: Vec<&mut [u8]> = data.iter_mut().map(Vec::as_mut_slice).collect();
            self.read_stripe(addrs, &mut bufs)
        };
        ReadTicket::ready(res.map(|()| data))
    }

    /// Submit a stripe write and return a joinable ticket (same contract
    /// as [`DiskBackend::submit_read_stripe`]).
    fn submit_write_stripe(&mut self, writes: &[(usize, usize, &[u8])]) -> WriteTicket {
        WriteTicket::ready(self.write_stripe(writes))
    }

    /// Highest track index written so far on `disk`, plus one (0 if never
    /// written). Used for disk-space accounting.
    fn tracks_used(&self, disk: usize) -> usize;

    /// Flush any buffered state to stable storage (no-op for memory).
    fn sync(&mut self) -> DiskResult<()> {
        Ok(())
    }

    /// Drain the count of track transfers re-issued after transient
    /// failures since the last call. Only [`RetryingBackend`] produces a
    /// nonzero count; decorator backends forward to their inner backend so
    /// the count survives any stacking order.
    fn take_retried_blocks(&mut self) -> u64 {
        0
    }

    /// Drain the count of block reads served from a cache layer since the
    /// last call (same drain-and-forward contract as
    /// [`DiskBackend::take_retried_blocks`]; only
    /// [`crate::BlockCacheBackend`] produces a nonzero count).
    fn take_cache_hit_blocks(&mut self) -> u64 {
        0
    }

    /// Drain the count of block writes absorbed (buffered until a flush)
    /// by a cache layer since the last call.
    fn take_cache_absorbed_writes(&mut self) -> u64 {
        0
    }

    /// Write every dirty cached block through to the layer below. A no-op
    /// for backends without a cache. Called by the array inside `sync()`
    /// and at recovery-epoch boundaries, so durability barriers and the
    /// pre-image journal always observe fully flushed storage.
    fn flush_cache(&mut self) -> DiskResult<()> {
        Ok(())
    }

    /// Per-drive counts of track transfers seen by a fault-injection layer
    /// since it was constructed (or since the counters were last
    /// restored). `None` when no layer in the stack injects faults.
    /// Decorators forward, so the counters survive any stacking order.
    ///
    /// A [`crate::FaultPlan`] keys its schedule by these counters, so a
    /// resumed run must persist and restore them — otherwise the new
    /// process would replay the schedule from operation 0 and fire
    /// already-consumed faults again.
    fn fault_op_counts(&self) -> Option<Vec<u64>> {
        None
    }

    /// Restore counters exported by [`DiskBackend::fault_op_counts`] in a
    /// previous process, so the resumed run observes the same *remaining*
    /// fault schedule as an uninterrupted one. A no-op without a
    /// fault-injection layer.
    fn restore_fault_op_counts(&mut self, counts: &[u64]) {
        let _ = counts;
    }
}

/// Boxed backends forward every method (including the overridable stripe
/// and submission fast paths) to the inner backend, so decorator layers can
/// compose over `Box<dyn DiskBackend>` without losing overrides.
impl<B: DiskBackend + ?Sized> DiskBackend for Box<B> {
    fn num_disks(&self) -> usize {
        (**self).num_disks()
    }
    fn read_track(&mut self, disk: usize, track: usize, buf: &mut [u8]) -> DiskResult<()> {
        (**self).read_track(disk, track, buf)
    }
    fn write_track(&mut self, disk: usize, track: usize, data: &[u8]) -> DiskResult<()> {
        (**self).write_track(disk, track, data)
    }
    fn read_stripe(&mut self, addrs: &[(usize, usize)], bufs: &mut [&mut [u8]]) -> DiskResult<()> {
        (**self).read_stripe(addrs, bufs)
    }
    fn write_stripe(&mut self, writes: &[(usize, usize, &[u8])]) -> DiskResult<()> {
        (**self).write_stripe(writes)
    }
    fn submit_read_stripe(&mut self, addrs: &[(usize, usize)], block_bytes: usize) -> ReadTicket {
        (**self).submit_read_stripe(addrs, block_bytes)
    }
    fn submit_write_stripe(&mut self, writes: &[(usize, usize, &[u8])]) -> WriteTicket {
        (**self).submit_write_stripe(writes)
    }
    fn tracks_used(&self, disk: usize) -> usize {
        (**self).tracks_used(disk)
    }
    fn sync(&mut self) -> DiskResult<()> {
        (**self).sync()
    }
    fn take_retried_blocks(&mut self) -> u64 {
        (**self).take_retried_blocks()
    }
    fn take_cache_hit_blocks(&mut self) -> u64 {
        (**self).take_cache_hit_blocks()
    }
    fn take_cache_absorbed_writes(&mut self) -> u64 {
        (**self).take_cache_absorbed_writes()
    }
    fn flush_cache(&mut self) -> DiskResult<()> {
        (**self).flush_cache()
    }
    fn fault_op_counts(&self) -> Option<Vec<u64>> {
        (**self).fault_op_counts()
    }
    fn restore_fault_op_counts(&mut self, counts: &[u64]) {
        (**self).restore_fault_op_counts(counts)
    }
}

/// In-memory backend: tracks are boxed byte buffers.
///
/// Always serial and deterministic regardless of the configured
/// [`IoMode`] — a memcpy cannot be usefully overlapped, and the memory
/// backend is the reference for seeded-trace tests.
pub struct MemoryBackend {
    disks: Vec<Vec<Option<Box<[u8]>>>>,
}

impl MemoryBackend {
    /// Create a memory backend for `num_disks` drives.
    pub fn new(num_disks: usize) -> Self {
        MemoryBackend { disks: vec![Vec::new(); num_disks] }
    }

    /// Total bytes currently resident across all drives (for tests).
    pub fn resident_bytes(&self) -> usize {
        self.disks.iter().flatten().filter_map(|t| t.as_ref().map(|b| b.len())).sum()
    }
}

impl DiskBackend for MemoryBackend {
    fn num_disks(&self) -> usize {
        self.disks.len()
    }

    fn read_track(&mut self, disk: usize, track: usize, buf: &mut [u8]) -> DiskResult<()> {
        match self.disks[disk].get(track).and_then(Option::as_ref) {
            Some(data) => {
                debug_assert_eq!(data.len(), buf.len());
                buf.copy_from_slice(data);
            }
            None => buf.fill(0),
        }
        Ok(())
    }

    fn write_track(&mut self, disk: usize, track: usize, data: &[u8]) -> DiskResult<()> {
        let tracks = &mut self.disks[disk];
        if tracks.len() <= track {
            tracks.resize_with(track + 1, || None);
        }
        tracks[track] = Some(data.to_vec().into_boxed_slice());
        Ok(())
    }

    fn tracks_used(&self, disk: usize) -> usize {
        self.disks[disk].len()
    }
}

/// A [`DiskBackend`] decorator that frames every track with a CRC32
/// checksum, verified on read.
///
/// The stored *frame* is `payload ‖ crc32(payload)` — [`CRC_BYTES`] bytes
/// longer than the logical block, so the inner backend must be created
/// with the frame size as its track size. The checksum lives outside the
/// logical block: callers, block arithmetic and counted [`crate::IoStats`]
/// all keep seeing `B`-byte blocks.
///
/// An all-zero frame is a never-written ("formatted") track and reads back
/// as a zero block without verification, preserving the substrate's
/// zeros-before-first-write contract. Any other frame whose checksum does
/// not match fails with [`DiskError::Corrupt`].
pub struct ChecksumBackend<B: DiskBackend> {
    inner: B,
    payload_bytes: usize,
    frame: Vec<u8>,
}

impl<B: DiskBackend> ChecksumBackend<B> {
    /// Wrap `inner` (whose track size must be `payload_bytes + CRC_BYTES`).
    pub fn new(inner: B, payload_bytes: usize) -> Self {
        let frame = vec![0u8; payload_bytes + CRC_BYTES];
        ChecksumBackend { inner, payload_bytes, frame }
    }
}

impl<B: DiskBackend> DiskBackend for ChecksumBackend<B> {
    fn num_disks(&self) -> usize {
        self.inner.num_disks()
    }

    fn read_track(&mut self, disk: usize, track: usize, buf: &mut [u8]) -> DiskResult<()> {
        debug_assert_eq!(buf.len(), self.payload_bytes);
        let mut frame = std::mem::take(&mut self.frame);
        let res = self.inner.read_track(disk, track, &mut frame);
        let out = res.and_then(|()| {
            let (payload, stored) = frame.split_at(self.payload_bytes);
            if frame.iter().all(|&b| b == 0) {
                buf.fill(0);
                return Ok(());
            }
            let stored = u32::from_le_bytes(stored.try_into().expect("CRC_BYTES == 4"));
            if crc32(payload) != stored {
                return Err(DiskError::Corrupt { disk, track });
            }
            buf.copy_from_slice(payload);
            Ok(())
        });
        self.frame = frame;
        out
    }

    fn write_track(&mut self, disk: usize, track: usize, data: &[u8]) -> DiskResult<()> {
        debug_assert_eq!(data.len(), self.payload_bytes);
        let mut frame = std::mem::take(&mut self.frame);
        frame[..self.payload_bytes].copy_from_slice(data);
        // A zero payload stores as the all-zero ("formatted") frame, so a
        // recovery rollback that re-zeroes a freshly allocated track leaves
        // the drive byte-identical to one that never wrote it.
        let tail =
            if data.iter().all(|&b| b == 0) { [0u8; CRC_BYTES] } else { crc32(data).to_le_bytes() };
        frame[self.payload_bytes..].copy_from_slice(&tail);
        let res = self.inner.write_track(disk, track, &frame);
        self.frame = frame;
        res
    }

    fn tracks_used(&self, disk: usize) -> usize {
        self.inner.tracks_used(disk)
    }

    fn sync(&mut self) -> DiskResult<()> {
        self.inner.sync()
    }

    fn take_retried_blocks(&mut self) -> u64 {
        self.inner.take_retried_blocks()
    }

    fn take_cache_hit_blocks(&mut self) -> u64 {
        self.inner.take_cache_hit_blocks()
    }

    fn take_cache_absorbed_writes(&mut self) -> u64 {
        self.inner.take_cache_absorbed_writes()
    }

    fn flush_cache(&mut self) -> DiskResult<()> {
        self.inner.flush_cache()
    }

    fn fault_op_counts(&self) -> Option<Vec<u64>> {
        self.inner.fault_op_counts()
    }

    fn restore_fault_op_counts(&mut self, counts: &[u64]) {
        self.inner.restore_fault_op_counts(counts)
    }
}

/// A [`DiskBackend`] decorator that re-issues transiently failing track
/// transfers under a bounded, deterministic [`RetryPolicy`].
///
/// Sits at the top of the backend stack (directly under the array
/// front-end) so a retried read passes checksum verification again and a
/// retried write re-frames the block. Per-track retries are tallied and
/// drained by the array into
/// [`IoStats::retried_blocks`](crate::IoStats::retried_blocks); they are
/// never counted as parallel I/O operations.
pub struct RetryingBackend<B: DiskBackend> {
    inner: B,
    policy: RetryPolicy,
    retried: u64,
}

impl<B: DiskBackend> RetryingBackend<B> {
    /// Wrap `inner` with `policy`.
    pub fn new(inner: B, policy: RetryPolicy) -> Self {
        RetryingBackend { inner, policy, retried: 0 }
    }

    fn with_retries(
        policy: &RetryPolicy,
        retried: &mut u64,
        mut op: impl FnMut() -> DiskResult<()>,
    ) -> DiskResult<()> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() && attempt + 1 < policy.max_attempts => {
                    attempt += 1;
                    *retried += 1;
                    let delay = policy.delay_before(attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl<B: DiskBackend> DiskBackend for RetryingBackend<B> {
    fn num_disks(&self) -> usize {
        self.inner.num_disks()
    }

    fn read_track(&mut self, disk: usize, track: usize, buf: &mut [u8]) -> DiskResult<()> {
        let inner = &mut self.inner;
        Self::with_retries(&self.policy, &mut self.retried, || inner.read_track(disk, track, buf))
    }

    fn write_track(&mut self, disk: usize, track: usize, data: &[u8]) -> DiskResult<()> {
        let inner = &mut self.inner;
        Self::with_retries(&self.policy, &mut self.retried, || inner.write_track(disk, track, data))
    }

    fn tracks_used(&self, disk: usize) -> usize {
        self.inner.tracks_used(disk)
    }

    fn sync(&mut self) -> DiskResult<()> {
        self.inner.sync()
    }

    fn take_retried_blocks(&mut self) -> u64 {
        std::mem::take(&mut self.retried) + self.inner.take_retried_blocks()
    }

    fn take_cache_hit_blocks(&mut self) -> u64 {
        self.inner.take_cache_hit_blocks()
    }

    fn take_cache_absorbed_writes(&mut self) -> u64 {
        self.inner.take_cache_absorbed_writes()
    }

    fn flush_cache(&mut self) -> DiskResult<()> {
        self.inner.flush_cache()
    }

    fn fault_op_counts(&self) -> Option<Vec<u64>> {
        self.inner.fault_op_counts()
    }

    fn restore_fault_op_counts(&mut self, counts: &[u64]) {
        self.inner.restore_fault_op_counts(counts)
    }
}

/// Where a file backend's track transfers execute.
enum FileIo {
    /// Positional I/O on the calling thread, one drive after another.
    Serial(Vec<File>),
    /// One worker thread per drive; stripes are dispatched to all listed
    /// drives at once and joined before the operation returns.
    Parallel(IoEngine),
    /// Kernel-side submission queues (`io_uring`); one ring shared by all
    /// drives, completions reaped by a single reaper thread.
    #[cfg(all(target_os = "linux", feature = "io-uring"))]
    Uring(crate::uring::UringEngine),
}

impl FileIo {
    /// Pick the execution strategy for `files` from the configured mode,
    /// engine preference and pinning flag. [`EngineKind::Uring`] is a
    /// *preference*: when the `io-uring` feature is off, the kernel lacks
    /// the syscalls, or ring setup fails at runtime, the threaded engine is
    /// used instead — requesting it is always safe and never changes
    /// behaviour, only wall clock.
    fn spawn(
        files: Vec<File>,
        block_bytes: usize,
        mode: IoMode,
        engine: EngineKind,
        pin: bool,
    ) -> Self {
        if files.len() <= 1 || mode == IoMode::Serial {
            return FileIo::Serial(files);
        }
        #[cfg(all(target_os = "linux", feature = "io-uring"))]
        let files = if engine == EngineKind::Uring {
            match crate::uring::UringEngine::spawn(files, block_bytes, pin) {
                Ok(eng) => return FileIo::Uring(eng),
                // Ring setup failed (old kernel, seccomp, rlimit): the
                // files come back untouched and the threaded engine takes
                // over.
                Err(files) => files,
            }
        } else {
            files
        };
        let _ = engine;
        FileIo::Parallel(IoEngine::spawn(files, block_bytes, pin))
    }
}

/// File-backed backend: one file per drive, positional I/O at
/// `track * block_bytes` offsets.
///
/// In [`IoMode::Parallel`] (the default of [`crate::DiskConfig::new`]) the
/// drive files are owned by an `IoEngine` worker per drive and each
/// stripe's transfers overlap; in [`IoMode::Serial`] the transfers run on
/// the calling thread in drive order. Both modes produce identical bytes,
/// identical [`crate::IoStats`] and identical seeded I/O traces — the mode
/// only changes who performs the file I/O and when, never what is
/// transferred.
pub struct FileBackend {
    io: FileIo,
    paths: Vec<PathBuf>,
    block_bytes: usize,
    tracks_used: Vec<usize>,
}

impl FileBackend {
    /// Create (or truncate) `num_disks` drive files named `disk-<i>.bin`
    /// inside `dir`, with the parallel worker engine enabled.
    pub fn create<P: AsRef<Path>>(
        dir: P,
        num_disks: usize,
        block_bytes: usize,
    ) -> DiskResult<Self> {
        Self::create_with_mode(dir, num_disks, block_bytes, IoMode::Parallel)
    }

    /// Create (or truncate) the drive files with an explicit I/O mode.
    ///
    /// A single-drive array has nothing to overlap, so it always uses the
    /// serial path regardless of `mode`.
    pub fn create_with_mode<P: AsRef<Path>>(
        dir: P,
        num_disks: usize,
        block_bytes: usize,
        mode: IoMode,
    ) -> DiskResult<Self> {
        Self::create_with_opts(dir, num_disks, block_bytes, mode, EngineKind::Threaded, false)
    }

    /// [`FileBackend::create_with_mode`] with an explicit engine preference
    /// and worker pinning flag (normally sourced from
    /// [`crate::DiskConfig::engine`] / [`crate::DiskConfig::pin_workers`]).
    pub fn create_with_opts<P: AsRef<Path>>(
        dir: P,
        num_disks: usize,
        block_bytes: usize,
        mode: IoMode,
        engine: EngineKind,
        pin_workers: bool,
    ) -> DiskResult<Self> {
        std::fs::create_dir_all(dir.as_ref())?;
        let mut files = Vec::with_capacity(num_disks);
        let mut paths = Vec::with_capacity(num_disks);
        for i in 0..num_disks {
            let path = dir.as_ref().join(format!("disk-{i}.bin"));
            let file = match OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)
            {
                Ok(f) => f,
                Err(e) => {
                    // Don't leak a partial array: remove the drive files
                    // already created before this one failed.
                    drop(files);
                    for p in &paths {
                        let _ = std::fs::remove_file(p);
                    }
                    return Err(e.into());
                }
            };
            files.push(file);
            paths.push(path);
        }
        let io = FileIo::spawn(files, block_bytes, mode, engine, pin_workers);
        Ok(FileBackend { io, paths, block_bytes, tracks_used: vec![0; num_disks] })
    }

    /// Reopen `num_disks` existing drive files inside `dir` **without
    /// truncating them**, with the parallel worker engine enabled — the
    /// reattachment half of crash recovery: a resumed process opens the
    /// drive files a killed one left behind.
    pub fn open<P: AsRef<Path>>(dir: P, num_disks: usize, block_bytes: usize) -> DiskResult<Self> {
        Self::open_with_mode(dir, num_disks, block_bytes, IoMode::Parallel)
    }

    /// Reopen existing drive files with an explicit I/O mode. Every
    /// `disk-<i>.bin` must already exist (a missing drive file surfaces as
    /// the underlying `NotFound` I/O error); `tracks_used` is
    /// reconstructed from each file's length.
    pub fn open_with_mode<P: AsRef<Path>>(
        dir: P,
        num_disks: usize,
        block_bytes: usize,
        mode: IoMode,
    ) -> DiskResult<Self> {
        Self::open_with_opts(dir, num_disks, block_bytes, mode, EngineKind::Threaded, false)
    }

    /// [`FileBackend::open_with_mode`] with an explicit engine preference
    /// and worker pinning flag.
    pub fn open_with_opts<P: AsRef<Path>>(
        dir: P,
        num_disks: usize,
        block_bytes: usize,
        mode: IoMode,
        engine: EngineKind,
        pin_workers: bool,
    ) -> DiskResult<Self> {
        let mut files = Vec::with_capacity(num_disks);
        let mut paths = Vec::with_capacity(num_disks);
        let mut tracks_used = Vec::with_capacity(num_disks);
        for i in 0..num_disks {
            let path = dir.as_ref().join(format!("disk-{i}.bin"));
            let file = OpenOptions::new().read(true).write(true).open(&path)?;
            let len = file.metadata()?.len() as usize;
            tracks_used.push(len.div_ceil(block_bytes));
            files.push(file);
            paths.push(path);
        }
        let io = FileIo::spawn(files, block_bytes, mode, engine, pin_workers);
        Ok(FileBackend { io, paths, block_bytes, tracks_used })
    }

    /// Paths of the backing files (for inspection in examples/tests).
    pub fn paths(&self) -> &[PathBuf] {
        &self.paths
    }

    /// True when stripes overlap across drives (worker threads or a
    /// kernel ring) instead of running serially on the calling thread.
    pub fn is_parallel(&self) -> bool {
        !matches!(self.io, FileIo::Serial(_))
    }

    /// The engine actually executing stripes, after runtime fallback:
    /// [`EngineKind::Uring`] only when a ring was successfully set up;
    /// [`EngineKind::Threaded`] for both the worker engine and the
    /// single-drive/serial path.
    pub fn active_engine(&self) -> EngineKind {
        match &self.io {
            #[cfg(all(target_os = "linux", feature = "io-uring"))]
            FileIo::Uring(_) => EngineKind::Uring,
            _ => EngineKind::Threaded,
        }
    }

    fn note_write(&mut self, disk: usize, track: usize) {
        self.tracks_used[disk] = self.tracks_used[disk].max(track + 1);
    }
}

impl DiskBackend for FileBackend {
    fn num_disks(&self) -> usize {
        self.paths.len()
    }

    fn read_track(&mut self, disk: usize, track: usize, buf: &mut [u8]) -> DiskResult<()> {
        let offset = (track * self.block_bytes) as u64;
        match &self.io {
            FileIo::Serial(files) => Ok(read_full_track(&files[disk], buf, offset)?),
            FileIo::Parallel(engine) => {
                let mut bufs = [buf];
                engine.read_stripe(&[(disk, track)], &mut bufs)
            }
            #[cfg(all(target_os = "linux", feature = "io-uring"))]
            FileIo::Uring(engine) => {
                let mut bufs = [buf];
                engine.read_stripe(&[(disk, track)], &mut bufs)
            }
        }
    }

    fn write_track(&mut self, disk: usize, track: usize, data: &[u8]) -> DiskResult<()> {
        let offset = (track * self.block_bytes) as u64;
        match &self.io {
            FileIo::Serial(files) => write_at(&files[disk], data, offset)?,
            FileIo::Parallel(engine) => engine.write_stripe(&[(disk, track, data)])?,
            #[cfg(all(target_os = "linux", feature = "io-uring"))]
            FileIo::Uring(engine) => engine.write_stripe(&[(disk, track, data)])?,
        }
        self.note_write(disk, track);
        Ok(())
    }

    fn read_stripe(&mut self, addrs: &[(usize, usize)], bufs: &mut [&mut [u8]]) -> DiskResult<()> {
        match &self.io {
            FileIo::Serial(files) => {
                for (&(disk, track), buf) in addrs.iter().zip(bufs.iter_mut()) {
                    let offset = (track * self.block_bytes) as u64;
                    read_full_track(&files[disk], buf, offset)?;
                }
                Ok(())
            }
            FileIo::Parallel(engine) => engine.read_stripe(addrs, bufs),
            #[cfg(all(target_os = "linux", feature = "io-uring"))]
            FileIo::Uring(engine) => engine.read_stripe(addrs, bufs),
        }
    }

    fn write_stripe(&mut self, writes: &[(usize, usize, &[u8])]) -> DiskResult<()> {
        match &self.io {
            FileIo::Serial(files) => {
                for &(disk, track, data) in writes {
                    let offset = (track * self.block_bytes) as u64;
                    write_at(&files[disk], data, offset)?;
                }
            }
            FileIo::Parallel(engine) => engine.write_stripe(writes)?,
            #[cfg(all(target_os = "linux", feature = "io-uring"))]
            FileIo::Uring(engine) => engine.write_stripe(writes)?,
        }
        for &(disk, track, _) in writes {
            self.note_write(disk, track);
        }
        Ok(())
    }

    fn submit_read_stripe(&mut self, addrs: &[(usize, usize)], block_bytes: usize) -> ReadTicket {
        match &self.io {
            FileIo::Parallel(engine) => engine.submit_read_stripe(addrs, block_bytes),
            #[cfg(all(target_os = "linux", feature = "io-uring"))]
            FileIo::Uring(engine) => engine.submit_read_stripe(addrs, block_bytes),
            FileIo::Serial(_) => {
                let mut data: Vec<Vec<u8>> = addrs.iter().map(|_| vec![0u8; block_bytes]).collect();
                let res = {
                    let mut bufs: Vec<&mut [u8]> = data.iter_mut().map(Vec::as_mut_slice).collect();
                    self.read_stripe(addrs, &mut bufs)
                };
                ReadTicket::ready(res.map(|()| data))
            }
        }
    }

    fn submit_write_stripe(&mut self, writes: &[(usize, usize, &[u8])]) -> WriteTicket {
        let ticket = match &self.io {
            FileIo::Parallel(engine) => engine.submit_write_stripe(writes),
            #[cfg(all(target_os = "linux", feature = "io-uring"))]
            FileIo::Uring(engine) => engine.submit_write_stripe(writes),
            FileIo::Serial(_) => return WriteTicket::ready(self.write_stripe(writes)),
        };
        // The addresses are known at submission, so space accounting stays
        // deterministic regardless of when the transfers land.
        for &(disk, track, _) in writes {
            self.note_write(disk, track);
        }
        ticket
    }

    fn tracks_used(&self, disk: usize) -> usize {
        self.tracks_used[disk]
    }

    fn sync(&mut self) -> DiskResult<()> {
        match &self.io {
            FileIo::Serial(files) => {
                for f in files {
                    f.sync_data()?;
                }
                Ok(())
            }
            FileIo::Parallel(engine) => engine.sync_all(),
            #[cfg(all(target_os = "linux", feature = "io-uring"))]
            FileIo::Uring(engine) => engine.sync_all(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_unwritten_tracks_read_zero() {
        let mut be = MemoryBackend::new(2);
        let mut buf = [0xAAu8; 16];
        be.read_track(1, 5, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn memory_round_trip() {
        let mut be = MemoryBackend::new(1);
        be.write_track(0, 3, &[7u8; 8]).unwrap();
        let mut buf = [0u8; 8];
        be.read_track(0, 3, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 8]);
        assert_eq!(be.tracks_used(0), 4);
    }

    fn file_round_trip(mode: IoMode, tag: &str) {
        let dir = std::env::temp_dir().join(format!("em-disk-test-{tag}-{}", std::process::id()));
        let mut be = FileBackend::create_with_mode(&dir, 2, 32, mode).unwrap();
        be.write_track(0, 2, &[9u8; 32]).unwrap();
        let mut buf = [0u8; 32];
        be.read_track(0, 2, &mut buf).unwrap();
        assert_eq!(buf, [9u8; 32]);
        // Unwritten track (including holes before a written one) is zeros.
        be.read_track(0, 1, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 32]);
        be.read_track(1, 99, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 32]);
        assert_eq!(be.tracks_used(0), 3);
        assert_eq!(be.tracks_used(1), 0);
        be.sync().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_backend_round_trip_serial() {
        file_round_trip(IoMode::Serial, "serial");
    }

    #[test]
    fn file_backend_round_trip_parallel() {
        file_round_trip(IoMode::Parallel, "parallel");
    }

    #[test]
    fn open_reattaches_existing_drive_files() {
        let dir = std::env::temp_dir().join(format!("em-disk-reopen-{}", std::process::id()));
        {
            let mut be = FileBackend::create_with_mode(&dir, 2, 32, IoMode::Serial).unwrap();
            be.write_track(0, 4, &[7u8; 32]).unwrap();
            be.write_track(1, 1, &[8u8; 32]).unwrap();
            be.sync().unwrap();
        }
        let mut be = FileBackend::open_with_mode(&dir, 2, 32, IoMode::Serial).unwrap();
        assert_eq!(be.tracks_used(0), 5, "space accounting rebuilt from file length");
        assert_eq!(be.tracks_used(1), 2);
        let mut buf = [0u8; 32];
        be.read_track(0, 4, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 32], "reopen must not truncate");
        be.read_track(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 32]);
        // Opening a missing array is an error, unlike create.
        drop(be);
        std::fs::remove_dir_all(&dir).ok();
        assert!(FileBackend::open_with_mode(&dir, 2, 32, IoMode::Serial).is_err());
    }

    #[test]
    fn create_cleans_up_partial_array_on_midway_failure() {
        let dir = std::env::temp_dir().join(format!("em-disk-partial-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // A directory squatting on drive 2's path makes its open fail after
        // drives 0 and 1 were already created.
        std::fs::create_dir_all(dir.join("disk-2.bin")).unwrap();
        let err = FileBackend::create(&dir, 4, 32);
        assert!(err.is_err());
        assert!(!dir.join("disk-0.bin").exists(), "partial drive files must be removed");
        assert!(!dir.join("disk-1.bin").exists(), "partial drive files must be removed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checksum_backend_round_trips_and_detects_corruption() {
        let mut be = ChecksumBackend::new(MemoryBackend::new(1), 16);
        // Never-written tracks still read back as zeros.
        let mut buf = [0xAAu8; 16];
        be.read_track(0, 3, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
        be.write_track(0, 0, &[5u8; 16]).unwrap();
        be.read_track(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [5u8; 16]);
        // A zero payload is a valid written block, distinct from formatted.
        be.write_track(0, 1, &[0u8; 16]).unwrap();
        be.read_track(0, 1, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
        // Corrupt the stored frame behind the checksum layer's back.
        let mut frame = vec![0u8; 16 + CRC_BYTES];
        be.inner.read_track(0, 0, &mut frame).unwrap();
        frame[7] ^= 0x01;
        be.inner.write_track(0, 0, &frame).unwrap();
        let err = be.read_track(0, 0, &mut buf).unwrap_err();
        assert!(matches!(err, DiskError::Corrupt { disk: 0, track: 0 }));
        assert!(err.is_transient());
    }

    #[test]
    fn retrying_backend_absorbs_transients_and_counts_them() {
        use crate::fault::{FaultInjectingBackend, FaultPlan};
        // Two stacked transients on drive 0's ops 1 and 2: a 3-attempt
        // policy retries through both.
        let plan = FaultPlan::none().with_transient(0, 1).with_transient(0, 2);
        let inner = FaultInjectingBackend::new(MemoryBackend::new(1), plan);
        let mut be = RetryingBackend::new(inner, RetryPolicy::new(3));
        be.write_track(0, 0, &[1u8; 8]).unwrap(); // op 0 clean
        be.write_track(0, 4, &[2u8; 8]).unwrap(); // ops 1,2 fail, op 3 lands
        assert_eq!(be.take_retried_blocks(), 2);
        assert_eq!(be.take_retried_blocks(), 0, "draining resets the count");
        let mut buf = [0u8; 8];
        be.read_track(0, 4, &mut buf).unwrap();
        assert_eq!(buf, [2u8; 8]);
    }

    #[test]
    fn retrying_backend_gives_up_past_its_budget() {
        use crate::fault::{FaultInjectingBackend, FaultPlan};
        let plan = FaultPlan::none().with_transient(0, 0).with_transient(0, 1).with_transient(0, 2);
        let inner = FaultInjectingBackend::new(MemoryBackend::new(1), plan);
        let mut be = RetryingBackend::new(inner, RetryPolicy::new(3));
        let err = be.write_track(0, 0, &[1u8; 8]).unwrap_err();
        assert!(err.is_transient(), "the final transient error is surfaced");
        assert_eq!(be.take_retried_blocks(), 2);
        // The next write succeeds: the schedule was consumed.
        be.write_track(0, 0, &[3u8; 8]).unwrap();
    }

    #[test]
    fn retry_over_checksum_recovers_from_transient_read_corruption() {
        use crate::fault::{FaultInjectingBackend, FaultPlan};
        // Stack exactly like the array composes it:
        // retry → checksum → fault → memory. A bit flip injected into a
        // checksummed read surfaces as Corrupt, and the retry re-reads the
        // clean media.
        let plan = FaultPlan::none().with_bit_flip(0, 1, 3, 0);
        let fault = FaultInjectingBackend::new(MemoryBackend::new(1), plan);
        let check = ChecksumBackend::new(fault, 16);
        let mut be = RetryingBackend::new(check, RetryPolicy::new(2));
        be.write_track(0, 0, &[9u8; 16]).unwrap(); // op 0
        let mut buf = [0u8; 16];
        be.read_track(0, 0, &mut buf).unwrap(); // op 1 flipped, retried clean
        assert_eq!(buf, [9u8; 16]);
        assert_eq!(be.take_retried_blocks(), 1);
    }

    #[test]
    fn serial_and_parallel_write_identical_files() {
        let pid = std::process::id();
        let dir_s = std::env::temp_dir().join(format!("em-disk-eq-s-{pid}"));
        let dir_p = std::env::temp_dir().join(format!("em-disk-eq-p-{pid}"));
        let mut serial = FileBackend::create_with_mode(&dir_s, 3, 16, IoMode::Serial).unwrap();
        let mut parallel = FileBackend::create_with_mode(&dir_p, 3, 16, IoMode::Parallel).unwrap();
        assert!(!serial.is_parallel());
        assert!(parallel.is_parallel());
        let writes: Vec<(usize, usize, Vec<u8>)> = (0..3)
            .flat_map(|d| (0..4).map(move |t| (d, t, vec![(d * 16 + t) as u8; 16])))
            .collect();
        for be in [&mut serial as &mut FileBackend, &mut parallel] {
            let stripe: Vec<(usize, usize, &[u8])> =
                writes.iter().map(|(d, t, v)| (*d, *t, v.as_slice())).collect();
            for chunk in stripe.chunks(3) {
                be.write_stripe(chunk).unwrap();
            }
            be.sync().unwrap();
        }
        for d in 0..3 {
            let a = std::fs::read(dir_s.join(format!("disk-{d}.bin"))).unwrap();
            let b = std::fs::read(dir_p.join(format!("disk-{d}.bin"))).unwrap();
            assert_eq!(a, b, "drive {d} bytes diverge between serial and parallel");
            assert_eq!(serial.tracks_used(d), parallel.tracks_used(d));
        }
        std::fs::remove_dir_all(&dir_s).ok();
        std::fs::remove_dir_all(&dir_p).ok();
    }
}
