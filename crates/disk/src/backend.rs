//! Storage backends: where track bytes actually live.
//!
//! The [`DiskArray`](crate::DiskArray) front-end is backend-agnostic. The
//! memory backend gives deterministic, allocation-cheap simulation for unit
//! tests and I/O-op counting experiments; the file backend performs real
//! positional file I/O (one file per simulated drive) so that wall-clock
//! behaviour of the blocked access patterns can be observed.

use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

/// Raw track storage for an array of `D` drives.
///
/// Tracks that have never been written read back as zeros — the model's
/// disks are "formatted" at creation, matching the paper's preallocated
/// context and message regions.
pub trait DiskBackend: Send {
    /// Number of drives this backend was created with.
    fn num_disks(&self) -> usize;

    /// Read one track into `buf` (whose length is the block size `B`).
    fn read_track(&mut self, disk: usize, track: usize, buf: &mut [u8]) -> io::Result<()>;

    /// Write one track from `data` (whose length is the block size `B`).
    fn write_track(&mut self, disk: usize, track: usize, data: &[u8]) -> io::Result<()>;

    /// Highest track index written so far on `disk`, plus one (0 if never
    /// written). Used for disk-space accounting.
    fn tracks_used(&self, disk: usize) -> usize;

    /// Flush any buffered state to stable storage (no-op for memory).
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// In-memory backend: tracks are boxed byte buffers.
pub struct MemoryBackend {
    disks: Vec<Vec<Option<Box<[u8]>>>>,
}

impl MemoryBackend {
    /// Create a memory backend for `num_disks` drives.
    pub fn new(num_disks: usize) -> Self {
        MemoryBackend {
            disks: vec![Vec::new(); num_disks],
        }
    }

    /// Total bytes currently resident across all drives (for tests).
    pub fn resident_bytes(&self) -> usize {
        self.disks
            .iter()
            .flatten()
            .filter_map(|t| t.as_ref().map(|b| b.len()))
            .sum()
    }
}

impl DiskBackend for MemoryBackend {
    fn num_disks(&self) -> usize {
        self.disks.len()
    }

    fn read_track(&mut self, disk: usize, track: usize, buf: &mut [u8]) -> io::Result<()> {
        match self.disks[disk].get(track).and_then(Option::as_ref) {
            Some(data) => {
                debug_assert_eq!(data.len(), buf.len());
                buf.copy_from_slice(data);
            }
            None => buf.fill(0),
        }
        Ok(())
    }

    fn write_track(&mut self, disk: usize, track: usize, data: &[u8]) -> io::Result<()> {
        let tracks = &mut self.disks[disk];
        if tracks.len() <= track {
            tracks.resize_with(track + 1, || None);
        }
        tracks[track] = Some(data.to_vec().into_boxed_slice());
        Ok(())
    }

    fn tracks_used(&self, disk: usize) -> usize {
        self.disks[disk].len()
    }
}

/// File-backed backend: one file per drive, positional I/O at
/// `track * block_bytes` offsets.
pub struct FileBackend {
    files: Vec<File>,
    paths: Vec<PathBuf>,
    block_bytes: usize,
    tracks_used: Vec<usize>,
}

impl FileBackend {
    /// Create (or truncate) `num_disks` drive files named `disk-<i>.bin`
    /// inside `dir`.
    pub fn create<P: AsRef<Path>>(
        dir: P,
        num_disks: usize,
        block_bytes: usize,
    ) -> io::Result<Self> {
        std::fs::create_dir_all(dir.as_ref())?;
        let mut files = Vec::with_capacity(num_disks);
        let mut paths = Vec::with_capacity(num_disks);
        for i in 0..num_disks {
            let path = dir.as_ref().join(format!("disk-{i}.bin"));
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)?;
            files.push(file);
            paths.push(path);
        }
        Ok(FileBackend {
            files,
            paths,
            block_bytes,
            tracks_used: vec![0; num_disks],
        })
    }

    /// Paths of the backing files (for inspection in examples/tests).
    pub fn paths(&self) -> &[PathBuf] {
        &self.paths
    }
}

#[cfg(unix)]
fn read_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<usize> {
    use std::os::unix::fs::FileExt;
    file.read_at(buf, offset)
}

#[cfg(unix)]
fn write_at(file: &File, data: &[u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(data, offset)
}

#[cfg(not(unix))]
fn read_at(_file: &File, _buf: &mut [u8], _offset: u64) -> io::Result<usize> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "FileBackend requires a unix platform",
    ))
}

#[cfg(not(unix))]
fn write_at(_file: &File, _data: &[u8], _offset: u64) -> io::Result<()> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "FileBackend requires a unix platform",
    ))
}

impl DiskBackend for FileBackend {
    fn num_disks(&self) -> usize {
        self.files.len()
    }

    fn read_track(&mut self, disk: usize, track: usize, buf: &mut [u8]) -> io::Result<()> {
        let offset = (track * self.block_bytes) as u64;
        let n = read_at(&self.files[disk], buf, offset)?;
        // Reads past EOF (never-written tracks) come back as zeros.
        buf[n..].fill(0);
        if n > 0 && n < buf.len() {
            // Partial track at EOF: the unread tail is zero by construction.
            let m = read_at(&self.files[disk], &mut buf[n..], offset + n as u64)?;
            buf[n + m..].fill(0);
        }
        Ok(())
    }

    fn write_track(&mut self, disk: usize, track: usize, data: &[u8]) -> io::Result<()> {
        let offset = (track * self.block_bytes) as u64;
        write_at(&self.files[disk], data, offset)?;
        self.tracks_used[disk] = self.tracks_used[disk].max(track + 1);
        Ok(())
    }

    fn tracks_used(&self, disk: usize) -> usize {
        self.tracks_used[disk]
    }

    fn sync(&mut self) -> io::Result<()> {
        for f in &self.files {
            f.sync_data()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_unwritten_tracks_read_zero() {
        let mut be = MemoryBackend::new(2);
        let mut buf = [0xAAu8; 16];
        be.read_track(1, 5, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn memory_round_trip() {
        let mut be = MemoryBackend::new(1);
        be.write_track(0, 3, &[7u8; 8]).unwrap();
        let mut buf = [0u8; 8];
        be.read_track(0, 3, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 8]);
        assert_eq!(be.tracks_used(0), 4);
    }

    #[test]
    fn file_backend_round_trip() {
        let dir = std::env::temp_dir().join(format!("em-disk-test-{}", std::process::id()));
        let mut be = FileBackend::create(&dir, 2, 32).unwrap();
        be.write_track(0, 2, &[9u8; 32]).unwrap();
        let mut buf = [0u8; 32];
        be.read_track(0, 2, &mut buf).unwrap();
        assert_eq!(buf, [9u8; 32]);
        // Unwritten track (including holes before a written one) is zeros.
        be.read_track(0, 1, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 32]);
        be.read_track(1, 99, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 32]);
        assert_eq!(be.tracks_used(0), 3);
        assert_eq!(be.tracks_used(1), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
