//! A disk block: exactly one track's worth of bytes.

/// An owned buffer holding exactly one track (`B` bytes) of data.
///
/// Blocks are the unit of every disk transfer. The size is fixed at
/// construction; the array validates it against its configured `B` on every
/// operation, so a `Block` of the wrong size can never be silently
/// truncated or padded by the substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    data: Box<[u8]>,
}

impl Block {
    /// A zero-filled block of `block_bytes` bytes.
    pub fn zeroed(block_bytes: usize) -> Self {
        Block { data: vec![0u8; block_bytes].into_boxed_slice() }
    }

    /// Build a block from `bytes`, padding with zeros up to `block_bytes`.
    ///
    /// # Panics
    /// Panics if `bytes.len() > block_bytes`; callers are responsible for
    /// cutting payloads into block-sized pieces first.
    pub fn from_bytes_padded(bytes: &[u8], block_bytes: usize) -> Self {
        assert!(
            bytes.len() <= block_bytes,
            "payload of {} bytes does not fit a {} byte block",
            bytes.len(),
            block_bytes
        );
        let mut data = vec![0u8; block_bytes];
        data[..bytes.len()].copy_from_slice(bytes);
        Block { data: data.into_boxed_slice() }
    }

    /// Take ownership of an exactly-sized buffer.
    pub fn from_vec(data: Vec<u8>) -> Self {
        Block { data: data.into_boxed_slice() }
    }

    /// Size of this block in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the block has zero size (never the case for blocks made by
    /// a valid [`crate::DiskConfig`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the payload.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view of the payload.
    #[inline]
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Consume the block, returning its buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.data.into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_has_requested_size() {
        let b = Block::zeroed(128);
        assert_eq!(b.len(), 128);
        assert!(b.as_bytes().iter().all(|&x| x == 0));
    }

    #[test]
    fn padding_preserves_prefix() {
        let b = Block::from_bytes_padded(&[1, 2, 3], 8);
        assert_eq!(b.as_bytes(), &[1, 2, 3, 0, 0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_payload_panics() {
        let _ = Block::from_bytes_padded(&[0; 9], 8);
    }
}
