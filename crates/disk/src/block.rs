//! A disk block: exactly one track's worth of bytes.

/// An owned buffer holding exactly one track (`B` bytes) of data.
///
/// Blocks are the unit of every disk transfer. The size is fixed at
/// construction; the array validates it against its configured `B` on every
/// operation, so a `Block` of the wrong size can never be silently
/// truncated or padded by the substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    data: Box<[u8]>,
}

impl Block {
    /// A zero-filled block of `block_bytes` bytes.
    pub fn zeroed(block_bytes: usize) -> Self {
        Block { data: vec![0u8; block_bytes].into_boxed_slice() }
    }

    /// Build a block from `bytes`, padding with zeros up to `block_bytes`.
    ///
    /// # Panics
    /// Panics if `bytes.len() > block_bytes`; callers are responsible for
    /// cutting payloads into block-sized pieces first.
    pub fn from_bytes_padded(bytes: &[u8], block_bytes: usize) -> Self {
        assert!(
            bytes.len() <= block_bytes,
            "payload of {} bytes does not fit a {} byte block",
            bytes.len(),
            block_bytes
        );
        let mut data = vec![0u8; block_bytes];
        data[..bytes.len()].copy_from_slice(bytes);
        Block { data: data.into_boxed_slice() }
    }

    /// Take ownership of an exactly-sized buffer.
    pub fn from_vec(data: Vec<u8>) -> Self {
        Block { data: data.into_boxed_slice() }
    }

    /// Size of this block in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the block has zero size (never the case for blocks made by
    /// a valid [`crate::DiskConfig`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the payload.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view of the payload.
    #[inline]
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Consume the block, returning its buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.data.into_vec()
    }
}

/// Number of bytes a CRC32 frame suffix adds to each stored track when
/// [`crate::DiskConfig::checksums`] is enabled.
pub const CRC_BYTES: usize = 4;

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    // Standard CRC-32 (IEEE 802.3), reflected, polynomial 0xEDB88320.
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `data`, as used by the block-frame checksum option.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Check values from the classic CRC-32 test suite.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let mut data = vec![0xA5u8; 64];
        let clean = crc32(&data);
        data[17] ^= 0x08;
        assert_ne!(crc32(&data), clean);
    }

    #[test]
    fn zeroed_has_requested_size() {
        let b = Block::zeroed(128);
        assert_eq!(b.len(), 128);
        assert!(b.as_bytes().iter().all(|&x| x == 0));
    }

    #[test]
    fn padding_preserves_prefix() {
        let b = Block::from_bytes_padded(&[1, 2, 3], 8);
        assert_eq!(b.as_bytes(), &[1, 2, 3, 0, 0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_payload_panics() {
        let _ = Block::from_bytes_padded(&[0; 9], 8);
    }
}
