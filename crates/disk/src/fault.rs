//! Deterministic fault injection for the disk substrate.
//!
//! A [`FaultPlan`] is a finite schedule of faults keyed by `(drive,
//! per-drive operation sequence number)`: the `n`-th track transfer a
//! [`FaultInjectingBackend`] performs on drive `d` fires the fault planned
//! for `(d, n)`, if any. Because the key is the backend's own operation
//! counter — not wall-clock time — identically-seeded runs inject
//! identically, which is what lets the recovery tests demand byte-identical
//! final state between a faulty and a fault-free run.
//!
//! Every fault except a scheduled worker death fires **once** and is then
//! consumed, so a retry (which advances the per-drive counter) or a
//! superstep replay observes the fault gone. A plan without deaths is
//! therefore always recoverable given enough retries/replays: the schedule
//! is finite and strictly consumed.
//!
//! Injection sites by kind:
//!
//! * [`FaultKind::Transient`] — the transfer fails with a
//!   [`DiskError::WorkerIo`] and has no effect on stored bytes.
//! * [`FaultKind::TornWrite`] — a **write** persists only a prefix of the
//!   frame (the tail keeps its previous content) and then reports a
//!   transient error, modelling a power cut mid-track. On a read op it
//!   degrades to `Transient`.
//! * [`FaultKind::BitFlip`] — a **read** silently returns the stored frame
//!   with one bit flipped, modelling a transient media error. The stored
//!   bytes are untouched, so a checksummed retry recovers. On a write op it
//!   degrades to `Transient`.
//! * [`FaultKind::Death`] — the drive's worker dies: the keyed operation
//!   and every later one on that drive fail with [`DiskError::WorkerLost`].
//!   Never recoverable; simulators surface it as a typed error with a
//!   fault report.
//!
//! Cloning a plan clones the schedule but **shares** the [`FaultStats`]
//! counters (via `Arc`), so the per-processor backends of a parallel
//! simulator aggregate into one report.

use crate::{DiskBackend, DiskError, DiskResult};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One scheduled fault (see the module docs for per-kind semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The transfer fails with a transient I/O error; no bytes change.
    Transient,
    /// A write persists only the first `prefix` bytes of the frame, then
    /// reports a transient error.
    TornWrite {
        /// Number of frame bytes that reach the platter.
        prefix: usize,
    },
    /// A read returns the stored frame with one bit flipped (silently).
    BitFlip {
        /// Byte offset of the flipped bit (taken modulo the frame size).
        byte: usize,
        /// Bit index within that byte (0–7).
        bit: u8,
    },
    /// The drive's worker dies at this operation and stays dead.
    Death,
}

/// Shared injection counters, aggregated across plan clones.
#[derive(Debug, Default)]
pub struct FaultStats {
    transient: AtomicU64,
    torn: AtomicU64,
    bitflips: AtomicU64,
    dead_ops: AtomicU64,
}

/// A point-in-time copy of [`FaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Transient errors injected (including the error halves of torn writes).
    pub transient: u64,
    /// Torn writes injected.
    pub torn: u64,
    /// Bit flips injected.
    pub bitflips: u64,
    /// Operations refused because their drive's worker was dead.
    pub dead_ops: u64,
}

impl FaultCounts {
    /// Total faults across all kinds.
    pub fn total(&self) -> u64 {
        self.transient + self.torn + self.bitflips + self.dead_ops
    }
}

impl FaultStats {
    /// Snapshot the counters.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            transient: self.transient.load(Ordering::Relaxed),
            torn: self.torn.load(Ordering::Relaxed),
            bitflips: self.bitflips.load(Ordering::Relaxed),
            dead_ops: self.dead_ops.load(Ordering::Relaxed),
        }
    }

    /// Total faults injected so far.
    pub fn total(&self) -> u64 {
        let c = self.counts();
        c.transient + c.torn + c.bitflips + c.dead_ops
    }
}

/// A seeded, finite schedule of disk faults.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    events: HashMap<(usize, u64), FaultKind>,
    dead_from: HashMap<usize, u64>,
    stats: Arc<FaultStats>,
}

impl FaultPlan {
    /// An empty plan: injects nothing, but still exercises the injection
    /// and recovery machinery end to end (the "fault-free path").
    pub fn none() -> Self {
        FaultPlan { events: HashMap::new(), dead_from: HashMap::new(), stats: Arc::default() }
    }

    /// Schedule a transient error on drive `disk`'s `op`-th transfer.
    pub fn with_transient(mut self, disk: usize, op: u64) -> Self {
        self.events.insert((disk, op), FaultKind::Transient);
        self
    }

    /// Schedule a torn write persisting `prefix` frame bytes.
    pub fn with_torn_write(mut self, disk: usize, op: u64, prefix: usize) -> Self {
        self.events.insert((disk, op), FaultKind::TornWrite { prefix });
        self
    }

    /// Schedule a silent single-bit read corruption.
    pub fn with_bit_flip(mut self, disk: usize, op: u64, byte: usize, bit: u8) -> Self {
        self.events.insert((disk, op), FaultKind::BitFlip { byte, bit: bit % 8 });
        self
    }

    /// Schedule drive `disk`'s worker to die at its `op`-th transfer.
    pub fn with_worker_death(mut self, disk: usize, op: u64) -> Self {
        let entry = self.dead_from.entry(disk).or_insert(op);
        *entry = (*entry).min(op);
        self
    }

    /// Generate a *recoverable* plan from a seed: transient errors, torn
    /// writes and read bit-flips (never worker deaths), at roughly
    /// `rate_per_mille` faults per thousand transfers over the first
    /// `horizon_ops` transfers of each of `num_disks` drives.
    ///
    /// The generator is a self-contained splitmix64 stream, so a given
    /// `(seed, num_disks, horizon_ops, rate_per_mille)` always yields the
    /// same schedule.
    pub fn seeded(seed: u64, num_disks: usize, horizon_ops: u64, rate_per_mille: u32) -> Self {
        let mut plan = FaultPlan::none();
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = || {
            // splitmix64
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for disk in 0..num_disks {
            for op in 0..horizon_ops {
                let roll = next();
                if roll % 1000 < rate_per_mille as u64 {
                    let pick = next();
                    let kind = match pick % 3 {
                        0 => FaultKind::Transient,
                        1 => FaultKind::TornWrite { prefix: (pick >> 8) as usize },
                        _ => FaultKind::BitFlip {
                            byte: (pick >> 8) as usize,
                            bit: ((pick >> 3) % 8) as u8,
                        },
                    };
                    plan.events.insert((disk, op), kind);
                }
            }
        }
        plan
    }

    /// Number of one-shot faults still scheduled.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// True when the plan schedules at least one worker death, i.e. is not
    /// recoverable by retries and replays alone.
    pub fn has_deaths(&self) -> bool {
        !self.dead_from.is_empty()
    }

    /// Handle to the shared injection counters (survives the plan being
    /// moved into a backend; shared across clones).
    pub fn stats(&self) -> Arc<FaultStats> {
        Arc::clone(&self.stats)
    }
}

/// A [`DiskBackend`] decorator that injects the faults of a [`FaultPlan`].
///
/// Sits directly above the raw storage backend, below the checksum and
/// retry layers, so injected corruption is subject to CRC verification and
/// injected transient errors are subject to the retry policy — exactly like
/// real media faults would be. Stripe and submission calls go through the
/// serial per-track trait defaults so that every track transfer passes the
/// injection point; this trades the file backend's intra-stripe overlap for
/// fault coverage, which is the right trade in fault-testing runs.
pub struct FaultInjectingBackend<B: DiskBackend> {
    inner: B,
    plan: FaultPlan,
    op_seq: Vec<u64>,
}

impl<B: DiskBackend> FaultInjectingBackend<B> {
    /// Wrap `inner`, injecting according to `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        let d = inner.num_disks();
        FaultInjectingBackend { inner, plan, op_seq: vec![0; d] }
    }

    /// Decide the fate of the current transfer on `disk` and advance the
    /// per-drive sequence number.
    fn next_fault(&mut self, disk: usize) -> Option<FaultKind> {
        let op = self.op_seq[disk];
        self.op_seq[disk] += 1;
        if let Some(&from) = self.plan.dead_from.get(&disk) {
            if op >= from {
                self.plan.stats.dead_ops.fetch_add(1, Ordering::Relaxed);
                return Some(FaultKind::Death);
            }
        }
        self.plan.events.remove(&(disk, op))
    }

    fn transient_err(disk: usize) -> DiskError {
        DiskError::WorkerIo { disk, source: io::Error::other("injected transient fault") }
    }
}

impl<B: DiskBackend> DiskBackend for FaultInjectingBackend<B> {
    fn num_disks(&self) -> usize {
        self.inner.num_disks()
    }

    fn read_track(&mut self, disk: usize, track: usize, buf: &mut [u8]) -> DiskResult<()> {
        match self.next_fault(disk) {
            None => self.inner.read_track(disk, track, buf),
            Some(FaultKind::Death) => Err(DiskError::WorkerLost { disk }),
            Some(FaultKind::BitFlip { byte, bit }) => {
                self.inner.read_track(disk, track, buf)?;
                if !buf.is_empty() {
                    let at = byte % buf.len();
                    buf[at] ^= 1 << (bit % 8);
                }
                self.plan.stats.bitflips.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Some(FaultKind::Transient) | Some(FaultKind::TornWrite { .. }) => {
                self.plan.stats.transient.fetch_add(1, Ordering::Relaxed);
                Err(Self::transient_err(disk))
            }
        }
    }

    fn write_track(&mut self, disk: usize, track: usize, data: &[u8]) -> DiskResult<()> {
        match self.next_fault(disk) {
            None => self.inner.write_track(disk, track, data),
            Some(FaultKind::Death) => Err(DiskError::WorkerLost { disk }),
            Some(FaultKind::TornWrite { prefix }) => {
                let keep = prefix % (data.len() + 1);
                // The tail of the track keeps whatever it held before.
                let mut torn = vec![0u8; data.len()];
                self.inner.read_track(disk, track, &mut torn)?;
                torn[..keep].copy_from_slice(&data[..keep]);
                self.inner.write_track(disk, track, &torn)?;
                self.plan.stats.torn.fetch_add(1, Ordering::Relaxed);
                self.plan.stats.transient.fetch_add(1, Ordering::Relaxed);
                Err(Self::transient_err(disk))
            }
            Some(FaultKind::Transient) | Some(FaultKind::BitFlip { .. }) => {
                self.plan.stats.transient.fetch_add(1, Ordering::Relaxed);
                Err(Self::transient_err(disk))
            }
        }
    }

    fn tracks_used(&self, disk: usize) -> usize {
        self.inner.tracks_used(disk)
    }

    fn sync(&mut self) -> DiskResult<()> {
        self.inner.sync()
    }

    fn take_retried_blocks(&mut self) -> u64 {
        self.inner.take_retried_blocks()
    }

    fn fault_op_counts(&self) -> Option<Vec<u64>> {
        Some(self.op_seq.clone())
    }

    /// The schedule is keyed by these counters, so restoring them from a
    /// checkpoint makes a resumed process see exactly the *remaining*
    /// schedule: one-shot events below the restored counts can never fire
    /// again (their keys are unreachable) and `dead_from` thresholds line
    /// up with the uninterrupted run. Counting from process start instead
    /// — the pre-checkpoint behaviour — replayed the whole schedule on
    /// every reattach.
    fn restore_fault_op_counts(&mut self, counts: &[u64]) {
        assert_eq!(counts.len(), self.op_seq.len(), "fault counter drive count mismatch");
        self.op_seq.copy_from_slice(counts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryBackend;

    #[test]
    fn transient_fault_fires_once_then_clears() {
        let plan = FaultPlan::none().with_transient(0, 1);
        let stats = plan.stats();
        let mut be = FaultInjectingBackend::new(MemoryBackend::new(1), plan);
        be.write_track(0, 0, &[7u8; 8]).unwrap(); // op 0: clean
        let err = be.write_track(0, 0, &[8u8; 8]).unwrap_err(); // op 1: injected
        assert!(err.is_transient());
        be.write_track(0, 0, &[9u8; 8]).unwrap(); // op 2: consumed
        assert_eq!(stats.counts().transient, 1);
        let mut buf = [0u8; 8];
        be.read_track(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [9u8; 8], "failed write must not persist");
    }

    #[test]
    fn torn_write_persists_prefix_and_keeps_tail() {
        let plan = FaultPlan::none().with_torn_write(0, 1, 3);
        let mut be = FaultInjectingBackend::new(MemoryBackend::new(1), plan);
        be.write_track(0, 5, &[0xAA; 8]).unwrap();
        let err = be.write_track(0, 5, &[0xBB; 8]).unwrap_err();
        assert!(err.is_transient());
        let mut buf = [0u8; 8];
        be.read_track(0, 5, &mut buf).unwrap();
        assert_eq!(&buf[..3], &[0xBB; 3], "prefix of the new data lands");
        assert_eq!(&buf[3..], &[0xAA; 5], "tail keeps the old content");
    }

    #[test]
    fn bit_flip_corrupts_the_read_not_the_media() {
        let plan = FaultPlan::none().with_bit_flip(0, 1, 2, 4);
        let mut be = FaultInjectingBackend::new(MemoryBackend::new(1), plan);
        be.write_track(0, 0, &[0u8; 8]).unwrap();
        let mut buf = [0u8; 8];
        be.read_track(0, 0, &mut buf).unwrap(); // op 1: flipped
        assert_eq!(buf[2], 1 << 4);
        be.read_track(0, 0, &mut buf).unwrap(); // clean again
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn dead_worker_rejects_everything_from_its_op_on() {
        let plan = FaultPlan::none().with_worker_death(1, 2);
        let stats = plan.stats();
        let mut be = FaultInjectingBackend::new(MemoryBackend::new(2), plan);
        be.write_track(1, 0, &[1u8; 4]).unwrap();
        be.write_track(1, 1, &[2u8; 4]).unwrap();
        for _ in 0..3 {
            let err = be.write_track(1, 2, &[3u8; 4]).unwrap_err();
            assert!(matches!(err, DiskError::WorkerLost { disk: 1 }));
            assert!(!err.is_transient());
        }
        // Drive 0 is unaffected.
        be.write_track(0, 0, &[4u8; 4]).unwrap();
        assert_eq!(stats.counts().dead_ops, 3);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_recoverable() {
        let a = FaultPlan::seeded(0xF16, 4, 200, 50);
        let b = FaultPlan::seeded(0xF16, 4, 200, 50);
        assert_eq!(a.events, b.events);
        assert!(a.pending_events() > 0, "a 5% rate over 800 ops must schedule something");
        assert!(!a.has_deaths());
        let c = FaultPlan::seeded(0xF17, 4, 200, 50);
        assert_ne!(a.events, c.events, "different seeds give different schedules");
    }

    #[test]
    fn restored_op_counts_resume_the_remaining_schedule() {
        // An uninterrupted run on drive 0: ops 0,1 clean, op 2 transient,
        // dead from op 4. A "resumed" backend restoring count 2 must see
        // exactly the remaining schedule: transient now, death at its 4th
        // op overall — while a naive fresh backend would replay op 0 clean.
        let plan = FaultPlan::none().with_transient(0, 2).with_worker_death(0, 4);
        let mut first = FaultInjectingBackend::new(MemoryBackend::new(1), plan.clone());
        first.write_track(0, 0, &[1u8; 4]).unwrap(); // op 0
        first.write_track(0, 1, &[2u8; 4]).unwrap(); // op 1
        let counts = first.fault_op_counts().unwrap();
        assert_eq!(counts, vec![2]);

        let mut resumed = FaultInjectingBackend::new(MemoryBackend::new(1), plan);
        resumed.restore_fault_op_counts(&counts);
        let err = resumed.write_track(0, 2, &[3u8; 4]).unwrap_err(); // op 2: injected
        assert!(err.is_transient());
        resumed.write_track(0, 2, &[3u8; 4]).unwrap(); // op 3: clean
        let err = resumed.write_track(0, 3, &[4u8; 4]).unwrap_err(); // op 4: dead
        assert!(matches!(err, DiskError::WorkerLost { disk: 0 }));
    }

    #[test]
    fn plan_clones_share_stats() {
        let plan = FaultPlan::none().with_transient(0, 0);
        let stats = plan.stats();
        let mut a = FaultInjectingBackend::new(MemoryBackend::new(1), plan.clone());
        let mut b = FaultInjectingBackend::new(MemoryBackend::new(1), plan);
        a.write_track(0, 0, &[0u8; 4]).unwrap_err();
        b.write_track(0, 0, &[0u8; 4]).unwrap_err();
        assert_eq!(stats.counts().transient, 2, "clones aggregate into one counter");
    }
}
