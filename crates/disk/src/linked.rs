//! *Standard linked format* — the bucket bookkeeping of Algorithm 1,
//! Step 1(d).
//!
//! During the Writing Phase, message blocks are partitioned into `D`
//! buckets by destination (bucket `i` holds the blocks destined for the
//! `i`-th group of `v/D` consecutive virtual processors). "In order to
//! maintain the buckets, the simulation uses a table of `D` pointers on
//! each disk. The `i`th entry in the table on a disk points to the head of
//! a list of blocks of bucket `i` that have been written to that disk.
//! Whenever we write a block of bucket `i` to disk `D_j`, we allocate a
//! free track on `D_j` and concatenate it to the list."
//!
//! We keep the per-disk tables in memory (the paper's tables are `D·D`
//! pointers, a vanishing fraction of `M`), recording for every appended
//! block its track and a caller-supplied sequence label so the
//! reorganization step can rebuild destination order.

/// Per-disk, per-bucket lists of tracks holding message blocks.
#[derive(Debug, Clone)]
pub struct BucketStore {
    num_disks: usize,
    num_buckets: usize,
    /// `lists[disk][bucket]` → tracks appended in arrival order.
    lists: Vec<Vec<Vec<usize>>>,
}

impl BucketStore {
    /// Empty store with `num_buckets` buckets over `num_disks` drives.
    pub fn new(num_disks: usize, num_buckets: usize) -> Self {
        BucketStore {
            num_disks,
            num_buckets,
            lists: vec![vec![Vec::new(); num_buckets]; num_disks],
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.num_buckets
    }

    /// Number of drives.
    pub fn num_disks(&self) -> usize {
        self.num_disks
    }

    /// Record that a block of `bucket` was written to `track` of `disk`.
    pub fn append(&mut self, disk: usize, bucket: usize, track: usize) {
        self.lists[disk][bucket].push(track);
    }

    /// Tracks of `bucket` on `disk`, in arrival order.
    pub fn tracks(&self, disk: usize, bucket: usize) -> &[usize] {
        &self.lists[disk][bucket]
    }

    /// Number of blocks of `bucket` stored on `disk` — the random variable
    /// `X_{j,k}` of Lemma 2.
    pub fn load(&self, disk: usize, bucket: usize) -> usize {
        self.lists[disk][bucket].len()
    }

    /// Total blocks in `bucket` across all drives (`R` in Lemma 2).
    pub fn bucket_total(&self, bucket: usize) -> usize {
        (0..self.num_disks).map(|d| self.load(d, bucket)).sum()
    }

    /// Total blocks stored.
    pub fn total(&self) -> usize {
        (0..self.num_buckets).map(|b| self.bucket_total(b)).sum()
    }

    /// Maximum of `X_{j,k}` over all disks and buckets; Lemma 2 bounds the
    /// probability this exceeds `l·R/D`.
    pub fn max_load(&self) -> usize {
        (0..self.num_disks)
            .flat_map(|d| (0..self.num_buckets).map(move |b| self.load(d, b)))
            .max()
            .unwrap_or(0)
    }

    /// `max_load / (R/D)` for the fullest bucket — the `l` actually
    /// achieved, reported by the balance experiments.
    pub fn balance_factor(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for b in 0..self.num_buckets {
            let r = self.bucket_total(b);
            if r == 0 {
                continue;
            }
            let expected = r as f64 / self.num_disks as f64;
            for d in 0..self.num_disks {
                worst = worst.max(self.load(d, b) as f64 / expected);
            }
        }
        worst
    }

    /// Drain all lists, returning `(disk, bucket, track)` triples and
    /// leaving the store empty (used after reorganization frees the
    /// scratch tracks).
    pub fn drain(&mut self) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::with_capacity(self.total());
        for (d, buckets) in self.lists.iter_mut().enumerate() {
            for (b, tracks) in buckets.iter_mut().enumerate() {
                for t in tracks.drain(..) {
                    out.push((d, b, t));
                }
            }
        }
        out
    }

    /// True when no blocks are stored.
    pub fn is_empty(&self) -> bool {
        self.lists.iter().all(|buckets| buckets.iter().all(Vec::is_empty))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_load() {
        let mut s = BucketStore::new(2, 3);
        s.append(0, 1, 10);
        s.append(0, 1, 11);
        s.append(1, 1, 4);
        s.append(1, 2, 5);
        assert_eq!(s.load(0, 1), 2);
        assert_eq!(s.bucket_total(1), 3);
        assert_eq!(s.total(), 4);
        assert_eq!(s.max_load(), 2);
        assert_eq!(s.tracks(0, 1), &[10, 11]);
    }

    #[test]
    fn balance_factor_of_even_spread_is_one() {
        let mut s = BucketStore::new(4, 2);
        for d in 0..4 {
            for t in 0..5 {
                s.append(d, 0, t);
            }
        }
        assert!((s.balance_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balance_factor_of_single_disk_pileup_is_d() {
        let mut s = BucketStore::new(4, 1);
        for t in 0..8 {
            s.append(2, 0, t);
        }
        assert!((s.balance_factor() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn drain_empties_the_store() {
        let mut s = BucketStore::new(2, 2);
        s.append(0, 0, 1);
        s.append(1, 1, 2);
        let mut triples = s.drain();
        triples.sort_unstable();
        assert_eq!(triples, vec![(0, 0, 1), (1, 1, 2)]);
        assert!(s.is_empty());
        assert_eq!(s.total(), 0);
    }
}
