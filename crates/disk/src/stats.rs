//! Exact cost accounting for the EM model.
//!
//! The EM-BSP model charges `G` per parallel I/O operation regardless of how
//! many of the `D` drives the operation actually uses ("an operation
//! involving fewer disk drives incurs the same cost"). [`IoStats`] counts
//! operations and per-drive block traffic so experiments can report both the
//! charged cost `G · parallel_ops` and the achieved drive utilization.
//!
//! Counters are incremented by [`crate::DiskArray`] **at submission time**
//! (after validation, before any transfer is joined), and every field is an
//! order-independent sum. Together those two facts make the counted cost of
//! a run independent of *when* its transfers complete: a pipelined run that
//! overlaps submitted stripes with computation ([`crate::Pipeline`]) counts
//! bit-identically to the same run joining every stripe immediately.

/// Counters for one disk array.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Number of parallel I/O operations issued (each moved ≤ D blocks).
    pub parallel_ops: u64,
    /// Total blocks read across all operations.
    pub blocks_read: u64,
    /// Total blocks written across all operations.
    pub blocks_written: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Blocks read per drive.
    pub per_disk_reads: Vec<u64>,
    /// Blocks written per drive.
    pub per_disk_writes: Vec<u64>,
    /// Block transfers re-issued by a [`crate::RetryPolicy`] after a
    /// transient failure. Retries are **not** counted in `parallel_ops` or
    /// the block/byte totals above, so the paper-facing counted parallel
    /// I/O comparison is unaffected by the retry layer.
    pub retried_blocks: u64,
    /// Parallel I/O operations spent on superstep recovery: operations of a
    /// rolled-back attempt plus the rollback writes that restored pre-fault
    /// track contents. Kept separate from `parallel_ops` for the same
    /// reason as `retried_blocks`.
    pub recovery_ops: u64,
    /// Block reads served from a [`crate::BlockCacheBackend`] without
    /// touching the backend below it. Counted operations are unchanged —
    /// the array counts at submission, before the cache absorbs the
    /// transfer — so this tallies the *absorbed* read traffic, exactly
    /// like `retried_blocks` tallies absorbed retry traffic.
    pub cache_hit_blocks: u64,
    /// Block writes buffered by a [`crate::BlockCacheBackend`] until the
    /// barrier flush instead of landing immediately. Same contract as
    /// `cache_hit_blocks`: counted I/O is unaffected.
    pub cache_absorbed_writes: u64,
}

impl IoStats {
    /// Fresh counters for an array of `num_disks` drives.
    pub fn new(num_disks: usize) -> Self {
        IoStats {
            per_disk_reads: vec![0; num_disks],
            per_disk_writes: vec![0; num_disks],
            ..Default::default()
        }
    }

    /// Charged I/O time under the model: `G · parallel_ops`.
    pub fn io_time(&self, g: u64) -> u64 {
        g * self.parallel_ops
    }

    /// Total blocks moved in either direction.
    pub fn blocks_moved(&self) -> u64 {
        self.blocks_read + self.blocks_written
    }

    /// Fraction of the available drive-slots actually used:
    /// `blocks_moved / (parallel_ops · D)`. 1.0 means perfectly parallel,
    /// `1/D` means the array degenerated to a single disk.
    pub fn utilization(&self) -> f64 {
        let d = self.per_disk_reads.len() as f64;
        if self.parallel_ops == 0 || d == 0.0 {
            return 0.0;
        }
        self.blocks_moved() as f64 / (self.parallel_ops as f64 * d)
    }

    /// Largest per-drive block count divided by the mean — 1.0 is perfectly
    /// balanced. Used in the Lemma 2 balance experiments.
    pub fn imbalance(&self) -> f64 {
        let totals: Vec<u64> =
            self.per_disk_reads.iter().zip(&self.per_disk_writes).map(|(r, w)| r + w).collect();
        let sum: u64 = totals.iter().sum();
        if sum == 0 {
            return 1.0;
        }
        let mean = sum as f64 / totals.len() as f64;
        let max = *totals.iter().max().unwrap() as f64;
        max / mean
    }

    /// Accumulate another set of counters into this one (drive counts are
    /// added index-wise; arrays must have the same `D`).
    pub fn merge(&mut self, other: &IoStats) {
        self.parallel_ops += other.parallel_ops;
        self.blocks_read += other.blocks_read;
        self.blocks_written += other.blocks_written;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        if self.per_disk_reads.len() < other.per_disk_reads.len() {
            self.per_disk_reads.resize(other.per_disk_reads.len(), 0);
            self.per_disk_writes.resize(other.per_disk_writes.len(), 0);
        }
        for (a, b) in self.per_disk_reads.iter_mut().zip(&other.per_disk_reads) {
            *a += b;
        }
        for (a, b) in self.per_disk_writes.iter_mut().zip(&other.per_disk_writes) {
            *a += b;
        }
        self.retried_blocks += other.retried_blocks;
        self.recovery_ops += other.recovery_ops;
        self.cache_hit_blocks += other.cache_hit_blocks;
        self.cache_absorbed_writes += other.cache_absorbed_writes;
    }

    /// Reset all counters to zero, preserving the drive count.
    pub fn reset(&mut self) {
        let d = self.per_disk_reads.len();
        *self = IoStats::new(d);
    }
}

impl std::fmt::Display for IoStats {
    /// Compact one-line rendering used wherever stats are reported. The
    /// absorbed-traffic tallies (`retried`, `recovery`, `cache_hits`,
    /// `cache_absorbed`) are always emitted — they read 0 when the
    /// corresponding layer is off, so reports stay field-stable across
    /// configurations.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ops={} blocks_r={} blocks_w={} util={:.2} retried={} recovery={} \
             cache_hits={} cache_absorbed={}",
            self.parallel_ops,
            self.blocks_read,
            self.blocks_written,
            self.utilization(),
            self.retried_blocks,
            self.recovery_ops,
            self.cache_hit_blocks,
            self.cache_absorbed_writes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IoStats {
        IoStats {
            parallel_ops: 10,
            blocks_read: 24,
            blocks_written: 16,
            bytes_read: 24 * 64,
            bytes_written: 16 * 64,
            per_disk_reads: vec![12, 12, 0, 0],
            per_disk_writes: vec![4, 4, 4, 4],
            retried_blocks: 3,
            recovery_ops: 2,
            cache_hit_blocks: 5,
            cache_absorbed_writes: 7,
        }
    }

    #[test]
    fn io_time_is_g_times_ops() {
        assert_eq!(sample().io_time(5), 50);
    }

    #[test]
    fn utilization_counts_slots() {
        let s = sample();
        // 40 blocks over 10 ops * 4 disks = 1.0
        assert!((s.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_detects_skew() {
        let s = sample();
        // totals = [16,16,4,4], mean 10, max 16 -> 1.6
        assert!((s.imbalance() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.parallel_ops, 20);
        assert_eq!(a.blocks_moved(), 80);
        assert_eq!(a.per_disk_reads, vec![24, 24, 0, 0]);
        assert_eq!(a.retried_blocks, 6);
        assert_eq!(a.recovery_ops, 4);
        assert_eq!(a.cache_hit_blocks, 10);
        assert_eq!(a.cache_absorbed_writes, 14);
    }

    #[test]
    fn reset_preserves_shape() {
        let mut a = sample();
        a.reset();
        assert_eq!(a, IoStats::new(4));
    }

    #[test]
    fn display_emits_cache_fields_even_when_zero() {
        let s = IoStats::new(2);
        let line = s.to_string();
        assert!(line.contains("cache_hits=0"));
        assert!(line.contains("cache_absorbed=0"));
        let line = sample().to_string();
        assert!(line.contains("cache_hits=5"));
        assert!(line.contains("cache_absorbed=7"));
    }

    #[test]
    fn empty_stats_edge_cases() {
        let s = IoStats::new(4);
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.imbalance(), 1.0);
        assert_eq!(s.io_time(100), 0);
    }
}
