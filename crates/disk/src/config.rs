//! Disk-array configuration (the `D`, `B` parameters of the EM model).

use crate::DiskError;

/// Shape of a disk array: `D` drives with tracks of `B` bytes each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskConfig {
    /// `D` — number of disk drives attached to one processor.
    pub num_disks: usize,
    /// `B` — bytes per track (the transfer block size).
    pub block_bytes: usize,
}

impl DiskConfig {
    /// Create a configuration, validating that both parameters are nonzero.
    pub fn new(num_disks: usize, block_bytes: usize) -> Result<Self, DiskError> {
        if num_disks == 0 {
            return Err(DiskError::InvalidConfig("num_disks must be >= 1"));
        }
        if block_bytes == 0 {
            return Err(DiskError::InvalidConfig("block_bytes must be >= 1"));
        }
        Ok(DiskConfig { num_disks, block_bytes })
    }

    /// Number of blocks needed to hold `bytes` bytes.
    #[inline]
    pub fn blocks_for_bytes(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.block_bytes)
    }

    /// Number of parallel I/O operations needed to move `blocks` blocks at
    /// full `D`-way parallelism.
    #[inline]
    pub fn ops_for_blocks(&self, blocks: usize) -> usize {
        blocks.div_ceil(self.num_disks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_parameters() {
        assert!(DiskConfig::new(0, 64).is_err());
        assert!(DiskConfig::new(4, 0).is_err());
        assert!(DiskConfig::new(1, 1).is_ok());
    }

    #[test]
    fn block_and_op_arithmetic() {
        let cfg = DiskConfig::new(4, 64).unwrap();
        assert_eq!(cfg.blocks_for_bytes(0), 0);
        assert_eq!(cfg.blocks_for_bytes(1), 1);
        assert_eq!(cfg.blocks_for_bytes(64), 1);
        assert_eq!(cfg.blocks_for_bytes(65), 2);
        assert_eq!(cfg.ops_for_blocks(0), 0);
        assert_eq!(cfg.ops_for_blocks(4), 1);
        assert_eq!(cfg.ops_for_blocks(5), 2);
    }
}
