//! Disk-array configuration (the `D`, `B` parameters of the EM model).

use crate::DiskError;

/// How the file backend executes the `≤ D` track transfers of one stripe.
///
/// The mode changes *who* performs the file I/O (the calling thread vs one
/// dedicated worker thread per drive) and whether the transfers overlap in
/// time — never what bytes are transferred, what [`crate::IoStats`] count,
/// or what a seeded run's I/O trace looks like. The memory backend ignores
/// the mode entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoMode {
    /// Execute each stripe as a loop over drives on the calling thread.
    /// Useful as a baseline and for pinning down threading-related bugs.
    Serial,
    /// Dispatch each stripe to per-drive worker threads and join them
    /// before returning, so the transfers overlap `D`-ways.
    Parallel,
}

/// Whether a simulator may overlap disk transfers of adjacent work units
/// (groups/batches) within one compound superstep.
///
/// Like [`IoMode`], the pipeline knob changes *when* transfers execute —
/// never which stripes are submitted, what [`crate::IoStats`] count, or
/// what a seeded run computes. Counting happens in
/// [`DiskArray`](crate::DiskArray) at submission time, so the counted cost
/// of a run is bit-identical with pipelining on or off by construction.
/// The superstep-boundary `sync()` is the barrier: no transfer submitted
/// inside a superstep may still be in flight after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pipeline {
    /// Every stripe is joined before the next one is submitted (the
    /// classic fetch → compute → write group loop).
    Off,
    /// Double-buffer compound supersteps: while group `g` computes, group
    /// `g+1`'s contexts and inbound message blocks are already in flight
    /// and group `g-1`'s outbound blocks and contexts drain in the
    /// background.
    DoubleBuffer,
}

/// Shape of a disk array: `D` drives with tracks of `B` bytes each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskConfig {
    /// `D` — number of disk drives attached to one processor.
    pub num_disks: usize,
    /// `B` — bytes per track (the transfer block size).
    pub block_bytes: usize,
    /// How file-backed stripes execute (default [`IoMode::Parallel`]).
    pub io_mode: IoMode,
    /// Whether simulators overlap adjacent groups' I/O (default
    /// [`Pipeline::Off`]).
    pub pipeline: Pipeline,
}

impl DiskConfig {
    /// Create a configuration, validating that both parameters are nonzero.
    /// The I/O mode defaults to [`IoMode::Parallel`]; pipelining defaults
    /// to [`Pipeline::Off`].
    pub fn new(num_disks: usize, block_bytes: usize) -> Result<Self, DiskError> {
        if num_disks == 0 {
            return Err(DiskError::InvalidConfig("num_disks must be >= 1"));
        }
        if block_bytes == 0 {
            return Err(DiskError::InvalidConfig("block_bytes must be >= 1"));
        }
        Ok(DiskConfig {
            num_disks,
            block_bytes,
            io_mode: IoMode::Parallel,
            pipeline: Pipeline::Off,
        })
    }

    /// Select how file-backed stripes execute.
    pub fn with_io_mode(mut self, mode: IoMode) -> Self {
        self.io_mode = mode;
        self
    }

    /// Select whether simulators overlap adjacent groups' I/O.
    pub fn with_pipeline(mut self, pipeline: Pipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Number of blocks needed to hold `bytes` bytes.
    #[inline]
    pub fn blocks_for_bytes(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.block_bytes)
    }

    /// Number of parallel I/O operations needed to move `blocks` blocks at
    /// full `D`-way parallelism.
    #[inline]
    pub fn ops_for_blocks(&self, blocks: usize) -> usize {
        blocks.div_ceil(self.num_disks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_parameters() {
        assert!(DiskConfig::new(0, 64).is_err());
        assert!(DiskConfig::new(4, 0).is_err());
        assert!(DiskConfig::new(1, 1).is_ok());
    }

    #[test]
    fn io_mode_defaults_to_parallel_and_is_overridable() {
        let cfg = DiskConfig::new(4, 64).unwrap();
        assert_eq!(cfg.io_mode, IoMode::Parallel);
        let cfg = cfg.with_io_mode(IoMode::Serial);
        assert_eq!(cfg.io_mode, IoMode::Serial);
        // The mode does not affect configuration equality of shape fields.
        assert_eq!(cfg.num_disks, 4);
        assert_eq!(cfg.block_bytes, 64);
    }

    #[test]
    fn pipeline_defaults_to_off_and_is_overridable() {
        let cfg = DiskConfig::new(4, 64).unwrap();
        assert_eq!(cfg.pipeline, Pipeline::Off);
        let cfg = cfg.with_pipeline(Pipeline::DoubleBuffer);
        assert_eq!(cfg.pipeline, Pipeline::DoubleBuffer);
        assert_eq!(cfg.io_mode, IoMode::Parallel, "pipeline knob must not disturb io_mode");
    }

    #[test]
    fn block_and_op_arithmetic() {
        let cfg = DiskConfig::new(4, 64).unwrap();
        assert_eq!(cfg.blocks_for_bytes(0), 0);
        assert_eq!(cfg.blocks_for_bytes(1), 1);
        assert_eq!(cfg.blocks_for_bytes(64), 1);
        assert_eq!(cfg.blocks_for_bytes(65), 2);
        assert_eq!(cfg.ops_for_blocks(0), 0);
        assert_eq!(cfg.ops_for_blocks(4), 1);
        assert_eq!(cfg.ops_for_blocks(5), 2);
    }
}
