//! Disk-array configuration (the `D`, `B` parameters of the EM model).

use crate::DiskError;

/// How the file backend executes the `≤ D` track transfers of one stripe.
///
/// The mode changes *who* performs the file I/O (the calling thread vs one
/// dedicated worker thread per drive) and whether the transfers overlap in
/// time — never what bytes are transferred, what [`crate::IoStats`] count,
/// or what a seeded run's I/O trace looks like. The memory backend ignores
/// the mode entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoMode {
    /// Execute each stripe as a loop over drives on the calling thread.
    /// Useful as a baseline and for pinning down threading-related bugs.
    Serial,
    /// Dispatch each stripe to per-drive worker threads and join them
    /// before returning, so the transfers overlap `D`-ways.
    Parallel,
}

/// Shape of a disk array: `D` drives with tracks of `B` bytes each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskConfig {
    /// `D` — number of disk drives attached to one processor.
    pub num_disks: usize,
    /// `B` — bytes per track (the transfer block size).
    pub block_bytes: usize,
    /// How file-backed stripes execute (default [`IoMode::Parallel`]).
    pub io_mode: IoMode,
}

impl DiskConfig {
    /// Create a configuration, validating that both parameters are nonzero.
    /// The I/O mode defaults to [`IoMode::Parallel`].
    pub fn new(num_disks: usize, block_bytes: usize) -> Result<Self, DiskError> {
        if num_disks == 0 {
            return Err(DiskError::InvalidConfig("num_disks must be >= 1"));
        }
        if block_bytes == 0 {
            return Err(DiskError::InvalidConfig("block_bytes must be >= 1"));
        }
        Ok(DiskConfig { num_disks, block_bytes, io_mode: IoMode::Parallel })
    }

    /// Select how file-backed stripes execute.
    pub fn with_io_mode(mut self, mode: IoMode) -> Self {
        self.io_mode = mode;
        self
    }

    /// Number of blocks needed to hold `bytes` bytes.
    #[inline]
    pub fn blocks_for_bytes(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.block_bytes)
    }

    /// Number of parallel I/O operations needed to move `blocks` blocks at
    /// full `D`-way parallelism.
    #[inline]
    pub fn ops_for_blocks(&self, blocks: usize) -> usize {
        blocks.div_ceil(self.num_disks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_parameters() {
        assert!(DiskConfig::new(0, 64).is_err());
        assert!(DiskConfig::new(4, 0).is_err());
        assert!(DiskConfig::new(1, 1).is_ok());
    }

    #[test]
    fn io_mode_defaults_to_parallel_and_is_overridable() {
        let cfg = DiskConfig::new(4, 64).unwrap();
        assert_eq!(cfg.io_mode, IoMode::Parallel);
        let cfg = cfg.with_io_mode(IoMode::Serial);
        assert_eq!(cfg.io_mode, IoMode::Serial);
        // The mode does not affect configuration equality of shape fields.
        assert_eq!(cfg.num_disks, 4);
        assert_eq!(cfg.block_bytes, 64);
    }

    #[test]
    fn block_and_op_arithmetic() {
        let cfg = DiskConfig::new(4, 64).unwrap();
        assert_eq!(cfg.blocks_for_bytes(0), 0);
        assert_eq!(cfg.blocks_for_bytes(1), 1);
        assert_eq!(cfg.blocks_for_bytes(64), 1);
        assert_eq!(cfg.blocks_for_bytes(65), 2);
        assert_eq!(cfg.ops_for_blocks(0), 0);
        assert_eq!(cfg.ops_for_blocks(4), 1);
        assert_eq!(cfg.ops_for_blocks(5), 2);
    }
}
