//! Disk-array configuration (the `D`, `B` parameters of the EM model).

use crate::DiskError;

/// How the file backend executes the `≤ D` track transfers of one stripe.
///
/// The mode changes *who* performs the file I/O (the calling thread vs one
/// dedicated worker thread per drive) and whether the transfers overlap in
/// time — never what bytes are transferred, what [`crate::IoStats`] count,
/// or what a seeded run's I/O trace looks like. The memory backend ignores
/// the mode entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoMode {
    /// Execute each stripe as a loop over drives on the calling thread.
    /// Useful as a baseline and for pinning down threading-related bugs.
    Serial,
    /// Dispatch each stripe to per-drive worker threads and join them
    /// before returning, so the transfers overlap `D`-ways.
    Parallel,
}

/// Whether a simulator may overlap disk transfers of adjacent work units
/// (groups/batches) within one compound superstep, and how many of them
/// may be in flight at once.
///
/// Like [`IoMode`], the pipeline knob changes *when* transfers execute —
/// never which stripes are submitted, what [`crate::IoStats`] count, or
/// what a seeded run computes. Counting happens in
/// [`DiskArray`](crate::DiskArray) at submission time, so the counted cost
/// of a run is bit-identical at every depth by construction.
/// The superstep-boundary `sync()` is the barrier: no transfer submitted
/// inside a superstep may still be in flight after it.
///
/// The knob is a single scalar — the *window depth* returned by
/// [`Pipeline::depth`]: how many work units ahead of the one currently
/// being joined a simulator may have submitted. [`Pipeline::DoubleBuffer`]
/// is kept as a readable alias for the classic one-ahead scheme and is
/// exactly [`Pipeline::Stream`]`(1)`:
///
/// ```
/// use em_disk::Pipeline;
///
/// assert_eq!(Pipeline::Off.depth(), 0);
/// assert_eq!(Pipeline::DoubleBuffer.depth(), Pipeline::Stream(1).depth());
/// assert_eq!(Pipeline::Stream(4).depth(), 4);
/// // Stream(0) requests no overlap at all — it behaves like Off.
/// assert_eq!(Pipeline::Stream(0).depth(), Pipeline::Off.depth());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pipeline {
    /// Every stripe is joined before the next one is submitted (the
    /// classic fetch → compute → write group loop).
    Off,
    /// Double-buffer compound supersteps: while group `g` computes, group
    /// `g+1`'s contexts and inbound message blocks are already in flight
    /// and group `g-1`'s outbound blocks and contexts drain in the
    /// background. An alias for [`Pipeline::Stream`]`(1)` — the two are
    /// indistinguishable in behaviour, traces and wall clock.
    DoubleBuffer,
    /// Stream compound supersteps through a bounded window of up to `n`
    /// work units concurrently in flight across fetch (submitted read
    /// tickets), compute and write ([`crate::WriteBacklog`]), with the
    /// reorganization drain and the barrier `sync()` as the only full
    /// joins. `Stream(0)` degenerates to [`Pipeline::Off`] and
    /// `Stream(1)` to [`Pipeline::DoubleBuffer`]; larger depths only add
    /// more prefetch distance — never different submissions.
    Stream(usize),
    /// Ask the runtime to choose a concrete depth. Simulators resolve
    /// `Auto` into a concrete [`Pipeline::Stream`] depth *before* disks
    /// are built (`em-core`'s `AutoTuner`, recorded in the run's
    /// `CostReport::resolved_config`); an unresolved `Auto` that reaches
    /// the substrate behaves like [`Pipeline::Off`] (`depth() == 0`), so
    /// the knob can never change counted I/O on its own.
    Auto,
}

impl Pipeline {
    /// The in-flight window depth this knob requests: how many work units
    /// (groups/batches) ahead of the one being joined a simulator may
    /// have submitted. 0 means fully synchronous. An unresolved
    /// [`Pipeline::Auto`] maps to 0 — the conservative synchronous
    /// schedule — because resolution is the simulator's job, not the
    /// substrate's.
    #[inline]
    pub fn depth(&self) -> usize {
        match self {
            Pipeline::Off => 0,
            Pipeline::DoubleBuffer => 1,
            Pipeline::Stream(n) => *n,
            Pipeline::Auto => 0,
        }
    }

    /// Whether this is the unresolved [`Pipeline::Auto`] request.
    #[inline]
    pub fn is_auto(&self) -> bool {
        matches!(self, Pipeline::Auto)
    }
}

/// Which asynchronous engine executes file-backed parallel stripes.
///
/// Like [`IoMode`] and [`Pipeline`], the engine knob changes *how*
/// transfers reach the platters — never which stripes are submitted or
/// what [`crate::IoStats`] count: counting happens in
/// [`DiskArray`](crate::DiskArray) at submission time, above the backend,
/// so counted parallel ops are bit-identical across engines by
/// construction. The memory backend and [`IoMode::Serial`] ignore the
/// knob entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// One dedicated worker thread per drive (`em-disk-d{idx}`), each
    /// draining a FIFO of track commands (the default).
    #[default]
    Threaded,
    /// A Linux `io_uring` submission/completion ring shared by all drives,
    /// with one reaper thread harvesting completions. Requires the
    /// `io-uring` cargo feature *and* runtime kernel support
    /// ([`crate::uring_available`]); otherwise the backend silently falls
    /// back to [`EngineKind::Threaded`] — the fallback changes wall clock
    /// only, never behaviour, so requesting `Uring` is always safe.
    Uring,
}

/// Bounded, deterministic retry schedule for transient track-transfer
/// failures ([`crate::DiskError::is_transient`]).
///
/// Applied by [`crate::RetryingBackend`] around every track transfer: a
/// failed transfer is re-issued up to `max_attempts` times total, sleeping
/// `backoff_micros · 2^(k-1)` microseconds before re-attempt `k`. The
/// schedule is a pure function of the policy, so identically-seeded runs
/// retry identically. Retries are counted in
/// [`IoStats::retried_blocks`](crate::IoStats::retried_blocks), never in
/// the paper-facing `parallel_ops`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetryPolicy {
    /// Total attempts per track transfer, including the first (≥ 1).
    pub max_attempts: u32,
    /// Base backoff in microseconds; doubled before each further attempt.
    /// Zero (the default) retries immediately, which keeps seeded test
    /// runs fast without changing the retry semantics.
    pub backoff_micros: u64,
}

impl RetryPolicy {
    /// A policy allowing `max_attempts` total attempts with no backoff.
    pub fn new(max_attempts: u32) -> Self {
        RetryPolicy { max_attempts: max_attempts.max(1), backoff_micros: 0 }
    }

    /// Set the base backoff delay in microseconds.
    pub fn with_backoff_micros(mut self, micros: u64) -> Self {
        self.backoff_micros = micros;
        self
    }

    /// Deterministic delay before re-attempt `attempt` (1-based count of
    /// retries already performed): `backoff_micros · 2^(attempt-1)` µs.
    pub fn delay_before(&self, attempt: u32) -> std::time::Duration {
        let micros = self.backoff_micros.saturating_mul(1u64 << (attempt - 1).min(20));
        std::time::Duration::from_micros(micros)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::new(3)
    }
}

/// Shape of a disk array: `D` drives with tracks of `B` bytes each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskConfig {
    /// `D` — number of disk drives attached to one processor.
    pub num_disks: usize,
    /// `B` — bytes per track (the transfer block size).
    pub block_bytes: usize,
    /// How file-backed stripes execute (default [`IoMode::Parallel`]).
    pub io_mode: IoMode,
    /// Whether simulators overlap adjacent groups' I/O (default
    /// [`Pipeline::Off`]).
    pub pipeline: Pipeline,
    /// Whether each stored track carries a CRC32 frame suffix, verified on
    /// every read (default off). Corruption surfaces as
    /// [`DiskError::Corrupt`](crate::DiskError::Corrupt). The checksum
    /// lives *outside* the logical `B`-byte block, so enabling it changes
    /// neither block arithmetic nor counted I/O.
    pub checksums: bool,
    /// Bounded retry of transient track-transfer failures (default off).
    pub retry: Option<RetryPolicy>,
    /// Capacity in bytes of the write-back block cache layered over the
    /// whole backend stack (default 0 = no cache). Rounded down to whole
    /// tracks; capacities smaller than one track leave the cache off. Like
    /// every other knob the cache changes only wall clock: counting
    /// happens in [`DiskArray`](crate::DiskArray) at submission, so
    /// counted [`crate::IoStats`] are bit-identical with the cache on or
    /// off, and absorbed traffic is tallied separately in
    /// [`IoStats::cache_hit_blocks`](crate::IoStats::cache_hit_blocks) /
    /// [`IoStats::cache_absorbed_writes`](crate::IoStats::cache_absorbed_writes).
    pub cache_bytes: usize,
    /// Which asynchronous engine executes file-backed parallel stripes
    /// (default [`EngineKind::Threaded`]; [`EngineKind::Uring`] falls back
    /// to threaded where io_uring is unavailable).
    pub engine: EngineKind,
    /// Whether worker threads (drive workers and the simulator's compute
    /// pool) are best-effort pinned to CPU cores at spawn (default off).
    /// Pinning is a wall-clock-only knob: drive worker `d` goes to core
    /// `d mod ncpus` and compute worker `i` to core `i mod ncpus`; on
    /// platforms without thread affinity the request is a no-op.
    pub pin_workers: bool,
    /// Whether the cache capacity should be chosen by the runtime instead
    /// of [`DiskConfig::cache_bytes`] (default off). Simulators resolve
    /// the request into a concrete `cache_bytes` value against the run's
    /// `v·μ+γ` footprint *before* disks are built (`em-core`'s
    /// `AutoTuner`); the substrate itself never interprets the flag, so —
    /// like every knob — it can only ever change wall clock, never
    /// counted [`crate::IoStats`].
    pub auto_cache: bool,
}

impl DiskConfig {
    /// Create a configuration, validating that both parameters are nonzero.
    /// The I/O mode defaults to [`IoMode::Parallel`]; pipelining defaults
    /// to [`Pipeline::Off`].
    pub fn new(num_disks: usize, block_bytes: usize) -> Result<Self, DiskError> {
        if num_disks == 0 {
            return Err(DiskError::InvalidConfig("num_disks must be >= 1"));
        }
        if block_bytes == 0 {
            return Err(DiskError::InvalidConfig("block_bytes must be >= 1"));
        }
        Ok(DiskConfig {
            num_disks,
            block_bytes,
            io_mode: IoMode::Parallel,
            pipeline: Pipeline::Off,
            checksums: false,
            retry: None,
            cache_bytes: 0,
            engine: EngineKind::Threaded,
            pin_workers: false,
            auto_cache: false,
        })
    }

    /// Select the asynchronous engine for file-backed parallel stripes
    /// (see [`EngineKind`]; `Uring` falls back to `Threaded` where
    /// io_uring is unavailable).
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Request best-effort CPU pinning of worker threads at spawn (see
    /// [`DiskConfig::pin_workers`]).
    pub fn with_pinned_workers(mut self, pin: bool) -> Self {
        self.pin_workers = pin;
        self
    }

    /// Select how file-backed stripes execute.
    pub fn with_io_mode(mut self, mode: IoMode) -> Self {
        self.io_mode = mode;
        self
    }

    /// Select whether — and how deep — simulators overlap adjacent
    /// groups' I/O (see [`Pipeline`]).
    ///
    /// ```
    /// use em_disk::{DiskConfig, Pipeline};
    ///
    /// let cfg = DiskConfig::new(4, 256).unwrap().with_pipeline(Pipeline::Stream(4));
    /// assert_eq!(cfg.pipeline.depth(), 4);
    /// ```
    pub fn with_pipeline(mut self, pipeline: Pipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Enable or disable per-track CRC32 frames. The frame lives outside
    /// the logical block, so neither block arithmetic nor counted I/O
    /// changes; a mismatch on read surfaces as
    /// [`DiskError::Corrupt`](crate::DiskError::Corrupt).
    ///
    /// ```
    /// use em_disk::{DiskArray, DiskConfig};
    ///
    /// let cfg = DiskConfig::new(4, 256).unwrap().with_checksums(true);
    /// assert_eq!(cfg.block_bytes, 256, "logical block size is unchanged");
    /// // Each stored track carries the 4-byte CRC suffix.
    /// assert_eq!(DiskArray::storage_block_bytes(&cfg), 260);
    /// ```
    pub fn with_checksums(mut self, on: bool) -> Self {
        self.checksums = on;
        self
    }

    /// Enable bounded retry of transient track-transfer failures.
    /// Absorbed retries are tallied in
    /// [`IoStats::retried_blocks`](crate::IoStats::retried_blocks), never
    /// in the paper-facing `parallel_ops`.
    ///
    /// ```
    /// use em_disk::{DiskConfig, RetryPolicy};
    ///
    /// let cfg = DiskConfig::new(4, 256)
    ///     .unwrap()
    ///     .with_retry(RetryPolicy::new(4).with_backoff_micros(10));
    /// let policy = cfg.retry.unwrap();
    /// assert_eq!(policy.max_attempts, 4);
    /// assert_eq!(policy.delay_before(2).as_micros(), 20, "exponential backoff");
    /// ```
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Set the write-back block-cache capacity in bytes (0 disables it).
    /// The cache is the outermost backend decorator and counting happens
    /// above it, so counted [`crate::IoStats`] stay bit-identical at any
    /// capacity; absorbed traffic lands in the two cache tallies.
    ///
    /// ```
    /// use em_disk::DiskConfig;
    ///
    /// let cfg = DiskConfig::new(4, 256).unwrap().with_cache(1024);
    /// assert_eq!(cfg.cache_tracks(), 4, "1024 bytes hold 4 whole 256-byte tracks");
    /// assert_eq!(cfg.with_cache(0).cache_tracks(), 0, "0 disables the cache");
    /// ```
    pub fn with_cache(mut self, capacity_bytes: usize) -> Self {
        self.cache_bytes = capacity_bytes;
        self.auto_cache = false;
        self
    }

    /// Ask the runtime to choose the cache capacity (see
    /// [`DiskConfig::auto_cache`]). Simulators resolve the request into a
    /// concrete [`DiskConfig::cache_bytes`] before disks are built; the
    /// substrate itself treats an unresolved request as "cache off".
    ///
    /// ```
    /// use em_disk::DiskConfig;
    ///
    /// let cfg = DiskConfig::new(4, 256).unwrap().with_auto_cache(true);
    /// assert!(cfg.auto_cache);
    /// assert_eq!(cfg.cache_tracks(), 0, "unresolved request leaves the cache off");
    /// // An explicit capacity withdraws the request.
    /// assert!(!cfg.with_cache(1024).auto_cache);
    /// ```
    pub fn with_auto_cache(mut self, on: bool) -> Self {
        self.auto_cache = on;
        self
    }

    /// Whole tracks the configured cache can hold (0 when the cache is
    /// off or the capacity is smaller than one track).
    #[inline]
    pub fn cache_tracks(&self) -> usize {
        self.cache_bytes / self.block_bytes
    }

    /// Number of blocks needed to hold `bytes` bytes.
    #[inline]
    pub fn blocks_for_bytes(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.block_bytes)
    }

    /// Number of parallel I/O operations needed to move `blocks` blocks at
    /// full `D`-way parallelism.
    #[inline]
    pub fn ops_for_blocks(&self, blocks: usize) -> usize {
        blocks.div_ceil(self.num_disks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_parameters() {
        assert!(DiskConfig::new(0, 64).is_err());
        assert!(DiskConfig::new(4, 0).is_err());
        assert!(DiskConfig::new(1, 1).is_ok());
    }

    #[test]
    fn io_mode_defaults_to_parallel_and_is_overridable() {
        let cfg = DiskConfig::new(4, 64).unwrap();
        assert_eq!(cfg.io_mode, IoMode::Parallel);
        let cfg = cfg.with_io_mode(IoMode::Serial);
        assert_eq!(cfg.io_mode, IoMode::Serial);
        // The mode does not affect configuration equality of shape fields.
        assert_eq!(cfg.num_disks, 4);
        assert_eq!(cfg.block_bytes, 64);
    }

    #[test]
    fn pipeline_defaults_to_off_and_is_overridable() {
        let cfg = DiskConfig::new(4, 64).unwrap();
        assert_eq!(cfg.pipeline, Pipeline::Off);
        let cfg = cfg.with_pipeline(Pipeline::DoubleBuffer);
        assert_eq!(cfg.pipeline, Pipeline::DoubleBuffer);
        assert_eq!(cfg.io_mode, IoMode::Parallel, "pipeline knob must not disturb io_mode");
        let cfg = cfg.with_pipeline(Pipeline::Stream(8));
        assert_eq!(cfg.pipeline, Pipeline::Stream(8));
    }

    #[test]
    fn pipeline_depth_maps_every_variant_onto_the_window_scalar() {
        assert_eq!(Pipeline::Off.depth(), 0);
        assert_eq!(Pipeline::DoubleBuffer.depth(), 1, "DoubleBuffer is Stream(1)");
        for n in [0, 1, 2, 7, 64] {
            assert_eq!(Pipeline::Stream(n).depth(), n);
        }
        assert_eq!(Pipeline::Auto.depth(), 0, "unresolved Auto is synchronous");
        assert!(Pipeline::Auto.is_auto());
        assert!(!Pipeline::Stream(2).is_auto());
    }

    #[test]
    fn auto_cache_defaults_off_and_explicit_capacity_withdraws_it() {
        let cfg = DiskConfig::new(4, 64).unwrap();
        assert!(!cfg.auto_cache);
        let cfg = cfg.with_auto_cache(true);
        assert!(cfg.auto_cache);
        assert_eq!(cfg.cache_tracks(), 0, "unresolved request leaves the cache off");
        let cfg = cfg.with_cache(256);
        assert!(!cfg.auto_cache, "explicit capacity withdraws the auto request");
        assert_eq!(cfg.cache_tracks(), 4);
    }

    #[test]
    fn fault_tolerance_knobs_default_off_and_are_overridable() {
        let cfg = DiskConfig::new(4, 64).unwrap();
        assert!(!cfg.checksums);
        assert!(cfg.retry.is_none());
        let cfg = cfg.with_checksums(true).with_retry(RetryPolicy::new(5));
        assert!(cfg.checksums);
        assert_eq!(cfg.retry.unwrap().max_attempts, 5);
        assert_eq!(cfg.block_bytes, 64, "checksums must not change the logical block size");
    }

    #[test]
    fn retry_backoff_schedule_is_deterministic() {
        let p = RetryPolicy::new(4).with_backoff_micros(10);
        assert_eq!(p.delay_before(1).as_micros(), 10);
        assert_eq!(p.delay_before(2).as_micros(), 20);
        assert_eq!(p.delay_before(3).as_micros(), 40);
        assert_eq!(RetryPolicy::new(0).max_attempts, 1, "at least one attempt");
        assert_eq!(RetryPolicy::default().delay_before(3).as_micros(), 0);
    }

    #[test]
    fn cache_defaults_off_and_rounds_down_to_tracks() {
        let cfg = DiskConfig::new(4, 64).unwrap();
        assert_eq!(cfg.cache_bytes, 0);
        assert_eq!(cfg.cache_tracks(), 0);
        let cfg = cfg.with_cache(200);
        assert_eq!(cfg.cache_tracks(), 3, "200 bytes hold 3 whole 64-byte tracks");
        assert_eq!(cfg.with_cache(63).cache_tracks(), 0, "sub-track capacity leaves the cache off");
        assert_eq!(cfg.block_bytes, 64, "cache knob must not disturb the shape");
    }

    #[test]
    fn engine_and_pinning_default_off_and_are_overridable() {
        let cfg = DiskConfig::new(4, 64).unwrap();
        assert_eq!(cfg.engine, EngineKind::Threaded);
        assert!(!cfg.pin_workers);
        let cfg = cfg.with_engine(EngineKind::Uring).with_pinned_workers(true);
        assert_eq!(cfg.engine, EngineKind::Uring);
        assert!(cfg.pin_workers);
        assert_eq!(cfg.io_mode, IoMode::Parallel, "engine knob must not disturb io_mode");
        assert_eq!((cfg.num_disks, cfg.block_bytes), (4, 64), "shape unchanged");
    }

    #[test]
    fn block_and_op_arithmetic() {
        let cfg = DiskConfig::new(4, 64).unwrap();
        assert_eq!(cfg.blocks_for_bytes(0), 0);
        assert_eq!(cfg.blocks_for_bytes(1), 1);
        assert_eq!(cfg.blocks_for_bytes(64), 1);
        assert_eq!(cfg.blocks_for_bytes(65), 2);
        assert_eq!(cfg.ops_for_blocks(0), 0);
        assert_eq!(cfg.ops_for_blocks(4), 1);
        assert_eq!(cfg.ops_for_blocks(5), 2);
    }
}
