//! Error type for the disk substrate.

use std::fmt;
use std::io;

/// Errors raised by the disk-array substrate.
///
/// Marked `#[non_exhaustive]`: fault-model variants grow over time, so
/// downstream matches must keep a wildcard arm. Use [`DiskError::is_transient`]
/// to classify errors instead of matching variants exhaustively.
#[derive(Debug)]
#[non_exhaustive]
pub enum DiskError {
    /// A configuration parameter was invalid.
    InvalidConfig(&'static str),
    /// A request addressed a drive index `disk >= D`.
    DiskOutOfRange {
        /// Requested drive index.
        disk: usize,
        /// Number of drives in the array.
        num_disks: usize,
    },
    /// A single parallel I/O operation addressed the same drive twice —
    /// the model permits at most one track per disk per operation.
    StripeConflict {
        /// The drive that was addressed more than once.
        disk: usize,
    },
    /// A block had the wrong size for this array's track size `B`.
    BadBlockSize {
        /// Expected size (`B`).
        expected: usize,
        /// Actual buffer size.
        got: usize,
    },
    /// The array's capacity limit (if configured) was exceeded.
    CapacityExceeded {
        /// Drive that ran out of tracks.
        disk: usize,
        /// Configured maximum tracks per drive.
        max_tracks: usize,
    },
    /// An underlying OS I/O failure (file backend only).
    Io(io::Error),
    /// An OS I/O failure on one drive's dedicated worker thread (parallel
    /// file backend only). When several drives of a stripe fail at once,
    /// the error from the lowest drive index is reported, deterministically.
    WorkerIo {
        /// Drive whose worker hit the failure.
        disk: usize,
        /// The underlying OS error.
        source: io::Error,
    },
    /// A drive's I/O worker thread is gone (its channel disconnected) —
    /// the engine is unusable and the array should be rebuilt.
    WorkerLost {
        /// Drive whose worker terminated.
        disk: usize,
    },
    /// A checksummed block frame failed CRC verification on read.
    Corrupt {
        /// Drive holding the corrupt track.
        disk: usize,
        /// Track whose frame failed verification.
        track: usize,
    },
    /// A barrier (`sync()` or `begin_recovery_epoch()`) was reached while
    /// the caller still held unjoined stripe tickets. Barriers never drain
    /// tickets implicitly — every submitted stripe must be joined (or its
    /// ticket explicitly dropped) first, so pipelined callers that forget
    /// a drain point fail loudly instead of deadlocking or silently
    /// reordering against the barrier.
    UnjoinedTickets {
        /// Tickets submitted but neither joined nor dropped.
        outstanding: usize,
    },
}

impl DiskError {
    /// Whether the failure is transient: retrying the same transfer (or
    /// replaying the enclosing superstep) has a chance of succeeding.
    ///
    /// Configuration, addressing and capacity errors are deterministic and
    /// never transient; a lost worker thread is permanent for the lifetime
    /// of the engine. OS-level I/O failures and corrupt reads may be caused
    /// by transient media faults, so they are worth retrying.
    pub fn is_transient(&self) -> bool {
        matches!(self, DiskError::Io(_) | DiskError::WorkerIo { .. } | DiskError::Corrupt { .. })
    }
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::InvalidConfig(msg) => write!(f, "invalid disk configuration: {msg}"),
            DiskError::DiskOutOfRange { disk, num_disks } => {
                write!(f, "disk index {disk} out of range (array has {num_disks} drives)")
            }
            DiskError::StripeConflict { disk } => write!(
                f,
                "parallel I/O addressed drive {disk} more than once (model allows one track per disk per operation)"
            ),
            DiskError::BadBlockSize { expected, got } => {
                write!(f, "block size mismatch: expected {expected} bytes, got {got}")
            }
            DiskError::CapacityExceeded { disk, max_tracks } => {
                write!(f, "drive {disk} exceeded its capacity of {max_tracks} tracks")
            }
            DiskError::Io(e) => write!(f, "I/O error: {e}"),
            DiskError::WorkerIo { disk, source } => {
                write!(f, "I/O error on drive {disk}'s worker: {source}")
            }
            DiskError::WorkerLost { disk } => {
                write!(f, "drive {disk}'s I/O worker thread terminated")
            }
            DiskError::Corrupt { disk, track } => {
                write!(f, "checksum mismatch on drive {disk}, track {track}")
            }
            DiskError::UnjoinedTickets { outstanding } => {
                write!(
                    f,
                    "barrier reached with {outstanding} unjoined stripe ticket(s); join or drop every submitted stripe before sync()/begin_recovery_epoch()"
                )
            }
        }
    }
}

impl std::error::Error for DiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskError::Io(e) => Some(e),
            DiskError::WorkerIo { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for DiskError {
    fn from(e: io::Error) -> Self {
        DiskError::Io(e)
    }
}
