//! Write-back block cache: absorb reads of resident tracks and buffer
//! writes until the barrier flush.
//!
//! [`BlockCacheBackend`] is a [`DiskBackend`] decorator that sits at the
//! very top of the backend stack, directly under the
//! [`DiskArray`](crate::DiskArray) front-end — above retries and checksums
//! (`Cache(Retrying(Checksum(FaultInjecting(raw))))`) — so it caches
//! *logical* `B`-byte blocks and every miss or flush still passes through
//! the full fault-tolerance machinery below it.
//!
//! The cache changes wall clock only. The array counts parallel I/O at
//! submission, before the backend sees the request, so counted
//! [`IoStats`](crate::IoStats) are bit-identical with the cache on or off
//! by construction; absorbed traffic is tallied separately in
//! [`IoStats::cache_hit_blocks`](crate::IoStats::cache_hit_blocks) and
//! [`IoStats::cache_absorbed_writes`](crate::IoStats::cache_absorbed_writes),
//! exactly like `retried_blocks` tallies absorbed retry traffic.
//!
//! Determinism: the cache holds no randomness at all. Eviction is LRU over
//! a strictly increasing access counter (every access gets a unique tick,
//! so there are never ties), flushes walk the dirty set in sorted
//! `(track, disk)` order batched into legal one-track-per-drive stripes,
//! and an identical request sequence therefore produces an identical
//! backend I/O trace — the same contract `tests/file_backend.rs` asserts
//! for the I/O modes.

use crate::{DiskBackend, DiskResult};
use std::collections::{BTreeMap, HashMap};

/// One resident track.
struct CacheEntry {
    data: Vec<u8>,
    dirty: bool,
    /// Key into the LRU order map; unique per access.
    tick: u64,
}

/// A deterministic write-back cache over any [`DiskBackend`].
///
/// * **Reads** of resident tracks are served from memory (tallied as cache
///   hits); misses read through the inner backend — still as one `≤ D`-way
///   stripe for the missing subset — and allocate the fetched tracks.
/// * **Writes** are absorbed into the cache and marked dirty (tallied as
///   absorbed writes); they reach the inner backend only when evicted or
///   flushed.
/// * **`sync()`** flushes every dirty track and then syncs the inner
///   backend, so a durability barrier means the same thing with or
///   without the cache. Entries stay resident (clean) across a flush —
///   a warm cache keeps absorbing reads superstep after superstep.
/// * **Eviction** (capacity is a fixed number of whole tracks, ≥ 1) picks
///   the least-recently-used entry; a dirty victim is written back to the
///   inner backend first.
pub struct BlockCacheBackend<B: DiskBackend> {
    inner: B,
    capacity_tracks: usize,
    map: HashMap<(usize, usize), CacheEntry>,
    /// LRU order: access tick → resident key. `BTreeMap` keeps eviction
    /// (pop the smallest tick) deterministic and `O(log n)`.
    lru: BTreeMap<u64, (usize, usize)>,
    tick: u64,
    hits: u64,
    absorbed: u64,
    /// Per-drive high-water mark of absorbed writes, so
    /// [`DiskBackend::tracks_used`] accounts for tracks that have not been
    /// flushed yet.
    high_water: Vec<usize>,
}

impl<B: DiskBackend> BlockCacheBackend<B> {
    /// Wrap `inner` with a cache holding up to `capacity_tracks` whole
    /// tracks (clamped to at least 1).
    pub fn new(inner: B, capacity_tracks: usize) -> Self {
        let d = inner.num_disks();
        BlockCacheBackend {
            inner,
            capacity_tracks: capacity_tracks.max(1),
            map: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            hits: 0,
            absorbed: 0,
            high_water: vec![0; d],
        }
    }

    /// Tracks currently resident (for tests and capacity diagnostics).
    pub fn resident_tracks(&self) -> usize {
        self.map.len()
    }

    /// Tracks currently resident and dirty.
    pub fn dirty_tracks(&self) -> usize {
        self.map.values().filter(|e| e.dirty).count()
    }

    fn touch(&mut self, key: (usize, usize)) {
        let e = self.map.get_mut(&key).expect("touched key is resident");
        self.lru.remove(&e.tick);
        self.tick += 1;
        e.tick = self.tick;
        self.lru.insert(self.tick, key);
    }

    /// Evict the least-recently-used entry, writing it back if dirty.
    fn evict_one(&mut self) -> DiskResult<()> {
        let (_, key) = self.lru.pop_first().expect("evicting from a non-empty cache");
        let entry = self.map.remove(&key).expect("lru and map agree");
        if entry.dirty {
            self.inner.write_track(key.0, key.1, &entry.data)?;
        }
        Ok(())
    }

    /// Make `key` resident with `data`, evicting first when full. A write
    /// (`dirty = true`) marks the entry dirty; a read-allocate
    /// (`dirty = false`) must never clear an existing dirty mark.
    fn insert(&mut self, key: (usize, usize), data: Vec<u8>, dirty: bool) -> DiskResult<()> {
        if let Some(e) = self.map.get_mut(&key) {
            e.data = data;
            e.dirty |= dirty;
            self.lru.remove(&e.tick);
            self.tick += 1;
            e.tick = self.tick;
            self.lru.insert(self.tick, key);
            return Ok(());
        }
        if self.map.len() >= self.capacity_tracks {
            self.evict_one()?;
        }
        self.tick += 1;
        self.map.insert(key, CacheEntry { data, dirty, tick: self.tick });
        self.lru.insert(self.tick, key);
        Ok(())
    }

    fn absorb_write(&mut self, disk: usize, track: usize, data: &[u8]) -> DiskResult<()> {
        self.absorbed += 1;
        self.high_water[disk] = self.high_water[disk].max(track + 1);
        self.insert((disk, track), data.to_vec(), true)
    }
}

impl<B: DiskBackend> DiskBackend for BlockCacheBackend<B> {
    fn num_disks(&self) -> usize {
        self.inner.num_disks()
    }

    fn read_track(&mut self, disk: usize, track: usize, buf: &mut [u8]) -> DiskResult<()> {
        let key = (disk, track);
        if self.map.contains_key(&key) {
            self.touch(key);
            buf.copy_from_slice(&self.map[&key].data);
            self.hits += 1;
            return Ok(());
        }
        self.inner.read_track(disk, track, buf)?;
        self.insert(key, buf.to_vec(), false)
    }

    fn write_track(&mut self, disk: usize, track: usize, data: &[u8]) -> DiskResult<()> {
        self.absorb_write(disk, track, data)
    }

    fn read_stripe(&mut self, addrs: &[(usize, usize)], bufs: &mut [&mut [u8]]) -> DiskResult<()> {
        // Serve resident tracks from memory; fetch only the missing subset
        // from the inner backend, still as a single stripe so the engine's
        // D-way overlap is preserved for the part that does real I/O.
        let mut miss_addrs: Vec<(usize, usize)> = Vec::new();
        let mut miss_idx: Vec<usize> = Vec::new();
        for (i, &(disk, track)) in addrs.iter().enumerate() {
            let key = (disk, track);
            if self.map.contains_key(&key) {
                self.touch(key);
                bufs[i].copy_from_slice(&self.map[&key].data);
                self.hits += 1;
            } else {
                miss_addrs.push(key);
                miss_idx.push(i);
            }
        }
        if miss_addrs.is_empty() {
            return Ok(());
        }
        let block_bytes = bufs[miss_idx[0]].len();
        let mut fetched: Vec<Vec<u8>> = miss_addrs.iter().map(|_| vec![0u8; block_bytes]).collect();
        {
            let mut fb: Vec<&mut [u8]> = fetched.iter_mut().map(Vec::as_mut_slice).collect();
            self.inner.read_stripe(&miss_addrs, &mut fb)?;
        }
        for ((key, data), i) in miss_addrs.into_iter().zip(fetched).zip(miss_idx) {
            bufs[i].copy_from_slice(&data);
            self.insert(key, data, false)?;
        }
        Ok(())
    }

    fn write_stripe(&mut self, writes: &[(usize, usize, &[u8])]) -> DiskResult<()> {
        for &(disk, track, data) in writes {
            self.absorb_write(disk, track, data)?;
        }
        Ok(())
    }

    fn tracks_used(&self, disk: usize) -> usize {
        self.inner.tracks_used(disk).max(self.high_water[disk])
    }

    fn sync(&mut self) -> DiskResult<()> {
        self.flush_cache()?;
        self.inner.sync()
    }

    fn take_retried_blocks(&mut self) -> u64 {
        self.inner.take_retried_blocks()
    }

    fn fault_op_counts(&self) -> Option<Vec<u64>> {
        self.inner.fault_op_counts()
    }

    fn restore_fault_op_counts(&mut self, counts: &[u64]) {
        self.inner.restore_fault_op_counts(counts)
    }

    fn take_cache_hit_blocks(&mut self) -> u64 {
        std::mem::take(&mut self.hits) + self.inner.take_cache_hit_blocks()
    }

    fn take_cache_absorbed_writes(&mut self) -> u64 {
        std::mem::take(&mut self.absorbed) + self.inner.take_cache_absorbed_writes()
    }

    fn flush_cache(&mut self) -> DiskResult<()> {
        // Deterministic flush order: dirty keys sorted by (track, disk),
        // greedily batched into one-track-per-drive stripes. Sorting by
        // track first keeps consecutive entries on distinct drives for the
        // striped layouts the simulators produce, so flushes stay close to
        // fully D-way parallel on the engine below.
        let mut dirty: Vec<(usize, usize)> =
            self.map.iter().filter(|(_, e)| e.dirty).map(|(&k, _)| k).collect();
        if dirty.is_empty() {
            return Ok(());
        }
        dirty.sort_unstable_by_key(|&(disk, track)| (track, disk));
        let mut used = vec![false; self.high_water.len()];
        let mut stripe: Vec<(usize, usize, &[u8])> = Vec::new();
        for &(disk, track) in &dirty {
            if used[disk] || stripe.len() == used.len() {
                self.inner.write_stripe(&stripe)?;
                stripe.clear();
                used.fill(false);
            }
            used[disk] = true;
            stripe.push((disk, track, self.map[&(disk, track)].data.as_slice()));
        }
        if !stripe.is_empty() {
            self.inner.write_stripe(&stripe)?;
        }
        drop(stripe);
        // Entries stay resident and clean: a warm cache keeps serving
        // reads after the barrier.
        for key in dirty {
            self.map.get_mut(&key).expect("flushed key is resident").dirty = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryBackend;

    /// A [`MemoryBackend`] wrapper tallying how many track transfers
    /// actually reach it, so tests can prove what the cache absorbed.
    struct CountingBackend {
        inner: MemoryBackend,
        reads: u64,
        writes: u64,
    }

    impl CountingBackend {
        fn new(d: usize) -> Self {
            CountingBackend { inner: MemoryBackend::new(d), reads: 0, writes: 0 }
        }
    }

    impl DiskBackend for CountingBackend {
        fn num_disks(&self) -> usize {
            self.inner.num_disks()
        }
        fn read_track(&mut self, disk: usize, track: usize, buf: &mut [u8]) -> DiskResult<()> {
            self.reads += 1;
            self.inner.read_track(disk, track, buf)
        }
        fn write_track(&mut self, disk: usize, track: usize, data: &[u8]) -> DiskResult<()> {
            self.writes += 1;
            self.inner.write_track(disk, track, data)
        }
        fn tracks_used(&self, disk: usize) -> usize {
            self.inner.tracks_used(disk)
        }
    }

    fn cache(d: usize, capacity: usize) -> BlockCacheBackend<CountingBackend> {
        BlockCacheBackend::new(CountingBackend::new(d), capacity)
    }

    #[test]
    fn writes_are_absorbed_until_flush() {
        let mut c = cache(2, 8);
        c.write_track(0, 0, &[1u8; 8]).unwrap();
        c.write_track(1, 0, &[2u8; 8]).unwrap();
        assert_eq!(c.inner.writes, 0, "writes buffered, none landed");
        assert_eq!(c.dirty_tracks(), 2);
        assert_eq!(c.take_cache_absorbed_writes(), 2);
        c.flush_cache().unwrap();
        assert_eq!(c.inner.writes, 2, "flush lands every dirty track");
        assert_eq!(c.dirty_tracks(), 0);
        // Flushing again is free: nothing is dirty.
        c.flush_cache().unwrap();
        assert_eq!(c.inner.writes, 2);
        let mut buf = [0u8; 8];
        c.inner.read_track(1, 0, &mut buf).unwrap();
        assert_eq!(buf, [2u8; 8]);
    }

    #[test]
    fn resident_reads_never_touch_the_inner_backend() {
        let mut c = cache(2, 8);
        c.write_track(0, 3, &[7u8; 8]).unwrap();
        let mut buf = [0u8; 8];
        for _ in 0..5 {
            c.read_track(0, 3, &mut buf).unwrap();
            assert_eq!(buf, [7u8; 8]);
        }
        assert_eq!(c.inner.reads, 0);
        assert_eq!(c.take_cache_hit_blocks(), 5);
        assert_eq!(c.take_cache_hit_blocks(), 0, "draining resets the tally");
    }

    #[test]
    fn misses_read_allocate_and_stay_warm_across_flush() {
        let mut c = cache(1, 4);
        c.inner.write_track(0, 0, &[9u8; 4]).unwrap();
        c.inner.writes = 0;
        let mut buf = [0u8; 4];
        c.read_track(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [9u8; 4]);
        assert_eq!(c.inner.reads, 1, "first read misses");
        c.flush_cache().unwrap();
        c.read_track(0, 0, &mut buf).unwrap();
        assert_eq!(c.inner.reads, 1, "entry survives the flush and hits");
        assert_eq!(c.take_cache_hit_blocks(), 1);
    }

    #[test]
    fn never_written_tracks_read_zero_through_the_cache() {
        let mut c = cache(2, 4);
        let mut buf = [0xAAu8; 8];
        c.read_track(1, 5, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
        // The zero track was allocated: the second read hits.
        c.read_track(1, 5, &mut buf).unwrap();
        assert_eq!(c.inner.reads, 1);
        assert_eq!(c.take_cache_hit_blocks(), 1);
    }

    #[test]
    fn lru_eviction_is_deterministic_and_writes_back_dirty_victims() {
        let mut c = cache(1, 2);
        c.write_track(0, 0, &[1u8; 4]).unwrap();
        c.write_track(0, 1, &[2u8; 4]).unwrap();
        // Touch track 0 so track 1 is the LRU victim.
        let mut buf = [0u8; 4];
        c.read_track(0, 0, &mut buf).unwrap();
        c.write_track(0, 2, &[3u8; 4]).unwrap();
        assert_eq!(c.resident_tracks(), 2);
        assert_eq!(c.inner.writes, 1, "the dirty victim was written back");
        c.inner.read_track(0, 1, &mut buf).unwrap();
        assert_eq!(buf, [2u8; 4], "victim content landed");
        // Tracks 0 and 2 are still resident and serve hits.
        c.take_cache_hit_blocks();
        c.read_track(0, 0, &mut buf).unwrap();
        c.read_track(0, 2, &mut buf).unwrap();
        assert_eq!(c.take_cache_hit_blocks(), 2);
    }

    #[test]
    fn mixed_stripe_fetches_only_the_missing_subset() {
        let mut c = cache(3, 8);
        c.write_track(0, 0, &[1u8; 4]).unwrap();
        c.inner.write_track(1, 0, &[2u8; 4]).unwrap();
        c.inner.write_track(2, 0, &[3u8; 4]).unwrap();
        c.inner.writes = 0;
        let mut b0 = [0u8; 4];
        let mut b1 = [0u8; 4];
        let mut b2 = [0u8; 4];
        {
            let mut bufs: Vec<&mut [u8]> = vec![&mut b0, &mut b1, &mut b2];
            c.read_stripe(&[(0, 0), (1, 0), (2, 0)], &mut bufs).unwrap();
        }
        assert_eq!((b0, b1, b2), ([1u8; 4], [2u8; 4], [3u8; 4]));
        assert_eq!(c.inner.reads, 2, "only the two misses reached the backend");
        assert_eq!(c.take_cache_hit_blocks(), 1);
        // Dirty residents must be served from the cache, not stale media.
        c.write_track(1, 0, &[9u8; 4]).unwrap();
        let mut buf = [0u8; 4];
        c.read_track(1, 0, &mut buf).unwrap();
        assert_eq!(buf, [9u8; 4]);
    }

    #[test]
    fn flush_batches_into_legal_stripes_in_deterministic_order() {
        let mut c = cache(2, 16);
        // Three tracks on drive 0, one on drive 1: a legal flush needs at
        // least three stripes, each touching each drive at most once.
        for t in 0..3 {
            c.write_track(0, t, &[t as u8 + 1; 4]).unwrap();
        }
        c.write_track(1, 0, &[9u8; 4]).unwrap();
        c.flush_cache().unwrap();
        assert_eq!(c.inner.writes, 4);
        let mut buf = [0u8; 4];
        for t in 0..3 {
            c.inner.read_track(0, t, &mut buf).unwrap();
            assert_eq!(buf, [t as u8 + 1; 4]);
        }
        c.inner.read_track(1, 0, &mut buf).unwrap();
        assert_eq!(buf, [9u8; 4]);
    }

    #[test]
    fn tracks_used_accounts_for_unflushed_writes() {
        let mut c = cache(2, 8);
        c.write_track(0, 6, &[1u8; 4]).unwrap();
        assert_eq!(c.tracks_used(0), 7, "high-water covers buffered writes");
        assert_eq!(c.tracks_used(1), 0);
        c.flush_cache().unwrap();
        assert_eq!(c.tracks_used(0), 7);
    }

    #[test]
    fn sync_implies_flush() {
        let mut c = cache(1, 4);
        c.write_track(0, 0, &[5u8; 4]).unwrap();
        c.sync().unwrap();
        assert_eq!(c.inner.writes, 1);
        assert_eq!(c.dirty_tracks(), 0);
    }
}
