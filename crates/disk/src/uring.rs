//! Kernel-side `io_uring` engine behind the file backend (Linux only,
//! opt-in via the `io-uring` cargo feature).
//!
//! The threaded [`IoEngine`](crate::engine) realizes the model's `D`-way
//! parallel I/O operation with one worker thread per drive. This module
//! maps the *same* submit/join ticket contract onto kernel submission
//! queues instead: a stripe becomes `≤ D` SQEs pushed in one batch (one
//! `io_uring_enter` syscall instead of `D` channel hand-offs and thread
//! wake-ups), and a single reaper thread completes CQEs into the very
//! reply channels the tickets already join on. Everything above the
//! backend — counted [`crate::IoStats`], the decorator stack, recovery —
//! is untouched by construction; the engine choice is wall-clock only.
//!
//! Contract parity with the threaded engine (asserted by the shared
//! fingerprint tests):
//!
//! * **Per-drive FIFO** — `io_uring` itself does not order independent
//!   SQEs, so the engine keeps a software queue per drive and has at most
//!   one operation in flight per drive at a time; queued operations are
//!   released in submission order as completions arrive. Cross-drive
//!   overlap (the `D`-way parallelism that the model counts) is preserved;
//!   intra-drive serialization matches the one-worker-per-drive engine
//!   exactly.
//! * **Deterministic errors** — a failed transfer surfaces as
//!   [`DiskError::WorkerIo`] tagged with the drive; joins report the
//!   lowest-indexed failing drive, and deferred errors are sticky across
//!   `sync_all`, because the tickets are literally the same type completed
//!   through the same channels.
//! * **Short transfers** — reads and writes are resubmitted for the
//!   remainder (the kernel may return short on either), and reads past EOF
//!   zero-fill, matching `read_full_track`.
//!
//! No external crate is involved: the three `io_uring` syscalls and the
//! ring mmaps are called directly through the C library `std` already
//! links. [`EngineKind::Uring`](crate::EngineKind) is a *preference* — if
//! ring setup fails at runtime (old kernel, `io_uring_disabled` sysctl,
//! seccomp), [`FileBackend`](crate::FileBackend) silently falls back to
//! the threaded engine, so requesting it is always safe.

#[cfg(all(target_os = "linux", feature = "io-uring"))]
mod imp {
    use crate::engine::{PendingSlots, ReadTicket, WriteTicket};
    use crate::{DiskError, DiskResult};
    use crossbeam_channel::{bounded, Sender};
    use std::collections::{HashMap, VecDeque};
    use std::fs::File;
    use std::io;
    use std::os::raw::{c_int, c_long, c_uint, c_void};
    use std::os::unix::io::AsRawFd;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};
    use std::thread::JoinHandle;

    const SYS_IO_URING_SETUP: c_long = 425;
    const SYS_IO_URING_ENTER: c_long = 426;

    const IORING_OP_NOP: u8 = 0;
    const IORING_OP_FSYNC: u8 = 3;
    const IORING_OP_READ: u8 = 22;
    const IORING_OP_WRITE: u8 = 23;
    const IORING_FSYNC_DATASYNC: u32 = 1;
    const IORING_ENTER_GETEVENTS: c_uint = 1;
    const IORING_FEAT_SINGLE_MMAP: u32 = 1;
    const IORING_OFF_SQ_RING: i64 = 0;
    const IORING_OFF_CQ_RING: i64 = 0x0800_0000;
    const IORING_OFF_SQES: i64 = 0x1000_0000;

    const PROT_READ: c_int = 1;
    const PROT_WRITE: c_int = 2;
    const MAP_SHARED: c_int = 1;
    const EINTR: c_int = 4;

    /// `user_data` of the wake-up NOP the destructor submits; never in the
    /// in-flight table.
    const WAKE_ID: u64 = u64::MAX;

    extern "C" {
        fn syscall(num: c_long, ...) -> c_long;
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn __errno_location() -> *mut c_int;
    }

    fn errno() -> c_int {
        // SAFETY: glibc and musl both expose the thread-local errno cell.
        unsafe { *__errno_location() }
    }

    /// `struct io_sqring_offsets` (kernel ABI, 40 bytes).
    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct SqOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        flags: u32,
        dropped: u32,
        array: u32,
        resv1: u32,
        user_addr: u64,
    }

    /// `struct io_cqring_offsets` (kernel ABI, 40 bytes).
    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct CqOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        overflow: u32,
        cqes: u32,
        flags: u32,
        resv1: u32,
        user_addr: u64,
    }

    /// `struct io_uring_params` (kernel ABI, 120 bytes).
    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct UringParams {
        sq_entries: u32,
        cq_entries: u32,
        flags: u32,
        sq_thread_cpu: u32,
        sq_thread_idle: u32,
        features: u32,
        wq_fd: u32,
        resv: [u32; 3],
        sq_off: SqOffsets,
        cq_off: CqOffsets,
    }

    /// `struct io_uring_sqe` (kernel ABI, 64 bytes).
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Sqe {
        opcode: u8,
        flags: u8,
        ioprio: u16,
        fd: i32,
        off: u64,
        addr: u64,
        len: u32,
        op_flags: u32,
        user_data: u64,
        buf_index: u16,
        personality: u16,
        splice_fd_in: i32,
        addr3: u64,
        resv: u64,
    }

    impl Sqe {
        fn zeroed() -> Self {
            // SAFETY: all-zero bytes are a valid (NOP) SQE.
            unsafe { std::mem::zeroed() }
        }
    }

    /// `struct io_uring_cqe` (kernel ABI, 16 bytes).
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Cqe {
        user_data: u64,
        res: i32,
        flags: u32,
    }

    /// The mmapped ring: raw pointers into the three kernel-shared
    /// regions, plus the constants read once at setup.
    struct Ring {
        fd: c_int,
        sq_ptr: *mut u8,
        sq_len: usize,
        cq_ptr: *mut u8,
        cq_len: usize,
        sqes: *mut Sqe,
        sqes_len: usize,
        single_mmap: bool,
        sq_khead: *const AtomicU32,
        sq_ktail: *const AtomicU32,
        sq_mask: u32,
        sq_entries: u32,
        sq_array: *mut u32,
        cq_khead: *const AtomicU32,
        cq_ktail: *const AtomicU32,
        cq_mask: u32,
        cqes: *const Cqe,
    }

    // SAFETY: the raw pointers address kernel-shared mmaps that live as
    // long as the Ring; all mutation of SQ state happens under the
    // engine's mutex, the CQ head is advanced only by the reaper thread,
    // and the head/tail words are accessed through atomics.
    unsafe impl Send for Ring {}
    unsafe impl Sync for Ring {}

    impl Drop for Ring {
        fn drop(&mut self) {
            // SAFETY: the pointers came from successful mmaps of these
            // exact lengths; the fd is the setup fd, closed last.
            unsafe {
                munmap(self.sqes.cast(), self.sqes_len);
                munmap(self.sq_ptr.cast(), self.sq_len);
                if !self.single_mmap {
                    munmap(self.cq_ptr.cast(), self.cq_len);
                }
                close(self.fd);
            }
        }
    }

    impl Ring {
        /// `io_uring_setup` + the two/three mmaps. Returns `None` on any
        /// failure (the caller falls back to the threaded engine).
        fn new(entries: u32) -> Option<Ring> {
            let mut p = UringParams::default();
            // SAFETY: p is a live, correctly-sized io_uring_params.
            let fd = unsafe {
                syscall(SYS_IO_URING_SETUP, entries as c_uint, &mut p as *mut UringParams)
            };
            if fd < 0 {
                return None;
            }
            let fd = fd as c_int;
            let sq_len = p.sq_off.array as usize + p.sq_entries as usize * 4;
            let cq_len = p.cq_off.cqes as usize + p.cq_entries as usize * 16;
            let single = p.features & IORING_FEAT_SINGLE_MMAP != 0;
            let map = |len: usize, off: i64| -> Option<*mut u8> {
                // SAFETY: mapping the ring fd at a kernel-defined offset.
                let ptr = unsafe {
                    mmap(std::ptr::null_mut(), len, PROT_READ | PROT_WRITE, MAP_SHARED, fd, off)
                };
                (ptr as isize != -1).then_some(ptr.cast())
            };
            let sq_map_len = if single { sq_len.max(cq_len) } else { sq_len };
            let Some(sq_ptr) = map(sq_map_len, IORING_OFF_SQ_RING) else {
                // SAFETY: fd is the ring fd we just created.
                unsafe { close(fd) };
                return None;
            };
            let cq_ptr = if single {
                sq_ptr
            } else {
                match map(cq_len, IORING_OFF_CQ_RING) {
                    Some(ptr) => ptr,
                    None => {
                        // SAFETY: undoing the successful sq mmap + setup.
                        unsafe {
                            munmap(sq_ptr.cast(), sq_map_len);
                            close(fd);
                        }
                        return None;
                    }
                }
            };
            let sqes_len = p.sq_entries as usize * std::mem::size_of::<Sqe>();
            let Some(sqes) = map(sqes_len, IORING_OFF_SQES) else {
                // SAFETY: undoing the successful mmaps + setup.
                unsafe {
                    munmap(sq_ptr.cast(), sq_map_len);
                    if !single {
                        munmap(cq_ptr.cast(), cq_len);
                    }
                    close(fd);
                }
                return None;
            };
            // SAFETY: every offset below is inside the freshly mapped
            // regions, as defined by the kernel's io_uring_params.
            unsafe {
                Some(Ring {
                    fd,
                    sq_ptr,
                    sq_len: sq_map_len,
                    cq_ptr,
                    cq_len,
                    sqes: sqes.cast(),
                    sqes_len,
                    single_mmap: single,
                    sq_khead: sq_ptr.add(p.sq_off.head as usize).cast(),
                    sq_ktail: sq_ptr.add(p.sq_off.tail as usize).cast(),
                    sq_mask: *sq_ptr.add(p.sq_off.ring_mask as usize).cast::<u32>(),
                    sq_entries: p.sq_entries,
                    sq_array: sq_ptr.add(p.sq_off.array as usize).cast(),
                    cq_khead: cq_ptr.add(p.cq_off.head as usize).cast(),
                    cq_ktail: cq_ptr.add(p.cq_off.tail as usize).cast(),
                    cq_mask: *cq_ptr.add(p.cq_off.ring_mask as usize).cast::<u32>(),
                    cqes: cq_ptr.add(p.cq_off.cqes as usize).cast(),
                })
            }
        }

        /// `io_uring_enter`. Returns the syscall result (≥ 0 = SQEs
        /// consumed) or `-errno`.
        fn enter(&self, to_submit: u32, min_complete: u32, flags: c_uint) -> c_long {
            // SAFETY: plain syscall on the ring fd; no pointers passed.
            let ret = unsafe {
                syscall(
                    SYS_IO_URING_ENTER,
                    self.fd,
                    to_submit as c_uint,
                    min_complete as c_uint,
                    flags,
                    std::ptr::null::<c_void>(),
                    0usize,
                )
            };
            if ret < 0 {
                -(errno() as c_long)
            } else {
                ret
            }
        }
    }

    /// One queued-or-in-flight operation. Buffers are owned here so their
    /// heap storage stays stable while the kernel reads/writes it — the
    /// entry may move between the per-drive queue and the in-flight table,
    /// but `Vec`'s allocation does not move with it.
    enum Op {
        /// Read `buf.len()` bytes at `offset`; `filled` tracks short-read
        /// resubmission progress.
        Read { offset: u64, filled: usize, buf: Vec<u8>, reply: Sender<DiskResult<Vec<u8>>> },
        /// Write `data` at `offset`; `written` tracks short-write
        /// resubmission progress.
        Write { offset: u64, written: usize, data: Vec<u8>, reply: Sender<DiskResult<()>> },
        /// `fdatasync` the drive's file.
        Sync { reply: Sender<DiskResult<()>> },
    }

    /// Per-drive FIFO: at most one operation in flight per drive, the rest
    /// wait here in submission order.
    struct DriveQueue {
        busy: bool,
        queue: VecDeque<Op>,
    }

    /// Everything mutated under the one engine mutex: local SQ tail, the
    /// id → operation table, and the per-drive FIFOs.
    struct State {
        sq_tail: u32,
        next_id: u64,
        in_flight: HashMap<u64, (usize, Op)>,
        drives: Vec<DriveQueue>,
        shutdown: bool,
    }

    /// The parts shared between the engine handle and the reaper thread.
    struct Shared {
        ring: Ring,
        fds: Vec<c_int>,
        state: Mutex<State>,
    }

    impl Shared {
        /// Queue `op` on `disk`, writing an SQE immediately when the drive
        /// is idle. Returns the number of SQEs written (0 or 1); the
        /// caller batches one `enter` per stripe.
        fn submit_op(&self, st: &mut State, disk: usize, op: Op) -> u32 {
            if st.drives[disk].busy {
                st.drives[disk].queue.push_back(op);
                0
            } else {
                st.drives[disk].busy = true;
                self.write_sqe(st, disk, op);
                1
            }
        }

        /// Materialize `op` as an SQE (fresh `user_data`, pointers into
        /// the op's owned buffer) and push it onto the SQ.
        fn write_sqe(&self, st: &mut State, disk: usize, op: Op) {
            let id = st.next_id;
            st.next_id += 1;
            let mut sqe = Sqe::zeroed();
            sqe.fd = self.fds[disk];
            sqe.user_data = id;
            match &op {
                Op::Read { offset, filled, buf, .. } => {
                    sqe.opcode = IORING_OP_READ;
                    sqe.off = offset + *filled as u64;
                    sqe.addr = buf.as_ptr() as u64 + *filled as u64;
                    sqe.len = (buf.len() - filled) as u32;
                }
                Op::Write { offset, written, data, .. } => {
                    sqe.opcode = IORING_OP_WRITE;
                    sqe.off = offset + *written as u64;
                    sqe.addr = data.as_ptr() as u64 + *written as u64;
                    sqe.len = (data.len() - written) as u32;
                }
                Op::Sync { .. } => {
                    sqe.opcode = IORING_OP_FSYNC;
                    sqe.op_flags = IORING_FSYNC_DATASYNC;
                }
            }
            st.in_flight.insert(id, (disk, op));
            self.push_sqe(st, sqe);
        }

        /// Copy one SQE into the next SQ slot and publish the new tail.
        /// The ring is sized so in-flight ≤ drives + 1 < entries; the
        /// assert documents the invariant rather than handling overflow.
        fn push_sqe(&self, st: &mut State, sqe: Sqe) {
            let r = &self.ring;
            // SAFETY: khead points at the kernel-shared head word.
            let head = unsafe { (*r.sq_khead).load(Ordering::Acquire) };
            assert!(
                st.sq_tail.wrapping_sub(head) < r.sq_entries,
                "io_uring SQ overflow: ring sized below in-flight bound"
            );
            let idx = (st.sq_tail & r.sq_mask) as usize;
            // SAFETY: idx < sq_entries; the slot is free because the
            // kernel consumed it (head has passed it) or it was never
            // used, and only the mutex holder writes SQ slots.
            unsafe {
                *r.sqes.add(idx) = sqe;
                *r.sq_array.add(idx) = idx as u32;
            }
            st.sq_tail = st.sq_tail.wrapping_add(1);
            // SAFETY: ktail points at the kernel-shared tail word; the
            // Release pairs with the kernel's acquire of the SQE writes.
            unsafe { (*r.sq_ktail).store(st.sq_tail, Ordering::Release) };
        }

        /// Tell the kernel about `n` freshly pushed SQEs. Called with the
        /// state lock held so submission counts can't interleave.
        fn enter_submit(&self, mut n: u32) {
            while n > 0 {
                let ret = self.ring.enter(n, 0, 0);
                if ret >= 0 {
                    n -= ret as u32;
                } else if ret == -(EINTR as c_long) {
                    continue;
                } else {
                    // Post-setup submission cannot fail in practice
                    // (no SQPOLL, ring sized above the in-flight bound);
                    // treat it like the threaded engine treats a failed
                    // thread spawn.
                    panic!(
                        "io_uring_enter(submit) failed: {}",
                        io::Error::from_raw_os_error(-ret as i32)
                    );
                }
            }
        }

        /// Handle one completion: reply, resubmit a short transfer, or
        /// release the drive's next queued op. Returns SQEs written.
        fn complete(&self, st: &mut State, user_data: u64, res: i32) -> u32 {
            let Some((disk, op)) = st.in_flight.remove(&user_data) else {
                return 0; // wake-up NOP or an abandoned sentinel
            };
            let worker_io =
                |res: i32| DiskError::WorkerIo { disk, source: io::Error::from_raw_os_error(-res) };
            match op {
                Op::Read { offset, mut filled, mut buf, reply } => {
                    if res < 0 {
                        let _ = reply.send(Err(worker_io(res)));
                    } else if res == 0 {
                        // EOF: the rest of the track was never written.
                        buf[filled..].fill(0);
                        let _ = reply.send(Ok(buf));
                    } else {
                        filled += res as usize;
                        if filled < buf.len() {
                            st.drives[disk].busy = true;
                            self.write_sqe(st, disk, Op::Read { offset, filled, buf, reply });
                            return 1;
                        }
                        let _ = reply.send(Ok(buf));
                    }
                }
                Op::Write { offset, mut written, data, reply } => {
                    if res < 0 {
                        let _ = reply.send(Err(worker_io(res)));
                    } else {
                        written += res as usize;
                        if written < data.len() {
                            st.drives[disk].busy = true;
                            self.write_sqe(st, disk, Op::Write { offset, written, data, reply });
                            return 1;
                        }
                        let _ = reply.send(Ok(()));
                    }
                }
                Op::Sync { reply } => {
                    let _ = reply.send(if res < 0 { Err(worker_io(res)) } else { Ok(()) });
                }
            }
            // The drive finished an op: release the next queued one.
            if let Some(next) = st.drives[disk].queue.pop_front() {
                self.write_sqe(st, disk, next);
                1
            } else {
                st.drives[disk].busy = false;
                0
            }
        }

        /// The reaper loop: drain available CQEs, complete them, then
        /// block in `io_uring_enter(GETEVENTS)` for more.
        fn reap_loop(&self) {
            loop {
                let batch = self.drain_cqes();
                if batch.is_empty() {
                    {
                        let st = self.state.lock().unwrap();
                        if st.shutdown && st.in_flight.is_empty() {
                            return;
                        }
                    }
                    let ret = self.ring.enter(0, 1, IORING_ENTER_GETEVENTS);
                    if ret < 0 && ret != -(EINTR as c_long) {
                        // Cannot wait on the ring any more: avoid a busy
                        // spin; completions (if any) drain next iteration.
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                } else {
                    let mut st = self.state.lock().unwrap();
                    let mut fresh = 0;
                    for (user_data, res) in batch {
                        fresh += self.complete(&mut st, user_data, res);
                    }
                    if fresh > 0 {
                        self.enter_submit(fresh);
                    }
                    if st.shutdown && st.in_flight.is_empty() {
                        return;
                    }
                }
            }
        }

        /// Pop every available CQE (only the reaper advances the head).
        fn drain_cqes(&self) -> Vec<(u64, i32)> {
            let r = &self.ring;
            // SAFETY: kernel-shared CQ words; Acquire on the tail pairs
            // with the kernel's release of the CQE contents.
            let tail = unsafe { (*r.cq_ktail).load(Ordering::Acquire) };
            let mut head = unsafe { (*r.cq_khead).load(Ordering::Relaxed) };
            let mut out = Vec::new();
            while head != tail {
                // SAFETY: (head & mask) < cq_entries and the CQE is
                // published (head precedes the acquired tail).
                let cqe = unsafe { *r.cqes.add((head & r.cq_mask) as usize) };
                out.push((cqe.user_data, cqe.res));
                head = head.wrapping_add(1);
            }
            if !out.is_empty() {
                // SAFETY: Release hands the consumed slots back.
                unsafe { (*r.cq_khead).store(head, Ordering::Release) };
            }
            out
        }
    }

    /// Kernel-ring analogue of the threaded `IoEngine`; same submit/join
    /// ticket contract (see the module docs for the parity argument).
    pub(crate) struct UringEngine {
        shared: Arc<Shared>,
        reaper: Option<JoinHandle<()>>,
        /// Keeps the drive fds open for the engine's lifetime.
        _files: Vec<File>,
        block_bytes: usize,
    }

    impl UringEngine {
        /// Set up a ring over `files` and start the reaper thread. On any
        /// setup failure the files are handed back so the caller can fall
        /// back to the threaded engine.
        pub(crate) fn spawn(
            files: Vec<File>,
            block_bytes: usize,
            pin: bool,
        ) -> Result<Self, Vec<File>> {
            if !uring_available() {
                return Err(files);
            }
            // Per-drive FIFO bounds in-flight ops to one per drive, plus
            // the shutdown NOP; round up generously.
            let entries = (files.len() as u32 + 2).next_power_of_two().max(8);
            let Some(ring) = Ring::new(entries) else {
                return Err(files);
            };
            let fds = files.iter().map(|f| f.as_raw_fd()).collect();
            let drives =
                files.iter().map(|_| DriveQueue { busy: false, queue: VecDeque::new() }).collect();
            let shared = Arc::new(Shared {
                ring,
                fds,
                state: Mutex::new(State {
                    sq_tail: 0,
                    next_id: 0,
                    in_flight: HashMap::new(),
                    drives,
                    shutdown: false,
                }),
            });
            let reaper_shared = Arc::clone(&shared);
            let reaper = std::thread::Builder::new()
                .name("em-disk-uring".into())
                .spawn(move || {
                    if pin {
                        crate::pin_thread_to_core(0);
                    }
                    reaper_shared.reap_loop();
                })
                .expect("spawn io_uring reaper thread");
            Ok(UringEngine { shared, reaper: Some(reaper), _files: files, block_bytes })
        }

        /// Dispatch one read per listed drive as a batch of SQEs and
        /// return the joinable ticket (same lost-drive and deferred-error
        /// contract as the threaded engine).
        pub(crate) fn submit_read_stripe(
            &self,
            addrs: &[(usize, usize)],
            block_bytes: usize,
        ) -> ReadTicket {
            let mut slots: PendingSlots<Vec<u8>> = Vec::with_capacity(addrs.len());
            let mut st = self.shared.state.lock().unwrap();
            let mut fresh = 0;
            for &(disk, track) in addrs {
                if disk >= self.shared.fds.len() {
                    slots.push((disk, None)); // joins as WorkerLost
                    continue;
                }
                let (tx, rx) = bounded(1);
                let op = Op::Read {
                    offset: (track * self.block_bytes) as u64,
                    filled: 0,
                    buf: vec![0u8; block_bytes],
                    reply: tx,
                };
                fresh += self.shared.submit_op(&mut st, disk, op);
                slots.push((disk, Some(rx)));
            }
            if fresh > 0 {
                self.shared.enter_submit(fresh);
            }
            drop(st);
            ReadTicket::pending(slots)
        }

        /// Dispatch one write per listed drive as a batch of SQEs and
        /// return the joinable ticket.
        pub(crate) fn submit_write_stripe(&self, writes: &[(usize, usize, &[u8])]) -> WriteTicket {
            let mut slots: PendingSlots<()> = Vec::with_capacity(writes.len());
            let mut st = self.shared.state.lock().unwrap();
            let mut fresh = 0;
            for &(disk, track, data) in writes {
                if disk >= self.shared.fds.len() {
                    slots.push((disk, None));
                    continue;
                }
                let (tx, rx) = bounded(1);
                let op = Op::Write {
                    offset: (track * self.block_bytes) as u64,
                    written: 0,
                    data: data.to_vec(),
                    reply: tx,
                };
                fresh += self.shared.submit_op(&mut st, disk, op);
                slots.push((disk, Some(rx)));
            }
            if fresh > 0 {
                self.shared.enter_submit(fresh);
            }
            drop(st);
            WriteTicket::pending(slots)
        }

        /// Submit + join (request order, lowest failing drive wins).
        pub(crate) fn read_stripe(
            &self,
            addrs: &[(usize, usize)],
            bufs: &mut [&mut [u8]],
        ) -> DiskResult<()> {
            debug_assert_eq!(addrs.len(), bufs.len());
            let block_bytes = bufs.first().map_or(0, |b| b.len());
            let data = self.submit_read_stripe(addrs, block_bytes).join()?;
            for (buf, track) in bufs.iter_mut().zip(data) {
                buf.copy_from_slice(&track);
            }
            Ok(())
        }

        /// Submit + join.
        pub(crate) fn write_stripe(&self, writes: &[(usize, usize, &[u8])]) -> DiskResult<()> {
            self.submit_write_stripe(writes).join()
        }

        /// `fdatasync` every drive; the per-drive FIFO guarantees each
        /// sync lands after that drive's earlier queued writes, exactly
        /// like the threaded engine's queued `Sync` command.
        pub(crate) fn sync_all(&self) -> DiskResult<()> {
            let mut replies = Vec::with_capacity(self.shared.fds.len());
            {
                let mut st = self.shared.state.lock().unwrap();
                let mut fresh = 0;
                for disk in 0..self.shared.fds.len() {
                    let (tx, rx) = bounded(1);
                    fresh += self.shared.submit_op(&mut st, disk, Op::Sync { reply: tx });
                    replies.push((disk, rx));
                }
                if fresh > 0 {
                    self.shared.enter_submit(fresh);
                }
            }
            let mut first_err: Option<DiskError> = None;
            for (disk, rx) in replies {
                match rx.recv() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                    Err(_) => {
                        if first_err.is_none() {
                            first_err = Some(DiskError::WorkerLost { disk });
                        }
                    }
                }
            }
            match first_err {
                None => Ok(()),
                Some(e) => Err(e),
            }
        }
    }

    impl Drop for UringEngine {
        fn drop(&mut self) {
            {
                let mut st = self.shared.state.lock().unwrap();
                st.shutdown = true;
                // Wake the reaper (it may be blocked in GETEVENTS) with a
                // NOP; it drains any remaining completions and exits.
                let mut sqe = Sqe::zeroed();
                sqe.opcode = IORING_OP_NOP;
                sqe.user_data = WAKE_ID;
                self.shared.push_sqe(&mut st, sqe);
                self.shared.enter_submit(1);
            }
            if let Some(handle) = self.reaper.take() {
                let _ = handle.join();
            }
        }
    }

    /// One cached probe: can this process set up an `io_uring` at all?
    pub fn uring_available() -> bool {
        static PROBE: OnceLock<bool> = OnceLock::new();
        *PROBE.get_or_init(|| {
            let mut p = UringParams::default();
            // SAFETY: p is a live, correctly-sized io_uring_params.
            let fd =
                unsafe { syscall(SYS_IO_URING_SETUP, 4 as c_uint, &mut p as *mut UringParams) };
            if fd < 0 {
                return false;
            }
            // SAFETY: fd is the probe ring we just created.
            unsafe { close(fd as c_int) };
            true
        })
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::fs::OpenOptions;

        fn tmp_files(name: &str, n: usize) -> (std::path::PathBuf, Vec<File>) {
            let dir = std::env::temp_dir().join(format!("em-uring-{}-{name}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let files = (0..n)
                .map(|i| {
                    OpenOptions::new()
                        .read(true)
                        .write(true)
                        .create(true)
                        .truncate(true)
                        .open(dir.join(format!("disk-{i}.bin")))
                        .unwrap()
                })
                .collect();
            (dir, files)
        }

        #[test]
        fn abi_struct_sizes_match_the_kernel() {
            assert_eq!(std::mem::size_of::<UringParams>(), 120);
            assert_eq!(std::mem::size_of::<Sqe>(), 64);
            assert_eq!(std::mem::size_of::<Cqe>(), 16);
        }

        #[test]
        fn stripe_round_trip_through_the_ring() {
            let (dir, files) = tmp_files("rt", 3);
            let Ok(engine) = UringEngine::spawn(files, 16, false) else {
                eprintln!("io_uring unavailable; skipping");
                return;
            };
            engine
                .write_stripe(&[(0, 0, &[1u8; 16]), (1, 2, &[2u8; 16]), (2, 1, &[3u8; 16])])
                .unwrap();
            let mut a = [0u8; 16];
            let mut b = [0u8; 16];
            let mut c = [0u8; 16];
            {
                let mut bufs: Vec<&mut [u8]> = vec![&mut a[..], &mut b[..], &mut c[..]];
                engine.read_stripe(&[(0, 0), (1, 2), (2, 1)], &mut bufs).unwrap();
            }
            assert_eq!(a, [1u8; 16]);
            assert_eq!(b, [2u8; 16]);
            assert_eq!(c, [3u8; 16]);
            engine.sync_all().unwrap();
            drop(engine); // joins the reaper
            std::fs::remove_dir_all(&dir).ok();
        }

        #[test]
        fn unwritten_tracks_read_zero_through_the_ring() {
            let (dir, files) = tmp_files("zero", 2);
            let Ok(engine) = UringEngine::spawn(files, 8, false) else {
                eprintln!("io_uring unavailable; skipping");
                return;
            };
            engine.write_stripe(&[(0, 3, &[9u8; 8])]).unwrap();
            let mut hole = [0xAAu8; 8];
            let mut never = [0xBBu8; 8];
            {
                let mut bufs: Vec<&mut [u8]> = vec![&mut hole[..], &mut never[..]];
                engine.read_stripe(&[(0, 1), (1, 7)], &mut bufs).unwrap();
            }
            assert_eq!(hole, [0u8; 8]);
            assert_eq!(never, [0u8; 8]);
            std::fs::remove_dir_all(&dir).ok();
        }

        #[test]
        fn per_drive_fifo_applies_same_track_writes_in_submission_order() {
            let (dir, files) = tmp_files("fifo", 2);
            let Ok(engine) = UringEngine::spawn(files, 16, false) else {
                eprintln!("io_uring unavailable; skipping");
                return;
            };
            for round in 0..50u8 {
                let old = [round; 16];
                let new = [round.wrapping_add(1); 16];
                let w_old: Vec<(usize, usize, &[u8])> = vec![(0, 0, &old), (1, 0, &old)];
                let w_new: Vec<(usize, usize, &[u8])> = vec![(0, 0, &new), (1, 0, &new)];
                let t1 = engine.submit_write_stripe(&w_old);
                let t2 = engine.submit_write_stripe(&w_new);
                let t3 = engine.submit_read_stripe(&[(0, 0), (1, 0)], 16);
                t1.join().unwrap();
                t2.join().unwrap();
                let data = t3.join().unwrap();
                assert_eq!(data, vec![new.to_vec(); 2], "later submission must win");
            }
            std::fs::remove_dir_all(&dir).ok();
        }

        #[test]
        fn out_of_range_drive_joins_as_worker_lost() {
            let (dir, files) = tmp_files("lost", 1);
            let Ok(engine) = UringEngine::spawn(files, 8, false) else {
                eprintln!("io_uring unavailable; skipping");
                return;
            };
            let t = engine.submit_read_stripe(&[(0, 0), (5, 0)], 8);
            assert!(matches!(t.join(), Err(DiskError::WorkerLost { disk: 5 })));
            std::fs::remove_dir_all(&dir).ok();
        }

        #[test]
        fn deferred_error_is_sticky_across_sync_all() {
            let dir = std::env::temp_dir().join(format!("em-uring-ro-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let files: Vec<File> = (0..2)
                .map(|i| {
                    let path = dir.join(format!("disk-{i}.bin"));
                    std::fs::write(&path, []).unwrap();
                    OpenOptions::new().read(true).open(path).unwrap()
                })
                .collect();
            let Ok(engine) = UringEngine::spawn(files, 8, false) else {
                eprintln!("io_uring unavailable; skipping");
                return;
            };
            let ticket = engine.submit_write_stripe(&[(1, 0, &[7u8; 8])]);
            engine.sync_all().unwrap();
            match ticket.join() {
                Err(DiskError::WorkerIo { disk: 1, .. }) => {}
                other => panic!("expected WorkerIo on drive 1 after sync, got {other:?}"),
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[cfg(all(target_os = "linux", feature = "io-uring"))]
pub use imp::uring_available;
#[cfg(all(target_os = "linux", feature = "io-uring"))]
pub(crate) use imp::UringEngine;

/// Whether an `io_uring` can be set up by this process. Always `false`
/// when the `io-uring` cargo feature is disabled or off Linux; with the
/// feature on, a cached one-time probe asks the kernel. When this is
/// `false`, [`EngineKind::Uring`](crate::EngineKind) silently falls back
/// to the threaded engine.
#[cfg(not(all(target_os = "linux", feature = "io-uring")))]
pub fn uring_available() -> bool {
    false
}
