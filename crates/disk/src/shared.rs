//! A shared multi-tenant disk substrate: one physical store, many
//! disjoint track regions, fair stripe scheduling.
//!
//! [`SharedDiskSubstrate`] owns `D` physical drives (an in-memory store in
//! this version) whose track space is carved into disjoint per-tenant
//! *regions*. Each region is exposed as a [`RegionBackend`] — an ordinary
//! [`DiskBackend`] whose track addresses are offset by the region base and
//! bounded by the region length — so every tenant builds its own private
//! [`crate::DiskArray`] (with its own decorator stack, counters and
//! recovery journal) over its slice of the shared media.
//!
//! Two properties make the substrate safe to meter:
//!
//! * **Isolation** — regions are disjoint by construction, and a transfer
//!   addressed past the region end fails with
//!   [`DiskError::CapacityExceeded`] before touching the store. A tenant
//!   cannot read, write or even observe another tenant's tracks.
//! * **Counting above sharing** — each tenant's [`crate::IoStats`] are
//!   counted by the tenant's own `DiskArray` at submission time, *above*
//!   this layer. Co-tenancy can therefore delay a transfer (fairness is a
//!   wall-clock concern) but can never change what any tenant's counted
//!   parallel I/O looks like: it is bit-identical to the same run on a
//!   private array.
//!
//! Concurrent stripes from different tenants are serialized by a **fair
//! round-robin arbiter**: when several tenants are waiting for the media,
//! grants cycle through the waiters in tenant-id order, so a chatty tenant
//! cannot starve a quiet one. A tenant alone on the substrate is granted
//! back-to-back slots without waiting.

use crate::backend::{DiskBackend, MemoryBackend};
use crate::{DiskError, DiskResult};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Book-keeping guarded by the substrate mutex.
struct SharedState {
    /// The physical media. Memory-backed: per-track frames may have
    /// different lengths, so tenants with different checksum settings can
    /// coexist in disjoint regions.
    store: MemoryBackend,
    /// Next never-allocated track (regions grow from track 0 upward).
    frontier: usize,
    /// Released regions available for reuse, as `(base, len)` pairs.
    free: Vec<(usize, usize)>,
    /// Tenant-id allocator for [`RegionBackend`] handles.
    next_tenant: usize,
    /// Tenants currently blocked waiting for a stripe slot.
    waiting: Vec<usize>,
    /// Tenant that held the most recent slot (round-robin pivot).
    last_granted: usize,
    /// Total stripe slots granted since creation (observability).
    slots_granted: u64,
}

struct SharedInner {
    num_disks: usize,
    tracks_per_disk: usize,
    state: Mutex<SharedState>,
    turnstile: Condvar,
}

impl SharedInner {
    /// Lock the shared state, ignoring poison (a tenant that panicked
    /// while holding the media lock must not wedge every other tenant —
    /// the store itself is only mutated through infallible memory writes).
    fn lock(&self) -> MutexGuard<'_, SharedState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A shared disk array substrate serving many tenants at once.
///
/// Cloning the handle is cheap (it is an [`Arc`]); all clones refer to the
/// same physical store, region map and arbiter.
///
/// ```
/// use em_disk::{DiskArray, DiskConfig, SharedDiskSubstrate};
///
/// let shared = SharedDiskSubstrate::new(4, 1024);
/// let cfg = DiskConfig::new(4, 64).unwrap();
///
/// // Two tenants, disjoint 128-track regions on the same media.
/// let a = shared.reserve_region(128).unwrap();
/// let b = shared.reserve_region(128).unwrap();
/// let mut arr_a = DiskArray::with_backend(cfg, Box::new(shared.region(a, 128)));
/// let mut arr_b = DiskArray::with_backend(cfg, Box::new(shared.region(b, 128)));
///
/// let stripe: Vec<_> = (0..4)
///     .map(|d| (d, 0usize, em_disk::Block::from_bytes_padded(&[d as u8], 64)))
///     .collect();
/// arr_a.write_stripe(&stripe).unwrap();
/// // Tenant B's track 0 is untouched: per-tenant counting and content
/// // are exactly as on a private array.
/// assert_eq!(arr_a.stats().parallel_ops, 1);
/// assert_eq!(arr_b.stats().parallel_ops, 0);
/// ```
#[derive(Clone)]
pub struct SharedDiskSubstrate {
    inner: Arc<SharedInner>,
}

impl SharedDiskSubstrate {
    /// A substrate of `num_disks` drives with `tracks_per_disk` tracks of
    /// reservable space on each.
    pub fn new(num_disks: usize, tracks_per_disk: usize) -> Self {
        SharedDiskSubstrate {
            inner: Arc::new(SharedInner {
                num_disks,
                tracks_per_disk,
                state: Mutex::new(SharedState {
                    store: MemoryBackend::new(num_disks),
                    frontier: 0,
                    free: Vec::new(),
                    next_tenant: 0,
                    waiting: Vec::new(),
                    last_granted: 0,
                    slots_granted: 0,
                }),
                turnstile: Condvar::new(),
            }),
        }
    }

    /// `D` — the number of physical drives.
    pub fn num_disks(&self) -> usize {
        self.inner.num_disks
    }

    /// Total reservable tracks per drive.
    pub fn tracks_per_disk(&self) -> usize {
        self.inner.tracks_per_disk
    }

    /// Tracks per drive not currently reserved by any region.
    pub fn tracks_free(&self) -> usize {
        let st = self.inner.lock();
        self.inner.tracks_per_disk - st.frontier
            + st.free.iter().map(|&(_, len)| len).sum::<usize>()
    }

    /// Reserve a region of `tracks` tracks on every drive, returning its
    /// base track, or `None` when no contiguous region of that size is
    /// available. Released regions (see
    /// [`SharedDiskSubstrate::release_region`]) are reused first-fit
    /// before the frontier grows.
    pub fn reserve_region(&self, tracks: usize) -> Option<usize> {
        if tracks == 0 {
            return None;
        }
        let mut st = self.inner.lock();
        if let Some(pos) = st.free.iter().position(|&(_, len)| len >= tracks) {
            let (base, len) = st.free.remove(pos);
            if len > tracks {
                st.free.push((base + tracks, len - tracks));
            }
            return Some(base);
        }
        if st.frontier + tracks > self.inner.tracks_per_disk {
            return None;
        }
        let base = st.frontier;
        st.frontier += tracks;
        Some(base)
    }

    /// Return a previously reserved region to the free pool. The caller
    /// must no longer hold a [`RegionBackend`] over it; the tracks are
    /// *not* scrubbed, so reuse relies on the next tenant's own formatting
    /// discipline (the simulators rewrite every region they allocate).
    pub fn release_region(&self, base: usize, tracks: usize) {
        if tracks == 0 {
            return;
        }
        let mut st = self.inner.lock();
        // Coalesce with the frontier when possible so back-to-back
        // reserve/release cycles do not fragment the track space.
        if base + tracks == st.frontier {
            st.frontier = base;
            // Fold in any free blocks now adjacent to the new frontier.
            loop {
                let frontier = st.frontier;
                match st.free.iter().position(|&(b, len)| b + len == frontier) {
                    Some(pos) => {
                        let (b, _) = st.free.remove(pos);
                        st.frontier = b;
                    }
                    None => break,
                }
            }
        } else {
            st.free.push((base, tracks));
        }
    }

    /// A [`DiskBackend`] view of the region `[base, base + tracks)` with a
    /// fresh tenant id for arbitration. Track 0 of the view is physical
    /// track `base`; addresses at or past `tracks` fail with
    /// [`DiskError::CapacityExceeded`].
    pub fn region(&self, base: usize, tracks: usize) -> RegionBackend {
        let tenant = {
            let mut st = self.inner.lock();
            let id = st.next_tenant;
            st.next_tenant += 1;
            id
        };
        RegionBackend {
            shared: self.inner.clone(),
            tenant,
            base,
            max_tracks: tracks,
            tracks_used: vec![0; self.inner.num_disks],
        }
    }

    /// Total fair stripe slots granted since creation.
    pub fn slots_granted(&self) -> u64 {
        self.inner.lock().slots_granted
    }
}

/// Next tenant to grant: the smallest waiting id strictly greater than
/// `last`, wrapping to the smallest waiting id — i.e. round-robin in
/// tenant-id order over the tenants actually waiting.
fn next_grant(waiting: &[usize], last: usize) -> Option<usize> {
    let above = waiting.iter().copied().filter(|&t| t > last).min();
    above.or_else(|| waiting.iter().copied().min())
}

/// One tenant's bounded, offset view of a [`SharedDiskSubstrate`].
///
/// Implements [`DiskBackend`], so it slots under a private
/// [`crate::DiskArray`] exactly like a raw [`MemoryBackend`] would — the
/// tenant's decorators (checksums, retry, cache) and counters all live in
/// the tenant's own array, above this view. Each stripe acquires one fair
/// arbiter slot for the whole `≤ D`-track transfer; single-track calls
/// acquire one slot per track.
pub struct RegionBackend {
    shared: Arc<SharedInner>,
    tenant: usize,
    base: usize,
    max_tracks: usize,
    tracks_used: Vec<usize>,
}

impl RegionBackend {
    /// The region's base track on the physical store.
    pub fn base_track(&self) -> usize {
        self.base
    }

    /// The region's length in tracks per drive.
    pub fn max_tracks(&self) -> usize {
        self.max_tracks
    }

    /// The arbiter tenant id of this view.
    pub fn tenant_id(&self) -> usize {
        self.tenant
    }

    fn check(&self, disk: usize, track: usize) -> DiskResult<()> {
        if track >= self.max_tracks {
            return Err(DiskError::CapacityExceeded { disk, max_tracks: self.max_tracks });
        }
        Ok(())
    }

    /// Run `op` on the physical store while holding one fair stripe slot.
    ///
    /// Waiting tenants are granted the media round-robin in tenant-id
    /// order ([`next_grant`]); the slot is held for the duration of the
    /// physical transfer, which is the model's "one parallel I/O at a
    /// time on the media" semantics.
    fn with_slot<R>(&self, op: impl FnOnce(&mut MemoryBackend) -> R) -> R {
        let mut st = self.shared.lock();
        st.waiting.push(self.tenant);
        while next_grant(&st.waiting, st.last_granted) != Some(self.tenant) {
            st = self.shared.turnstile.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        let pos = st.waiting.iter().position(|&t| t == self.tenant).expect("registered above");
        st.waiting.swap_remove(pos);
        st.last_granted = self.tenant;
        st.slots_granted += 1;
        let out = op(&mut st.store);
        drop(st);
        self.shared.turnstile.notify_all();
        out
    }

    fn note_write(&mut self, disk: usize, track: usize) {
        self.tracks_used[disk] = self.tracks_used[disk].max(track + 1);
    }
}

impl DiskBackend for RegionBackend {
    fn num_disks(&self) -> usize {
        self.shared.num_disks
    }

    fn read_track(&mut self, disk: usize, track: usize, buf: &mut [u8]) -> DiskResult<()> {
        self.check(disk, track)?;
        let base = self.base;
        self.with_slot(|store| store.read_track(disk, base + track, buf))
    }

    fn write_track(&mut self, disk: usize, track: usize, data: &[u8]) -> DiskResult<()> {
        self.check(disk, track)?;
        let base = self.base;
        self.with_slot(|store| store.write_track(disk, base + track, data))?;
        self.note_write(disk, track);
        Ok(())
    }

    fn read_stripe(&mut self, addrs: &[(usize, usize)], bufs: &mut [&mut [u8]]) -> DiskResult<()> {
        for &(disk, track) in addrs {
            self.check(disk, track)?;
        }
        let base = self.base;
        self.with_slot(|store| -> DiskResult<()> {
            for (&(disk, track), buf) in addrs.iter().zip(bufs.iter_mut()) {
                store.read_track(disk, base + track, buf)?;
            }
            Ok(())
        })
    }

    fn write_stripe(&mut self, writes: &[(usize, usize, &[u8])]) -> DiskResult<()> {
        for &(disk, track, _) in writes {
            self.check(disk, track)?;
        }
        let base = self.base;
        self.with_slot(|store| -> DiskResult<()> {
            for &(disk, track, data) in writes {
                store.write_track(disk, base + track, data)?;
            }
            Ok(())
        })?;
        for &(disk, track, _) in writes {
            self.note_write(disk, track);
        }
        Ok(())
    }

    fn tracks_used(&self, disk: usize) -> usize {
        self.tracks_used[disk]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Block, DiskArray, DiskConfig};

    fn cfg(d: usize, b: usize) -> DiskConfig {
        DiskConfig::new(d, b).unwrap()
    }

    fn stripe(d: usize, track: usize, tag: u8, b: usize) -> Vec<(usize, usize, Block)> {
        (0..d).map(|disk| (disk, track, Block::from_bytes_padded(&[tag], b))).collect()
    }

    #[test]
    fn regions_are_disjoint_and_isolated() {
        let shared = SharedDiskSubstrate::new(2, 64);
        let a = shared.reserve_region(8).unwrap();
        let b = shared.reserve_region(8).unwrap();
        assert_ne!(a, b);
        let mut arr_a = DiskArray::with_backend(cfg(2, 32), Box::new(shared.region(a, 8)));
        let mut arr_b = DiskArray::with_backend(cfg(2, 32), Box::new(shared.region(b, 8)));
        arr_a.write_stripe(&stripe(2, 0, 0xAA, 32)).unwrap();
        arr_b.write_stripe(&stripe(2, 0, 0xBB, 32)).unwrap();
        let got_a = arr_a.read_stripe(&[(0, 0), (1, 0)]).unwrap();
        let got_b = arr_b.read_stripe(&[(0, 0), (1, 0)]).unwrap();
        assert_eq!(got_a[0].as_bytes()[0], 0xAA);
        assert_eq!(got_b[0].as_bytes()[0], 0xBB);
        // Per-tenant counting is private.
        assert_eq!(arr_a.stats().parallel_ops, 2);
        assert_eq!(arr_b.stats().parallel_ops, 2);
    }

    #[test]
    fn out_of_region_access_is_a_typed_capacity_error() {
        let shared = SharedDiskSubstrate::new(2, 64);
        let base = shared.reserve_region(4).unwrap();
        let mut region = shared.region(base, 4);
        let mut buf = [0u8; 32];
        assert!(region.read_track(0, 3, &mut buf).is_ok());
        let err = region.read_track(0, 4, &mut buf).unwrap_err();
        assert!(matches!(err, DiskError::CapacityExceeded { max_tracks: 4, .. }));
        let err = region.write_track(1, 100, &buf).unwrap_err();
        assert!(matches!(err, DiskError::CapacityExceeded { max_tracks: 4, .. }));
    }

    #[test]
    fn reservation_exhaustion_and_release_reuse() {
        let shared = SharedDiskSubstrate::new(1, 10);
        let a = shared.reserve_region(6).unwrap();
        let b = shared.reserve_region(4).unwrap();
        assert_eq!(shared.tracks_free(), 0);
        assert_eq!(shared.reserve_region(1), None);
        shared.release_region(a, 6);
        assert_eq!(shared.tracks_free(), 6);
        // First-fit reuse of the released block.
        let c = shared.reserve_region(3).unwrap();
        assert_eq!(c, a);
        let d = shared.reserve_region(3).unwrap();
        assert_eq!(d, a + 3);
        assert_eq!(shared.reserve_region(1), None);
        // Releasing the tail region rolls the frontier back.
        shared.release_region(b, 4);
        shared.release_region(d, 3);
        assert_eq!(shared.reserve_region(7).unwrap(), 3);
    }

    #[test]
    fn zero_track_region_is_rejected() {
        let shared = SharedDiskSubstrate::new(1, 10);
        assert_eq!(shared.reserve_region(0), None);
    }

    #[test]
    fn region_counted_io_matches_private_array() {
        // The same operation sequence on a region-backed array and on a
        // private memory array produces identical IoStats and bytes.
        let shared = SharedDiskSubstrate::new(3, 32);
        let base = shared.reserve_region(16).unwrap();
        let mut on_region = DiskArray::with_backend(cfg(3, 64), Box::new(shared.region(base, 16)));
        let mut private = DiskArray::new_memory(cfg(3, 64));
        for arr in [&mut on_region, &mut private] {
            arr.write_stripe(&stripe(3, 0, 1, 64)).unwrap();
            arr.write_stripe(&stripe(3, 5, 2, 64)).unwrap();
            let _ = arr.read_stripe(&[(0, 0), (2, 5)]).unwrap();
        }
        assert_eq!(on_region.stats(), private.stats());
        let a = on_region.read_stripe(&[(1, 5)]).unwrap();
        let b = private.read_stripe(&[(1, 5)]).unwrap();
        assert_eq!(a[0].as_bytes(), b[0].as_bytes());
    }

    #[test]
    fn round_robin_grant_order() {
        // With waiters {1, 2, 5} the grants cycle 1 → 2 → 5 → 1 …
        assert_eq!(next_grant(&[5, 1, 2], 0), Some(1));
        assert_eq!(next_grant(&[5, 1, 2], 1), Some(2));
        assert_eq!(next_grant(&[5, 1, 2], 2), Some(5));
        assert_eq!(next_grant(&[5, 1, 2], 5), Some(1));
        assert_eq!(next_grant(&[], 3), None);
        // A lone waiter is always next, regardless of the pivot.
        assert_eq!(next_grant(&[7], 7), Some(7));
    }

    #[test]
    fn concurrent_tenants_make_progress_and_stay_isolated() {
        let shared = SharedDiskSubstrate::new(2, 256);
        let rounds = 50usize;
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let shared = shared.clone();
                scope.spawn(move || {
                    let base = shared.reserve_region(32).unwrap();
                    let mut arr =
                        DiskArray::with_backend(cfg(2, 32), Box::new(shared.region(base, 32)));
                    for r in 0..rounds {
                        let tag = (t * rounds + r) as u8;
                        arr.write_stripe(&stripe(2, r % 32, tag, 32)).unwrap();
                        let got = arr.read_stripe(&[(0, r % 32), (1, r % 32)]).unwrap();
                        assert_eq!(got[0].as_bytes()[0], tag, "tenant {t} round {r}");
                        assert_eq!(got[1].as_bytes()[0], tag, "tenant {t} round {r}");
                    }
                    assert_eq!(arr.stats().parallel_ops, 2 * rounds as u64);
                });
            }
        });
        // Every stripe acquired exactly one slot.
        assert_eq!(shared.slots_granted(), 4 * 2 * rounds as u64);
    }
}
