//! Best-effort CPU affinity for worker threads.
//!
//! Pinning is a wall-clock-only knob behind
//! [`DiskConfig::pin_workers`](crate::DiskConfig::pin_workers): drive
//! workers and compute-pool workers ask to stay on one core so large-λ,
//! large-`D` sweeps measure transfer overlap instead of scheduler
//! migrations. The request is advisory — on platforms without thread
//! affinity, or when the kernel refuses (cpuset restrictions, sandboxes),
//! the thread simply runs unpinned. Nothing behavioural may depend on the
//! outcome, which is why the helper returns a `bool` nobody is required
//! to check.
//!
//! The Linux implementation calls `sched_setaffinity(2)` directly through
//! the C library `std` already links; no external crate is involved.

/// Linux `sched_setaffinity` FFI: a `cpu_set_t` is a fixed 1024-bit mask
/// (128 bytes) on glibc and musl alike.
#[cfg(target_os = "linux")]
mod sys {
    /// 1024 CPUs — the glibc `CPU_SETSIZE` default.
    pub const SETSIZE_WORDS: usize = 1024 / 64;

    extern "C" {
        /// `pid == 0` targets the calling thread.
        pub fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
}

/// Best-effort pin the calling thread to `core` (modulo the mask size).
/// Returns whether the kernel accepted the request; `false` (unsupported
/// platform, restricted cpuset, core out of range) leaves the thread
/// unpinned and is always safe to ignore.
#[cfg(target_os = "linux")]
pub fn pin_thread_to_core(core: usize) -> bool {
    let mut mask = [0u64; sys::SETSIZE_WORDS];
    let bit = core % (sys::SETSIZE_WORDS * 64);
    mask[bit / 64] = 1u64 << (bit % 64);
    // SAFETY: the mask is a valid, live 128-byte buffer and pid 0 is the
    // calling thread; the call writes nothing through the pointer.
    unsafe { sys::sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
}

/// Best-effort pin the calling thread to `core` — no-op on platforms
/// without thread affinity (always returns `false`).
#[cfg(not(target_os = "linux"))]
pub fn pin_thread_to_core(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_never_panics_and_work_proceeds_either_way() {
        // The kernel may refuse (sandboxed cpuset); either outcome is fine.
        let _ = pin_thread_to_core(0);
        let _ = pin_thread_to_core(usize::MAX); // wraps into the mask
        let t = std::thread::spawn(|| {
            pin_thread_to_core(1);
            21u64 * 2
        });
        assert_eq!(t.join().unwrap(), 42);
    }
}
