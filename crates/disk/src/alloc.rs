//! Track allocation.
//!
//! The simulation reserves two kinds of disk space:
//!
//! * **Regions** — fixed areas of `t` consecutive tracks *at the same
//!   positions on every drive* (contexts and reorganized message groups in
//!   standard consecutive format). These come from a bump allocator shared
//!   by all drives so region base tracks line up across the array.
//! * **Scratch tracks** — single tracks allocated on a *specific* drive as
//!   message blocks arrive during the Writing Phase (standard linked
//!   format: "whenever we write a block of bucket i to disk D_j, we
//!   allocate a free track on D_j"). Freed scratch tracks are recycled
//!   through per-drive free lists.

/// Allocator of tracks for an array of `D` drives.
#[derive(Debug, Clone)]
pub struct TrackAllocator {
    /// Next unallocated track per drive.
    next: Vec<usize>,
    /// Recycled single tracks per drive.
    free: Vec<Vec<usize>>,
}

impl TrackAllocator {
    /// A fresh allocator for `num_disks` drives, starting at track 0.
    pub fn new(num_disks: usize) -> Self {
        TrackAllocator { next: vec![0; num_disks], free: vec![Vec::new(); num_disks] }
    }

    /// Number of drives managed.
    pub fn num_disks(&self) -> usize {
        self.next.len()
    }

    /// Reserve `tracks_per_disk` consecutive tracks at a common base track
    /// on *every* drive; returns the base track.
    ///
    /// The base is the maximum of the per-drive frontiers, so previously
    /// allocated scratch tracks below it stay valid.
    pub fn reserve_region(&mut self, tracks_per_disk: usize) -> usize {
        let base = self.next.iter().copied().max().unwrap_or(0);
        for n in self.next.iter_mut() {
            *n = base + tracks_per_disk;
        }
        base
    }

    /// Allocate one scratch track on drive `disk`, reusing a freed track if
    /// available.
    pub fn alloc_track(&mut self, disk: usize) -> usize {
        if let Some(t) = self.free[disk].pop() {
            return t;
        }
        let t = self.next[disk];
        self.next[disk] += 1;
        t
    }

    /// Return a scratch track to drive `disk`'s free list.
    pub fn free_track(&mut self, disk: usize, track: usize) {
        debug_assert!(track < self.next[disk], "freeing unallocated track");
        self.free[disk].push(track);
    }

    /// Return many scratch tracks at once.
    pub fn free_tracks<I: IntoIterator<Item = (usize, usize)>>(&mut self, iter: I) {
        for (disk, track) in iter {
            self.free_track(disk, track);
        }
    }

    /// Current allocation frontier (high-water mark) of drive `disk`.
    pub fn frontier(&self, disk: usize) -> usize {
        self.next[disk]
    }

    /// Largest frontier across all drives — the array's disk-space usage in
    /// tracks per drive, the quantity bounded by `O(vμ/DB)` in Lemma 1.
    pub fn max_frontier(&self) -> usize {
        self.next.iter().copied().max().unwrap_or(0)
    }

    /// Snapshot the allocator's full state (per-drive frontiers and free
    /// lists) for a durable checkpoint.
    pub fn export_state(&self) -> (Vec<usize>, Vec<Vec<usize>>) {
        (self.next.clone(), self.free.clone())
    }

    /// Restore a state previously exported with
    /// [`TrackAllocator::export_state`]. The drive count must match.
    ///
    /// # Panics
    /// Panics if either vector's length differs from `num_disks()`.
    pub fn restore_state(&mut self, next: Vec<usize>, free: Vec<Vec<usize>>) {
        assert_eq!(next.len(), self.next.len(), "allocator drive count mismatch");
        assert_eq!(free.len(), self.free.len(), "allocator drive count mismatch");
        self.next = next;
        self.free = free;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_aligned_across_disks() {
        let mut a = TrackAllocator::new(3);
        let r0 = a.reserve_region(10);
        assert_eq!(r0, 0);
        let r1 = a.reserve_region(5);
        assert_eq!(r1, 10);
        assert_eq!(a.max_frontier(), 15);
    }

    #[test]
    fn scratch_allocation_is_per_disk() {
        let mut a = TrackAllocator::new(2);
        assert_eq!(a.alloc_track(0), 0);
        assert_eq!(a.alloc_track(0), 1);
        assert_eq!(a.alloc_track(1), 0);
        // A region reserved afterwards starts above every frontier.
        let base = a.reserve_region(4);
        assert_eq!(base, 2);
        assert_eq!(a.frontier(0), 6);
        assert_eq!(a.frontier(1), 6);
    }

    #[test]
    fn freed_tracks_are_recycled() {
        let mut a = TrackAllocator::new(1);
        let t0 = a.alloc_track(0);
        let t1 = a.alloc_track(0);
        a.free_track(0, t0);
        assert_eq!(a.alloc_track(0), t0);
        a.free_tracks([(0, t1)]);
        assert_eq!(a.alloc_track(0), t1);
        assert_eq!(a.max_frontier(), 2);
    }
}
