//! The disk array front-end: validated, counted parallel I/O.

use crate::checkpoint::{JournalContents, JournalFile};
use crate::{
    Block, BlockCacheBackend, ChecksumBackend, DiskBackend, DiskConfig, DiskError, DiskResult,
    FaultInjectingBackend, FaultPlan, FileBackend, IoStats, MemoryBackend, Pipeline, ReadTicket,
    RetryingBackend, WriteTicket, CRC_BYTES,
};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// An array of `D` track-addressed drives with blocked, `D`-way-parallel
/// I/O — the storage half of one EM-BSP processor.
///
/// Every operation is validated against the model's rules:
///
/// * blocks are exactly `B` bytes;
/// * one parallel operation touches **at most one track per drive**;
/// * each operation costs one unit (`G` time), *no matter how many drives
///   it uses* — so leaving drives idle is a measurable waste.
///
/// ```
/// use em_disk::{Block, DiskArray, DiskConfig};
///
/// let mut arr = DiskArray::new_memory(DiskConfig::new(4, 64).unwrap());
/// // One parallel I/O writes a block to each of the 4 drives.
/// let stripe: Vec<_> = (0..4)
///     .map(|d| (d, 0usize, Block::from_bytes_padded(&[d as u8], 64)))
///     .collect();
/// arr.write_stripe(&stripe).unwrap();
/// assert_eq!(arr.stats().parallel_ops, 1);
/// assert_eq!(arr.stats().blocks_written, 4);
/// ```
pub struct DiskArray {
    cfg: DiskConfig,
    backend: Box<dyn DiskBackend>,
    stats: IoStats,
    /// Optional capacity limit, for failure-injection tests.
    max_tracks: Option<usize>,
    /// Scratch marker reused across stripe validations.
    seen: Vec<u64>,
    epoch: u64,
    /// Pre-image undo log for the current recovery epoch, if one is open.
    journal: Option<RecoveryJournal>,
    /// Durable mirror of the recovery journal: pre-images are appended to
    /// this file *before* the overwrite they protect is submitted
    /// (log-before-data), so a killed process can undo a partial superstep
    /// back to its last barrier. Attached only for checkpointed runs.
    durable: Option<JournalFile>,
    /// Free list of pre-image buffers, recycled when an epoch closes so
    /// steady-state recovery journaling stops allocating per track.
    pre_image_pool: Vec<Vec<u8>>,
    /// Reusable address staging for [`DiskArray::read_blocks_batched`].
    addr_scratch: Vec<(usize, usize)>,
    /// Reusable index staging for [`DiskArray::read_blocks_batched`].
    idx_scratch: Vec<usize>,
    /// Live count of stripe tickets handed out by the submit calls and
    /// neither joined nor dropped yet. Barriers check it so pipelined
    /// callers that reach `sync()`/`begin_recovery_epoch()` with work
    /// still in their window fail with a typed
    /// [`DiskError::UnjoinedTickets`] instead of an implicit drain.
    outstanding: Arc<AtomicUsize>,
}

/// Undo log for one recovery epoch (one compound superstep): the content
/// each written track had when the epoch began, plus the counted stats at
/// that point so a rollback can restore them.
struct RecoveryJournal {
    pre: HashMap<(usize, usize), Vec<u8>>,
    order: Vec<(usize, usize)>,
    stats_at_begin: IoStats,
}

impl DiskArray {
    /// Create an array over an in-memory backend.
    pub fn new_memory(cfg: DiskConfig) -> Self {
        Self::new_memory_with_faults(cfg, None)
    }

    /// Create an in-memory array with an optional seeded [`FaultPlan`]
    /// injected beneath the checksum and retry layers of `cfg`.
    pub fn new_memory_with_faults(cfg: DiskConfig, plan: Option<FaultPlan>) -> Self {
        let backend = Box::new(MemoryBackend::new(cfg.num_disks));
        Self::with_backend_and_faults(cfg, backend, plan)
    }

    /// Create an array backed by one file per drive inside `dir`, honouring
    /// `cfg.io_mode` (per-drive worker threads when [`crate::IoMode::Parallel`]).
    pub fn new_file<P: AsRef<Path>>(cfg: DiskConfig, dir: P) -> DiskResult<Self> {
        Self::new_file_with_faults(cfg, dir, None)
    }

    /// Create a file-backed array with an optional seeded [`FaultPlan`]
    /// injected beneath the checksum and retry layers of `cfg`.
    pub fn new_file_with_faults<P: AsRef<Path>>(
        cfg: DiskConfig,
        dir: P,
        plan: Option<FaultPlan>,
    ) -> DiskResult<Self> {
        let backend = Box::new(FileBackend::create_with_opts(
            dir,
            cfg.num_disks,
            Self::storage_block_bytes(&cfg),
            cfg.io_mode,
            cfg.engine,
            cfg.pin_workers,
        )?);
        Ok(Self::with_backend_and_faults(cfg, backend, plan))
    }

    /// Reattach an array to the drive files a previous process left in
    /// `dir` — the recovery counterpart of [`DiskArray::new_file`]. The
    /// files are opened without truncation; every `disk-<i>.bin` must
    /// exist.
    pub fn open_file<P: AsRef<Path>>(cfg: DiskConfig, dir: P) -> DiskResult<Self> {
        Self::open_file_with_faults(cfg, dir, None)
    }

    /// [`DiskArray::open_file`] with an optional seeded [`FaultPlan`].
    ///
    /// The plan's schedule is keyed by per-drive operation counters that
    /// start at zero in the fresh backend; a resumed run must restore the
    /// counters persisted at the last barrier (see
    /// [`DiskArray::restore_fault_op_counts`]) so it observes the same
    /// remaining schedule as the uninterrupted run.
    pub fn open_file_with_faults<P: AsRef<Path>>(
        cfg: DiskConfig,
        dir: P,
        plan: Option<FaultPlan>,
    ) -> DiskResult<Self> {
        let backend = Box::new(FileBackend::open_with_opts(
            dir,
            cfg.num_disks,
            Self::storage_block_bytes(&cfg),
            cfg.io_mode,
            cfg.engine,
            cfg.pin_workers,
        )?);
        Ok(Self::with_backend_and_faults(cfg, backend, plan))
    }

    /// Bytes one stored track occupies in the raw backend: the logical
    /// block plus the CRC frame suffix when checksums are enabled.
    pub fn storage_block_bytes(cfg: &DiskConfig) -> usize {
        cfg.block_bytes + if cfg.checksums { CRC_BYTES } else { 0 }
    }

    /// Create an array over an arbitrary backend.
    ///
    /// The backend is treated as the *raw* storage layer: if `cfg` enables
    /// checksums or retry it is wrapped accordingly, and a checksummed
    /// backend must therefore store tracks of
    /// [`DiskArray::storage_block_bytes`] bytes.
    pub fn with_backend(cfg: DiskConfig, backend: Box<dyn DiskBackend>) -> Self {
        Self::with_backend_and_faults(cfg, backend, None)
    }

    /// [`DiskArray::with_backend`] with an optional [`FaultPlan`] injected
    /// directly above the raw backend (below checksums and retry, exactly
    /// where real media faults live).
    pub fn with_backend_and_faults(
        cfg: DiskConfig,
        backend: Box<dyn DiskBackend>,
        plan: Option<FaultPlan>,
    ) -> Self {
        assert_eq!(
            backend.num_disks(),
            cfg.num_disks,
            "backend drive count must match configuration"
        );
        let mut backend: Box<dyn DiskBackend> = backend;
        if let Some(plan) = plan {
            backend = Box::new(FaultInjectingBackend::new(backend, plan));
        }
        if cfg.checksums {
            backend = Box::new(ChecksumBackend::new(backend, cfg.block_bytes));
        }
        if let Some(policy) = cfg.retry {
            backend = Box::new(RetryingBackend::new(backend, policy));
        }
        // The write-back cache is the outermost layer, directly under the
        // array: it caches logical blocks (above the checksum framing) and
        // its misses and flushes pass through retry and checksum like any
        // other transfer.
        if cfg.cache_tracks() > 0 {
            backend = Box::new(BlockCacheBackend::new(backend, cfg.cache_tracks()));
        }
        DiskArray {
            stats: IoStats::new(cfg.num_disks),
            seen: vec![0; cfg.num_disks],
            epoch: 0,
            cfg,
            backend,
            max_tracks: None,
            journal: None,
            durable: None,
            pre_image_pool: Vec::new(),
            addr_scratch: Vec::new(),
            idx_scratch: Vec::new(),
            outstanding: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Return [`DiskError::UnjoinedTickets`] if the caller still holds
    /// submitted-but-unjoined stripe tickets — the precondition of every
    /// barrier operation.
    fn check_no_unjoined_tickets(&self) -> DiskResult<()> {
        let outstanding = self.outstanding.load(Ordering::Acquire);
        if outstanding != 0 {
            return Err(DiskError::UnjoinedTickets { outstanding });
        }
        Ok(())
    }

    /// Impose a per-drive capacity limit of `max_tracks` tracks; writes
    /// beyond it fail with [`DiskError::CapacityExceeded`].
    pub fn with_capacity_limit(mut self, max_tracks: usize) -> Self {
        self.max_tracks = Some(max_tracks);
        self
    }

    /// Array shape.
    pub fn config(&self) -> DiskConfig {
        self.cfg
    }

    /// `D`.
    pub fn num_disks(&self) -> usize {
        self.cfg.num_disks
    }

    /// `B` in bytes.
    pub fn block_bytes(&self) -> usize {
        self.cfg.block_bytes
    }

    /// Whether callers should overlap adjacent groups' I/O (a simulator
    /// policy knob carried on the configuration; the array itself behaves
    /// identically either way).
    pub fn pipeline(&self) -> Pipeline {
        self.cfg.pipeline
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Reset counters (e.g. between experiment phases).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Take the counters, leaving zeros behind.
    pub fn take_stats(&mut self) -> IoStats {
        self.poll_retries();
        let out = self.stats.clone();
        self.stats.reset();
        out
    }

    /// Fold the backend's absorbed-traffic tallies (retries, cache hits,
    /// buffered writes) into the stats. Called on every submission and
    /// sync, so `stats()` lags by at most one call.
    fn poll_retries(&mut self) {
        self.stats.retried_blocks += self.backend.take_retried_blocks();
        self.stats.cache_hit_blocks += self.backend.take_cache_hit_blocks();
        self.stats.cache_absorbed_writes += self.backend.take_cache_absorbed_writes();
    }

    /// Highest written track index + 1 on `disk`.
    pub fn tracks_used(&self, disk: usize) -> usize {
        self.backend.tracks_used(disk)
    }

    /// Flush the backend (meaningful for files).
    ///
    /// `sync()` is a barrier, not a drain: reaching it while stripe
    /// tickets are still unjoined is a caller bug and fails with
    /// [`DiskError::UnjoinedTickets`] before touching the backend.
    pub fn sync(&mut self) -> DiskResult<()> {
        self.check_no_unjoined_tickets()?;
        self.backend.sync()?;
        self.poll_retries();
        Ok(())
    }

    /// Open a recovery epoch: from now until commit or rollback, the first
    /// write to each track captures the track's current content in an
    /// in-memory undo log. A simulator opens one epoch per compound
    /// superstep, making the superstep-boundary `sync()` the commit point.
    ///
    /// Pre-image reads and rollback writes go straight to the backend —
    /// they are **not** counted parallel I/O; they are tallied in
    /// [`IoStats::recovery_ops`] instead, so enabling recovery never
    /// changes the paper-facing counted I/O of a run.
    ///
    /// Opening an epoch first flushes any write-back cache, so the media
    /// itself holds the committed pre-epoch bytes the journal's pre-images
    /// describe — a rollback then restores exactly that physical state.
    /// Like [`DiskArray::sync`], it is a barrier: unjoined stripe tickets
    /// at this point are a caller bug and fail with
    /// [`DiskError::UnjoinedTickets`].
    pub fn begin_recovery_epoch(&mut self) -> DiskResult<()> {
        self.check_no_unjoined_tickets()?;
        self.backend.flush_cache()?;
        self.poll_retries();
        self.journal = Some(RecoveryJournal {
            pre: HashMap::new(),
            order: Vec::new(),
            stats_at_begin: self.stats.clone(),
        });
        Ok(())
    }

    /// True while a recovery epoch is open.
    pub fn recovery_epoch_active(&self) -> bool {
        self.journal.is_some()
    }

    /// Close the current recovery epoch, keeping everything written in it.
    pub fn commit_recovery_epoch(&mut self) {
        self.poll_retries();
        if let Some(journal) = self.journal.take() {
            self.pre_image_pool.extend(journal.pre.into_values());
        }
    }

    /// Abandon the current recovery epoch: restore every track written in
    /// it to its pre-epoch content and wind the counted stats back to the
    /// epoch snapshot, folding both the discarded operations and the
    /// rollback writes into [`IoStats::recovery_ops`].
    /// `retried_blocks`, `cache_hit_blocks` and `cache_absorbed_writes`
    /// keep their live values — that absorbed traffic happened.
    ///
    /// After a successful rollback the backend holds exactly the bytes it
    /// held at [`DiskArray::begin_recovery_epoch`], which is what makes a
    /// replayed superstep reproduce a fault-free run bit for bit.
    pub fn rollback_recovery_epoch(&mut self) -> DiskResult<()> {
        self.poll_retries();
        let Some(journal) = self.journal.take() else {
            return Ok(());
        };
        let discarded = self.stats.parallel_ops - journal.stats_at_begin.parallel_ops;
        let mut rollback_ops = 0u64;
        // One stripe of borrowed pre-images per flush; the `seen`/`epoch`
        // marker doubles as the per-stripe drive-conflict set.
        let mut stripe: Vec<(usize, usize, &[u8])> = Vec::with_capacity(self.cfg.num_disks);
        self.epoch += 1;
        for &(disk, track) in &journal.order {
            if self.seen[disk] == self.epoch || stripe.len() == self.cfg.num_disks {
                self.backend.write_stripe(&stripe)?;
                rollback_ops += 1;
                stripe.clear();
                self.epoch += 1;
            }
            self.seen[disk] = self.epoch;
            stripe.push((disk, track, journal.pre[&(disk, track)].as_slice()));
        }
        if !stripe.is_empty() {
            self.backend.write_stripe(&stripe)?;
            rollback_ops += 1;
        }
        drop(stripe);
        // Push the restored pre-images through any cache layer so the
        // media — not just the logical view — is back to its epoch-begin
        // bytes before the replay starts.
        self.backend.flush_cache()?;
        self.pre_image_pool.extend(journal.pre.into_values());
        self.poll_retries();
        let mut restored = journal.stats_at_begin.clone();
        restored.retried_blocks = self.stats.retried_blocks;
        restored.cache_hit_blocks = self.stats.cache_hit_blocks;
        restored.cache_absorbed_writes = self.stats.cache_absorbed_writes;
        restored.recovery_ops = self.stats.recovery_ops + discarded + rollback_ops;
        self.stats = restored;
        Ok(())
    }

    /// Capture pre-images for any tracks in `writes` not yet journaled in
    /// the open recovery epoch. With a durable journal attached, each
    /// captured pre-image is also appended (and flushed) to the journal
    /// file before this returns — and therefore before the overwrite it
    /// protects is submitted to the backend.
    fn capture_pre_images(&mut self, writes: &[(usize, usize, Block)]) -> DiskResult<()> {
        if self.journal.is_none() {
            return Ok(());
        }
        for (disk, track, _) in writes {
            let key = (*disk, *track);
            let journal = self.journal.as_mut().expect("epoch checked above");
            if journal.pre.contains_key(&key) {
                continue;
            }
            let mut buf = self.pre_image_pool.pop().unwrap_or_default();
            buf.clear();
            buf.resize(self.cfg.block_bytes, 0);
            self.backend.read_track(*disk, *track, &mut buf)?;
            self.stats.recovery_ops += 1;
            if let Some(durable) = self.durable.as_mut() {
                durable.append(*disk, *track, &buf)?;
            }
            let journal = self.journal.as_mut().expect("epoch checked above");
            journal.pre.insert(key, buf);
            journal.order.push(key);
        }
        Ok(())
    }

    /// Attach a durable pre-image journal in `dir` (normally the directory
    /// holding the drive files). From the next
    /// [`DiskArray::begin_checkpoint_epoch`] on, every pre-image captured
    /// in an epoch is also logged to `journal.bin` before its overwrite is
    /// submitted, so a killed process can be rolled back to its last
    /// barrier by [`DiskArray::apply_journal_undo`].
    pub fn attach_durable_journal<P: AsRef<Path>>(&mut self, dir: P) -> DiskResult<()> {
        self.durable = Some(JournalFile::attach(dir)?);
        Ok(())
    }

    /// True when a durable pre-image journal is attached.
    pub fn durable_journal_attached(&self) -> bool {
        self.durable.is_some()
    }

    /// Open a checkpointed superstep epoch: a recovery epoch (see
    /// [`DiskArray::begin_recovery_epoch`]) whose pre-images are mirrored
    /// to the durable journal under `epoch`. Re-beginning the same epoch —
    /// an in-process superstep replay — truncates the journal file first,
    /// so stale records from the abandoned attempt never survive it.
    pub fn begin_checkpoint_epoch(&mut self, epoch: u64) -> DiskResult<()> {
        self.begin_recovery_epoch()?;
        if let Some(durable) = self.durable.as_mut() {
            durable.begin_epoch(epoch)?;
        }
        Ok(())
    }

    /// Truncate the durable journal after the barrier's manifest has
    /// committed: the epoch it protected is durable.
    pub fn clear_durable_journal(&mut self) -> DiskResult<()> {
        if let Some(durable) = self.durable.as_mut() {
            durable.clear()?;
        }
        Ok(())
    }

    /// Undo a killed process's partial superstep: write the journal's
    /// pre-images back in reverse capture order, flush, and sync, leaving
    /// the drive files bit-identical to the barrier the journal's epoch
    /// began at. Undo is idempotent — every pre-image was captured at
    /// epoch start, so re-applying after a crash mid-undo is safe.
    ///
    /// The restoring writes are tallied in [`IoStats::recovery_ops`],
    /// never in the paper-facing counted `parallel_ops`.
    pub fn apply_journal_undo(&mut self, contents: &JournalContents) -> DiskResult<()> {
        for (disk, track, pre) in contents.records.iter().rev() {
            if pre.len() != self.cfg.block_bytes {
                return Err(DiskError::BadBlockSize {
                    expected: self.cfg.block_bytes,
                    got: pre.len(),
                });
            }
            self.backend.write_track(*disk, *track, pre)?;
            self.stats.recovery_ops += 1;
        }
        self.backend.flush_cache()?;
        self.backend.sync()?;
        self.poll_retries();
        Ok(())
    }

    /// Per-drive fault-injection operation counters, if a fault layer is
    /// present (persisted at each barrier so a resumed run can restore the
    /// remaining fault schedule).
    pub fn fault_op_counts(&self) -> Option<Vec<u64>> {
        self.backend.fault_op_counts()
    }

    /// Restore fault-injection counters persisted at the last barrier, so
    /// the resumed run sees the same remaining schedule as an
    /// uninterrupted one. A no-op without a fault layer.
    pub fn restore_fault_op_counts(&mut self, counts: &[u64]) {
        self.backend.restore_fault_op_counts(counts);
    }

    fn validate_stripe(&mut self, addrs: impl Iterator<Item = usize>) -> DiskResult<()> {
        self.epoch += 1;
        for disk in addrs {
            if disk >= self.cfg.num_disks {
                return Err(DiskError::DiskOutOfRange { disk, num_disks: self.cfg.num_disks });
            }
            if self.seen[disk] == self.epoch {
                return Err(DiskError::StripeConflict { disk });
            }
            self.seen[disk] = self.epoch;
        }
        Ok(())
    }

    fn check_capacity(&self, disk: usize, track: usize) -> DiskResult<()> {
        if let Some(max) = self.max_tracks {
            if track >= max {
                return Err(DiskError::CapacityExceeded { disk, max_tracks: max });
            }
        }
        Ok(())
    }

    /// Submit one parallel read — fetch at most one track from each listed
    /// drive — and return a joinable ticket without waiting for the
    /// transfers.
    ///
    /// Validation happens here and a rejected stripe leaves both the
    /// backend and the counters untouched; a *valid* stripe is counted at
    /// submission (exactly one parallel I/O operation, even if `addrs`
    /// names fewer than `D` drives), so counted [`IoStats`] do not depend
    /// on when — or in what order relative to other tickets — the caller
    /// joins. I/O errors are deferred to [`ReadStripeTicket::join`].
    pub fn submit_read_stripe(&mut self, addrs: &[(usize, usize)]) -> DiskResult<ReadStripeTicket> {
        self.validate_stripe(addrs.iter().map(|&(d, _)| d))?;
        let ticket = self.backend.submit_read_stripe(addrs, self.cfg.block_bytes);
        self.poll_retries();
        for &(disk, _) in addrs {
            self.stats.per_disk_reads[disk] += 1;
        }
        if !addrs.is_empty() {
            self.stats.parallel_ops += 1;
            self.stats.blocks_read += addrs.len() as u64;
            self.stats.bytes_read += (addrs.len() * self.cfg.block_bytes) as u64;
        }
        Ok(ReadStripeTicket { ticket, _guard: TicketGuard::new(&self.outstanding) })
    }

    /// Submit one parallel write — store at most one track on each listed
    /// drive — and return a joinable ticket without waiting (same
    /// validate-then-count-at-submission contract as
    /// [`DiskArray::submit_read_stripe`]).
    pub fn submit_write_stripe(
        &mut self,
        writes: &[(usize, usize, Block)],
    ) -> DiskResult<WriteStripeTicket> {
        self.validate_stripe(writes.iter().map(|(d, _, _)| *d))?;
        for (disk, track, block) in writes {
            if block.len() != self.cfg.block_bytes {
                return Err(DiskError::BadBlockSize {
                    expected: self.cfg.block_bytes,
                    got: block.len(),
                });
            }
            self.check_capacity(*disk, *track)?;
        }
        self.capture_pre_images(writes)?;
        let stripe: Vec<(usize, usize, &[u8])> =
            writes.iter().map(|(d, t, b)| (*d, *t, b.as_bytes())).collect();
        let ticket = self.backend.submit_write_stripe(&stripe);
        self.poll_retries();
        for (disk, _, _) in writes {
            self.stats.per_disk_writes[*disk] += 1;
        }
        if !writes.is_empty() {
            self.stats.parallel_ops += 1;
            self.stats.blocks_written += writes.len() as u64;
            self.stats.bytes_written += (writes.len() * self.cfg.block_bytes) as u64;
        }
        Ok(WriteStripeTicket { ticket, _guard: TicketGuard::new(&self.outstanding) })
    }

    /// One parallel read: fetch at most one track from each listed drive.
    ///
    /// Counts exactly one parallel I/O operation (even if `addrs` names
    /// fewer than `D` drives). Returns blocks in request order. On backends
    /// with real parallelism the `≤ D` transfers overlap; the call returns
    /// only after all of them complete. Equivalent to
    /// [`DiskArray::submit_read_stripe`] followed by an immediate join.
    pub fn read_stripe(&mut self, addrs: &[(usize, usize)]) -> DiskResult<Vec<Block>> {
        self.submit_read_stripe(addrs)?.join()
    }

    /// One parallel write: store at most one track on each listed drive.
    ///
    /// Counts exactly one parallel I/O operation. All validation happens
    /// before any byte is submitted, so a rejected stripe leaves both the
    /// backend and the counters untouched. Equivalent to
    /// [`DiskArray::submit_write_stripe`] followed by an immediate join.
    pub fn write_stripe(&mut self, writes: &[(usize, usize, Block)]) -> DiskResult<()> {
        self.submit_write_stripe(writes)?.join()
    }

    /// Read a single block. Costs a full parallel I/O operation — this is
    /// exactly the "unblocked / single-disk" penalty the model charges.
    pub fn read_block(&mut self, disk: usize, track: usize) -> DiskResult<Block> {
        let mut v = self.read_stripe(&[(disk, track)])?;
        Ok(v.pop().expect("one block requested"))
    }

    /// Write a single block. Costs a full parallel I/O operation.
    pub fn write_block(&mut self, disk: usize, track: usize, block: Block) -> DiskResult<()> {
        self.write_stripe(&[(disk, track, block)])
    }

    /// Read `addrs` in batches of at most one-track-per-disk stripes,
    /// preserving order. Convenience for callers whose address list may
    /// target the same drive repeatedly; each batch counts one operation.
    pub fn read_blocks_batched(&mut self, addrs: &[(usize, usize)]) -> DiskResult<Vec<Block>> {
        let mut out: Vec<Option<Block>> = (0..addrs.len()).map(|_| None).collect();
        let mut remaining: Vec<usize> = (0..addrs.len()).collect();
        // Borrow the member scratch for the duration of the call so the
        // staging capacity survives across calls (this runs once per group
        // per superstep). Restored — even on error — before returning.
        let mut stripe = std::mem::take(&mut self.addr_scratch);
        let mut stripe_idx = std::mem::take(&mut self.idx_scratch);
        let mut result: DiskResult<()> = Ok(());
        while !remaining.is_empty() {
            stripe.clear();
            stripe_idx.clear();
            self.epoch += 1;
            let epoch = self.epoch;
            remaining.retain(|&i| {
                let (disk, track) = addrs[i];
                if disk < self.seen.len()
                    && self.seen[disk] != epoch
                    && stripe.len() < self.cfg.num_disks
                {
                    self.seen[disk] = epoch;
                    stripe.push((disk, track));
                    stripe_idx.push(i);
                    false
                } else {
                    true
                }
            });
            if stripe.is_empty() {
                // Only possible if an address is out of range.
                let (disk, _) = addrs[remaining[0]];
                result = Err(DiskError::DiskOutOfRange { disk, num_disks: self.cfg.num_disks });
                break;
            }
            match self.read_stripe(&stripe) {
                Ok(blocks) => {
                    for (i, b) in stripe_idx.iter().zip(blocks) {
                        out[*i] = Some(b);
                    }
                }
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        stripe.clear();
        stripe_idx.clear();
        self.addr_scratch = stripe;
        self.idx_scratch = stripe_idx;
        result?;
        Ok(out.into_iter().map(|b| b.expect("all blocks read")).collect())
    }

    /// Write `(disk, track, block)` triples in batches of valid stripes.
    pub fn write_blocks_batched(
        &mut self,
        mut writes: Vec<(usize, usize, Block)>,
    ) -> DiskResult<()> {
        // Both staging vectors are hoisted out of the stripe loop and
        // swapped each round, so a batch costs two allocations total
        // instead of two per emitted stripe.
        let mut stripe: Vec<(usize, usize, Block)> = Vec::with_capacity(self.cfg.num_disks);
        let mut rest: Vec<(usize, usize, Block)> = Vec::new();
        while !writes.is_empty() {
            stripe.clear();
            rest.clear();
            self.epoch += 1;
            let epoch = self.epoch;
            for w in writes.drain(..) {
                let disk = w.0;
                if disk >= self.cfg.num_disks {
                    return Err(DiskError::DiskOutOfRange { disk, num_disks: self.cfg.num_disks });
                }
                if self.seen[disk] != epoch {
                    self.seen[disk] = epoch;
                    stripe.push(w);
                } else {
                    rest.push(w);
                }
            }
            self.write_stripe(&stripe)?;
            std::mem::swap(&mut writes, &mut rest);
        }
        Ok(())
    }
}

/// Membership token in the issuing array's unjoined-ticket census.
///
/// Created when a stripe ticket is handed out and decremented exactly once
/// on `Drop` — whether the ticket is consumed by `join` (which moves the
/// ticket, dropping it at the end of the call) or abandoned on an error
/// path. The count is what lets the barriers (`sync()`,
/// `begin_recovery_epoch()`) reject callers that still hold in-flight
/// work, per [`DiskError::UnjoinedTickets`].
struct TicketGuard {
    outstanding: Arc<AtomicUsize>,
}

impl TicketGuard {
    fn new(outstanding: &Arc<AtomicUsize>) -> Self {
        outstanding.fetch_add(1, Ordering::AcqRel);
        TicketGuard { outstanding: Arc::clone(outstanding) }
    }
}

impl Drop for TicketGuard {
    fn drop(&mut self) {
        self.outstanding.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A joinable handle for one counted, submitted stripe read.
///
/// The operation was already validated and counted by
/// [`DiskArray::submit_read_stripe`]; `join` waits for the transfers (a
/// no-op on synchronous backends) and returns the blocks in request
/// order, or the deferred error of the lowest-indexed failing drive.
///
/// A ticket must be joined — or explicitly dropped, which abandons the
/// result — before the issuing array's next barrier
/// ([`DiskArray::sync`] / [`DiskArray::begin_recovery_epoch`]); a barrier
/// reached with live tickets fails with [`DiskError::UnjoinedTickets`].
pub struct ReadStripeTicket {
    ticket: ReadTicket,
    _guard: TicketGuard,
}

impl ReadStripeTicket {
    /// Wait for the submitted transfers and return the blocks.
    pub fn join(self) -> DiskResult<Vec<Block>> {
        Ok(self.ticket.join()?.into_iter().map(Block::from_vec).collect())
    }
}

/// A joinable handle for one counted, submitted stripe write (same
/// contract as [`ReadStripeTicket`], including the barrier rule).
pub struct WriteStripeTicket {
    ticket: WriteTicket,
    _guard: TicketGuard,
}

impl WriteStripeTicket {
    /// Wait for the submitted transfers to land.
    pub fn join(self) -> DiskResult<()> {
        self.ticket.join()
    }
}

/// A FIFO of submitted-but-unjoined stripe writes.
///
/// Pipelined simulators push every deferred write here and drain the
/// backlog at a barrier (before routing reads the written blocks, and
/// before the superstep-boundary `sync()`). Draining joins tickets in
/// submission order and — like a single stripe — reports the earliest
/// failure after joining *all* of them, so error selection stays
/// deterministic no matter how the in-flight transfers interleaved.
#[derive(Default)]
pub struct WriteBacklog {
    tickets: Vec<WriteStripeTicket>,
}

impl WriteBacklog {
    /// An empty backlog.
    pub fn new() -> Self {
        WriteBacklog::default()
    }

    /// Defer a submitted write until the next [`WriteBacklog::drain`].
    pub fn push(&mut self, ticket: WriteStripeTicket) {
        self.tickets.push(ticket);
    }

    /// Number of writes currently deferred.
    pub fn len(&self) -> usize {
        self.tickets.len()
    }

    /// True when nothing is deferred.
    pub fn is_empty(&self) -> bool {
        self.tickets.is_empty()
    }

    /// Join every deferred write in submission order; the earliest failure
    /// is reported after all tickets have been joined.
    pub fn drain(&mut self) -> DiskResult<()> {
        let mut first_err: Option<DiskError> = None;
        for ticket in self.tickets.drain(..) {
            if let Err(e) = ticket.join() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array(d: usize, b: usize) -> DiskArray {
        DiskArray::new_memory(DiskConfig::new(d, b).unwrap())
    }

    #[test]
    fn stripe_round_trip_counts_one_op() {
        let mut a = array(4, 16);
        let writes: Vec<_> =
            (0..4).map(|d| (d, 0, Block::from_bytes_padded(&[d as u8 + 1], 16))).collect();
        a.write_stripe(&writes).unwrap();
        assert_eq!(a.stats().parallel_ops, 1);
        assert_eq!(a.stats().blocks_written, 4);

        let blocks = a.read_stripe(&[(0, 0), (1, 0), (2, 0), (3, 0)]).unwrap();
        assert_eq!(a.stats().parallel_ops, 2);
        for (d, b) in blocks.iter().enumerate() {
            assert_eq!(b.as_bytes()[0], d as u8 + 1);
        }
    }

    #[test]
    fn stripe_conflict_is_rejected() {
        let mut a = array(2, 8);
        let err = a.read_stripe(&[(1, 0), (1, 1)]).unwrap_err();
        assert!(matches!(err, DiskError::StripeConflict { disk: 1 }));
        // Counters unchanged by failed ops.
        assert_eq!(a.stats().parallel_ops, 0);
    }

    #[test]
    fn out_of_range_disk_is_rejected() {
        let mut a = array(2, 8);
        let err = a.read_stripe(&[(2, 0)]).unwrap_err();
        assert!(matches!(err, DiskError::DiskOutOfRange { disk: 2, num_disks: 2 }));
    }

    #[test]
    fn wrong_block_size_is_rejected() {
        let mut a = array(1, 8);
        let err = a.write_stripe(&[(0, 0, Block::zeroed(9))]).unwrap_err();
        assert!(matches!(err, DiskError::BadBlockSize { expected: 8, got: 9 }));
    }

    #[test]
    fn capacity_limit_enforced() {
        let mut a = array(1, 8).with_capacity_limit(2);
        a.write_block(0, 1, Block::zeroed(8)).unwrap();
        let err = a.write_block(0, 2, Block::zeroed(8)).unwrap_err();
        assert!(matches!(err, DiskError::CapacityExceeded { .. }));
    }

    #[test]
    fn single_block_costs_full_op() {
        let mut a = array(8, 8);
        for t in 0..10 {
            a.write_block(0, t, Block::zeroed(8)).unwrap();
        }
        // 10 ops for 10 blocks on one drive out of 8: utilization 10/(10*8).
        assert_eq!(a.stats().parallel_ops, 10);
        assert!((a.stats().utilization() - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn batched_reads_split_conflicting_addresses() {
        let mut a = array(2, 8);
        for t in 0..3 {
            a.write_block(0, t, Block::from_bytes_padded(&[t as u8], 8)).unwrap();
        }
        a.write_block(1, 0, Block::from_bytes_padded(&[9], 8)).unwrap();
        a.reset_stats();
        // Three addresses on disk 0 and one on disk 1 -> 3 stripes.
        let blocks = a.read_blocks_batched(&[(0, 0), (0, 1), (0, 2), (1, 0)]).unwrap();
        assert_eq!(a.stats().parallel_ops, 3);
        assert_eq!(blocks[0].as_bytes()[0], 0);
        assert_eq!(blocks[1].as_bytes()[0], 1);
        assert_eq!(blocks[2].as_bytes()[0], 2);
        assert_eq!(blocks[3].as_bytes()[0], 9);
    }

    #[test]
    fn batched_writes_split_conflicting_addresses() {
        let mut a = array(2, 8);
        let writes = vec![
            (0, 0, Block::from_bytes_padded(&[1], 8)),
            (0, 1, Block::from_bytes_padded(&[2], 8)),
            (1, 0, Block::from_bytes_padded(&[3], 8)),
        ];
        a.write_blocks_batched(writes).unwrap();
        assert_eq!(a.stats().parallel_ops, 2);
        assert_eq!(a.read_block(0, 1).unwrap().as_bytes()[0], 2);
    }

    #[test]
    fn empty_stripe_is_free() {
        let mut a = array(2, 8);
        assert!(a.read_stripe(&[]).unwrap().is_empty());
        a.write_stripe(&[]).unwrap();
        assert_eq!(a.stats().parallel_ops, 0);
    }

    #[test]
    fn serial_and_parallel_file_arrays_count_identically() {
        use crate::IoMode;
        let pid = std::process::id();
        let mk = |mode: IoMode, tag: &str| {
            let dir = std::env::temp_dir().join(format!("em-array-mode-{tag}-{pid}"));
            let cfg = DiskConfig::new(4, 16).unwrap().with_io_mode(mode);
            (dir.clone(), DiskArray::new_file(cfg, dir).unwrap())
        };
        let (dir_s, mut serial) = mk(IoMode::Serial, "s");
        let (dir_p, mut parallel) = mk(IoMode::Parallel, "p");
        for a in [&mut serial, &mut parallel] {
            for t in 0..3 {
                let writes: Vec<_> = (0..4)
                    .map(|d| (d, t, Block::from_bytes_padded(&[(d * 8 + t) as u8], 16)))
                    .collect();
                a.write_stripe(&writes).unwrap();
            }
            let blocks = a.read_stripe(&[(0, 1), (1, 1), (2, 1), (3, 1)]).unwrap();
            assert_eq!(blocks[2].as_bytes()[0], 17);
            a.sync().unwrap();
        }
        assert_eq!(serial.stats(), parallel.stats());
        assert_eq!(serial.tracks_used(0), parallel.tracks_used(0));
        std::fs::remove_dir_all(&dir_s).ok();
        std::fs::remove_dir_all(&dir_p).ok();
    }

    #[test]
    fn submitted_stripes_count_at_submission_and_join_later() {
        let mut a = array(4, 16);
        let writes: Vec<_> =
            (0..4).map(|d| (d, 0, Block::from_bytes_padded(&[d as u8 + 1], 16))).collect();
        let wt = a.submit_write_stripe(&writes).unwrap();
        // Counted before the join, identically to the synchronous path.
        assert_eq!(a.stats().parallel_ops, 1);
        assert_eq!(a.stats().blocks_written, 4);
        wt.join().unwrap();
        let rt = a.submit_read_stripe(&[(0, 0), (1, 0)]).unwrap();
        assert_eq!(a.stats().parallel_ops, 2);
        assert_eq!(a.stats().blocks_read, 2);
        let blocks = rt.join().unwrap();
        assert_eq!(blocks[1].as_bytes()[0], 2);
    }

    #[test]
    fn rejected_submission_leaves_counters_untouched() {
        let mut a = array(2, 8).with_capacity_limit(4);
        assert!(matches!(
            a.submit_read_stripe(&[(1, 0), (1, 1)]).err(),
            Some(DiskError::StripeConflict { disk: 1 })
        ));
        assert!(matches!(
            a.submit_write_stripe(&[(0, 9, Block::zeroed(8))]).err(),
            Some(DiskError::CapacityExceeded { .. })
        ));
        assert!(matches!(
            a.submit_write_stripe(&[(0, 0, Block::zeroed(9))]).err(),
            Some(DiskError::BadBlockSize { expected: 8, got: 9 })
        ));
        assert_eq!(a.stats(), &IoStats::new(2), "failed submissions must not count");
    }

    #[test]
    fn write_backlog_drains_in_submission_order() {
        let mut a = array(2, 8);
        let mut backlog = WriteBacklog::new();
        assert!(backlog.is_empty());
        for t in 0..3 {
            let writes: Vec<_> = (0..2)
                .map(|d| (d, t, Block::from_bytes_padded(&[(10 * t + d) as u8], 8)))
                .collect();
            backlog.push(a.submit_write_stripe(&writes).unwrap());
        }
        assert_eq!(backlog.len(), 3);
        backlog.drain().unwrap();
        assert!(backlog.is_empty());
        assert_eq!(a.read_block(1, 2).unwrap().as_bytes()[0], 21);
        assert_eq!(a.stats().parallel_ops, 4);
    }

    #[test]
    fn barrier_with_unjoined_tickets_is_a_typed_error() {
        let mut a = array(2, 8);
        let wt = a.submit_write_stripe(&[(0, 0, Block::zeroed(8))]).unwrap();
        let rt = a.submit_read_stripe(&[(1, 0)]).unwrap();
        assert!(matches!(a.sync(), Err(DiskError::UnjoinedTickets { outstanding: 2 })));
        assert!(matches!(
            a.begin_recovery_epoch(),
            Err(DiskError::UnjoinedTickets { outstanding: 2 })
        ));
        assert!(!a.recovery_epoch_active(), "rejected barrier must not arm a journal");
        wt.join().unwrap();
        assert!(matches!(a.sync(), Err(DiskError::UnjoinedTickets { outstanding: 1 })));
        rt.join().unwrap();
        a.sync().unwrap();
        a.begin_recovery_epoch().unwrap();
        a.commit_recovery_epoch();
        let err = DiskError::UnjoinedTickets { outstanding: 3 };
        assert!(!err.is_transient(), "a missed drain point is a caller bug, not a media fault");
    }

    #[test]
    fn dropped_tickets_release_the_barrier() {
        // An abandoned ticket (error-path cleanup) must not wedge every
        // later barrier: the guard decrements on drop, joined or not.
        let mut a = array(2, 8);
        let rt = a.submit_read_stripe(&[(0, 0)]).unwrap();
        drop(rt);
        a.sync().unwrap();
        let mut backlog = WriteBacklog::new();
        backlog.push(a.submit_write_stripe(&[(1, 0, Block::zeroed(8))]).unwrap());
        assert!(matches!(a.sync(), Err(DiskError::UnjoinedTickets { outstanding: 1 })));
        backlog.drain().unwrap();
        a.sync().unwrap();
    }

    #[test]
    fn pipelined_and_synchronous_arrays_count_identically() {
        // The same logical workload issued through tickets vs the
        // synchronous calls must produce bit-identical IoStats.
        let run = |pipelined: bool| {
            let cfg = DiskConfig::new(3, 16).unwrap().with_pipeline(if pipelined {
                Pipeline::DoubleBuffer
            } else {
                Pipeline::Off
            });
            let mut a = DiskArray::new_memory(cfg);
            let writes: Vec<_> =
                (0..3).map(|d| (d, 1, Block::from_bytes_padded(&[d as u8], 16))).collect();
            if pipelined {
                let mut backlog = WriteBacklog::new();
                backlog.push(a.submit_write_stripe(&writes).unwrap());
                let rt = a.submit_read_stripe(&[(0, 1), (2, 1)]).unwrap();
                backlog.drain().unwrap();
                rt.join().unwrap();
            } else {
                a.write_stripe(&writes).unwrap();
                a.read_stripe(&[(0, 1), (2, 1)]).unwrap();
            }
            a.take_stats()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn retrying_array_counts_identically_to_a_clean_run() {
        use crate::{FaultPlan, RetryPolicy};
        let workload = |mut a: DiskArray| -> (IoStats, Vec<u8>) {
            for t in 0..4 {
                let writes: Vec<_> = (0..3)
                    .map(|d| (d, t, Block::from_bytes_padded(&[(d * 16 + t) as u8 + 1], 16)))
                    .collect();
                a.write_stripe(&writes).unwrap();
            }
            let blocks = a.read_stripe(&[(0, 2), (1, 2), (2, 2)]).unwrap();
            let bytes = blocks.iter().flat_map(|b| b.as_bytes().to_vec()).collect();
            a.sync().unwrap();
            (a.take_stats(), bytes)
        };
        let cfg =
            DiskConfig::new(3, 16).unwrap().with_checksums(true).with_retry(RetryPolicy::new(3));
        let (clean_stats, clean_bytes) = workload(DiskArray::new_memory(cfg));
        let plan = FaultPlan::none()
            .with_transient(0, 1)
            .with_torn_write(1, 2, 7)
            .with_bit_flip(2, 4, 5, 1);
        let faulty = DiskArray::new_memory_with_faults(cfg, Some(plan));
        let (faulty_stats, faulty_bytes) = workload(faulty);
        assert_eq!(faulty_bytes, clean_bytes, "retries must hide recoverable faults");
        assert!(faulty_stats.retried_blocks >= 3);
        let mut masked = faulty_stats.clone();
        masked.retried_blocks = clean_stats.retried_blocks;
        assert_eq!(masked, clean_stats, "only the retry counter may differ");
    }

    #[test]
    fn cached_array_counts_identically_to_an_uncached_run() {
        let workload = |mut a: DiskArray| -> (IoStats, Vec<u8>) {
            for t in 0..4 {
                let writes: Vec<_> = (0..3)
                    .map(|d| (d, t, Block::from_bytes_padded(&[(d * 16 + t) as u8 + 1], 16)))
                    .collect();
                a.write_stripe(&writes).unwrap();
            }
            // Re-read tracks just written (cache hits) plus one never-written
            // track (miss that must read zeros through the stack).
            let mut bytes: Vec<u8> = Vec::new();
            for addrs in [[(0, 2), (1, 2), (2, 2)], [(0, 0), (1, 3), (2, 5)]] {
                let blocks = a.read_stripe(&addrs).unwrap();
                bytes.extend(blocks.iter().flat_map(|b| b.as_bytes().to_vec()));
            }
            a.sync().unwrap();
            (a.take_stats(), bytes)
        };
        let cfg = DiskConfig::new(3, 16).unwrap().with_checksums(true);
        let (plain_stats, plain_bytes) = workload(DiskArray::new_memory(cfg));
        let (cached_stats, cached_bytes) = workload(DiskArray::new_memory(cfg.with_cache(16 * 64)));
        assert_eq!(cached_bytes, plain_bytes, "cache must be transparent to content");
        assert!(cached_stats.cache_hit_blocks >= 3, "re-reads must hit the cache");
        assert!(cached_stats.cache_absorbed_writes >= 12, "writes must be buffered");
        assert_eq!(plain_stats.cache_hit_blocks, 0);
        assert_eq!(plain_stats.cache_absorbed_writes, 0);
        let mut masked = cached_stats.clone();
        masked.cache_hit_blocks = 0;
        masked.cache_absorbed_writes = 0;
        assert_eq!(masked, plain_stats, "only the cache tallies may differ");
    }

    #[test]
    fn unretried_fault_surfaces_as_typed_error() {
        use crate::FaultPlan;
        let cfg = DiskConfig::new(2, 8).unwrap();
        let plan = FaultPlan::none().with_transient(0, 0);
        let mut a = DiskArray::new_memory_with_faults(cfg, Some(plan));
        let err = a.write_block(0, 0, Block::zeroed(8)).unwrap_err();
        assert!(err.is_transient());
        assert!(matches!(err, DiskError::WorkerIo { disk: 0, .. }));
    }

    #[test]
    fn rollback_restores_content_and_counted_stats() {
        let mut a = array(2, 8);
        a.write_stripe(&[
            (0, 0, Block::from_bytes_padded(&[1], 8)),
            (1, 0, Block::from_bytes_padded(&[2], 8)),
        ])
        .unwrap();
        let committed = a.stats().clone();
        a.begin_recovery_epoch().unwrap();
        assert!(a.recovery_epoch_active());
        // Overwrite a committed track and write a fresh one.
        a.write_stripe(&[
            (0, 0, Block::from_bytes_padded(&[9], 8)),
            (1, 3, Block::from_bytes_padded(&[8], 8)),
        ])
        .unwrap();
        a.write_block(0, 1, Block::from_bytes_padded(&[7], 8)).unwrap();
        assert_eq!(a.read_block(0, 0).unwrap().as_bytes()[0], 9);
        a.rollback_recovery_epoch().unwrap();
        assert!(!a.recovery_epoch_active());
        assert_eq!(a.read_block(0, 0).unwrap().as_bytes()[0], 1, "committed content restored");
        assert_eq!(a.read_block(1, 3).unwrap().as_bytes()[0], 0, "fresh track re-zeroed");
        assert_eq!(a.read_block(0, 1).unwrap().as_bytes()[0], 0, "fresh track re-zeroed");
        // Counted stats rewound to the epoch snapshot (modulo the reads
        // just issued above); recovery work is tallied separately.
        let s = a.stats();
        assert_eq!(s.parallel_ops, committed.parallel_ops + 3, "3 verification reads");
        assert!(s.recovery_ops > 0, "discarded ops + pre-image reads + rollback writes");
    }

    #[test]
    fn recycled_pre_image_buffers_do_not_leak_between_epochs() {
        // Epoch 1 journals tracks with non-zero content, then commits —
        // returning its pre-image buffers to the pool. Epoch 2 must
        // journal fresh content in those recycled buffers, so a rollback
        // restores epoch-2 pre-images, not stale epoch-1 bytes.
        let mut a = array(2, 8);
        a.begin_recovery_epoch().unwrap();
        a.write_block(0, 0, Block::from_bytes_padded(&[0x11], 8)).unwrap();
        a.write_block(1, 0, Block::from_bytes_padded(&[0x22], 8)).unwrap();
        a.commit_recovery_epoch();
        a.begin_recovery_epoch().unwrap();
        a.write_block(0, 0, Block::from_bytes_padded(&[0x33], 8)).unwrap();
        a.write_block(1, 0, Block::from_bytes_padded(&[0x44], 8)).unwrap();
        a.rollback_recovery_epoch().unwrap();
        assert_eq!(a.read_block(0, 0).unwrap().as_bytes()[0], 0x11);
        assert_eq!(a.read_block(1, 0).unwrap().as_bytes()[0], 0x22);
    }

    #[test]
    fn commit_keeps_epoch_writes_and_counted_stats() {
        let mut a = array(2, 8);
        a.begin_recovery_epoch().unwrap();
        a.write_block(0, 0, Block::from_bytes_padded(&[5], 8)).unwrap();
        a.commit_recovery_epoch();
        assert_eq!(a.read_block(0, 0).unwrap().as_bytes()[0], 5);
        assert_eq!(a.stats().parallel_ops, 2);
        // A later rollback with no open epoch is a no-op.
        a.rollback_recovery_epoch().unwrap();
        assert_eq!(a.read_block(0, 0).unwrap().as_bytes()[0], 5);
    }

    #[test]
    fn checksummed_file_array_round_trips_and_detects_on_disk_corruption() {
        let dir = std::env::temp_dir().join(format!("em-array-crc-{}", std::process::id()));
        let cfg = DiskConfig::new(2, 32).unwrap().with_checksums(true);
        let mut a = DiskArray::new_file(cfg, &dir).unwrap();
        a.write_stripe(&[
            (0, 0, Block::from_bytes_padded(&[0xAB; 4], 32)),
            (1, 0, Block::from_bytes_padded(&[0xCD; 4], 32)),
        ])
        .unwrap();
        a.sync().unwrap();
        let blocks = a.read_stripe(&[(0, 0), (1, 0)]).unwrap();
        assert_eq!(blocks[0].as_bytes()[3], 0xAB);
        // Flip a stored byte behind the substrate's back.
        let path = dir.join("disk-1.bin");
        let mut raw = std::fs::read(&path).unwrap();
        raw[2] ^= 0x40;
        std::fs::write(&path, raw).unwrap();
        let err = a.read_stripe(&[(1, 0)]).unwrap_err();
        assert!(matches!(err, DiskError::Corrupt { disk: 1, track: 0 }));
        drop(a);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_backed_array_round_trip() {
        let dir = std::env::temp_dir().join(format!("em-array-test-{}", std::process::id()));
        let cfg = DiskConfig::new(3, 32).unwrap();
        let mut a = DiskArray::new_file(cfg, &dir).unwrap();
        let writes: Vec<_> =
            (0..3).map(|d| (d, 5, Block::from_bytes_padded(&[d as u8 * 7], 32))).collect();
        a.write_stripe(&writes).unwrap();
        a.sync().unwrap();
        let blocks = a.read_stripe(&[(0, 5), (1, 5), (2, 5)]).unwrap();
        assert_eq!(blocks[2].as_bytes()[0], 14);
        std::fs::remove_dir_all(&dir).ok();
    }
}
