//! The disk array front-end: validated, counted parallel I/O.

use crate::{
    Block, DiskBackend, DiskConfig, DiskError, DiskResult, FileBackend, IoStats, MemoryBackend,
    Pipeline, ReadTicket, WriteTicket,
};
use std::path::Path;

/// An array of `D` track-addressed drives with blocked, `D`-way-parallel
/// I/O — the storage half of one EM-BSP processor.
///
/// Every operation is validated against the model's rules:
///
/// * blocks are exactly `B` bytes;
/// * one parallel operation touches **at most one track per drive**;
/// * each operation costs one unit (`G` time), *no matter how many drives
///   it uses* — so leaving drives idle is a measurable waste.
///
/// ```
/// use em_disk::{Block, DiskArray, DiskConfig};
///
/// let mut arr = DiskArray::new_memory(DiskConfig::new(4, 64).unwrap());
/// // One parallel I/O writes a block to each of the 4 drives.
/// let stripe: Vec<_> = (0..4)
///     .map(|d| (d, 0usize, Block::from_bytes_padded(&[d as u8], 64)))
///     .collect();
/// arr.write_stripe(&stripe).unwrap();
/// assert_eq!(arr.stats().parallel_ops, 1);
/// assert_eq!(arr.stats().blocks_written, 4);
/// ```
pub struct DiskArray {
    cfg: DiskConfig,
    backend: Box<dyn DiskBackend>,
    stats: IoStats,
    /// Optional capacity limit, for failure-injection tests.
    max_tracks: Option<usize>,
    /// Scratch marker reused across stripe validations.
    seen: Vec<u64>,
    epoch: u64,
}

impl DiskArray {
    /// Create an array over an in-memory backend.
    pub fn new_memory(cfg: DiskConfig) -> Self {
        let backend = Box::new(MemoryBackend::new(cfg.num_disks));
        Self::with_backend(cfg, backend)
    }

    /// Create an array backed by one file per drive inside `dir`, honouring
    /// `cfg.io_mode` (per-drive worker threads when [`crate::IoMode::Parallel`]).
    pub fn new_file<P: AsRef<Path>>(cfg: DiskConfig, dir: P) -> DiskResult<Self> {
        let backend = Box::new(FileBackend::create_with_mode(
            dir,
            cfg.num_disks,
            cfg.block_bytes,
            cfg.io_mode,
        )?);
        Ok(Self::with_backend(cfg, backend))
    }

    /// Create an array over an arbitrary backend.
    pub fn with_backend(cfg: DiskConfig, backend: Box<dyn DiskBackend>) -> Self {
        assert_eq!(
            backend.num_disks(),
            cfg.num_disks,
            "backend drive count must match configuration"
        );
        DiskArray {
            stats: IoStats::new(cfg.num_disks),
            seen: vec![0; cfg.num_disks],
            epoch: 0,
            cfg,
            backend,
            max_tracks: None,
        }
    }

    /// Impose a per-drive capacity limit of `max_tracks` tracks; writes
    /// beyond it fail with [`DiskError::CapacityExceeded`].
    pub fn with_capacity_limit(mut self, max_tracks: usize) -> Self {
        self.max_tracks = Some(max_tracks);
        self
    }

    /// Array shape.
    pub fn config(&self) -> DiskConfig {
        self.cfg
    }

    /// `D`.
    pub fn num_disks(&self) -> usize {
        self.cfg.num_disks
    }

    /// `B` in bytes.
    pub fn block_bytes(&self) -> usize {
        self.cfg.block_bytes
    }

    /// Whether callers should overlap adjacent groups' I/O (a simulator
    /// policy knob carried on the configuration; the array itself behaves
    /// identically either way).
    pub fn pipeline(&self) -> Pipeline {
        self.cfg.pipeline
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Reset counters (e.g. between experiment phases).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Take the counters, leaving zeros behind.
    pub fn take_stats(&mut self) -> IoStats {
        let out = self.stats.clone();
        self.stats.reset();
        out
    }

    /// Highest written track index + 1 on `disk`.
    pub fn tracks_used(&self, disk: usize) -> usize {
        self.backend.tracks_used(disk)
    }

    /// Flush the backend (meaningful for files).
    pub fn sync(&mut self) -> DiskResult<()> {
        self.backend.sync()?;
        Ok(())
    }

    fn validate_stripe(&mut self, addrs: impl Iterator<Item = usize>) -> DiskResult<()> {
        self.epoch += 1;
        for disk in addrs {
            if disk >= self.cfg.num_disks {
                return Err(DiskError::DiskOutOfRange { disk, num_disks: self.cfg.num_disks });
            }
            if self.seen[disk] == self.epoch {
                return Err(DiskError::StripeConflict { disk });
            }
            self.seen[disk] = self.epoch;
        }
        Ok(())
    }

    fn check_capacity(&self, disk: usize, track: usize) -> DiskResult<()> {
        if let Some(max) = self.max_tracks {
            if track >= max {
                return Err(DiskError::CapacityExceeded { disk, max_tracks: max });
            }
        }
        Ok(())
    }

    /// Submit one parallel read — fetch at most one track from each listed
    /// drive — and return a joinable ticket without waiting for the
    /// transfers.
    ///
    /// Validation happens here and a rejected stripe leaves both the
    /// backend and the counters untouched; a *valid* stripe is counted at
    /// submission (exactly one parallel I/O operation, even if `addrs`
    /// names fewer than `D` drives), so counted [`IoStats`] do not depend
    /// on when — or in what order relative to other tickets — the caller
    /// joins. I/O errors are deferred to [`ReadStripeTicket::join`].
    pub fn submit_read_stripe(&mut self, addrs: &[(usize, usize)]) -> DiskResult<ReadStripeTicket> {
        self.validate_stripe(addrs.iter().map(|&(d, _)| d))?;
        let ticket = self.backend.submit_read_stripe(addrs, self.cfg.block_bytes);
        for &(disk, _) in addrs {
            self.stats.per_disk_reads[disk] += 1;
        }
        if !addrs.is_empty() {
            self.stats.parallel_ops += 1;
            self.stats.blocks_read += addrs.len() as u64;
            self.stats.bytes_read += (addrs.len() * self.cfg.block_bytes) as u64;
        }
        Ok(ReadStripeTicket { ticket })
    }

    /// Submit one parallel write — store at most one track on each listed
    /// drive — and return a joinable ticket without waiting (same
    /// validate-then-count-at-submission contract as
    /// [`DiskArray::submit_read_stripe`]).
    pub fn submit_write_stripe(
        &mut self,
        writes: &[(usize, usize, Block)],
    ) -> DiskResult<WriteStripeTicket> {
        self.validate_stripe(writes.iter().map(|(d, _, _)| *d))?;
        for (disk, track, block) in writes {
            if block.len() != self.cfg.block_bytes {
                return Err(DiskError::BadBlockSize {
                    expected: self.cfg.block_bytes,
                    got: block.len(),
                });
            }
            self.check_capacity(*disk, *track)?;
        }
        let stripe: Vec<(usize, usize, &[u8])> =
            writes.iter().map(|(d, t, b)| (*d, *t, b.as_bytes())).collect();
        let ticket = self.backend.submit_write_stripe(&stripe);
        for (disk, _, _) in writes {
            self.stats.per_disk_writes[*disk] += 1;
        }
        if !writes.is_empty() {
            self.stats.parallel_ops += 1;
            self.stats.blocks_written += writes.len() as u64;
            self.stats.bytes_written += (writes.len() * self.cfg.block_bytes) as u64;
        }
        Ok(WriteStripeTicket { ticket })
    }

    /// One parallel read: fetch at most one track from each listed drive.
    ///
    /// Counts exactly one parallel I/O operation (even if `addrs` names
    /// fewer than `D` drives). Returns blocks in request order. On backends
    /// with real parallelism the `≤ D` transfers overlap; the call returns
    /// only after all of them complete. Equivalent to
    /// [`DiskArray::submit_read_stripe`] followed by an immediate join.
    pub fn read_stripe(&mut self, addrs: &[(usize, usize)]) -> DiskResult<Vec<Block>> {
        self.submit_read_stripe(addrs)?.join()
    }

    /// One parallel write: store at most one track on each listed drive.
    ///
    /// Counts exactly one parallel I/O operation. All validation happens
    /// before any byte is submitted, so a rejected stripe leaves both the
    /// backend and the counters untouched. Equivalent to
    /// [`DiskArray::submit_write_stripe`] followed by an immediate join.
    pub fn write_stripe(&mut self, writes: &[(usize, usize, Block)]) -> DiskResult<()> {
        self.submit_write_stripe(writes)?.join()
    }

    /// Read a single block. Costs a full parallel I/O operation — this is
    /// exactly the "unblocked / single-disk" penalty the model charges.
    pub fn read_block(&mut self, disk: usize, track: usize) -> DiskResult<Block> {
        let mut v = self.read_stripe(&[(disk, track)])?;
        Ok(v.pop().expect("one block requested"))
    }

    /// Write a single block. Costs a full parallel I/O operation.
    pub fn write_block(&mut self, disk: usize, track: usize, block: Block) -> DiskResult<()> {
        self.write_stripe(&[(disk, track, block)])
    }

    /// Read `addrs` in batches of at most one-track-per-disk stripes,
    /// preserving order. Convenience for callers whose address list may
    /// target the same drive repeatedly; each batch counts one operation.
    pub fn read_blocks_batched(&mut self, addrs: &[(usize, usize)]) -> DiskResult<Vec<Block>> {
        let mut out: Vec<Option<Block>> = (0..addrs.len()).map(|_| None).collect();
        let mut remaining: Vec<usize> = (0..addrs.len()).collect();
        let mut stripe: Vec<(usize, usize)> = Vec::with_capacity(self.cfg.num_disks);
        let mut stripe_idx: Vec<usize> = Vec::with_capacity(self.cfg.num_disks);
        while !remaining.is_empty() {
            stripe.clear();
            stripe_idx.clear();
            self.epoch += 1;
            let epoch = self.epoch;
            remaining.retain(|&i| {
                let (disk, track) = addrs[i];
                if disk < self.seen.len()
                    && self.seen[disk] != epoch
                    && stripe.len() < self.cfg.num_disks
                {
                    self.seen[disk] = epoch;
                    stripe.push((disk, track));
                    stripe_idx.push(i);
                    false
                } else {
                    true
                }
            });
            if stripe.is_empty() {
                // Only possible if an address is out of range.
                let (disk, _) = addrs[remaining[0]];
                return Err(DiskError::DiskOutOfRange { disk, num_disks: self.cfg.num_disks });
            }
            let blocks = self.read_stripe(&stripe)?;
            for (i, b) in stripe_idx.iter().zip(blocks) {
                out[*i] = Some(b);
            }
        }
        Ok(out.into_iter().map(|b| b.expect("all blocks read")).collect())
    }

    /// Write `(disk, track, block)` triples in batches of valid stripes.
    pub fn write_blocks_batched(
        &mut self,
        mut writes: Vec<(usize, usize, Block)>,
    ) -> DiskResult<()> {
        while !writes.is_empty() {
            let mut stripe: Vec<(usize, usize, Block)> = Vec::with_capacity(self.cfg.num_disks);
            self.epoch += 1;
            let epoch = self.epoch;
            let mut rest = Vec::new();
            for w in writes {
                let disk = w.0;
                if disk >= self.cfg.num_disks {
                    return Err(DiskError::DiskOutOfRange { disk, num_disks: self.cfg.num_disks });
                }
                if self.seen[disk] != epoch {
                    self.seen[disk] = epoch;
                    stripe.push(w);
                } else {
                    rest.push(w);
                }
            }
            self.write_stripe(&stripe)?;
            writes = rest;
        }
        Ok(())
    }
}

/// A joinable handle for one counted, submitted stripe read.
///
/// The operation was already validated and counted by
/// [`DiskArray::submit_read_stripe`]; `join` waits for the transfers (a
/// no-op on synchronous backends) and returns the blocks in request
/// order, or the deferred error of the lowest-indexed failing drive.
pub struct ReadStripeTicket {
    ticket: ReadTicket,
}

impl ReadStripeTicket {
    /// Wait for the submitted transfers and return the blocks.
    pub fn join(self) -> DiskResult<Vec<Block>> {
        Ok(self.ticket.join()?.into_iter().map(Block::from_vec).collect())
    }
}

/// A joinable handle for one counted, submitted stripe write (same
/// contract as [`ReadStripeTicket`]).
pub struct WriteStripeTicket {
    ticket: WriteTicket,
}

impl WriteStripeTicket {
    /// Wait for the submitted transfers to land.
    pub fn join(self) -> DiskResult<()> {
        self.ticket.join()
    }
}

/// A FIFO of submitted-but-unjoined stripe writes.
///
/// Pipelined simulators push every deferred write here and drain the
/// backlog at a barrier (before routing reads the written blocks, and
/// before the superstep-boundary `sync()`). Draining joins tickets in
/// submission order and — like a single stripe — reports the earliest
/// failure after joining *all* of them, so error selection stays
/// deterministic no matter how the in-flight transfers interleaved.
#[derive(Default)]
pub struct WriteBacklog {
    tickets: Vec<WriteStripeTicket>,
}

impl WriteBacklog {
    /// An empty backlog.
    pub fn new() -> Self {
        WriteBacklog::default()
    }

    /// Defer a submitted write until the next [`WriteBacklog::drain`].
    pub fn push(&mut self, ticket: WriteStripeTicket) {
        self.tickets.push(ticket);
    }

    /// Number of writes currently deferred.
    pub fn len(&self) -> usize {
        self.tickets.len()
    }

    /// True when nothing is deferred.
    pub fn is_empty(&self) -> bool {
        self.tickets.is_empty()
    }

    /// Join every deferred write in submission order; the earliest failure
    /// is reported after all tickets have been joined.
    pub fn drain(&mut self) -> DiskResult<()> {
        let mut first_err: Option<DiskError> = None;
        for ticket in self.tickets.drain(..) {
            if let Err(e) = ticket.join() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array(d: usize, b: usize) -> DiskArray {
        DiskArray::new_memory(DiskConfig::new(d, b).unwrap())
    }

    #[test]
    fn stripe_round_trip_counts_one_op() {
        let mut a = array(4, 16);
        let writes: Vec<_> =
            (0..4).map(|d| (d, 0, Block::from_bytes_padded(&[d as u8 + 1], 16))).collect();
        a.write_stripe(&writes).unwrap();
        assert_eq!(a.stats().parallel_ops, 1);
        assert_eq!(a.stats().blocks_written, 4);

        let blocks = a.read_stripe(&[(0, 0), (1, 0), (2, 0), (3, 0)]).unwrap();
        assert_eq!(a.stats().parallel_ops, 2);
        for (d, b) in blocks.iter().enumerate() {
            assert_eq!(b.as_bytes()[0], d as u8 + 1);
        }
    }

    #[test]
    fn stripe_conflict_is_rejected() {
        let mut a = array(2, 8);
        let err = a.read_stripe(&[(1, 0), (1, 1)]).unwrap_err();
        assert!(matches!(err, DiskError::StripeConflict { disk: 1 }));
        // Counters unchanged by failed ops.
        assert_eq!(a.stats().parallel_ops, 0);
    }

    #[test]
    fn out_of_range_disk_is_rejected() {
        let mut a = array(2, 8);
        let err = a.read_stripe(&[(2, 0)]).unwrap_err();
        assert!(matches!(err, DiskError::DiskOutOfRange { disk: 2, num_disks: 2 }));
    }

    #[test]
    fn wrong_block_size_is_rejected() {
        let mut a = array(1, 8);
        let err = a.write_stripe(&[(0, 0, Block::zeroed(9))]).unwrap_err();
        assert!(matches!(err, DiskError::BadBlockSize { expected: 8, got: 9 }));
    }

    #[test]
    fn capacity_limit_enforced() {
        let mut a = array(1, 8).with_capacity_limit(2);
        a.write_block(0, 1, Block::zeroed(8)).unwrap();
        let err = a.write_block(0, 2, Block::zeroed(8)).unwrap_err();
        assert!(matches!(err, DiskError::CapacityExceeded { .. }));
    }

    #[test]
    fn single_block_costs_full_op() {
        let mut a = array(8, 8);
        for t in 0..10 {
            a.write_block(0, t, Block::zeroed(8)).unwrap();
        }
        // 10 ops for 10 blocks on one drive out of 8: utilization 10/(10*8).
        assert_eq!(a.stats().parallel_ops, 10);
        assert!((a.stats().utilization() - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn batched_reads_split_conflicting_addresses() {
        let mut a = array(2, 8);
        for t in 0..3 {
            a.write_block(0, t, Block::from_bytes_padded(&[t as u8], 8)).unwrap();
        }
        a.write_block(1, 0, Block::from_bytes_padded(&[9], 8)).unwrap();
        a.reset_stats();
        // Three addresses on disk 0 and one on disk 1 -> 3 stripes.
        let blocks = a.read_blocks_batched(&[(0, 0), (0, 1), (0, 2), (1, 0)]).unwrap();
        assert_eq!(a.stats().parallel_ops, 3);
        assert_eq!(blocks[0].as_bytes()[0], 0);
        assert_eq!(blocks[1].as_bytes()[0], 1);
        assert_eq!(blocks[2].as_bytes()[0], 2);
        assert_eq!(blocks[3].as_bytes()[0], 9);
    }

    #[test]
    fn batched_writes_split_conflicting_addresses() {
        let mut a = array(2, 8);
        let writes = vec![
            (0, 0, Block::from_bytes_padded(&[1], 8)),
            (0, 1, Block::from_bytes_padded(&[2], 8)),
            (1, 0, Block::from_bytes_padded(&[3], 8)),
        ];
        a.write_blocks_batched(writes).unwrap();
        assert_eq!(a.stats().parallel_ops, 2);
        assert_eq!(a.read_block(0, 1).unwrap().as_bytes()[0], 2);
    }

    #[test]
    fn empty_stripe_is_free() {
        let mut a = array(2, 8);
        assert!(a.read_stripe(&[]).unwrap().is_empty());
        a.write_stripe(&[]).unwrap();
        assert_eq!(a.stats().parallel_ops, 0);
    }

    #[test]
    fn serial_and_parallel_file_arrays_count_identically() {
        use crate::IoMode;
        let pid = std::process::id();
        let mk = |mode: IoMode, tag: &str| {
            let dir = std::env::temp_dir().join(format!("em-array-mode-{tag}-{pid}"));
            let cfg = DiskConfig::new(4, 16).unwrap().with_io_mode(mode);
            (dir.clone(), DiskArray::new_file(cfg, dir).unwrap())
        };
        let (dir_s, mut serial) = mk(IoMode::Serial, "s");
        let (dir_p, mut parallel) = mk(IoMode::Parallel, "p");
        for a in [&mut serial, &mut parallel] {
            for t in 0..3 {
                let writes: Vec<_> = (0..4)
                    .map(|d| (d, t, Block::from_bytes_padded(&[(d * 8 + t) as u8], 16)))
                    .collect();
                a.write_stripe(&writes).unwrap();
            }
            let blocks = a.read_stripe(&[(0, 1), (1, 1), (2, 1), (3, 1)]).unwrap();
            assert_eq!(blocks[2].as_bytes()[0], 17);
            a.sync().unwrap();
        }
        assert_eq!(serial.stats(), parallel.stats());
        assert_eq!(serial.tracks_used(0), parallel.tracks_used(0));
        std::fs::remove_dir_all(&dir_s).ok();
        std::fs::remove_dir_all(&dir_p).ok();
    }

    #[test]
    fn submitted_stripes_count_at_submission_and_join_later() {
        let mut a = array(4, 16);
        let writes: Vec<_> =
            (0..4).map(|d| (d, 0, Block::from_bytes_padded(&[d as u8 + 1], 16))).collect();
        let wt = a.submit_write_stripe(&writes).unwrap();
        // Counted before the join, identically to the synchronous path.
        assert_eq!(a.stats().parallel_ops, 1);
        assert_eq!(a.stats().blocks_written, 4);
        wt.join().unwrap();
        let rt = a.submit_read_stripe(&[(0, 0), (1, 0)]).unwrap();
        assert_eq!(a.stats().parallel_ops, 2);
        assert_eq!(a.stats().blocks_read, 2);
        let blocks = rt.join().unwrap();
        assert_eq!(blocks[1].as_bytes()[0], 2);
    }

    #[test]
    fn rejected_submission_leaves_counters_untouched() {
        let mut a = array(2, 8).with_capacity_limit(4);
        assert!(matches!(
            a.submit_read_stripe(&[(1, 0), (1, 1)]).err(),
            Some(DiskError::StripeConflict { disk: 1 })
        ));
        assert!(matches!(
            a.submit_write_stripe(&[(0, 9, Block::zeroed(8))]).err(),
            Some(DiskError::CapacityExceeded { .. })
        ));
        assert!(matches!(
            a.submit_write_stripe(&[(0, 0, Block::zeroed(9))]).err(),
            Some(DiskError::BadBlockSize { expected: 8, got: 9 })
        ));
        assert_eq!(a.stats(), &IoStats::new(2), "failed submissions must not count");
    }

    #[test]
    fn write_backlog_drains_in_submission_order() {
        let mut a = array(2, 8);
        let mut backlog = WriteBacklog::new();
        assert!(backlog.is_empty());
        for t in 0..3 {
            let writes: Vec<_> = (0..2)
                .map(|d| (d, t, Block::from_bytes_padded(&[(10 * t + d) as u8], 8)))
                .collect();
            backlog.push(a.submit_write_stripe(&writes).unwrap());
        }
        assert_eq!(backlog.len(), 3);
        backlog.drain().unwrap();
        assert!(backlog.is_empty());
        assert_eq!(a.read_block(1, 2).unwrap().as_bytes()[0], 21);
        assert_eq!(a.stats().parallel_ops, 4);
    }

    #[test]
    fn pipelined_and_synchronous_arrays_count_identically() {
        // The same logical workload issued through tickets vs the
        // synchronous calls must produce bit-identical IoStats.
        let run = |pipelined: bool| {
            let cfg = DiskConfig::new(3, 16).unwrap().with_pipeline(if pipelined {
                Pipeline::DoubleBuffer
            } else {
                Pipeline::Off
            });
            let mut a = DiskArray::new_memory(cfg);
            let writes: Vec<_> =
                (0..3).map(|d| (d, 1, Block::from_bytes_padded(&[d as u8], 16))).collect();
            if pipelined {
                let mut backlog = WriteBacklog::new();
                backlog.push(a.submit_write_stripe(&writes).unwrap());
                let rt = a.submit_read_stripe(&[(0, 1), (2, 1)]).unwrap();
                backlog.drain().unwrap();
                rt.join().unwrap();
            } else {
                a.write_stripe(&writes).unwrap();
                a.read_stripe(&[(0, 1), (2, 1)]).unwrap();
            }
            a.take_stats()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn file_backed_array_round_trip() {
        let dir = std::env::temp_dir().join(format!("em-array-test-{}", std::process::id()));
        let cfg = DiskConfig::new(3, 32).unwrap();
        let mut a = DiskArray::new_file(cfg, &dir).unwrap();
        let writes: Vec<_> =
            (0..3).map(|d| (d, 5, Block::from_bytes_padded(&[d as u8 * 7], 32))).collect();
        a.write_stripe(&writes).unwrap();
        a.sync().unwrap();
        let blocks = a.read_stripe(&[(0, 5), (1, 5), (2, 5)]).unwrap();
        assert_eq!(blocks[2].as_bytes()[0], 14);
        std::fs::remove_dir_all(&dir).ok();
    }
}
