//! *Standard consecutive format* (Definition 2 of the paper) and the
//! context-layout arithmetic of Algorithm 1, Steps 1(a)/1(e).
//!
//! A collection of records stored on `D` disks is in standard consecutive
//! format if (i) the records are blocked, (ii) per-disk block counts differ
//! by at most one, and (iii) on each disk the blocks occupy consecutive
//! tracks.
//!
//! The paper places the `i`-th block of context `V_j` (each context is
//! `μ/B` blocks) on disk `(i + j·(μ/B)) mod D`, track
//! `⌊(i + j·(μ/B)) / D⌋`. Writing `g = j·(μ/B) + i` for the *global block
//! index*, this is simply `disk = g mod D`, `track = base + g div D` — a
//! round-robin stripe. A run of `k` consecutive regions is therefore a run
//! of `k·(μ/B)` consecutive global blocks and can be moved with full
//! `D`-way parallelism, `D` blocks per I/O operation.

use crate::DiskError;

/// Layout of `num_regions` equal-sized regions (contexts or message groups)
/// striped round-robin across `num_disks` drives starting at `base_track`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsecutiveLayout {
    /// First track of the layout on every drive.
    pub base_track: usize,
    /// Blocks per region (`μ/B` for contexts).
    pub blocks_per_region: usize,
    /// Number of regions (`v` for contexts).
    pub num_regions: usize,
    /// `D`.
    pub num_disks: usize,
}

impl ConsecutiveLayout {
    /// Create a layout, validating shape parameters.
    pub fn new(
        base_track: usize,
        blocks_per_region: usize,
        num_regions: usize,
        num_disks: usize,
    ) -> Result<Self, DiskError> {
        if num_disks == 0 {
            return Err(DiskError::InvalidConfig("layout needs at least one disk"));
        }
        if blocks_per_region == 0 {
            return Err(DiskError::InvalidConfig("blocks_per_region must be >= 1"));
        }
        Ok(ConsecutiveLayout { base_track, blocks_per_region, num_regions, num_disks })
    }

    /// Total blocks across all regions.
    #[inline]
    pub fn total_blocks(&self) -> usize {
        self.blocks_per_region * self.num_regions
    }

    /// Tracks this layout occupies on each drive (`⌈v·(μ/B)/D⌉`).
    #[inline]
    pub fn tracks_per_disk(&self) -> usize {
        self.total_blocks().div_ceil(self.num_disks)
    }

    /// Global block index of block `block` of region `region`.
    #[inline]
    pub fn global_index(&self, region: usize, block: usize) -> usize {
        debug_assert!(region < self.num_regions);
        debug_assert!(block < self.blocks_per_region);
        region * self.blocks_per_region + block
    }

    /// `(disk, track)` of block `block` of region `region` — the paper's
    /// `(i + j·(μ/B)) mod D` / `⌊(i + j·(μ/B))/D⌋` mapping.
    #[inline]
    pub fn location(&self, region: usize, block: usize) -> (usize, usize) {
        let g = self.global_index(region, block);
        (g % self.num_disks, self.base_track + g / self.num_disks)
    }

    /// All `(disk, track)` addresses of the blocks of regions
    /// `[first, first + count)`, grouped into parallel stripes: each inner
    /// vector touches each drive at most once, so it is a legal single
    /// parallel I/O operation, and all but the first and last stripes use
    /// all `D` drives.
    pub fn stripes(&self, first_region: usize, count: usize) -> Vec<Vec<(usize, usize)>> {
        if count == 0 || self.blocks_per_region == 0 {
            return Vec::new();
        }
        let start = self.global_index(first_region, 0);
        let end = start + count * self.blocks_per_region; // exclusive
        let mut out = Vec::with_capacity((end - start).div_ceil(self.num_disks));
        let mut g = start;
        while g < end {
            // A stripe is a maximal run of global indices mapping to
            // distinct drives; since disk = g mod D, that is the run up to
            // the next multiple of D (clipped to the range end).
            let run = (self.num_disks - g % self.num_disks).min(end - g);
            let stripe: Vec<(usize, usize)> = (g..g + run)
                .map(|x| (x % self.num_disks, self.base_track + x / self.num_disks))
                .collect();
            out.push(stripe);
            g += run;
        }
        out
    }
}

/// Check Definition 2 over a set of `(disk, track)` block locations:
/// per-disk counts differ by at most one and each disk's tracks are
/// consecutive. Returns the per-disk track ranges on success.
pub fn check_consecutive_format(
    locations: &[(usize, usize)],
    num_disks: usize,
) -> Result<Vec<Option<(usize, usize)>>, String> {
    let mut per_disk: Vec<Vec<usize>> = vec![Vec::new(); num_disks];
    for &(d, t) in locations {
        if d >= num_disks {
            return Err(format!("disk {d} out of range"));
        }
        per_disk[d].push(t);
    }
    let counts: Vec<usize> = per_disk.iter().map(Vec::len).collect();
    let (min, max) =
        (counts.iter().copied().min().unwrap_or(0), counts.iter().copied().max().unwrap_or(0));
    if max - min > 1 {
        return Err(format!("per-disk block counts differ by more than one: {counts:?}"));
    }
    let mut ranges = Vec::with_capacity(num_disks);
    for (d, tracks) in per_disk.iter_mut().enumerate() {
        if tracks.is_empty() {
            ranges.push(None);
            continue;
        }
        tracks.sort_unstable();
        for w in tracks.windows(2) {
            if w[1] != w[0] + 1 {
                return Err(format!("disk {d}: tracks not consecutive ({} then {})", w[0], w[1]));
            }
        }
        ranges.push(Some((tracks[0], *tracks.last().unwrap())));
    }
    Ok(ranges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_matches_paper_formula() {
        // μ/B = 3 blocks per context, D = 4.
        let l = ConsecutiveLayout::new(10, 3, 8, 4).unwrap();
        for j in 0..8 {
            for i in 0..3 {
                let (disk, track) = l.location(j, i);
                assert_eq!(disk, (i + j * 3) % 4);
                assert_eq!(track, 10 + (i + j * 3) / 4);
            }
        }
    }

    #[test]
    fn layout_is_consecutive_format() {
        let l = ConsecutiveLayout::new(0, 3, 8, 4).unwrap();
        let locs: Vec<(usize, usize)> = (0..8)
            .flat_map(|j| (0..3).map(move |i| (j, i)))
            .map(|(j, i)| l.location(j, i))
            .collect();
        let ranges = check_consecutive_format(&locs, 4).unwrap();
        // 24 blocks over 4 disks = 6 tracks each, starting at 0.
        for r in ranges {
            assert_eq!(r, Some((0, 5)));
        }
    }

    #[test]
    fn stripes_touch_each_disk_once_and_cover_all_blocks() {
        let l = ConsecutiveLayout::new(5, 3, 8, 4).unwrap();
        let stripes = l.stripes(2, 3); // regions 2,3,4 -> 9 blocks
        let total: usize = stripes.iter().map(Vec::len).sum();
        assert_eq!(total, 9);
        for s in &stripes {
            let mut disks: Vec<usize> = s.iter().map(|&(d, _)| d).collect();
            disks.sort_unstable();
            disks.dedup();
            assert_eq!(disks.len(), s.len(), "stripe reuses a disk: {s:?}");
        }
        // Interior stripes are full width.
        for s in &stripes[1..stripes.len().saturating_sub(1)] {
            assert_eq!(s.len(), 4);
        }
        // Blocks are exactly the layout's addresses for those regions.
        let mut got: Vec<(usize, usize)> = stripes.into_iter().flatten().collect();
        let mut want: Vec<(usize, usize)> = (2..5)
            .flat_map(|j| (0..3).map(move |i| (j, i)))
            .map(|(j, i)| l.location(j, i))
            .collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn io_op_count_is_ceil_blocks_over_d() {
        // Lemma 1: reading k contexts of μ/B blocks takes ⌈kμ/DB⌉ ops when
        // the run starts on a disk boundary.
        let l = ConsecutiveLayout::new(0, 4, 16, 4).unwrap();
        let stripes = l.stripes(0, 16);
        assert_eq!(stripes.len(), (16 * 4) / 4);
    }

    #[test]
    fn detector_rejects_gaps_and_imbalance() {
        // Gap on disk 0.
        assert!(check_consecutive_format(&[(0, 0), (0, 2)], 2).is_err());
        // Imbalance of two.
        assert!(check_consecutive_format(&[(0, 0), (0, 1), (1, 0), (0, 2)], 2).is_err());
        // Fine: counts 2 and 1.
        assert!(check_consecutive_format(&[(0, 0), (0, 1), (1, 0)], 2).is_ok());
    }

    #[test]
    fn empty_and_degenerate_layouts() {
        assert!(ConsecutiveLayout::new(0, 0, 4, 4).is_err());
        assert!(ConsecutiveLayout::new(0, 1, 4, 0).is_err());
        let l = ConsecutiveLayout::new(0, 1, 0, 2).unwrap();
        assert_eq!(l.tracks_per_disk(), 0);
        assert!(l.stripes(0, 0).is_empty());
    }
}
