//! Property tests for the disk substrate: arbitrary write/read programs
//! against an in-memory model, layout invariants, and allocator safety.

use em_disk::{
    check_consecutive_format, Block, ConsecutiveLayout, DiskArray, DiskConfig, TrackAllocator,
};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// The array behaves like a map from (disk, track) to the last block
    /// written, with unwritten tracks reading as zeros.
    #[test]
    fn array_matches_model(
        ops in proptest::collection::vec((0usize..4, 0usize..32, any::<u8>(), any::<bool>()), 1..120)
    ) {
        let cfg = DiskConfig::new(4, 16).unwrap();
        let mut arr = DiskArray::new_memory(cfg);
        let mut model: HashMap<(usize, usize), u8> = HashMap::new();
        for (disk, track, byte, is_write) in ops {
            if is_write {
                arr.write_block(disk, track, Block::from_bytes_padded(&[byte], 16)).unwrap();
                model.insert((disk, track), byte);
            } else {
                let got = arr.read_block(disk, track).unwrap();
                let want = model.get(&(disk, track)).copied().unwrap_or(0);
                prop_assert_eq!(got.as_bytes()[0], want);
            }
        }
    }

    /// Every consecutive layout satisfies Definition 2 and addresses are
    /// unique.
    #[test]
    fn layout_always_satisfies_definition2(
        bpr in 1usize..6,
        regions in 1usize..20,
        d in 1usize..8,
        base in 0usize..50,
    ) {
        let l = ConsecutiveLayout::new(base, bpr, regions, d).unwrap();
        let locs: Vec<(usize, usize)> = (0..regions)
            .flat_map(|j| (0..bpr).map(move |i| (j, i)))
            .map(|(j, i)| l.location(j, i))
            .collect();
        // Unique addresses.
        let mut dedup = locs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), locs.len());
        // Definition 2.
        prop_assert!(check_consecutive_format(&locs, d).is_ok());
        // All tracks within the computed footprint.
        for (disk, track) in locs {
            prop_assert!(disk < d);
            prop_assert!(track >= base && track < base + l.tracks_per_disk());
        }
    }

    /// Stripes returned by the layout are always legal parallel I/Os and
    /// cover exactly the requested regions.
    #[test]
    fn stripes_are_legal_and_complete(
        bpr in 1usize..5,
        regions in 1usize..16,
        d in 1usize..6,
        first in 0usize..8,
        count in 0usize..8,
    ) {
        prop_assume!(first + count <= regions);
        let l = ConsecutiveLayout::new(0, bpr, regions, d).unwrap();
        let stripes = l.stripes(first, count);
        let total: usize = stripes.iter().map(Vec::len).sum();
        prop_assert_eq!(total, count * bpr);
        for s in &stripes {
            let mut disks: Vec<usize> = s.iter().map(|&(dk, _)| dk).collect();
            disks.sort_unstable();
            disks.dedup();
            prop_assert_eq!(disks.len(), s.len(), "stripe reuses a disk");
        }
    }

    /// The allocator never hands out the same live track twice on a disk.
    #[test]
    fn allocator_never_double_allocates(
        ops in proptest::collection::vec((0usize..3, any::<bool>()), 1..200)
    ) {
        let mut alloc = TrackAllocator::new(3);
        let mut live: Vec<Vec<usize>> = vec![Vec::new(); 3];
        for (disk, free_one) in ops {
            if free_one && !live[disk].is_empty() {
                let t = live[disk].pop().unwrap();
                alloc.free_track(disk, t);
            } else {
                let t = alloc.alloc_track(disk);
                prop_assert!(!live[disk].contains(&t), "track {t} double-allocated");
                live[disk].push(t);
            }
        }
    }
}
