//! In-group compute parallelism for the Computation Phase (Step 1(c)).
//!
//! Both simulators run the `k` virtual processors of a group through the
//! same per-vp kernel: decode the context, deliver the canonically ordered
//! inbox, run [`em_bsp::BspProgram::superstep`], encode the outgoing
//! envelopes and re-encode the context. The [`ComputeMode`] knob chooses
//! *who* runs that kernel:
//!
//! * [`ComputeMode::Serial`] — the simulating thread, one vp at a time
//!   (the paper's model; the default).
//! * [`ComputeMode::Threaded`] — a [`std::thread::scope`] worker pool of
//!   at most `n` threads, each taking one contiguous chunk of the group.
//!
//! **Determinism is by construction, not by synchronization.** Every vp
//! gets a pre-built [`VpWork`] slot (its context bytes and its inbox) and
//! fills a dedicated [`VpSlot`] result (its re-encoded context and its
//! ordered outbox, with per-sender `seq` numbers assigned vp-locally).
//! Workers never share mutable state; the parent concatenates the slots
//! in vp order afterwards. The bytes written to disk, the canonical
//! `(src, per-sender send order)` inbox contract of the *next* superstep,
//! the communication ledger and every counted I/O operation are therefore
//! bit-identical across modes — the knob only changes which OS thread
//! executes the kernel. Errors are deterministic too: the parent surfaces
//! the first error in vp order, exactly the one the serial loop would
//! have stopped at (running later vps first is unobservable, since a
//! failed superstep's outputs are discarded wholesale).
//!
//! The pool is scoped to one group: workers borrow the program by
//! reference and are joined before the Writing Phase starts, so replaying
//! a superstep under recovery needs no extra rewinding — there *is* no
//! worker-pool state that outlives the group.

use crate::msg::{OutMsg, MSG_HEADER_BYTES};
use crate::{EmError, EmResult};
use em_bsp::{BspError, BspProgram, Envelope, Mailbox, Step};
use em_serial::{from_bytes, to_bytes, to_bytes_into};

/// How the Computation Phase runs the virtual processors of a group.
///
/// Mirrors the [`em_disk::IoMode`] / [`em_disk::Pipeline`] knobs: final
/// states, message ledger, counted I/O and seeded traces are identical in
/// every mode (asserted by `tests/compute_modes.rs` and the cross-executor
/// matrix); only wall-clock time may differ.
///
/// ```
/// use em_core::{ComputeMode, EmMachine, SeqEmSimulator};
/// use em_disk::Pipeline;
///
/// // Fan each group's virtual processors over up to 4 scoped workers;
/// // the knob composes freely with the pipeline (and cache) knobs.
/// let machine = EmMachine::uniprocessor(1 << 16, 4, 256, 1);
/// let _sim = SeqEmSimulator::new(machine)
///     .with_compute_mode(ComputeMode::Threaded(4))
///     .with_pipeline(Pipeline::Stream(2));
/// assert_eq!(ComputeMode::default(), ComputeMode::Serial);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ComputeMode {
    /// Run the group's virtual processors on the simulating thread, in pid
    /// order (the default).
    #[default]
    Serial,
    /// Run the group's virtual processors on a scoped worker pool of at
    /// most this many threads (clamped to at least 1 and at most the group
    /// size). `Threaded(1)` exercises the pool machinery but is
    /// effectively serial.
    Threaded(usize),
}

/// One virtual processor's share of a group's Computation Phase, prepared
/// by the simulating thread before any worker runs.
pub(crate) struct VpWork<M> {
    /// Global virtual-processor id.
    pub pid: usize,
    /// The fetched context region bytes (exactly the encoded state).
    pub ctx: Vec<u8>,
    /// Decoded inbound messages as `(src, seq, msg)`; sorted into the
    /// canonical `(src, seq)` order by the kernel.
    pub inbox: Vec<(u32, u32, M)>,
    /// Bytes received by this vp (for the h-relation tally).
    pub recv_bytes: u64,
    /// Messages received by this vp (for the h-relation tally).
    pub recv_msgs: u64,
}

/// One virtual processor's results, filled by exactly one worker.
pub(crate) struct VpSlot {
    /// The re-encoded context (reuses the [`VpWork::ctx`] allocation).
    pub state_bytes: Vec<u8>,
    /// Outgoing envelopes in send order, with vp-local `seq` numbers.
    pub outbox: Vec<OutMsg>,
    /// Messages sent by this vp.
    pub msgs_sent: u64,
    /// Payload bytes sent by this vp.
    pub bytes_sent: u64,
    /// Bytes received (copied through from [`VpWork`]).
    pub recv_bytes: u64,
    /// Messages received (copied through from [`VpWork`]).
    pub recv_msgs: u64,
    /// Local computation units reported by the program.
    pub work: u64,
    /// Whether the program returned [`Step::Continue`].
    pub continued: bool,
}

/// The per-vp kernel shared by every mode and both simulators.
fn run_one_vp<P: BspProgram>(
    prog: &P,
    step: usize,
    v: usize,
    gamma: usize,
    mut w: VpWork<P::Msg>,
) -> EmResult<VpSlot> {
    let mut state: P::State = from_bytes(&w.ctx)?;
    w.inbox.sort_by_key(|&(src, seq, _)| (src, seq));
    let incoming: Vec<Envelope<P::Msg>> = std::mem::take(&mut w.inbox)
        .into_iter()
        .map(|(src, _, msg)| Envelope { src: src as usize, msg })
        .collect();
    let mut mb = Mailbox::new(w.pid, v, incoming);
    let status = prog.superstep(step, &mut mb, &mut state);
    let (out, msgs_sent, bytes_sent, work) = mb.into_outgoing();

    let mut outbox = Vec::with_capacity(out.len());
    let mut envelope_bytes = 0u64;
    for (seq, (dst, msg)) in out.into_iter().enumerate() {
        if dst >= v {
            return Err(EmError::Bsp(BspError::InvalidDestination { dst, nprocs: v }));
        }
        // Per-message payloads stay owned allocations: `OutMsg` hands the
        // payload off to the block cutter, so there is no buffer to reuse.
        let payload = to_bytes(&msg);
        envelope_bytes += (MSG_HEADER_BYTES + payload.len()) as u64;
        outbox.push(OutMsg { dst: dst as u32, src: w.pid as u32, seq: seq as u32, payload });
    }
    if envelope_bytes > gamma as u64 {
        return Err(EmError::CommBudgetExceeded {
            pid: w.pid,
            sent: envelope_bytes,
            budget: gamma,
        });
    }
    // Recycle the fetched context buffer for the updated state.
    to_bytes_into(&state, &mut w.ctx);
    Ok(VpSlot {
        state_bytes: w.ctx,
        outbox,
        msgs_sent,
        bytes_sent,
        recv_bytes: w.recv_bytes,
        recv_msgs: w.recv_msgs,
        work,
        continued: status == Step::Continue,
    })
}

/// Run every [`VpWork`] item through the kernel under `mode`, returning
/// one result per item **in vp order** regardless of which thread ran it.
pub(crate) fn run_group_vps<P: BspProgram>(
    prog: &P,
    mode: ComputeMode,
    step: usize,
    v: usize,
    gamma: usize,
    work: Vec<VpWork<P::Msg>>,
) -> Vec<EmResult<VpSlot>> {
    let count = work.len();
    let workers = match mode {
        ComputeMode::Serial => 1,
        ComputeMode::Threaded(n) => n.clamp(1, count.max(1)),
    };
    if workers <= 1 || count <= 1 {
        return work.into_iter().map(|w| run_one_vp(prog, step, v, gamma, w)).collect();
    }

    // Each worker owns one contiguous chunk of the work items and fills
    // the matching chunk of pre-sized result slots; no two workers touch
    // the same slot, and the parent reads the slots back in vp order.
    let chunk = count.div_ceil(workers);
    let mut slots: Vec<Option<EmResult<VpSlot>>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    std::thread::scope(|scope| {
        let mut rest: &mut [Option<EmResult<VpSlot>>] = &mut slots;
        let mut items = work.into_iter();
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
            rest = tail;
            let batch: Vec<VpWork<P::Msg>> = items.by_ref().take(take).collect();
            scope.spawn(move || {
                for (slot, w) in head.iter_mut().zip(batch) {
                    *slot = Some(run_one_vp(prog, step, v, gamma, w));
                }
            });
        }
    });
    slots.into_iter().map(|s| s.expect("every slot was assigned to a worker")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl BspProgram for Echo {
        type State = u64;
        type Msg = u64;
        fn superstep(&self, _step: usize, mb: &mut Mailbox<u64>, state: &mut u64) -> Step {
            for e in mb.take_incoming() {
                *state = state.wrapping_add(e.msg);
            }
            mb.send((mb.pid() + 1) % mb.nprocs(), *state);
            Step::Halt
        }
        fn max_state_bytes(&self) -> usize {
            8
        }
        fn max_comm_bytes(&self) -> usize {
            24
        }
    }

    fn work_items(n: usize) -> Vec<VpWork<u64>> {
        (0..n)
            .map(|pid| VpWork {
                pid,
                ctx: to_bytes(&(pid as u64 * 10)),
                inbox: vec![(1, 0, 5u64), (0, 0, 7u64)],
                recv_bytes: 16,
                recv_msgs: 2,
            })
            .collect()
    }

    #[test]
    fn threaded_slots_match_serial_bytes() {
        let v = 7;
        let serial = run_group_vps(&Echo, ComputeMode::Serial, 0, v, 64, work_items(v));
        for n in [1usize, 2, 3, 16] {
            let threaded = run_group_vps(&Echo, ComputeMode::Threaded(n), 0, v, 64, work_items(v));
            assert_eq!(serial.len(), threaded.len());
            for (a, b) in serial.iter().zip(&threaded) {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert_eq!(a.state_bytes, b.state_bytes);
                assert_eq!(a.outbox.len(), b.outbox.len());
                for (x, y) in a.outbox.iter().zip(&b.outbox) {
                    assert_eq!(
                        (x.dst, x.src, x.seq, &x.payload),
                        (y.dst, y.src, y.seq, &y.payload)
                    );
                }
                assert_eq!(
                    (a.msgs_sent, a.bytes_sent, a.recv_bytes, a.recv_msgs, a.work, a.continued),
                    (b.msgs_sent, b.bytes_sent, b.recv_bytes, b.recv_msgs, b.work, b.continued)
                );
            }
        }
    }

    #[test]
    fn first_vp_order_error_surfaces_in_every_mode() {
        struct Bad;
        impl BspProgram for Bad {
            type State = u64;
            type Msg = u64;
            fn superstep(&self, _: usize, mb: &mut Mailbox<u64>, _: &mut u64) -> Step {
                mb.take_incoming();
                mb.send(usize::MAX, 0); // invalid destination for every vp
                Step::Halt
            }
            fn max_state_bytes(&self) -> usize {
                8
            }
        }
        for mode in [ComputeMode::Serial, ComputeMode::Threaded(4)] {
            let items: Vec<VpWork<u64>> = (0..6)
                .map(|pid| VpWork {
                    pid,
                    ctx: to_bytes(&0u64),
                    inbox: Vec::new(),
                    recv_bytes: 0,
                    recv_msgs: 0,
                })
                .collect();
            let out = run_group_vps(&Bad, mode, 0, 6, 64, items);
            let first = out.into_iter().find_map(|r| r.err()).expect("error expected");
            assert!(matches!(first, EmError::Bsp(BspError::InvalidDestination { .. })));
        }
    }
}
