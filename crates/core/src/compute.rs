//! In-group compute parallelism for the Computation Phase (Step 1(c)).
//!
//! Both simulators run the `k` virtual processors of a group through the
//! same per-vp kernel: decode the context, deliver the canonically ordered
//! inbox, run [`em_bsp::BspProgram::superstep`], encode the outgoing
//! envelopes and re-encode the context. The [`ComputeMode`] knob chooses
//! *who* runs that kernel:
//!
//! * [`ComputeMode::Serial`] — the simulating thread, one vp at a time
//!   (the paper's model; the default).
//! * [`ComputeMode::Threaded`] — a persistent [`ComputePool`] of at most
//!   `n` workers, each taking one contiguous chunk of the group.
//!
//! **Determinism is by construction, not by synchronization.** Every vp
//! gets a pre-built [`VpWork`] slot (its context bytes and its inbox) and
//! fills a dedicated [`VpSlot`] result (its re-encoded context and its
//! ordered outbox, with per-sender `seq` numbers assigned vp-locally).
//! Workers never share mutable state; the parent concatenates the slots
//! in vp order afterwards. The bytes written to disk, the canonical
//! `(src, per-sender send order)` inbox contract of the *next* superstep,
//! the communication ledger and every counted I/O operation are therefore
//! bit-identical across modes — the knob only changes which OS thread
//! executes the kernel. Errors are deterministic too: the parent surfaces
//! the first error in vp order, exactly the one the serial loop would
//! have stopped at (running later vps first is unobservable, since a
//! failed superstep's outputs are discarded wholesale).
//!
//! The *dispatch* is scoped to one group even though the workers are not:
//! the [`ComputePool`] threads (`em-compute-w{idx}`) live for the lifetime
//! of the simulator that owns them and are reused across groups,
//! supersteps, `run_on()`/`resume()` calls and service jobs — but every
//! dispatch blocks until all of its chunk jobs have completed, so workers
//! borrow the program and the slot array only while the parent waits.
//! Replaying a superstep under recovery therefore needs no extra
//! rewinding — no *group* state outlives the dispatch, only the idle
//! threads do.

use crate::msg::{OutMsg, MSG_HEADER_BYTES};
use crate::{EmError, EmResult};
use em_bsp::{BspError, BspProgram, Envelope, Mailbox, Step};
use em_serial::{from_bytes, to_bytes, to_bytes_into};
use std::any::Any;
use std::sync::{Arc, Condvar, Mutex};

/// How the Computation Phase runs the virtual processors of a group.
///
/// Mirrors the [`em_disk::IoMode`] / [`em_disk::Pipeline`] knobs: final
/// states, message ledger, counted I/O and seeded traces are identical in
/// every mode (asserted by `tests/compute_modes.rs` and the cross-executor
/// matrix); only wall-clock time may differ.
///
/// ```
/// use em_core::{ComputeMode, EmMachine, SeqEmSimulator};
/// use em_disk::Pipeline;
///
/// // Fan each group's virtual processors over up to 4 scoped workers;
/// // the knob composes freely with the pipeline (and cache) knobs.
/// let machine = EmMachine::uniprocessor(1 << 16, 4, 256, 1);
/// let _sim = SeqEmSimulator::new(machine)
///     .with_compute_mode(ComputeMode::Threaded(4))
///     .with_pipeline(Pipeline::Stream(2));
/// assert_eq!(ComputeMode::default(), ComputeMode::Serial);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ComputeMode {
    /// Run the group's virtual processors on the simulating thread, in pid
    /// order (the default).
    #[default]
    Serial,
    /// Run the group's virtual processors on a persistent worker pool of
    /// at most this many threads (clamped to at least 1 and at most the
    /// group size). `Threaded(1)` exercises the pool machinery but is
    /// effectively serial.
    Threaded(usize),
    /// Ask the runtime to choose: the simulators' `AutoTuner` resolves
    /// this into [`ComputeMode::Serial`] or a concrete
    /// [`ComputeMode::Threaded`] width *before* any group runs, and the
    /// resolution is recorded in `CostReport::resolved_config`. An
    /// unresolved `Auto` that reaches the kernel dispatcher behaves like
    /// `Serial` — the conservative choice — so the knob can never change
    /// results on its own.
    Auto,
}

impl ComputeMode {
    /// Whether this is the unresolved [`ComputeMode::Auto`] request.
    #[inline]
    pub fn is_auto(&self) -> bool {
        matches!(self, ComputeMode::Auto)
    }
}

/// A completion gate for one pool dispatch: counts outstanding jobs and
/// keeps the first panic so the dispatcher can re-raise it after *all*
/// jobs of the batch have finished (never mid-batch — that would leave a
/// worker writing into a slot array the parent has already dropped).
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Latch {
    fn new(jobs: usize) -> Self {
        Latch { remaining: Mutex::new(jobs), done: Condvar::new(), panic: Mutex::new(None) }
    }

    /// Worker side: record an optional panic payload and count down.
    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        if let Some(p) = panic {
            let mut slot = self.panic.lock().expect("latch panic slot");
            if slot.is_none() {
                *slot = Some(p);
            }
        }
        let mut remaining = self.remaining.lock().expect("latch count");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Dispatcher side: block until every job of the batch completed.
    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("latch count");
        while *remaining > 0 {
            remaining = self.done.wait(remaining).expect("latch count");
        }
    }
}

/// One queued pool job: the erased closure plus the dispatch latch it
/// reports to.
struct PoolJob {
    run: Box<dyn FnOnce() + Send + 'static>,
    latch: Arc<Latch>,
}

struct PoolInner {
    /// Job queue sender; taken (dropped) on shutdown so workers see the
    /// disconnect and exit their loops.
    tx: Mutex<Option<crossbeam_channel::Sender<PoolJob>>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    workers: usize,
    pinned: bool,
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        // Disconnect the queue, then join every named worker: dropping the
        // last pool handle must leave no `em-compute-w*` thread behind.
        self.tx.get_mut().expect("pool sender").take();
        for h in self.handles.get_mut().expect("pool handles").drain(..) {
            let _ = h.join();
        }
    }
}

/// A persistent compute worker pool shared by the Computation Phase and
/// the reorganization phase.
///
/// Workers are OS threads named `em-compute-w{idx}`, spawned **once** when
/// the pool is built and reused for every subsequent dispatch — across
/// groups, supersteps, `run_on()`/`resume()` calls and `em-service` jobs —
/// so the hot path never pays thread-spawn latency. Cloning the handle is
/// cheap (the clones share the workers); the threads exit and are joined
/// when the last handle drops.
///
/// Determinism is unaffected by the pool by construction: a dispatch
/// hands each worker a disjoint, pre-sized slot range, blocks until the
/// whole batch has completed, and reads the slots back in vp order —
/// exactly the discipline of the scoped pool it replaces. A panicking job
/// finishes its batch first and is then re-raised on the dispatching
/// thread.
#[derive(Clone)]
pub struct ComputePool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for ComputePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComputePool")
            .field("workers", &self.inner.workers)
            .field("pinned", &self.inner.pinned)
            .finish()
    }
}

impl ComputePool {
    /// Spawn a pool of `workers` threads (at least 1), unpinned.
    pub fn new(workers: usize) -> Self {
        Self::with_pinning(workers, false)
    }

    /// Spawn a pool of `workers` threads (at least 1). With `pinned`,
    /// worker `i` is best-effort pinned to core `i mod ncpus` (a no-op on
    /// platforms without thread affinity).
    pub fn with_pinning(workers: usize, pinned: bool) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = crossbeam_channel::unbounded::<PoolJob>();
        let ncpus = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
        let handles = (0..workers)
            .map(|idx| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("em-compute-w{idx}"))
                    .spawn(move || {
                        if pinned {
                            em_disk::pin_thread_to_core(idx % ncpus);
                        }
                        while let Ok(job) = rx.recv() {
                            let panic =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(job.run))
                                    .err();
                            job.latch.complete(panic);
                        }
                    })
                    .expect("spawn em-compute worker")
            })
            .collect();
        ComputePool {
            inner: Arc::new(PoolInner {
                tx: Mutex::new(Some(tx)),
                handles: Mutex::new(handles),
                workers,
                pinned,
            }),
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Whether the workers were affinity-pinned at spawn.
    pub fn pinned(&self) -> bool {
        self.inner.pinned
    }

    /// Run a batch of jobs on the pool and block until every one has
    /// completed; the first panicking job's payload is re-raised here
    /// afterwards.
    ///
    /// The jobs may borrow from the caller's stack frame (`'env`): the
    /// blocking wait is what makes that sound, exactly as with
    /// [`std::thread::scope`].
    pub(crate) fn scope_run<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if jobs.is_empty() {
            return;
        }
        let latch = Arc::new(Latch::new(jobs.len()));
        {
            let tx = self.inner.tx.lock().expect("pool sender");
            let tx = tx.as_ref().expect("pool queue alive while a handle exists");
            for job in jobs {
                // SAFETY: `scope_run` does not return until the latch has
                // counted every job (including panicked ones) as complete,
                // so no borrow inside `job` is used after it expires. The
                // transmute only erases the `'env` lifetime; the trait
                // object layout is unchanged.
                let job: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
                tx.send(PoolJob { run: job, latch: latch.clone() })
                    .expect("pool workers alive while a handle exists");
            }
        }
        latch.wait();
        let panic = latch.panic.lock().expect("latch panic slot").take();
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
    }

    /// Map `items` through `f` on the pool, returning results **in item
    /// order**: each of up to `workers` jobs owns one contiguous chunk of
    /// the items and fills the matching chunk of pre-sized slots. With one
    /// effective worker (or one item) the map runs inline on the caller.
    pub(crate) fn map_ordered<T, R, F>(
        pool: Option<&ComputePool>,
        workers: usize,
        items: Vec<T>,
        f: F,
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let count = items.len();
        let workers = workers.clamp(1, count.max(1));
        let pool = match pool {
            Some(p) if workers > 1 && count > 1 => p,
            _ => return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect(),
        };
        let chunk = count.div_ceil(workers);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(count);
        slots.resize_with(count, || None);
        let f = &f;
        let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(workers);
        let mut rest: &mut [Option<R>] = &mut slots;
        let mut items = items.into_iter();
        let mut offset = 0usize;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
            rest = tail;
            let batch: Vec<T> = items.by_ref().take(take).collect();
            let base = offset;
            offset += take;
            jobs.push(Box::new(move || {
                for (i, (slot, t)) in head.iter_mut().zip(batch).enumerate() {
                    *slot = Some(f(base + i, t));
                }
            }));
        }
        pool.scope_run(jobs);
        slots.into_iter().map(|s| s.expect("every slot was assigned to a worker")).collect()
    }
}

/// One virtual processor's share of a group's Computation Phase, prepared
/// by the simulating thread before any worker runs.
pub(crate) struct VpWork<M> {
    /// Global virtual-processor id.
    pub pid: usize,
    /// The fetched context region bytes (exactly the encoded state).
    pub ctx: Vec<u8>,
    /// Decoded inbound messages as `(src, seq, msg)`; sorted into the
    /// canonical `(src, seq)` order by the kernel.
    pub inbox: Vec<(u32, u32, M)>,
    /// Bytes received by this vp (for the h-relation tally).
    pub recv_bytes: u64,
    /// Messages received by this vp (for the h-relation tally).
    pub recv_msgs: u64,
}

/// One virtual processor's results, filled by exactly one worker.
pub(crate) struct VpSlot {
    /// The re-encoded context (reuses the [`VpWork::ctx`] allocation).
    pub state_bytes: Vec<u8>,
    /// Outgoing envelopes in send order, with vp-local `seq` numbers.
    pub outbox: Vec<OutMsg>,
    /// Messages sent by this vp.
    pub msgs_sent: u64,
    /// Payload bytes sent by this vp.
    pub bytes_sent: u64,
    /// Bytes received (copied through from [`VpWork`]).
    pub recv_bytes: u64,
    /// Messages received (copied through from [`VpWork`]).
    pub recv_msgs: u64,
    /// Local computation units reported by the program.
    pub work: u64,
    /// Whether the program returned [`Step::Continue`].
    pub continued: bool,
}

/// The per-vp kernel shared by every mode and both simulators.
fn run_one_vp<P: BspProgram>(
    prog: &P,
    step: usize,
    v: usize,
    gamma: usize,
    mut w: VpWork<P::Msg>,
) -> EmResult<VpSlot> {
    let mut state: P::State = from_bytes(&w.ctx)?;
    w.inbox.sort_by_key(|&(src, seq, _)| (src, seq));
    let incoming: Vec<Envelope<P::Msg>> = std::mem::take(&mut w.inbox)
        .into_iter()
        .map(|(src, _, msg)| Envelope { src: src as usize, msg })
        .collect();
    let mut mb = Mailbox::new(w.pid, v, incoming);
    let status = prog.superstep(step, &mut mb, &mut state);
    let (out, msgs_sent, bytes_sent, work) = mb.into_outgoing();

    let mut outbox = Vec::with_capacity(out.len());
    let mut envelope_bytes = 0u64;
    for (seq, (dst, msg)) in out.into_iter().enumerate() {
        if dst >= v {
            return Err(EmError::Bsp(BspError::InvalidDestination { dst, nprocs: v }));
        }
        // Per-message payloads stay owned allocations: `OutMsg` hands the
        // payload off to the block cutter, so there is no buffer to reuse.
        let payload = to_bytes(&msg);
        envelope_bytes += (MSG_HEADER_BYTES + payload.len()) as u64;
        outbox.push(OutMsg { dst: dst as u32, src: w.pid as u32, seq: seq as u32, payload });
    }
    if envelope_bytes > gamma as u64 {
        return Err(EmError::CommBudgetExceeded {
            pid: w.pid,
            sent: envelope_bytes,
            budget: gamma,
        });
    }
    // Recycle the fetched context buffer for the updated state.
    to_bytes_into(&state, &mut w.ctx);
    Ok(VpSlot {
        state_bytes: w.ctx,
        outbox,
        msgs_sent,
        bytes_sent,
        recv_bytes: w.recv_bytes,
        recv_msgs: w.recv_msgs,
        work,
        continued: status == Step::Continue,
    })
}

/// Run every [`VpWork`] item through the kernel under `mode`, returning
/// one result per item **in vp order** regardless of which thread ran it.
///
/// With a [`ComputePool`] the chunk jobs run on its persistent workers;
/// without one (direct unit-test calls) a scoped pool is spun up for the
/// call. Chunking, slot layout and join order are identical either way.
pub(crate) fn run_group_vps<P: BspProgram>(
    prog: &P,
    mode: ComputeMode,
    step: usize,
    v: usize,
    gamma: usize,
    work: Vec<VpWork<P::Msg>>,
    pool: Option<&ComputePool>,
) -> Vec<EmResult<VpSlot>> {
    let count = work.len();
    let workers = match mode {
        // An unresolved `Auto` is serial: resolution happens upstream in
        // the simulators, never here.
        ComputeMode::Serial | ComputeMode::Auto => 1,
        ComputeMode::Threaded(n) => n.clamp(1, count.max(1)),
    };
    if workers <= 1 || count <= 1 {
        return work.into_iter().map(|w| run_one_vp(prog, step, v, gamma, w)).collect();
    }

    // Each worker owns one contiguous chunk of the work items and fills
    // the matching chunk of pre-sized result slots; no two workers touch
    // the same slot, and the parent reads the slots back in vp order.
    type Chunk<'s, M> = (&'s mut [Option<EmResult<VpSlot>>], Vec<VpWork<M>>);
    let chunk = count.div_ceil(workers);
    let mut slots: Vec<Option<EmResult<VpSlot>>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    let mut chunks: Vec<Chunk<'_, P::Msg>> = Vec::with_capacity(workers);
    {
        let mut rest: &mut [Option<EmResult<VpSlot>>] = &mut slots;
        let mut items = work.into_iter();
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
            rest = tail;
            let batch: Vec<VpWork<P::Msg>> = items.by_ref().take(take).collect();
            chunks.push((head, batch));
        }
    }
    match pool {
        Some(pool) => {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
                .into_iter()
                .map(|(head, batch)| {
                    Box::new(move || {
                        for (slot, w) in head.iter_mut().zip(batch) {
                            *slot = Some(run_one_vp(prog, step, v, gamma, w));
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.scope_run(jobs);
        }
        None => {
            std::thread::scope(|scope| {
                for (head, batch) in chunks {
                    scope.spawn(move || {
                        for (slot, w) in head.iter_mut().zip(batch) {
                            *slot = Some(run_one_vp(prog, step, v, gamma, w));
                        }
                    });
                }
            });
        }
    }
    slots.into_iter().map(|s| s.expect("every slot was assigned to a worker")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl BspProgram for Echo {
        type State = u64;
        type Msg = u64;
        fn superstep(&self, _step: usize, mb: &mut Mailbox<u64>, state: &mut u64) -> Step {
            for e in mb.take_incoming() {
                *state = state.wrapping_add(e.msg);
            }
            mb.send((mb.pid() + 1) % mb.nprocs(), *state);
            Step::Halt
        }
        fn max_state_bytes(&self) -> usize {
            8
        }
        fn max_comm_bytes(&self) -> usize {
            24
        }
    }

    fn work_items(n: usize) -> Vec<VpWork<u64>> {
        (0..n)
            .map(|pid| VpWork {
                pid,
                ctx: to_bytes(&(pid as u64 * 10)),
                inbox: vec![(1, 0, 5u64), (0, 0, 7u64)],
                recv_bytes: 16,
                recv_msgs: 2,
            })
            .collect()
    }

    #[test]
    fn threaded_slots_match_serial_bytes() {
        let v = 7;
        let serial = run_group_vps(&Echo, ComputeMode::Serial, 0, v, 64, work_items(v), None);
        let pool = ComputePool::new(3);
        for n in [1usize, 2, 3, 16] {
            for pool in [None, Some(&pool)] {
                let threaded =
                    run_group_vps(&Echo, ComputeMode::Threaded(n), 0, v, 64, work_items(v), pool);
                assert_eq!(serial.len(), threaded.len());
                for (a, b) in serial.iter().zip(&threaded) {
                    let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                    assert_eq!(a.state_bytes, b.state_bytes);
                    assert_eq!(a.outbox.len(), b.outbox.len());
                    for (x, y) in a.outbox.iter().zip(&b.outbox) {
                        assert_eq!(
                            (x.dst, x.src, x.seq, &x.payload),
                            (y.dst, y.src, y.seq, &y.payload)
                        );
                    }
                    assert_eq!(
                        (a.msgs_sent, a.bytes_sent, a.recv_bytes, a.recv_msgs, a.work, a.continued),
                        (b.msgs_sent, b.bytes_sent, b.recv_bytes, b.recv_msgs, b.work, b.continued)
                    );
                }
            }
        }
    }

    #[test]
    fn pool_map_ordered_matches_inline_and_reuses_workers() {
        let pool = ComputePool::new(2);
        for n in [0usize, 1, 2, 7, 64] {
            let items: Vec<u64> = (0..n as u64).collect();
            let inline = ComputePool::map_ordered(None, 4, items.clone(), |i, x| x * 3 + i as u64);
            let pooled = ComputePool::map_ordered(Some(&pool), 4, items, |i, x| x * 3 + i as u64);
            assert_eq!(inline, pooled);
        }
        assert_eq!(pool.workers(), 2);
    }

    #[test]
    fn pool_panic_is_reraised_after_the_batch_completes() {
        let pool = ComputePool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ComputePool::map_ordered(Some(&pool), 4, vec![0usize, 1, 2, 3], |_, x| {
                if x == 1 {
                    panic!("boom");
                }
                x
            })
        }));
        assert!(caught.is_err(), "worker panic must surface on the dispatcher");
        // The pool survives a panicked batch and keeps serving dispatches.
        let ok = ComputePool::map_ordered(Some(&pool), 4, vec![5usize, 6], |_, x| x + 1);
        assert_eq!(ok, vec![6, 7]);
    }

    #[test]
    fn first_vp_order_error_surfaces_in_every_mode() {
        struct Bad;
        impl BspProgram for Bad {
            type State = u64;
            type Msg = u64;
            fn superstep(&self, _: usize, mb: &mut Mailbox<u64>, _: &mut u64) -> Step {
                mb.take_incoming();
                mb.send(usize::MAX, 0); // invalid destination for every vp
                Step::Halt
            }
            fn max_state_bytes(&self) -> usize {
                8
            }
        }
        let pool = ComputePool::new(4);
        for mode in [ComputeMode::Serial, ComputeMode::Threaded(4)] {
            for pool in [None, Some(&pool)] {
                let items: Vec<VpWork<u64>> = (0..6)
                    .map(|pid| VpWork {
                        pid,
                        ctx: to_bytes(&0u64),
                        inbox: Vec::new(),
                        recv_bytes: 0,
                        recv_msgs: 0,
                    })
                    .collect();
                let out = run_group_vps(&Bad, mode, 0, 6, 64, items, pool);
                let first = out.into_iter().find_map(|r| r.err()).expect("error expected");
                assert!(matches!(first, EmError::Bsp(BspError::InvalidDestination { .. })));
            }
        }
    }
}
