//! Algorithm 1 — `SeqCompoundSuperstep`: the single-processor external-
//! memory simulation.
//!
//! The simulator holds at most one *group* of `k = ⌊M/μ⌋` virtual-processor
//! contexts in memory at a time. Per superstep, for each group `i`:
//!
//! 1. **Fetching Phase** — read the group's contexts (Step 1(a)) and the
//!    message blocks destined for it (Step 1(b)) from their fixed,
//!    `D`-striped regions;
//! 2. **Computation Phase** — run the BSP program's superstep for the `k`
//!    virtual processors (Step 1(c));
//! 3. **Writing Phase** — cut the generated messages into blocks and
//!    scatter them over the disks with a fresh random permutation per
//!    write cycle (Step 1(d)), then write the changed contexts back
//!    (Step 1(e)).
//!
//! After all groups, Algorithm 2 ([`crate::routing::simulate_routing`])
//! reorganizes the scattered blocks into each group's consecutive region
//! for the next superstep. The run terminates exactly when the in-memory
//! reference executor would: every virtual processor halted and no message
//! is in flight.

use crate::checkpoint::{superstep_seed, KillPoint, Manifest};
use crate::compute::{run_group_vps, ComputeMode, VpWork};
use crate::context_store::{BufferPool, ContextStore, PendingGroupRead};
use crate::machine::EmMachine;
use crate::msg::{
    fetch_group_messages, scatter_messages, scatter_messages_deferred, submit_fetch_group_messages,
    GroupCounts, InMsg, MsgGeometry, OutMsg, PendingGroupMsgs, Placement, MSG_HEADER_BYTES,
};
use crate::report::{CostReport, FaultReport, PhaseIo, PhaseWall, RecoveryPolicy};
use crate::routing::{simulate_routing, RoutingScratch};
use crate::tune::{AutoTuner, ResolvedConfig};
use crate::ComputePool;
use crate::{EmError, EmResult};
use em_bsp::{BspError, BspProgram, CommLedger, RunResult, SuperstepComm};
use em_disk::{
    CheckpointStore, DiskArray, DiskConfig, EngineKind, FaultPlan, FaultStats, IoMode, IoStats,
    JournalFile, Pipeline, RetryPolicy, TrackAllocator, WriteBacklog,
};
use em_serial::{from_bytes, to_bytes};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Instant;

/// Where the simulated disks live.
#[derive(Debug, Clone)]
enum Backend {
    Memory,
    File(PathBuf),
}

/// The single-processor EM-BSP\* simulator (Algorithms 1 + 2).
///
/// ```
/// use em_bsp::{BspProgram, Mailbox, Step};
/// use em_core::{EmMachine, SeqEmSimulator};
///
/// // A one-superstep program: every virtual processor doubles its state.
/// struct Double;
/// impl BspProgram for Double {
///     type State = u64;
///     type Msg = u64;
///     fn superstep(&self, _: usize, _: &mut Mailbox<u64>, s: &mut u64) -> Step {
///         *s *= 2;
///         Step::Halt
///     }
///     fn max_state_bytes(&self) -> usize { 8 }
/// }
///
/// // 64 KiB of memory, 4 disks of 1 KiB blocks, G = 1.
/// let sim = SeqEmSimulator::new(EmMachine::uniprocessor(64 * 1024, 4, 1024, 1));
/// let (res, report) = sim.run(&Double, (0..8).collect()).unwrap();
/// assert_eq!(res.states[3], 6);
/// assert!(report.io.parallel_ops > 0); // every context went through disk
/// ```
#[derive(Debug, Clone)]
pub struct SeqEmSimulator {
    machine: EmMachine,
    seed: u64,
    placement: Placement,
    max_supersteps: usize,
    backend: Backend,
    io_mode: IoMode,
    pipeline: Pipeline,
    compute: ComputeMode,
    fault_plan: Option<FaultPlan>,
    checksums: bool,
    retry: Option<RetryPolicy>,
    recovery: Option<RecoveryPolicy>,
    cache_bytes: usize,
    auto_cache: bool,
    checkpoint: bool,
    kill: Option<KillPoint>,
    engine: EngineKind,
    pin_workers: bool,
    tuner: AutoTuner,
    /// The tuner's choices, recorded when a resolution ran (on the clone
    /// [`Self::resolved_for`] returns; the original stays `None`).
    resolved: Option<ResolvedConfig>,
    /// Lazily created persistent compute pool, shared by every run of this
    /// simulator (and of its clones — the cell is behind an `Arc`). `None`
    /// until the first `Threaded` run, or preset via
    /// [`Self::with_compute_pool`].
    pool: Arc<StdMutex<Option<ComputePool>>>,
}

impl SeqEmSimulator {
    /// Simulator for the given machine with defaults: seeded RNG, random
    /// placement, in-memory disks.
    pub fn new(machine: EmMachine) -> Self {
        SeqEmSimulator {
            machine,
            seed: 0xD15C_5EED,
            placement: Placement::Random,
            max_supersteps: em_bsp::DEFAULT_MAX_SUPERSTEPS,
            backend: Backend::Memory,
            io_mode: IoMode::Parallel,
            pipeline: Pipeline::Off,
            compute: ComputeMode::Serial,
            fault_plan: None,
            checksums: false,
            retry: None,
            recovery: None,
            cache_bytes: 0,
            auto_cache: false,
            checkpoint: false,
            kill: None,
            engine: EngineKind::Threaded,
            pin_workers: false,
            tuner: AutoTuner::default(),
            resolved: None,
            pool: Arc::new(StdMutex::new(None)),
        }
    }

    /// Use a specific RNG seed (runs are reproducible per seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Choose the disk-assignment strategy of the Writing Phase.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Back the simulated disks with real files inside `dir`.
    pub fn with_file_backend(mut self, dir: impl Into<PathBuf>) -> Self {
        self.backend = Backend::File(dir.into());
        self
    }

    /// Choose how a file backend executes stripes ([`IoMode::Parallel`] by
    /// default — one worker thread per drive). Ignored by the memory
    /// backend; counted I/O and final states are identical either way.
    pub fn with_io_mode(mut self, mode: IoMode) -> Self {
        self.io_mode = mode;
        self
    }

    /// Overlap disk transfers with computation ([`Pipeline::Off`] by
    /// default). With [`Pipeline::Stream(n)`](Pipeline::Stream) a bounded
    /// window of up to `n` groups is in flight at once: group `g+n`'s
    /// contexts and message blocks are submitted before group `g` is
    /// joined, and every group's writes drain in the background, joined
    /// before Algorithm 2's reorganization. [`Pipeline::DoubleBuffer`] is
    /// exactly `Stream(1)` — the classic one-group-ahead double buffer.
    /// Counted I/O, per-phase attribution, final states, the RNG stream
    /// and seeded I/O traces are identical at every depth — the knob
    /// changes only *when* transfers complete.
    pub fn with_pipeline(mut self, pipeline: Pipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Run each group's Computation Phase on a scoped worker pool
    /// ([`ComputeMode::Serial`] by default). Final states, the message
    /// ledger, counted I/O, the RNG stream and seeded I/O traces are
    /// identical in every mode — the knob only changes which OS threads
    /// execute the per-virtual-processor kernel (see
    /// [`ComputeMode`]).
    pub fn with_compute_mode(mut self, mode: ComputeMode) -> Self {
        self.compute = mode;
        self
    }

    /// Prefer a stripe-execution engine for the file backend
    /// ([`EngineKind::Threaded`] by default). [`EngineKind::Uring`] is a
    /// *preference*: it silently falls back to worker threads when the
    /// `io-uring` feature is off or the kernel refuses a ring
    /// ([`em_disk::uring_available`]). Counted I/O, final states and
    /// seeded traces are identical under every engine — the knob is
    /// wall-clock only.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Best-effort pin worker threads (drive workers and the compute
    /// pool) to cores, off by default. Purely a wall-clock knob; the
    /// request is advisory and may be refused by the kernel.
    pub fn with_pinned_workers(mut self, pin: bool) -> Self {
        self.pin_workers = pin;
        self
    }

    /// Attach an existing persistent [`ComputePool`] instead of letting
    /// the simulator lazily create its own on the first `Threaded` run.
    /// Several simulators (e.g. the tenants of a shared service) can hold
    /// clones of one pool; dispatches queue when chunks outnumber workers,
    /// and chunking — hence determinism — is governed solely by
    /// [`ComputeMode::Threaded`], never by pool size.
    pub fn with_compute_pool(self, pool: ComputePool) -> Self {
        *self.pool.lock().unwrap() = Some(pool);
        self
    }

    /// The persistent compute pool for a run: an attached pool if one is
    /// present (always reused — dispatches queue when chunks outnumber its
    /// workers, which cannot affect determinism since chunking is governed
    /// by [`ComputeMode`] alone), otherwise one lazily created and cached
    /// for [`ComputeMode::Threaded`]`(n > 1)`, or `None` for effectively
    /// serial modes.
    fn compute_pool(&self) -> Option<ComputePool> {
        let mut guard = self.pool.lock().expect("compute pool cell");
        if let Some(pool) = guard.as_ref() {
            return Some(pool.clone());
        }
        match self.compute {
            ComputeMode::Threaded(n) if n > 1 => Some(
                guard.get_or_insert_with(|| ComputePool::with_pinning(n, self.pin_workers)).clone(),
            ),
            _ => None,
        }
    }

    /// Guard limit for non-terminating programs.
    pub fn with_max_supersteps(mut self, limit: usize) -> Self {
        self.max_supersteps = limit;
        self
    }

    /// Inject disk faults from a seeded [`FaultPlan`], placed directly
    /// above the raw storage (below checksums and retry, exactly where
    /// real media faults live). The plan only *injects*; pair it with
    /// [`Self::with_retry`] and [`Self::with_recovery`] to absorb the
    /// injected faults, or expect a typed
    /// [`EmError::FaultUnrecoverable`].
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Frame every stored track with a CRC32 and verify it on read
    /// ([`em_disk::DiskError::Corrupt`] on mismatch). Off by default.
    pub fn with_checksums(mut self, on: bool) -> Self {
        self.checksums = on;
        self
    }

    /// Retry transient per-track faults inside the disk substrate.
    /// Retries are tallied in [`em_disk::IoStats::retried_blocks`] and do
    /// not touch the paper-facing counted parallel I/O.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Enable superstep-granular recovery: simulation state advances only
    /// at each superstep's barrier `sync()`, and a transient disk fault
    /// that survives the retry policy rolls the disks back to the last
    /// committed superstep and replays it (at most
    /// `policy.max_replays_per_superstep` times). Without faults the
    /// machinery is inert: counted I/O, final states and seeded traces are
    /// identical to a run without recovery.
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Layer a write-back block cache of `capacity_bytes` over the disk
    /// substrate ([`em_disk::BlockCacheBackend`]; 0 — the default —
    /// disables it). Reads of resident tracks and repeated writes are
    /// absorbed until each superstep's barrier `sync()`, which flushes
    /// dirty tracks in deterministic `(track, disk)` order. Counted I/O,
    /// final states, the RNG stream and seeded traces are identical with
    /// the cache on or off; the absorbed traffic is tallied in
    /// [`em_disk::IoStats::cache_hit_blocks`] /
    /// [`em_disk::IoStats::cache_absorbed_writes`].
    pub fn with_cache(mut self, capacity_bytes: usize) -> Self {
        self.cache_bytes = capacity_bytes;
        self.auto_cache = false;
        self
    }

    /// Let the [`AutoTuner`] size the block cache instead of pinning a
    /// capacity with [`Self::with_cache`] (the two are mutually exclusive;
    /// whichever is set last wins). The capacity is resolved from the
    /// run's `v·μ+γ` footprint before any disk is built; like every tuned
    /// knob it cannot change counted I/O, final states or seeded traces —
    /// only wall clock. The choice is recorded in
    /// [`CostReport::resolved_config`].
    pub fn with_auto_cache(mut self, on: bool) -> Self {
        self.auto_cache = on;
        if on {
            self.cache_bytes = 0;
        }
        self
    }

    /// Replace the default [`AutoTuner`] that resolves `Auto` knob
    /// requests ([`ComputeMode::Auto`], [`Pipeline::Auto`],
    /// [`Self::with_auto_cache`]). The default tuner uses the host core
    /// count and the corpus-derived compute/fetch ratio; tests and CI
    /// determinism lanes pin inputs via [`AutoTuner::with_inputs`].
    pub fn with_tuner(mut self, tuner: AutoTuner) -> Self {
        self.tuner = tuner;
        self
    }

    /// Persist a durable checkpoint at every superstep barrier so the run
    /// survives a process crash. Requires the file backend
    /// ([`Self::with_file_backend`]); typed [`EmError::InvalidConfig`]
    /// otherwise.
    ///
    /// At each barrier `sync()` the simulator atomically commits a
    /// CRC-framed *manifest* (write-new → fsync → rename) holding
    /// everything resume needs — next superstep, group counts, allocator
    /// frontier, committed [`IoStats`], ledger and the fault-injection
    /// schedule position — and mirrors every overwritten track's
    /// pre-image to a durable journal *before* the overwrite lands.
    /// [`Self::resume`] rolls uncommitted superstep writes back via the
    /// journal and replays deterministically from the last committed
    /// barrier: final states, ledger, counted parallel I/O operations and
    /// the drive bytes are bit-identical to the uninterrupted run.
    /// Checkpoint traffic is never counted in the paper-facing
    /// `parallel_ops` (pre-image captures land in
    /// [`IoStats::recovery_ops`]).
    pub fn with_checkpointing(mut self, on: bool) -> Self {
        self.checkpoint = on;
        self
    }

    /// Simulate a process crash at `kill` for chaos testing: the run
    /// returns [`EmError::Killed`] leaving the on-disk state exactly as a
    /// real crash at that point would. Requires
    /// [`Self::with_checkpointing`]. If the program terminates before the
    /// kill point's superstep, the run completes normally.
    pub fn with_kill_point(mut self, kill: KillPoint) -> Self {
        self.kill = Some(kill);
        self
    }

    /// The machine this simulator targets.
    pub fn machine(&self) -> &EmMachine {
        &self.machine
    }

    /// The configured [`ComputeMode`].
    pub fn compute_mode(&self) -> ComputeMode {
        self.compute
    }

    /// Whether a persistent [`ComputePool`] is currently attached —
    /// either via [`Self::with_compute_pool`] or lazily created by an
    /// earlier `Threaded` run of this simulator (or of a clone).
    pub fn has_compute_pool(&self) -> bool {
        self.pool.lock().expect("compute pool cell").is_some()
    }

    /// Whether any knob is currently requested as `Auto` (and therefore
    /// still awaiting resolution).
    pub fn has_auto_request(&self) -> bool {
        self.compute.is_auto() || self.pipeline.is_auto() || self.auto_cache
    }

    /// The [`AutoTuner`] resolution behind this simulator's knobs: `None`
    /// unless this value came out of [`Self::resolved_for`] (runs resolve
    /// on an internal clone and record the choice in
    /// [`CostReport::resolved_config`] instead).
    pub fn resolved_config(&self) -> Option<&ResolvedConfig> {
        self.resolved.as_ref()
    }

    /// Resolve any `Auto` knob requests against a known problem shape —
    /// `v` virtual processors with state budget `mu` and per-processor
    /// communication budget `gamma` — returning a simulator whose knobs
    /// are all concrete and whose [`Self::resolved_config`] records the
    /// tuner's choices (a plain clone when nothing is `Auto`).
    /// [`Self::run`] and [`Self::resume`] do this implicitly;
    /// `em-service` calls it at admission so the resolution lands in the
    /// tenant ledger before pool shares are granted.
    pub fn resolved_for(&self, v: usize, mu: usize, gamma: usize) -> Self {
        match self.resolve_auto(v, mu, gamma) {
            Some(rc) => self.apply_resolution(rc),
            None => self.clone(),
        }
    }

    /// Run the tuner for the current `Auto` requests; `None` when nothing
    /// is requested as `Auto`.
    fn resolve_auto(&self, v: usize, mu: usize, gamma: usize) -> Option<ResolvedConfig> {
        let footprint = (v as u64).saturating_mul(mu as u64).saturating_add(gamma as u64);
        self.tuner.resolve(
            self.compute.is_auto(),
            self.pipeline.is_auto(),
            self.auto_cache,
            footprint,
        )
    }

    /// A clone with the resolution's concrete values substituted for the
    /// `Auto` requests; it reports [`Self::has_auto_request`] `false`, so
    /// re-entering `run`/`resume` on it cannot resolve again.
    fn apply_resolution(&self, rc: ResolvedConfig) -> Self {
        let mut resolved = self.clone();
        if let Some(mode) = rc.compute {
            resolved.compute = mode;
        }
        if let Some(pipeline) = rc.pipeline {
            resolved.pipeline = pipeline;
        }
        if let Some(bytes) = rc.cache_bytes {
            resolved.cache_bytes = bytes;
        }
        resolved.auto_cache = false;
        resolved.resolved = Some(rc);
        resolved
    }

    /// The [`DiskConfig`] this simulator derives from its machine and
    /// knobs — the shape every array passed to [`Self::run_on`] must have.
    pub fn disk_config(&self) -> EmResult<DiskConfig> {
        let cfg = self
            .machine
            .disk_config()?
            .with_io_mode(self.io_mode)
            .with_pipeline(self.pipeline)
            .with_checksums(self.checksums)
            .with_cache(self.cache_bytes)
            .with_auto_cache(self.auto_cache)
            .with_engine(self.engine)
            .with_pinned_workers(self.pin_workers);
        Ok(match self.retry {
            Some(policy) => cfg.with_retry(policy),
            None => cfg,
        })
    }

    /// Build a fresh [`DiskArray`] per this simulator's configuration
    /// (backend, decorators, fault plan) — the array [`Self::run`] would
    /// construct internally. Callers that want to reuse one array across
    /// runs, or substitute their own storage (e.g. a
    /// [`em_disk::SharedDiskSubstrate`] region), pair this with
    /// [`Self::run_on`].
    pub fn build_disks(&self) -> EmResult<DiskArray> {
        self.machine.validate()?;
        let cfg = self.disk_config()?;
        Ok(match &self.backend {
            Backend::Memory => DiskArray::new_memory_with_faults(cfg, self.fault_plan.clone()),
            Backend::File(dir) => {
                DiskArray::new_file_with_faults(cfg, dir, self.fault_plan.clone())?
            }
        })
    }

    /// Run `prog` on `states.len()` virtual processors entirely through the
    /// external-memory machinery; returns the final states (identical to
    /// [`em_bsp::run_sequential`]) plus the measured [`CostReport`].
    ///
    /// Equivalent to [`Self::build_disks`] followed by [`Self::run_on`]:
    /// the simulator itself holds no per-run state, so one simulator value
    /// can execute any number of runs, sequentially or from multiple
    /// threads.
    pub fn run<P: BspProgram>(
        &self,
        prog: &P,
        states: Vec<P::State>,
    ) -> EmResult<(RunResult<P::State>, CostReport)> {
        // Resolve `Auto` knob requests *before* the disks are built, so a
        // tuned cache capacity (and pipeline) shape the array itself.
        let gamma = prog.max_comm_bytes().max(MSG_HEADER_BYTES);
        if let Some(rc) = self.resolve_auto(states.len(), prog.max_state_bytes(), gamma) {
            let resolved = self.apply_resolution(rc);
            let mut disks = resolved.build_disks()?;
            return resolved.run_on(&mut disks, prog, states);
        }
        let mut disks = self.build_disks()?;
        self.run_on(&mut disks, prog, states)
    }

    /// [`Self::run`] on a caller-provided disk array.
    ///
    /// `disks` must match this simulator's [`Self::disk_config`] in drive
    /// count and block size (typed [`EmError::InvalidConfig`] otherwise);
    /// it may be backed by anything — files, memory, or a tenant region of
    /// a shared substrate. The run addresses tracks from 0 upward and
    /// rewrites every region it allocates, so repeated runs on one array
    /// are independent; `disks.stats()` is reset after the initial input
    /// distribution, making the array's counters a clean per-run meter
    /// (read them via [`CostReport::io`]).
    pub fn run_on<P: BspProgram>(
        &self,
        disks: &mut DiskArray,
        prog: &P,
        states: Vec<P::State>,
    ) -> EmResult<(RunResult<P::State>, CostReport)> {
        self.run_inner(disks, prog, SeqStart::Fresh(states))
    }

    /// Resume a checkpointed run after a (real or simulated) process
    /// crash, continuing from the last committed barrier manifest in the
    /// file backend's directory.
    ///
    /// The drive files are reattached without truncation, any superstep
    /// writes past the committed barrier are undone from the durable
    /// pre-image journal, the fault-injection schedule position is
    /// restored, and the remaining supersteps replay deterministically:
    /// final states, the communication ledger, counted parallel I/O
    /// operations and the drive bytes are bit-identical to the
    /// uninterrupted run. Resuming an already-finished run just rebuilds
    /// its result. The simulator's configuration (seed, machine shape,
    /// program budgets) must match the checkpointed run; a typed
    /// [`EmError::InvalidConfig`] names the first mismatch.
    pub fn resume<P: BspProgram>(&self, prog: &P) -> EmResult<(RunResult<P::State>, CostReport)> {
        self.machine.validate()?;
        if !self.checkpoint {
            return Err(EmError::InvalidConfig(
                "resume requires checkpointing (with_checkpointing)".into(),
            ));
        }
        let Backend::File(dir) = &self.backend else {
            return Err(EmError::InvalidConfig(
                "resume requires the file backend (with_file_backend)".into(),
            ));
        };
        let store = CheckpointStore::attach(dir)?;
        let (committed_step, payload) = store.latest_manifest()?.ok_or_else(|| {
            EmError::InvalidConfig("no committed checkpoint manifest to resume from".into())
        })?;
        let m = Manifest::decode(&payload)?;
        let cfg = self.disk_config()?;
        let mu = prog.max_state_bytes();
        let gamma = prog.max_comm_bytes().max(MSG_HEADER_BYTES);
        m.check_shape(
            mu as u64,
            gamma as u64,
            self.seed,
            cfg.num_disks as u32,
            cfg.block_bytes as u64,
            1,
            0,
        )?;
        if m.next_step != committed_step {
            return Err(EmError::InvalidConfig(
                "checkpoint manifest step disagrees with its payload".into(),
            ));
        }
        let v = m.v as usize;
        // `v` is only known from the manifest, so `Auto` knob resolution
        // happens here: re-enter `resume` on the resolved clone (which has
        // no `Auto` request left, so it proceeds straight through).
        if let Some(rc) = self.resolve_auto(v, mu, gamma) {
            return self.apply_resolution(rc).resume(prog);
        }
        let k = self.machine.group_size(4 + mu, v)?;
        if m.k != k as u64 || m.num_groups != v.div_ceil(k) as u64 {
            return Err(EmError::InvalidConfig(
                "checkpoint resume shape mismatch: group geometry differs from the checkpointed run"
                    .into(),
            ));
        }

        // Roll the drive files back to the committed barrier. The journal
        // holds pre-images of the *next* epoch only when the crash landed
        // after this manifest committed; the undo runs on a plain array —
        // no cache, retry or fault injection — so the restoring writes
        // neither advance nor consume the fault schedule the real array
        // restores below.
        if let Some(journal) = JournalFile::read(dir)? {
            if journal.epoch > committed_step {
                let plain = self
                    .machine
                    .disk_config()?
                    .with_io_mode(self.io_mode)
                    .with_checksums(self.checksums);
                let mut undo = DiskArray::open_file(plain, dir)?;
                undo.apply_journal_undo(&journal)?;
            }
        }

        let mut disks = DiskArray::open_file_with_faults(cfg, dir, self.fault_plan.clone())?;
        if let Some(ops) = &m.fault_ops {
            disks.restore_fault_op_counts(ops);
        }
        let resume = SeqResume {
            v,
            start_step: m.next_step as usize,
            finished: m.finished,
            counts: GroupCounts {
                counts: m.counts.iter().map(|&c| c as usize).collect(),
                prefix_in_bucket: m.prefix.iter().map(|&c| c as usize).collect(),
            },
            alloc_next: m.alloc_next.iter().map(|&t| t as usize).collect(),
            alloc_free: m
                .alloc_free
                .iter()
                .map(|f| f.iter().map(|&t| t as usize).collect())
                .collect(),
            phases: m.phases,
            committed_io: m.io,
            balances: m.balances,
            ledger: CommLedger { steps: m.ledger },
            recovered: m.recovered,
            replays: m.replays,
        };
        self.run_inner(&mut disks, prog, SeqStart::Resume(Box::new(resume)))
    }

    /// The shared engine behind [`Self::run_on`] and [`Self::resume`]:
    /// identical superstep machinery, differing only in whether the
    /// committed bookkeeping starts empty or from a manifest.
    fn run_inner<P: BspProgram>(
        &self,
        disks: &mut DiskArray,
        prog: &P,
        start: SeqStart<P::State>,
    ) -> EmResult<(RunResult<P::State>, CostReport)> {
        let start_time = Instant::now();
        self.machine.validate()?;
        let v = match &start {
            SeqStart::Fresh(states) => states.len(),
            SeqStart::Resume(r) => r.v,
        };
        if v == 0 {
            return Err(EmError::Bsp(BspError::NoProcessors));
        }

        let mu = prog.max_state_bytes();
        let gamma = prog.max_comm_bytes().max(MSG_HEADER_BYTES);
        // `run`/`resume` resolve before the disks exist; this covers
        // `run_on` callers with their own array. Compute and pipeline
        // resolutions apply fully here; a tuned cache capacity cannot be
        // retrofitted onto a caller-built array, so on this path the
        // unresolved `auto_cache` request simply leaves the cache off
        // (inert by the substrate's contract).
        if let Some(rc) = self.resolve_auto(v, mu, gamma) {
            return self.apply_resolution(rc).run_inner(disks, prog, start);
        }
        let ctx_region = 4 + mu; // length prefix + payload
        let k = self.machine.group_size(ctx_region, v)?;
        let num_groups = v.div_ceil(k);

        let cfg = disks.config();
        let expected = self.machine.disk_config()?;
        if cfg.num_disks != expected.num_disks || cfg.block_bytes != expected.block_bytes {
            return Err(EmError::InvalidConfig(format!(
                "disk array shape {}x{}B does not match the machine's {}x{}B",
                cfg.num_disks, cfg.block_bytes, expected.num_disks, expected.block_bytes
            )));
        }
        // Checkpointing needs somewhere durable for manifests and the
        // pre-image journal: the file backend's directory.
        let store = if self.checkpoint {
            let Backend::File(dir) = &self.backend else {
                return Err(EmError::InvalidConfig(
                    "checkpointing requires the file backend (with_file_backend)".into(),
                ));
            };
            if !disks.durable_journal_attached() {
                disks.attach_durable_journal(dir)?;
            }
            Some(CheckpointStore::attach(dir)?)
        } else {
            if self.kill.is_some() {
                return Err(EmError::InvalidConfig(
                    "a kill point requires checkpointing (with_checkpointing)".into(),
                ));
            }
            None
        };

        // Acquire the persistent compute pool once per run (lazily created
        // on the first `Threaded` run, then cached on the simulator): every
        // superstep, group and recovery replay reuses the same
        // `em-compute-w*` threads instead of spawning a scoped pool per
        // group.
        let compute_pool = self.compute_pool();

        let fault_stats = self.fault_plan.as_ref().map(|p| p.stats());
        let mut alloc = TrackAllocator::new(cfg.num_disks);
        let ctx_store = ContextStore::allocate(&mut alloc, cfg.num_disks, cfg.block_bytes, v, mu)?;
        let geom = MsgGeometry::allocate(&mut alloc, v, k, gamma, cfg.num_disks, cfg.block_bytes)?;

        let mut counts;
        let mut ledger;
        let mut phases;
        // `committed_io` is the checkpoint-committed base; `disks.stats()`
        // counts only operations since the run (or resume) started, and the
        // two merge additively at every barrier and in the final report, so
        // a resumed run's counters are bit-identical to an uninterrupted
        // one's.
        let committed_io;
        let mut balance_factors;
        let mut recovered_supersteps;
        let mut total_replays;
        let start_step;
        let mut finished;
        match start {
            SeqStart::Fresh(states) => {
                // Load the initial contexts onto disk.
                let encoded: Vec<Vec<u8>> = states.iter().map(to_bytes).collect();
                drop(states);
                for g in 0..num_groups {
                    let first = g * k;
                    let last = (first + k).min(v);
                    ctx_store
                        .write_group(disks, first, &encoded[first..last])
                        .map_err(|e| self.fault_error(0, e, &fault_stats, disks, 0, 0))?;
                }
                drop(encoded);
                // The input distribution is durable before timing starts.
                disks
                    .sync()
                    .map_err(|e| self.fault_error(0, e.into(), &fault_stats, disks, 0, 0))?;
                disks.reset_stats(); // initial load is input distribution, not simulation cost

                counts = GroupCounts::empty(geom.num_groups);
                ledger = CommLedger::default();
                phases = PhaseIo::default();
                committed_io = IoStats::new(cfg.num_disks);
                balance_factors = Vec::new();
                recovered_supersteps = 0u64;
                total_replays = 0u64;
                start_step = 0;
                finished = false;

                if let Some(store) = &store {
                    // A reused directory may hold a previous run's
                    // manifests and journal; a fresh run must commit its
                    // barrier-0 manifest over a clean slate, or a later
                    // resume could replay the wrong run's tail.
                    store.clear()?;
                    disks.clear_durable_journal()?;
                    let manifest = self.build_manifest(
                        v,
                        k,
                        num_groups,
                        mu,
                        gamma,
                        &cfg,
                        0,
                        false,
                        &counts,
                        &alloc,
                        disks.fault_op_counts(),
                        &phases,
                        committed_io.clone(),
                        &balance_factors,
                        &ledger,
                        0,
                        0,
                    );
                    store.commit_manifest(0, &manifest.encode())?;
                }
            }
            SeqStart::Resume(r) => {
                disks.reset_stats();
                alloc.restore_state(r.alloc_next, r.alloc_free);
                counts = r.counts;
                ledger = r.ledger;
                phases = r.phases;
                committed_io = r.committed_io;
                balance_factors = r.balances;
                recovered_supersteps = r.recovered;
                total_replays = r.replays;
                start_step = r.start_step;
                finished = r.finished;
            }
        }

        // Wall-clock split; unlike `phases` it is *not* rewound on replay —
        // the time genuinely elapsed even when the attempt rolled back.
        let mut phase_wall = PhaseWall::default();
        // Context buffers recycle here across groups and supersteps; the
        // pool caches only capacity, so replay needs no snapshot of it.
        let mut ctx_pool = BufferPool::new();
        // Same deal for the routing merge pass's bookkeeping.
        let mut routing_scratch = RoutingScratch::new();

        let replay_budget = self.recovery.map_or(0, |r| r.max_replays_per_superstep);

        // Resuming an already-finished run skips straight to the final
        // read-back.
        let step_limit = if finished { start_step } else { self.max_supersteps };
        for step in start_step..step_limit {
            // Each attempt runs the whole compound superstep (Steps 1 + 2)
            // inside a disk recovery epoch. Bookkeeping (`counts`, ledger,
            // balance factors) advances only after the attempt's barrier
            // `sync()` succeeded, so a rolled-back attempt leaves no trace
            // in the committed state.
            let mut attempt = 0usize;
            let outcome = loop {
                if store.is_some() {
                    // The epoch protecting superstep `step` is numbered
                    // `step + 1` — the manifest its barrier will commit.
                    // Re-beginning it on an in-process replay truncates
                    // the durable journal's abandoned records.
                    disks.begin_checkpoint_epoch(step as u64 + 1).map_err(|e| {
                        self.fault_error(
                            step,
                            e.into(),
                            &fault_stats,
                            disks,
                            recovered_supersteps,
                            total_replays,
                        )
                    })?;
                } else if self.recovery.is_some() {
                    disks.begin_recovery_epoch().map_err(|e| {
                        self.fault_error(
                            step,
                            e.into(),
                            &fault_stats,
                            disks,
                            recovered_supersteps,
                            total_replays,
                        )
                    })?;
                }
                // Every attempt reseeds from (seed, worker 0, step), so a
                // replay — in-process after a rollback, or across a process
                // crash — reproduces the exact RNG stream with nothing to
                // snapshot or persist beyond the base seed.
                let mut rng = StdRng::seed_from_u64(superstep_seed(self.seed, 0, step as u64));
                let alloc_snap = alloc.clone();
                let phases_snap = phases.clone();
                match run_superstep_attempt(
                    prog,
                    step,
                    v,
                    k,
                    num_groups,
                    gamma,
                    self.placement,
                    self.pipeline,
                    self.compute,
                    compute_pool.as_ref(),
                    &ctx_store,
                    &geom,
                    &counts,
                    disks,
                    &mut alloc,
                    &mut rng,
                    &mut phases,
                    &mut phase_wall,
                    &mut ctx_pool,
                    &mut routing_scratch,
                ) {
                    Ok(outcome) => {
                        if store.is_some() || self.recovery.is_some() {
                            disks.commit_recovery_epoch();
                        }
                        if attempt > 0 {
                            recovered_supersteps += 1;
                        }
                        break outcome;
                    }
                    Err(err) => {
                        let replayable = self.recovery.is_some()
                            && attempt < replay_budget
                            && matches!(&err, EmError::Disk(e) if e.is_transient());
                        if replayable && disks.rollback_recovery_epoch().is_ok() {
                            alloc = alloc_snap;
                            phases = phases_snap;
                            attempt += 1;
                            total_replays += 1;
                            continue;
                        }
                        return Err(self.fault_error(
                            step,
                            err,
                            &fault_stats,
                            disks,
                            recovered_supersteps,
                            total_replays,
                        ));
                    }
                }
            };
            counts = outcome.counts;
            balance_factors.push(outcome.balance);
            ledger.push(outcome.comm);

            // A mid-superstep crash: the superstep's writes are synced and
            // the durable journal still holds their pre-images, but no new
            // manifest commits — resume undoes and replays this superstep.
            if matches!(self.kill, Some(KillPoint::MidSuperstep(b)) if b == step) {
                return Err(EmError::Killed { step });
            }

            if outcome.all_halted && !outcome.any_msgs {
                finished = true;
            }

            if let Some(store) = &store {
                let mut io_now = committed_io.clone();
                io_now.merge(disks.stats());
                let manifest = self.build_manifest(
                    v,
                    k,
                    num_groups,
                    mu,
                    gamma,
                    &cfg,
                    step + 1,
                    finished,
                    &counts,
                    &alloc,
                    disks.fault_op_counts(),
                    &phases,
                    io_now,
                    &balance_factors,
                    &ledger,
                    recovered_supersteps,
                    total_replays,
                );
                let payload = manifest.encode();
                if matches!(self.kill, Some(KillPoint::MidManifest(b)) if b == step) {
                    // A crash mid-manifest-write: leave a torn frame the
                    // CRC check must reject, so resume falls back to the
                    // previous committed manifest and the intact journal.
                    store.write_torn_manifest(step as u64 + 1, &payload, payload.len() / 2 + 8)?;
                    return Err(EmError::Killed { step });
                }
                store.commit_manifest(step as u64 + 1, &payload)?;
                // Only after the manifest is durable may the journal that
                // protected this epoch be truncated.
                disks.clear_durable_journal()?;
                if matches!(self.kill, Some(KillPoint::AtBarrier(b)) if b == step) {
                    return Err(EmError::Killed { step });
                }
            }

            if finished {
                break;
            }
        }
        if !finished {
            return Err(EmError::Bsp(BspError::SuperstepLimit { limit: self.max_supersteps }));
        }

        // Read the final contexts back.
        let mut final_states = Vec::with_capacity(v);
        for g in 0..num_groups {
            let first = g * k;
            let count = (first + k).min(v) - first;
            for buf in ctx_store.read_group(disks, first, count).map_err(|e| {
                self.fault_error(
                    ledger.lambda(),
                    e,
                    &fault_stats,
                    disks,
                    recovered_supersteps,
                    total_replays,
                )
            })? {
                final_states.push(from_bytes::<P::State>(&buf)?);
            }
        }

        let mut io = committed_io;
        io.merge(disks.stats());
        let lambda = ledger.lambda();
        let report = CostReport {
            v,
            k,
            num_groups,
            p: 1,
            lambda,
            io_time: io.io_time(self.machine.g_io),
            phases,
            phase_wall,
            comm: ledger.clone(),
            real_comm_bytes: 0,
            wall: start_time.elapsed(),
            tracks_per_disk: alloc.max_frontier(),
            balance_factors,
            checks: self.machine.check_theorem_conditions(v, k, 4 + mu),
            faults: (self.fault_plan.is_some() || self.recovery.is_some()).then(|| FaultReport {
                injected: fault_stats.as_ref().map(|s| s.counts()).unwrap_or_default(),
                retried_blocks: io.retried_blocks,
                recovery_ops: io.recovery_ops,
                recovered_supersteps,
                replays: total_replays,
                failed_superstep: None,
            }),
            resolved_config: self.resolved,
            io,
        };
        Ok((RunResult { states: final_states, ledger }, report))
    }

    /// Assemble the barrier manifest: the committed bookkeeping a resumed
    /// process needs, plus a shape guard against resuming with a different
    /// configuration.
    #[allow(clippy::too_many_arguments)]
    fn build_manifest(
        &self,
        v: usize,
        k: usize,
        num_groups: usize,
        mu: usize,
        gamma: usize,
        cfg: &DiskConfig,
        next_step: usize,
        finished: bool,
        counts: &GroupCounts,
        alloc: &TrackAllocator,
        fault_ops: Option<Vec<u64>>,
        phases: &PhaseIo,
        io: IoStats,
        balances: &[f64],
        ledger: &CommLedger,
        recovered: u64,
        replays: u64,
    ) -> Manifest {
        let (next, free) = alloc.export_state();
        Manifest {
            v: v as u64,
            k: k as u64,
            num_groups: num_groups as u64,
            mu: mu as u64,
            gamma: gamma as u64,
            seed: self.seed,
            num_disks: cfg.num_disks as u32,
            block_bytes: cfg.block_bytes as u64,
            p: 1,
            worker: 0,
            next_step: next_step as u64,
            finished,
            counts: counts.counts.iter().map(|&c| c as u64).collect(),
            prefix: counts.prefix_in_bucket.iter().map(|&c| c as u64).collect(),
            alloc_next: next.iter().map(|&t| t as u64).collect(),
            alloc_free: free.iter().map(|f| f.iter().map(|&t| t as u64).collect()).collect(),
            fault_ops,
            phases: phases.clone(),
            io,
            balances: balances.to_vec(),
            ledger: ledger.steps.clone(),
            real_comm: 0,
            recovered,
            replays,
        }
    }

    /// Dress an unrecoverable error in [`EmError::FaultUnrecoverable`] with
    /// the full injection/recovery tally — but only for disk errors of a
    /// run that actually had fault machinery enabled; logic errors
    /// (γ violations, bad destinations, ...) pass through untouched.
    fn fault_error(
        &self,
        step: usize,
        err: EmError,
        fault_stats: &Option<Arc<FaultStats>>,
        disks: &DiskArray,
        recovered_supersteps: u64,
        replays: u64,
    ) -> EmError {
        let fault_run = self.fault_plan.is_some() || self.recovery.is_some();
        if !fault_run || !matches!(err, EmError::Disk(_)) {
            return err;
        }
        EmError::FaultUnrecoverable {
            step,
            report: FaultReport {
                injected: fault_stats.as_ref().map(|s| s.counts()).unwrap_or_default(),
                retried_blocks: disks.stats().retried_blocks,
                recovery_ops: disks.stats().recovery_ops,
                recovered_supersteps,
                replays,
                failed_superstep: Some(step),
            },
            source: Box::new(err),
        }
    }
}

/// How [`SeqEmSimulator::run_inner`] starts: a fresh run with initial
/// states, or a continuation from a committed checkpoint manifest.
enum SeqStart<S> {
    Fresh(Vec<S>),
    Resume(Box<SeqResume>),
}

/// Committed bookkeeping restored from a checkpoint manifest.
struct SeqResume {
    v: usize,
    start_step: usize,
    finished: bool,
    counts: GroupCounts,
    alloc_next: Vec<usize>,
    alloc_free: Vec<Vec<usize>>,
    phases: PhaseIo,
    committed_io: IoStats,
    balances: Vec<f64>,
    ledger: CommLedger,
    recovered: u64,
    replays: u64,
}

/// Everything one successful compound-superstep attempt produces. Returned
/// by value so a failed attempt leaves the caller's committed bookkeeping
/// untouched.
struct SuperstepOutcome {
    counts: GroupCounts,
    any_msgs: bool,
    all_halted: bool,
    balance: f64,
    comm: SuperstepComm,
}

/// One attempt at a full compound superstep: Step 1 for every group (in
/// either pipeline mode), Step 2's reorganization, and the barrier
/// `sync()`. Mutates only replayable state — the disks (protected by the
/// caller's recovery epoch), `alloc`, `rng` and `phases` (snapshotted and
/// restored by the caller on rollback).
#[allow(clippy::too_many_arguments)]
fn run_superstep_attempt<P: BspProgram>(
    prog: &P,
    step: usize,
    v: usize,
    k: usize,
    num_groups: usize,
    gamma: usize,
    placement: Placement,
    pipeline: Pipeline,
    compute: ComputeMode,
    pool: Option<&ComputePool>,
    ctx_store: &ContextStore,
    geom: &MsgGeometry,
    counts: &GroupCounts,
    disks: &mut DiskArray,
    alloc: &mut TrackAllocator,
    rng: &mut StdRng,
    phases: &mut PhaseIo,
    walls: &mut PhaseWall,
    ctx_pool: &mut BufferPool,
    routing: &mut RoutingScratch,
) -> EmResult<SuperstepOutcome> {
    let mut scratch = crate::msg::ScratchState::new(geom);
    let mut all_halted = true;
    let mut step_comm = SuperstepComm::default();

    let depth = pipeline.depth();
    if depth > 0 {
        // Streaming variant of the same loop: a bounded window of up
        // to `depth` groups is in flight at once — group `g+depth`'s
        // fetches are submitted before group `g` is joined, and every
        // Writing Phase drains in the background. Submission order
        // within each phase — and therefore the RNG stream, the
        // track allocations and every counted stripe — is identical
        // to the synchronous loop below at every depth; depth 1 is
        // the classic double buffer.
        let mut backlog = WriteBacklog::new();
        let mut window = VecDeque::with_capacity(depth.min(num_groups));
        for g in 0..depth.min(num_groups) {
            window.push_back(submit_group_fetch(
                ctx_store, geom, counts, disks, phases, walls, v, k, g,
            )?);
        }
        for group in 0..num_groups {
            let first = group * k;

            // --- Fetching Phase (top up the window) ---
            if group + depth < num_groups {
                window.push_back(submit_group_fetch(
                    ctx_store,
                    geom,
                    counts,
                    disks,
                    phases,
                    walls,
                    v,
                    k,
                    group + depth,
                )?);
            }
            let (pend_ctx, pend_msgs) = window.pop_front().expect("group was prefetched");

            // --- Computation Phase ---
            let t0 = Instant::now();
            let ctx_bufs = pend_ctx.join_into(ctx_pool)?;
            let msgs_in = pend_msgs.join()?;
            walls.fetch += t0.elapsed();
            let t0 = Instant::now();
            let (bufs, outgoing) = compute_group(
                prog,
                step,
                v,
                first,
                gamma,
                compute,
                pool,
                ctx_bufs,
                msgs_in,
                &mut step_comm,
                &mut all_halted,
            )?;
            walls.compute += t0.elapsed();

            // --- Writing Phase (deferred) ---
            let t0 = Instant::now();
            let ops0 = disks.stats().parallel_ops;
            scatter_messages_deferred(
                disks,
                alloc,
                geom,
                &mut scratch,
                group,
                outgoing,
                rng,
                placement,
                &mut backlog,
            )?;
            phases.scatter += disks.stats().parallel_ops - ops0;

            let ops0 = disks.stats().parallel_ops;
            ctx_store.submit_write_group(disks, first, &bufs, &mut backlog)?;
            phases.write_ctx += disks.stats().parallel_ops - ops0;
            walls.write += t0.elapsed();
            // The submitted stripes hold their own copies of the bytes.
            ctx_pool.put_all(bufs);
        }
        // Algorithm 2 reads the scratch blocks and recycles their
        // tracks: every deferred write must be on disk first.
        let t0 = Instant::now();
        backlog.drain()?;
        walls.write += t0.elapsed();
    } else {
        for group in 0..num_groups {
            let first = group * k;
            let count = (first + k).min(v) - first;

            // --- Fetching Phase ---
            let t0 = Instant::now();
            let ops0 = disks.stats().parallel_ops;
            let ctx_bufs = ctx_store.submit_read_group(disks, first, count)?.join_into(ctx_pool)?;
            phases.fetch_ctx += disks.stats().parallel_ops - ops0;

            let ops0 = disks.stats().parallel_ops;
            let msgs_in = fetch_group_messages(disks, geom, counts, group)?;
            phases.fetch_msg += disks.stats().parallel_ops - ops0;
            walls.fetch += t0.elapsed();

            // --- Computation Phase ---
            let t0 = Instant::now();
            let (bufs, outgoing) = compute_group(
                prog,
                step,
                v,
                first,
                gamma,
                compute,
                pool,
                ctx_bufs,
                msgs_in,
                &mut step_comm,
                &mut all_halted,
            )?;
            walls.compute += t0.elapsed();

            // --- Writing Phase ---
            let t0 = Instant::now();
            let ops0 = disks.stats().parallel_ops;
            scatter_messages(disks, alloc, geom, &mut scratch, group, outgoing, rng, placement)?;
            phases.scatter += disks.stats().parallel_ops - ops0;

            let ops0 = disks.stats().parallel_ops;
            ctx_store.write_group(disks, first, &bufs)?;
            phases.write_ctx += disks.stats().parallel_ops - ops0;
            walls.write += t0.elapsed();
            ctx_pool.put_all(bufs);
        }
    }

    // --- Step 2: reorganize the generated messages. ---
    let any_msgs = scratch.total() > 0;
    let balance = scratch.balance_factor();
    let t0 = Instant::now();
    let ops0 = disks.stats().parallel_ops;
    let (new_counts, _trace) =
        simulate_routing(disks, alloc, geom, scratch, routing, ctx_pool, pool)?;
    phases.routing += disks.stats().parallel_ops - ops0;
    walls.reorganize += t0.elapsed();

    // Superstep boundary: everything written this superstep is on disk —
    // and the caller's recovery epoch may commit — before any committed
    // bookkeeping advances. No-op on the memory backend; generates no
    // counted I/O operations.
    let t0 = Instant::now();
    disks.sync()?;
    walls.sync += t0.elapsed();

    Ok(SuperstepOutcome { counts: new_counts, any_msgs, all_halted, balance, comm: step_comm })
}

/// Submit (and count) one group's Fetching Phase — context stripes then
/// message stripes — without waiting for the transfers. The streaming
/// window loop uses this both to prime the window and to top it up;
/// submission order per group is exactly that of the synchronous loop, so
/// counted I/O and per-phase attribution are depth-invariant.
#[allow(clippy::too_many_arguments)]
fn submit_group_fetch(
    ctx_store: &ContextStore,
    geom: &MsgGeometry,
    counts: &GroupCounts,
    disks: &mut DiskArray,
    phases: &mut PhaseIo,
    walls: &mut PhaseWall,
    v: usize,
    k: usize,
    group: usize,
) -> EmResult<(PendingGroupRead, PendingGroupMsgs)> {
    let t0 = Instant::now();
    let first = group * k;
    let count = (first + k).min(v) - first;
    let ops0 = disks.stats().parallel_ops;
    let ctx = ctx_store.submit_read_group(disks, first, count)?;
    phases.fetch_ctx += disks.stats().parallel_ops - ops0;
    let ops0 = disks.stats().parallel_ops;
    let msgs = submit_fetch_group_messages(disks, geom, counts, group)?;
    phases.fetch_msg += disks.stats().parallel_ops - ops0;
    walls.fetch += t0.elapsed();
    Ok((ctx, msgs))
}

/// Computation Phase for one group (Step 1(c)): distribute the fetched
/// messages to per-pid inboxes, run the superstep for every virtual
/// processor of the group (serially or on a scoped worker pool, per
/// `mode`), and serialize the updated contexts. Returns
/// `(serialized contexts, outgoing messages)` concatenated in vp order.
/// Pure with respect to the disks — both the synchronous and the
/// double-buffered group loops share it.
#[allow(clippy::too_many_arguments)]
fn compute_group<P: BspProgram>(
    prog: &P,
    step: usize,
    v: usize,
    first: usize,
    gamma: usize,
    mode: ComputeMode,
    pool: Option<&ComputePool>,
    ctx_bufs: Vec<Vec<u8>>,
    msgs_in: Vec<InMsg>,
    step_comm: &mut SuperstepComm,
    all_halted: &mut bool,
) -> EmResult<(Vec<Vec<u8>>, Vec<OutMsg>)> {
    let count = ctx_bufs.len();
    let mut inboxes: Vec<Vec<(u32, u32, P::Msg)>> = (0..count).map(|_| Vec::new()).collect();
    let mut recv_bytes = vec![0u64; count];
    let mut recv_msgs = vec![0u64; count];
    for m in msgs_in {
        let local = m.dst as usize - first;
        recv_bytes[local] += m.payload.len() as u64;
        recv_msgs[local] += 1;
        let msg: P::Msg = from_bytes(&m.payload)?;
        inboxes[local].push((m.src, m.seq, msg));
    }

    let work: Vec<VpWork<P::Msg>> = ctx_bufs
        .into_iter()
        .enumerate()
        .map(|(local, ctx)| VpWork {
            pid: first + local,
            ctx,
            inbox: std::mem::take(&mut inboxes[local]),
            recv_bytes: recv_bytes[local],
            recv_msgs: recv_msgs[local],
        })
        .collect();

    let mut bufs: Vec<Vec<u8>> = Vec::with_capacity(count);
    let mut outgoing: Vec<OutMsg> = Vec::new();
    for slot in run_group_vps(prog, mode, step, v, gamma, work, pool) {
        let slot = slot?; // first error in vp order wins, as the serial loop would
        if slot.continued {
            *all_halted = false;
        }
        step_comm.msgs += slot.msgs_sent;
        step_comm.bytes += slot.bytes_sent;
        step_comm.h_bytes = step_comm.h_bytes.max(slot.bytes_sent).max(slot.recv_bytes);
        step_comm.h_msgs = step_comm.h_msgs.max(slot.msgs_sent).max(slot.recv_msgs);
        step_comm.w_comp = step_comm.w_comp.max(slot.work);
        outgoing.extend(slot.outbox);
        bufs.push(slot.state_bytes);
    }
    Ok((bufs, outgoing))
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_bsp::{run_sequential, Mailbox, Step};

    fn machine(m: usize, d: usize, b: usize) -> EmMachine {
        EmMachine::uniprocessor(m, d, b, 1)
    }

    /// All-to-all exchange and sum — the standard differential check.
    /// Declares μ = `mu` (over-declaration is allowed and lets tests force
    /// small group sizes while honouring the model's M ≥ D·B requirement).
    struct AllToAll {
        mu: usize,
    }
    impl BspProgram for AllToAll {
        type State = u64;
        type Msg = u64;
        fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut u64) -> Step {
            match step {
                0 => {
                    for dst in 0..mb.nprocs() {
                        mb.send(dst, (mb.pid() as u64 + 1) * 1000 + dst as u64);
                    }
                    Step::Continue
                }
                _ => {
                    *state = mb.take_incoming().iter().map(|e| e.msg).sum();
                    Step::Halt
                }
            }
        }
        fn max_state_bytes(&self) -> usize {
            self.mu.max(8)
        }
        fn max_comm_bytes(&self) -> usize {
            // 16 vprocs * (16 header + 8 payload)
            16 * 24
        }
    }

    #[test]
    fn matches_reference_runner() {
        let v = 16;
        let prog = AllToAll { mu: 124 }; // context region = 128 bytes
        let reference = run_sequential(&prog, vec![0u64; v]).unwrap();
        // M = 256 = 2 context regions per group, 4 disks of 64-byte blocks.
        let sim = SeqEmSimulator::new(machine(256, 4, 64));
        let (res, report) = sim.run(&prog, vec![0u64; v]).unwrap();
        assert_eq!(res.states, reference.states);
        assert_eq!(res.ledger.total_msgs(), reference.ledger.total_msgs());
        assert_eq!(report.k, 2);
        assert_eq!(report.num_groups, 8);
        assert!(report.io.parallel_ops > 0);
        assert_eq!(report.lambda, reference.supersteps());
    }

    #[test]
    fn single_group_fast_path() {
        // Memory big enough for all contexts at once: k = v.
        let prog = AllToAll { mu: 8 };
        let reference = run_sequential(&prog, vec![0u64; 8]).unwrap();
        let sim = SeqEmSimulator::new(machine(1 << 16, 2, 64));
        let (res, report) = sim.run(&prog, vec![0u64; 8]).unwrap();
        assert_eq!(res.states, reference.states);
        assert_eq!(report.num_groups, 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let prog = AllToAll { mu: 124 };
        let sim = SeqEmSimulator::new(machine(512, 4, 64)).with_seed(99);
        let (a, ra) = sim.run(&prog, vec![0u64; 16]).unwrap();
        let (b, rb) = sim.run(&prog, vec![0u64; 16]).unwrap();
        assert_eq!(a.states, b.states);
        assert_eq!(ra.io.parallel_ops, rb.io.parallel_ops);
    }

    #[test]
    fn pipelined_run_is_bit_identical_to_synchronous() {
        let prog = AllToAll { mu: 124 };
        let base = SeqEmSimulator::new(machine(256, 4, 64)).with_seed(42);
        let (a, ra) = base.run(&prog, vec![0u64; 16]).unwrap();
        // The workload has 8 groups: depth 2 keeps several in flight,
        // depth 8 covers a window deeper than the remaining groups, and
        // depth 32 a window wider than the whole superstep.
        for pipeline in [
            Pipeline::DoubleBuffer,
            Pipeline::Stream(1),
            Pipeline::Stream(2),
            Pipeline::Stream(8),
            Pipeline::Stream(32),
        ] {
            let pipelined = base.clone().with_pipeline(pipeline);
            let (b, rb) = pipelined.run(&prog, vec![0u64; 16]).unwrap();
            assert_eq!(a.states, b.states, "{pipeline:?}");
            assert_eq!(a.ledger, b.ledger, "{pipeline:?}");
            assert_eq!(ra.io, rb.io, "counted I/O must not depend on {pipeline:?}");
            assert_eq!(ra.phases, rb.phases, "phase attribution must not depend on {pipeline:?}");
            assert_eq!(ra.tracks_per_disk, rb.tracks_per_disk, "{pipeline:?}");
        }
    }

    #[test]
    fn stream_zero_is_exactly_off() {
        let prog = AllToAll { mu: 124 };
        let base = SeqEmSimulator::new(machine(256, 4, 64)).with_seed(42);
        let (a, ra) = base.run(&prog, vec![0u64; 16]).unwrap();
        let (b, rb) =
            base.clone().with_pipeline(Pipeline::Stream(0)).run(&prog, vec![0u64; 16]).unwrap();
        assert_eq!(a.states, b.states);
        assert_eq!(ra.io, rb.io);
        assert_eq!(ra.phases, rb.phases);
    }

    #[test]
    fn cached_run_is_bit_identical_to_uncached() {
        let prog = AllToAll { mu: 124 };
        let base = SeqEmSimulator::new(machine(256, 4, 64)).with_seed(42);
        let (a, ra) = base.run(&prog, vec![0u64; 16]).unwrap();
        // One track's worth, and full residency (v·μ + γ comfortably).
        for cache_bytes in [64usize, 1 << 16] {
            let cached = base.clone().with_cache(cache_bytes);
            let (b, rb) = cached.run(&prog, vec![0u64; 16]).unwrap();
            assert_eq!(a.states, b.states);
            assert_eq!(a.ledger, b.ledger);
            let mut masked = rb.io.clone();
            masked.cache_hit_blocks = 0;
            masked.cache_absorbed_writes = 0;
            assert_eq!(ra.io, masked, "counted I/O must not depend on the cache knob");
            assert_eq!(ra.phases, rb.phases, "phase attribution must not depend on the cache");
            assert_eq!(ra.tracks_per_disk, rb.tracks_per_disk);
        }
        // At full residency the workload's repeated context traffic must
        // actually be absorbed.
        let (_, rb) = base.clone().with_cache(1 << 16).run(&prog, vec![0u64; 16]).unwrap();
        assert!(rb.io.cache_hit_blocks > 0, "resident re-reads must hit the cache");
        assert!(rb.io.cache_absorbed_writes > 0, "writes must be buffered until the barrier");
        assert_eq!(ra.io.cache_hit_blocks, 0);
        assert_eq!(ra.io.cache_absorbed_writes, 0);
    }

    #[test]
    fn threaded_compute_is_bit_identical_to_serial() {
        let prog = AllToAll { mu: 124 };
        let base = SeqEmSimulator::new(machine(256, 4, 64)).with_seed(42);
        let (a, ra) = base.run(&prog, vec![0u64; 16]).unwrap();
        for n in [1usize, 2, 8] {
            for pipeline in [Pipeline::Off, Pipeline::DoubleBuffer, Pipeline::Stream(4)] {
                let threaded = base
                    .clone()
                    .with_pipeline(pipeline)
                    .with_compute_mode(ComputeMode::Threaded(n));
                let (b, rb) = threaded.run(&prog, vec![0u64; 16]).unwrap();
                assert_eq!(a.states, b.states);
                assert_eq!(a.ledger, b.ledger);
                assert_eq!(ra.io, rb.io, "counted I/O must not depend on ComputeMode");
                assert_eq!(ra.phases, rb.phases);
                assert_eq!(ra.tracks_per_disk, rb.tracks_per_disk);
            }
        }
    }

    #[test]
    fn pipelined_file_backend_matches_reference() {
        let prog = AllToAll { mu: 124 };
        let reference = run_sequential(&prog, vec![0u64; 16]).unwrap();
        for (tag, pipeline) in [("db", Pipeline::DoubleBuffer), ("s3", Pipeline::Stream(3))] {
            let dir =
                std::env::temp_dir().join(format!("em-seq-pipe-{tag}-{}", std::process::id()));
            let sim = SeqEmSimulator::new(machine(256, 4, 64))
                .with_file_backend(&dir)
                .with_pipeline(pipeline);
            let (res, report) = sim.run(&prog, vec![0u64; 16]).unwrap();
            assert_eq!(res.states, reference.states, "{pipeline:?}");
            assert!(report.io.parallel_ops > 0);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn comm_budget_violation_is_detected() {
        struct Chatty;
        impl BspProgram for Chatty {
            type State = u64;
            type Msg = u64;
            fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, _: &mut u64) -> Step {
                if step == 0 {
                    for _ in 0..100 {
                        mb.send(0, 1);
                    }
                    Step::Continue
                } else {
                    mb.take_incoming();
                    Step::Halt
                }
            }
            fn max_state_bytes(&self) -> usize {
                8
            }
            fn max_comm_bytes(&self) -> usize {
                64 // far less than 100 * 24
            }
        }
        let sim = SeqEmSimulator::new(machine(1 << 12, 2, 64));
        let err = sim.run(&Chatty, vec![0u64; 4]).unwrap_err();
        assert!(matches!(err, EmError::CommBudgetExceeded { .. }));
    }

    #[test]
    fn memory_too_small_is_detected() {
        struct Fat;
        impl BspProgram for Fat {
            type State = Vec<u8>;
            type Msg = u8;
            fn superstep(&self, _: usize, _: &mut Mailbox<u8>, _: &mut Vec<u8>) -> Step {
                Step::Halt
            }
            fn max_state_bytes(&self) -> usize {
                1 << 20
            }
        }
        let sim = SeqEmSimulator::new(machine(1 << 10, 2, 64));
        let err = sim.run(&Fat, vec![Vec::new(); 4]).unwrap_err();
        assert!(matches!(err, EmError::MemoryTooSmall { .. }));
    }

    #[test]
    fn context_overflow_is_detected() {
        // State grows beyond the declared μ mid-run.
        struct Grower;
        impl BspProgram for Grower {
            type State = Vec<u8>;
            type Msg = u8;
            fn superstep(&self, step: usize, _: &mut Mailbox<u8>, state: &mut Vec<u8>) -> Step {
                if step < 3 {
                    state.extend_from_slice(&[7; 100]);
                    Step::Continue
                } else {
                    Step::Halt
                }
            }
            fn max_state_bytes(&self) -> usize {
                64 // lies: state reaches 300 bytes
            }
        }
        let sim = SeqEmSimulator::new(machine(1 << 12, 2, 64));
        let err = sim.run(&Grower, vec![Vec::new(); 4]).unwrap_err();
        assert!(matches!(err, EmError::ContextOverflow { .. }));
    }

    #[test]
    fn file_backend_end_to_end() {
        let dir = std::env::temp_dir().join(format!("em-seq-sim-{}", std::process::id()));
        let prog = AllToAll { mu: 124 };
        let reference = run_sequential(&prog, vec![0u64; 8]).unwrap();
        let sim = SeqEmSimulator::new(machine(256, 2, 64)).with_file_backend(&dir);
        let (res, _) = sim.run(&prog, vec![0u64; 8]).unwrap();
        assert_eq!(res.states, reference.states);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpointing_requires_file_backend() {
        let prog = AllToAll { mu: 124 };
        let sim = SeqEmSimulator::new(machine(256, 4, 64)).with_checkpointing(true);
        let err = sim.run(&prog, vec![0u64; 16]).unwrap_err();
        assert!(matches!(err, EmError::InvalidConfig(_)));
    }

    #[test]
    fn kill_point_requires_checkpointing() {
        let prog = AllToAll { mu: 124 };
        let sim = SeqEmSimulator::new(machine(256, 4, 64)).with_kill_point(KillPoint::AtBarrier(0));
        let err = sim.run(&prog, vec![0u64; 16]).unwrap_err();
        assert!(matches!(err, EmError::InvalidConfig(_)));
    }

    #[test]
    fn checkpointed_run_is_bit_identical_to_unchecked() {
        let prog = AllToAll { mu: 124 };
        let dir = std::env::temp_dir().join(format!("em-seq-ckpt-off-{}", std::process::id()));
        let plain = SeqEmSimulator::new(machine(256, 4, 64)).with_file_backend(dir.join("plain"));
        let (a, ra) = plain.run(&prog, vec![0u64; 16]).unwrap();
        let ckpt = SeqEmSimulator::new(machine(256, 4, 64))
            .with_file_backend(dir.join("ckpt"))
            .with_checkpointing(true);
        let (b, rb) = ckpt.run(&prog, vec![0u64; 16]).unwrap();
        assert_eq!(a.states, b.states);
        assert_eq!(a.ledger, b.ledger);
        assert_eq!(ra.io.parallel_ops, rb.io.parallel_ops);
        assert_eq!(ra.phases, rb.phases);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_and_resume_matches_uninterrupted_run() {
        let prog = AllToAll { mu: 124 };
        let base_dir = std::env::temp_dir().join(format!("em-seq-ckpt-{}", std::process::id()));
        // Uninterrupted checkpointed run — the reference.
        let dir_a = base_dir.join("uninterrupted");
        let sim_a = SeqEmSimulator::new(machine(256, 4, 64))
            .with_file_backend(&dir_a)
            .with_checkpointing(true);
        let (a, ra) = sim_a.run(&prog, vec![0u64; 16]).unwrap();
        for kill in [KillPoint::AtBarrier(0), KillPoint::MidSuperstep(1), KillPoint::MidManifest(1)]
        {
            let dir_b = base_dir.join(format!("{kill:?}"));
            let sim_b = SeqEmSimulator::new(machine(256, 4, 64))
                .with_file_backend(&dir_b)
                .with_checkpointing(true);
            let err = sim_b.clone().with_kill_point(kill).run(&prog, vec![0u64; 16]).unwrap_err();
            assert!(matches!(err, EmError::Killed { .. }), "{kill:?}: {err}");
            let (b, rb) = sim_b.resume(&prog).unwrap();
            assert_eq!(a.states, b.states, "{kill:?}");
            assert_eq!(a.ledger, b.ledger, "{kill:?}");
            assert_eq!(ra.io.parallel_ops, rb.io.parallel_ops, "{kill:?}");
            assert_eq!(ra.io.per_disk_reads, rb.io.per_disk_reads, "{kill:?}");
            assert_eq!(ra.io.per_disk_writes, rb.io.per_disk_writes, "{kill:?}");
            assert_eq!(ra.phases, rb.phases, "{kill:?}");
        }
        std::fs::remove_dir_all(&base_dir).ok();
    }

    #[test]
    fn round_robin_placement_matches_reference_too() {
        let prog = AllToAll { mu: 124 };
        let reference = run_sequential(&prog, vec![0u64; 16]).unwrap();
        let sim = SeqEmSimulator::new(machine(512, 4, 64)).with_placement(Placement::RoundRobin);
        let (res, _) = sim.run(&prog, vec![0u64; 16]).unwrap();
        assert_eq!(res.states, reference.states);
    }
}
