//! Algorithm 2 — `SimulateRouting`: reorganize the scratch message blocks
//! written during the superstep into each destination group's fixed,
//! consecutive, fully-striped final region.
//!
//! **Step 1** (gather per bucket): in parallel rounds `j = 0, 1, …`, read
//! one block of bucket `d` from disk `(d + j) mod D` (a bijection in `d`,
//! hence a legal stripe) and write the fetched blocks back one-bucket-per-
//! disk: the block of bucket `d` goes to disk `d`'s staging area at the
//! deterministic track given by the block's in-bucket rank (prefix of its
//! group + `gseq`). If a bucket has no remaining block on the designated
//! disk, its slot idles that round — this is exactly the imbalance that
//! Lemma 2 bounds with high probability, and it is visible in the measured
//! operation counts.
//!
//! **Step 2** (scatter to final format): in rounds `j`, read the `j`-th
//! staged block from every disk `d` in parallel and write it to disk
//! `(d + j) mod D`, track `msg_base + d·T + ⌊j/D⌋` — the paper's rotation,
//! which simultaneously (a) never collides within a round and (b) leaves
//! every group's blocks consecutive and striped round-robin (standard
//! consecutive format, Figure 2).
//!
//! # Parallel plan construction (DESIGN.md §3.2.11)
//!
//! Both steps are executed from **per-bucket plans** — the complete
//! `(round, read location, write location)` schedule of every block — that
//! are built fanned out across the simulator's persistent [`ComputePool`]
//! (one chunk of buckets per worker, pre-sized disjoint slots, joined in
//! bucket order) and then *assembled* into read/write stripes by a serial
//! per-round loop that does nothing but zip precomputed locations with
//! fetched blocks. The schedule is closed-form, not a parallelized cursor
//! scan: the serial Step 1 loop probes pile `(b, (b+j) mod D)` at round
//! `j` and consumes its next entry on a hit, piles never grow, and a pile
//! is probed exactly every `D` rounds — so entry `c` of pile `(b, dd)` is
//! consumed at exactly round `((dd − b) mod D) + c·D`. Emitting entries in
//! that order reproduces the serial stripes bit for bit, which makes the
//! fan-out invisible to everything counted: stripes, their order, counted
//! I/O, the trace and the final layout are identical by construction, and
//! only [`crate::PhaseWall::reorganize`] may change. The closed form also
//! retires the serial loop's stall guard: every entry is scheduled at a
//! finite round up front, so non-termination is impossible rather than
//! merely detected.

use crate::context_store::BufferPool;
use crate::msg::{GroupCounts, MsgGeometry, ScratchState};
use crate::{ComputePool, EmResult};
use em_disk::{Block, DiskArray, TrackAllocator};

/// Observability record of one routing invocation (drives the Figure 2
/// trace experiment and the ablation benches).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutingTrace {
    /// Rounds used by Step 1 (`≥ ⌈R_max⌉` where `R_max` is the largest
    /// bucket-per-disk pile; equals `total/D` under perfect balance).
    pub step1_rounds: usize,
    /// Rounds used by Step 2 (max staged blocks per disk).
    pub step2_rounds: usize,
    /// Blocks moved (each is read+written twice across the two steps).
    pub blocks: usize,
    /// Read slots that idled in Step 1 because the designated disk had no
    /// block of the bucket left — the measurable imbalance cost.
    pub idle_slots: usize,
    /// Empirical Lemma 2 balance factor of the scratch distribution
    /// (worst bucket-on-disk load over its even share `R/D`).
    pub balance_factor: f64,
}

/// One scheduled block move: read `read` at round `round`, write it to
/// `write` in the same round's write stripe. Plans hold one entry per
/// block, sorted by round (rounds are unique within a bucket).
#[derive(Debug, Clone, Copy)]
struct PlanEntry {
    round: usize,
    read: (usize, usize),
    write: (usize, usize),
}

/// Reusable bookkeeping for [`simulate_routing`]: the per-bucket plan
/// buffers and the per-round read/write staging vectors of the merge pass.
///
/// The simulators keep one per run next to their context [`BufferPool`],
/// so steady-state routing stops allocating fresh scratch each superstep —
/// the per-bucket plan `Vec`s round-trip through the pooled plan builders
/// (taken, refilled by a worker, stored back), so their capacity survives
/// supersteps no matter which worker filled them. Like the pool it caches
/// only *capacity*, never content — every call re-derives all state from
/// its inputs, so recovery replay needs no snapshot of it and an empty
/// default is always valid.
#[derive(Debug, Default)]
pub struct RoutingScratch {
    /// Per-bucket plan buffers, recycled through the pooled builders.
    plans: Vec<Vec<PlanEntry>>,
    /// Per-bucket cursors into the sorted plans during round assembly.
    plan_cursors: Vec<usize>,
    /// Read stripe staging: `(disk, track)` per slot this round.
    reads: Vec<(usize, usize)>,
    /// Write locations per slot this round, aligned with `reads`.
    meta: Vec<(usize, usize)>,
    /// Write stripe staging; payloads drain into the caller's pool.
    writes: Vec<(usize, usize, Block)>,
    /// Step 2 per-bucket staged-block totals.
    staged: Vec<usize>,
}

impl RoutingScratch {
    /// An empty scratch; capacity grows on first use and is then reused.
    pub fn new() -> Self {
        RoutingScratch::default()
    }
}

/// Emit the plans' rounds in order: per round, gather the due entry of
/// every bucket (bucket order — exactly the serial probe order), read the
/// stripe, zip the fetched blocks with their precomputed write locations,
/// write the stripe, and recycle the payloads into `pool`. Returns the
/// number of non-empty rounds. Purely mechanical: every decision was made
/// in the plans, so the loop body is identical for both routing steps.
fn assemble_rounds(
    disks: &mut DiskArray,
    plans: &[Vec<PlanEntry>],
    routing: &mut RoutingScratch,
    pool: &mut BufferPool,
) -> EmResult<usize> {
    let total: usize = plans.iter().map(Vec::len).sum();
    routing.plan_cursors.clear();
    routing.plan_cursors.resize(plans.len(), 0);
    let mut emitted = 0usize;
    let mut rounds = 0usize;
    let mut j = 0usize;
    while emitted < total {
        routing.reads.clear();
        routing.meta.clear();
        for (bucket, plan) in plans.iter().enumerate() {
            let cur = routing.plan_cursors[bucket];
            if let Some(e) = plan.get(cur) {
                if e.round == j {
                    routing.plan_cursors[bucket] = cur + 1;
                    routing.reads.push(e.read);
                    routing.meta.push(e.write);
                }
            }
        }
        j += 1;
        if routing.reads.is_empty() {
            continue;
        }
        rounds += 1;
        emitted += routing.reads.len();
        let blocks = disks.read_stripe(&routing.reads)?;
        routing.writes.clear();
        routing
            .writes
            .extend(routing.meta.iter().zip(blocks).map(|(&(dk, tk), block)| (dk, tk, block)));
        disks.write_stripe(&routing.writes)?;
        pool.put_all(routing.writes.drain(..).map(|(_, _, b)| b.into_vec()));
    }
    Ok(rounds)
}

/// Run Algorithm 2, consuming the superstep's scratch state and returning
/// the [`GroupCounts`] that the next superstep's Fetching Phase will use.
///
/// `routing` carries the merge pass's bookkeeping capacity across
/// supersteps, and the [`Block`] payloads of every stripe written here are
/// recycled into `pool` — the same free list the Fetching Phase draws
/// context buffers from — so steady-state routing is allocation-free
/// except for the blocks materialized by the disk reads themselves.
///
/// With `compute = Some(pool)` the whole reorganization schedule — the
/// closed-form Step 1 gather plan and the Step 2 rotation plan (rank →
/// staging and rotation → final placement of every block) — is built
/// fanned out across the persistent worker pool, one chunk of buckets per
/// worker into pre-sized disjoint slots joined in bucket order; the
/// per-round loop then only assembles precomputed locations into stripes.
/// The stripes, their order, counted I/O, the [`RoutingTrace`] and the
/// resulting layout are bit-identical to the serial path by construction
/// (the schedule is a pure function of the inputs, and counting happens in
/// [`DiskArray`] at submission); only [`crate::PhaseWall::reorganize`]
/// changes.
pub fn simulate_routing(
    disks: &mut DiskArray,
    alloc: &mut TrackAllocator,
    geom: &MsgGeometry,
    scratch: ScratchState,
    routing: &mut RoutingScratch,
    pool: &mut BufferPool,
    compute: Option<&ComputePool>,
) -> EmResult<(GroupCounts, RoutingTrace)> {
    let compute_workers = compute.map_or(1, ComputePool::workers);
    let d = geom.num_disks;
    let nb = geom.num_buckets;
    let balance_factor = scratch.balance_factor();
    let counts = GroupCounts::compute(geom, scratch.counts.clone())?;
    let total = counts.total();
    let mut trace = RoutingTrace { balance_factor, blocks: total, ..Default::default() };
    if total == 0 {
        return Ok((counts, trace));
    }

    // ---- Step 1: gather bucket d onto disk d, rank-ordered. ----
    // Per-bucket closed-form plans, built fanned out over the pool: entry
    // `c` of pile `(bucket, dd)` is consumed at round
    // `((dd − bucket) mod D) + c·D` (see the module docs for why this is
    // exactly the serial cursor scan's schedule), reads its scratch track
    // and writes the bucket's staging track at its in-bucket rank. Rounds
    // are unique within a bucket — distinct piles occupy distinct residue
    // classes mod D — so the per-bucket sort fully determines the order.
    routing.plans.resize_with(nb, Vec::new);
    let plans = ComputePool::map_ordered(
        compute,
        compute_workers,
        std::mem::take(&mut routing.plans),
        |bucket, mut plan| {
            plan.clear();
            for (dd, refs) in scratch.refs[bucket].iter().enumerate() {
                let off = (dd + d - bucket % d) % d;
                for (c, r) in refs.iter().enumerate() {
                    let rank = counts.prefix_in_bucket[r.group as usize] + r.gseq as usize;
                    plan.push(PlanEntry {
                        round: off + c * d,
                        read: (dd, r.track),
                        write: geom.stage_location(bucket, rank),
                    });
                }
            }
            plan.sort_unstable_by_key(|e| e.round);
            plan
        },
    );
    // The serial loop exits right after the round consuming the last
    // block, having probed every bucket once per round up to there.
    let j_last = plans.iter().filter_map(|p| p.last()).map(|e| e.round).max().unwrap_or(0);
    trace.step1_rounds = assemble_rounds(disks, &plans, routing, pool)?;
    trace.idle_slots = (j_last + 1) * nb - total;

    // Scratch tracks are free again.
    for per_disk in scratch.refs.iter() {
        for (disk, refs) in per_disk.iter().enumerate() {
            for r in refs {
                alloc.free_track(disk, r.track);
            }
        }
    }

    // ---- Step 2: rotate staged blocks into the final striped regions. ----
    // Same fan-out, trivial schedule: the bucket's `j`-th staged block
    // moves in round `j` from its staging track to its final location.
    routing.staged.clear();
    routing.staged.extend((0..nb).map(|b| counts.bucket_total(geom, b)));
    let staged_totals = &routing.staged;
    let plans = ComputePool::map_ordered(
        compute,
        compute_workers,
        plans, // reuse the Step 1 buffers' capacity
        |bucket, mut plan| {
            plan.clear();
            for j in 0..staged_totals[bucket] {
                plan.push(PlanEntry {
                    round: j,
                    read: geom.stage_location(bucket, j),
                    write: geom.final_location(bucket, j),
                });
            }
            plan
        },
    );
    trace.step2_rounds = assemble_rounds(disks, &plans, routing, pool)?;
    // Hand the plan buffers back for the next superstep.
    routing.plans = plans;

    Ok((counts, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{fetch_group_messages, scatter_messages, OutMsg, Placement};
    use em_disk::DiskConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(
        v: usize,
        k: usize,
        gamma: usize,
        d: usize,
        b: usize,
    ) -> (DiskArray, TrackAllocator, MsgGeometry) {
        let mut alloc = TrackAllocator::new(d);
        let geom = MsgGeometry::allocate(&mut alloc, v, k, gamma, d, b).unwrap();
        let disks = DiskArray::new_memory(DiskConfig::new(d, b).unwrap());
        (disks, alloc, geom)
    }

    /// End-to-end: scatter from several source groups, route, fetch every
    /// group, and verify the multiset of messages survives exactly.
    #[test]
    fn scatter_route_fetch_round_trip() {
        let (mut disks, mut alloc, geom) = setup(16, 2, 2000, 4, 64);
        let mut scratch = ScratchState::new(&geom);
        let mut rng = StdRng::seed_from_u64(42);

        let mut sent: Vec<(u32, u32, u32, Vec<u8>)> = Vec::new();
        for src_group in 0..geom.num_groups {
            let mut msgs = Vec::new();
            for t in 0..10u32 {
                let src = (src_group * geom.k) as u32 + (t % geom.k as u32);
                let dst = ((src as usize * 7 + t as usize * 3) % geom.v) as u32;
                let payload = vec![(src_group * 16 + t as usize) as u8; (t as usize % 37) + 1];
                sent.push((dst, src, t, payload.clone()));
                msgs.push(OutMsg { dst, src, seq: t, payload });
            }
            scatter_messages(
                &mut disks,
                &mut alloc,
                &geom,
                &mut scratch,
                src_group,
                msgs,
                &mut rng,
                Placement::Random,
            )
            .unwrap();
        }

        let mut routing = RoutingScratch::new();
        let mut pool = BufferPool::new();
        let (counts, trace) =
            simulate_routing(&mut disks, &mut alloc, &geom, scratch, &mut routing, &mut pool, None)
                .unwrap();
        assert!(trace.blocks > 0);
        assert!(trace.step1_rounds >= trace.blocks.div_ceil(geom.num_disks));
        assert_eq!(pool.len(), 2 * trace.blocks, "every written payload must be recycled");

        let mut got: Vec<(u32, u32, u32, Vec<u8>)> = Vec::new();
        for g in 0..geom.num_groups {
            for m in fetch_group_messages(&mut disks, &geom, &counts, g).unwrap() {
                assert_eq!(geom.group_of(m.dst as usize), g);
                got.push((m.dst, m.src, m.seq, m.payload));
            }
        }
        sent.sort();
        got.sort();
        assert_eq!(sent, got);
    }

    #[test]
    fn empty_superstep_routes_trivially() {
        let (mut disks, mut alloc, geom) = setup(8, 2, 100, 2, 64);
        let scratch = ScratchState::new(&geom);
        let (counts, trace) = simulate_routing(
            &mut disks,
            &mut alloc,
            &geom,
            scratch,
            &mut RoutingScratch::new(),
            &mut BufferPool::new(),
            None,
        )
        .unwrap();
        assert_eq!(counts.total(), 0);
        assert_eq!(trace.step1_rounds, 0);
        assert_eq!(disks.stats().parallel_ops, 0);
    }

    #[test]
    fn deterministic_placement_round_trip() {
        let (mut disks, mut alloc, geom) = setup(8, 2, 1000, 4, 64);
        let mut scratch = ScratchState::new(&geom);
        let mut rng = StdRng::seed_from_u64(1);
        let msgs: Vec<OutMsg> = (0..20)
            .map(|i| OutMsg {
                dst: (i % 8) as u32,
                src: 0,
                seq: i as u32,
                payload: vec![i as u8; 25],
            })
            .collect();
        scatter_messages(
            &mut disks,
            &mut alloc,
            &geom,
            &mut scratch,
            0,
            msgs,
            &mut rng,
            Placement::RoundRobin,
        )
        .unwrap();
        let (counts, _) = simulate_routing(
            &mut disks,
            &mut alloc,
            &geom,
            scratch,
            &mut RoutingScratch::new(),
            &mut BufferPool::new(),
            None,
        )
        .unwrap();
        let total: usize = (0..geom.num_groups)
            .map(|g| fetch_group_messages(&mut disks, &geom, &counts, g).unwrap().len())
            .sum();
        assert_eq!(total, 20);
    }

    /// Routing must leave every group's final blocks in standard
    /// consecutive format (Definition 2) within the message area.
    #[test]
    fn final_layout_is_consecutive_per_bucket() {
        let (_, _, geom) = setup(16, 2, 500, 4, 64);
        let counts = GroupCounts::compute(&geom, vec![3, 2, 4, 1, 0, 5, 2, 3]).unwrap();
        for bucket in 0..geom.num_buckets {
            let total = counts.bucket_total(&geom, bucket);
            let locs: Vec<(usize, usize)> =
                (0..total).map(|r| geom.final_location(bucket, r)).collect();
            em_disk::check_consecutive_format(&locs, geom.num_disks)
                .expect("bucket blocks must satisfy Definition 2");
        }
    }

    /// The pooled merge/scatter path must produce bit-identical layouts
    /// and counted I/O to the serial path — same stripes, same order.
    #[test]
    fn pooled_routing_matches_serial_routing_exactly() {
        let compute = ComputePool::new(3);
        let mut results = Vec::new();
        for pool_ref in [None, Some(&compute)] {
            let (mut disks, mut alloc, geom) = setup(16, 2, 2000, 4, 64);
            let mut scratch = ScratchState::new(&geom);
            let mut rng = StdRng::seed_from_u64(7);
            for src_group in 0..geom.num_groups {
                let msgs: Vec<OutMsg> = (0..12u32)
                    .map(|t| OutMsg {
                        dst: ((src_group * 5 + t as usize * 3) % geom.v) as u32,
                        src: (src_group * geom.k) as u32,
                        seq: t,
                        payload: vec![t as u8; (t as usize % 29) + 1],
                    })
                    .collect();
                scatter_messages(
                    &mut disks,
                    &mut alloc,
                    &geom,
                    &mut scratch,
                    src_group,
                    msgs,
                    &mut rng,
                    Placement::RoundRobin,
                )
                .unwrap();
            }
            let (counts, trace) = simulate_routing(
                &mut disks,
                &mut alloc,
                &geom,
                scratch,
                &mut RoutingScratch::new(),
                &mut BufferPool::new(),
                pool_ref,
            )
            .unwrap();
            let fetched: Vec<_> = (0..geom.num_groups)
                .map(|g| {
                    fetch_group_messages(&mut disks, &geom, &counts, g)
                        .unwrap()
                        .into_iter()
                        .map(|m| (m.dst, m.src, m.seq, m.payload))
                        .collect::<Vec<_>>()
                })
                .collect();
            results.push((disks.stats().clone(), trace, fetched));
        }
        assert_eq!(results[0], results[1], "pooled routing diverged from serial");
    }

    /// The closed-form schedule under *skewed* scratch distributions
    /// (random placement piles everything unevenly, forcing idle slots
    /// and empty leading rounds) must agree with itself across pool
    /// widths — including the idle-slot and round tallies, which encode
    /// the serial cursor scan's exact dynamics.
    #[test]
    fn skewed_distributions_agree_across_pool_widths() {
        for seed in [11u64, 23, 99] {
            let mut results = Vec::new();
            let wide = ComputePool::new(8);
            let narrow = ComputePool::new(2);
            for pool_ref in [None, Some(&narrow), Some(&wide)] {
                let (mut disks, mut alloc, geom) = setup(24, 3, 3000, 4, 64);
                let mut scratch = ScratchState::new(&geom);
                let mut rng = StdRng::seed_from_u64(seed);
                for src_group in 0..geom.num_groups {
                    // Skew: most traffic targets one group.
                    let msgs: Vec<OutMsg> = (0..15u32)
                        .map(|t| OutMsg {
                            dst: if t % 4 == 0 { (src_group * 11 + t as usize) % geom.v } else { 1 }
                                as u32,
                            src: (src_group * geom.k) as u32,
                            seq: t,
                            payload: vec![t as u8; (t as usize % 23) + 1],
                        })
                        .collect();
                    scatter_messages(
                        &mut disks,
                        &mut alloc,
                        &geom,
                        &mut scratch,
                        src_group,
                        msgs,
                        &mut rng,
                        Placement::Random,
                    )
                    .unwrap();
                }
                let mut routing = RoutingScratch::new();
                let mut buf_pool = BufferPool::new();
                let (counts, trace) = simulate_routing(
                    &mut disks,
                    &mut alloc,
                    &geom,
                    scratch,
                    &mut routing,
                    &mut buf_pool,
                    pool_ref,
                )
                .unwrap();
                assert_eq!(buf_pool.len(), 2 * trace.blocks, "recycling must survive pooling");
                results.push((disks.stats().clone(), counts.counts.clone(), trace));
            }
            assert_eq!(results[0], results[1], "narrow pool diverged (seed {seed})");
            assert_eq!(results[0], results[2], "wide pool diverged (seed {seed})");
        }
    }

    /// Scratch tracks are recycled after routing: repeated supersteps do
    /// not grow the disk.
    #[test]
    fn scratch_space_is_reused_across_supersteps() {
        let (mut disks, mut alloc, geom) = setup(8, 2, 1000, 4, 64);
        let mut rng = StdRng::seed_from_u64(3);
        let mut frontier_after_first = 0;
        let mut routing = RoutingScratch::new();
        let mut pool = BufferPool::new();
        for round in 0..5 {
            let mut scratch = ScratchState::new(&geom);
            let msgs: Vec<OutMsg> = (0..16)
                .map(|i| OutMsg {
                    dst: (i % 8) as u32,
                    src: 0,
                    seq: i as u32,
                    payload: vec![0u8; 30],
                })
                .collect();
            scatter_messages(
                &mut disks,
                &mut alloc,
                &geom,
                &mut scratch,
                0,
                msgs,
                &mut rng,
                Placement::Random,
            )
            .unwrap();
            simulate_routing(&mut disks, &mut alloc, &geom, scratch, &mut routing, &mut pool, None)
                .unwrap();
            if round == 0 {
                frontier_after_first = alloc.max_frontier();
            }
        }
        // Frontier may wobble by a few tracks due to random placement, but
        // must not grow linearly with rounds.
        assert!(
            alloc.max_frontier() <= frontier_after_first + geom.num_disks * 4,
            "scratch area grew: {} -> {}",
            frontier_after_first,
            alloc.max_frontier()
        );
    }
}
