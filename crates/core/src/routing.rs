//! Algorithm 2 — `SimulateRouting`: reorganize the scratch message blocks
//! written during the superstep into each destination group's fixed,
//! consecutive, fully-striped final region.
//!
//! **Step 1** (gather per bucket): in parallel rounds `j = 0, 1, …`, read
//! one block of bucket `d` from disk `(d + j) mod D` (a bijection in `d`,
//! hence a legal stripe) and write the fetched blocks back one-bucket-per-
//! disk: the block of bucket `d` goes to disk `d`'s staging area at the
//! deterministic track given by the block's in-bucket rank (prefix of its
//! group + `gseq`). If a bucket has no remaining block on the designated
//! disk, its slot idles that round — this is exactly the imbalance that
//! Lemma 2 bounds with high probability, and it is visible in the measured
//! operation counts.
//!
//! **Step 2** (scatter to final format): in rounds `j`, read the `j`-th
//! staged block from every disk `d` in parallel and write it to disk
//! `(d + j) mod D`, track `msg_base + d·T + ⌊j/D⌋` — the paper's rotation,
//! which simultaneously (a) never collides within a round and (b) leaves
//! every group's blocks consecutive and striped round-robin (standard
//! consecutive format, Figure 2).

use crate::msg::{GroupCounts, MsgGeometry, ScratchState};
use crate::{EmError, EmResult};
use em_disk::{DiskArray, TrackAllocator};

/// Observability record of one routing invocation (drives the Figure 2
/// trace experiment and the ablation benches).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutingTrace {
    /// Rounds used by Step 1 (`≥ ⌈R_max⌉` where `R_max` is the largest
    /// bucket-per-disk pile; equals `total/D` under perfect balance).
    pub step1_rounds: usize,
    /// Rounds used by Step 2 (max staged blocks per disk).
    pub step2_rounds: usize,
    /// Blocks moved (each is read+written twice across the two steps).
    pub blocks: usize,
    /// Read slots that idled in Step 1 because the designated disk had no
    /// block of the bucket left — the measurable imbalance cost.
    pub idle_slots: usize,
    /// Empirical Lemma 2 balance factor of the scratch distribution
    /// (worst bucket-on-disk load over its even share `R/D`).
    pub balance_factor: f64,
}

/// Run Algorithm 2, consuming the superstep's scratch state and returning
/// the [`GroupCounts`] that the next superstep's Fetching Phase will use.
pub fn simulate_routing(
    disks: &mut DiskArray,
    alloc: &mut TrackAllocator,
    geom: &MsgGeometry,
    scratch: ScratchState,
) -> EmResult<(GroupCounts, RoutingTrace)> {
    let d = geom.num_disks;
    let nb = geom.num_buckets;
    let balance_factor = scratch.balance_factor();
    let counts = GroupCounts::compute(geom, scratch.counts.clone())?;
    let total = counts.total();
    let mut trace = RoutingTrace { balance_factor, blocks: total, ..Default::default() };
    if total == 0 {
        return Ok((counts, trace));
    }

    // ---- Step 1: gather bucket d onto disk d, rank-ordered. ----
    // Per-bucket, per-disk cursors into the scratch reference lists.
    let mut cursors = vec![vec![0usize; d]; nb];
    let mut remaining = total;
    let mut j = 0usize;
    let mut stalls = 0usize;
    while remaining > 0 {
        let mut reads: Vec<(usize, usize)> = Vec::with_capacity(nb);
        let mut meta: Vec<(usize, usize)> = Vec::with_capacity(nb); // (bucket, stage_rank)
        for (bucket, bucket_cursors) in cursors.iter_mut().enumerate() {
            let src_disk = (bucket + j) % d;
            let cur = bucket_cursors[src_disk];
            if let Some(r) = scratch.refs[bucket][src_disk].get(cur) {
                bucket_cursors[src_disk] += 1;
                reads.push((src_disk, r.track));
                let rank = counts.prefix_in_bucket[r.group as usize] + r.gseq as usize;
                meta.push((bucket, rank));
            } else {
                trace.idle_slots += 1;
            }
        }
        j += 1;
        if reads.is_empty() {
            stalls += 1;
            // Every bucket's remaining blocks get a chance within D rounds;
            // D consecutive empty rounds with blocks remaining is a bug.
            if stalls > d {
                return Err(EmError::InvalidConfig(
                    "routing step 1 made no progress for D consecutive rounds".into(),
                ));
            }
            continue;
        }
        stalls = 0;
        trace.step1_rounds += 1;
        let blocks = disks.read_stripe(&reads)?;
        let writes: Vec<_> = meta
            .iter()
            .zip(blocks)
            .map(|(&(bucket, rank), block)| {
                let (disk, track) = geom.stage_location(bucket, rank);
                (disk, track, block)
            })
            .collect();
        disks.write_stripe(&writes)?;
        remaining -= writes.len();
    }

    // Scratch tracks are free again.
    for (bucket, per_disk) in scratch.refs.iter().enumerate() {
        let _ = bucket;
        for (disk, refs) in per_disk.iter().enumerate() {
            for r in refs {
                alloc.free_track(disk, r.track);
            }
        }
    }

    // ---- Step 2: rotate staged blocks into the final striped regions. ----
    let staged: Vec<usize> = (0..nb).map(|b| counts.bucket_total(geom, b)).collect();
    let rounds = staged.iter().copied().max().unwrap_or(0);
    for j in 0..rounds {
        let mut reads: Vec<(usize, usize)> = Vec::with_capacity(nb);
        let mut meta: Vec<usize> = Vec::with_capacity(nb); // bucket
        for (bucket, &bucket_staged) in staged.iter().enumerate() {
            if j < bucket_staged {
                let (disk, track) = geom.stage_location(bucket, j);
                reads.push((disk, track));
                meta.push(bucket);
            }
        }
        if reads.is_empty() {
            continue;
        }
        trace.step2_rounds += 1;
        let blocks = disks.read_stripe(&reads)?;
        let writes: Vec<_> = meta
            .iter()
            .zip(blocks)
            .map(|(&bucket, block)| {
                let (disk, track) = geom.final_location(bucket, j);
                (disk, track, block)
            })
            .collect();
        disks.write_stripe(&writes)?;
    }

    Ok((counts, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{fetch_group_messages, scatter_messages, OutMsg, Placement};
    use em_disk::DiskConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(
        v: usize,
        k: usize,
        gamma: usize,
        d: usize,
        b: usize,
    ) -> (DiskArray, TrackAllocator, MsgGeometry) {
        let mut alloc = TrackAllocator::new(d);
        let geom = MsgGeometry::allocate(&mut alloc, v, k, gamma, d, b).unwrap();
        let disks = DiskArray::new_memory(DiskConfig::new(d, b).unwrap());
        (disks, alloc, geom)
    }

    /// End-to-end: scatter from several source groups, route, fetch every
    /// group, and verify the multiset of messages survives exactly.
    #[test]
    fn scatter_route_fetch_round_trip() {
        let (mut disks, mut alloc, geom) = setup(16, 2, 2000, 4, 64);
        let mut scratch = ScratchState::new(&geom);
        let mut rng = StdRng::seed_from_u64(42);

        let mut sent: Vec<(u32, u32, u32, Vec<u8>)> = Vec::new();
        for src_group in 0..geom.num_groups {
            let mut msgs = Vec::new();
            for t in 0..10u32 {
                let src = (src_group * geom.k) as u32 + (t % geom.k as u32);
                let dst = ((src as usize * 7 + t as usize * 3) % geom.v) as u32;
                let payload = vec![(src_group * 16 + t as usize) as u8; (t as usize % 37) + 1];
                sent.push((dst, src, t, payload.clone()));
                msgs.push(OutMsg { dst, src, seq: t, payload });
            }
            scatter_messages(
                &mut disks,
                &mut alloc,
                &geom,
                &mut scratch,
                src_group,
                msgs,
                &mut rng,
                Placement::Random,
            )
            .unwrap();
        }

        let (counts, trace) = simulate_routing(&mut disks, &mut alloc, &geom, scratch).unwrap();
        assert!(trace.blocks > 0);
        assert!(trace.step1_rounds >= trace.blocks.div_ceil(geom.num_disks));

        let mut got: Vec<(u32, u32, u32, Vec<u8>)> = Vec::new();
        for g in 0..geom.num_groups {
            for m in fetch_group_messages(&mut disks, &geom, &counts, g).unwrap() {
                assert_eq!(geom.group_of(m.dst as usize), g);
                got.push((m.dst, m.src, m.seq, m.payload));
            }
        }
        sent.sort();
        got.sort();
        assert_eq!(sent, got);
    }

    #[test]
    fn empty_superstep_routes_trivially() {
        let (mut disks, mut alloc, geom) = setup(8, 2, 100, 2, 64);
        let scratch = ScratchState::new(&geom);
        let (counts, trace) = simulate_routing(&mut disks, &mut alloc, &geom, scratch).unwrap();
        assert_eq!(counts.total(), 0);
        assert_eq!(trace.step1_rounds, 0);
        assert_eq!(disks.stats().parallel_ops, 0);
    }

    #[test]
    fn deterministic_placement_round_trip() {
        let (mut disks, mut alloc, geom) = setup(8, 2, 1000, 4, 64);
        let mut scratch = ScratchState::new(&geom);
        let mut rng = StdRng::seed_from_u64(1);
        let msgs: Vec<OutMsg> = (0..20)
            .map(|i| OutMsg {
                dst: (i % 8) as u32,
                src: 0,
                seq: i as u32,
                payload: vec![i as u8; 25],
            })
            .collect();
        scatter_messages(
            &mut disks,
            &mut alloc,
            &geom,
            &mut scratch,
            0,
            msgs,
            &mut rng,
            Placement::RoundRobin,
        )
        .unwrap();
        let (counts, _) = simulate_routing(&mut disks, &mut alloc, &geom, scratch).unwrap();
        let total: usize = (0..geom.num_groups)
            .map(|g| fetch_group_messages(&mut disks, &geom, &counts, g).unwrap().len())
            .sum();
        assert_eq!(total, 20);
    }

    /// Routing must leave every group's final blocks in standard
    /// consecutive format (Definition 2) within the message area.
    #[test]
    fn final_layout_is_consecutive_per_bucket() {
        let (_, _, geom) = setup(16, 2, 500, 4, 64);
        let counts = GroupCounts::compute(&geom, vec![3, 2, 4, 1, 0, 5, 2, 3]).unwrap();
        for bucket in 0..geom.num_buckets {
            let total = counts.bucket_total(&geom, bucket);
            let locs: Vec<(usize, usize)> =
                (0..total).map(|r| geom.final_location(bucket, r)).collect();
            em_disk::check_consecutive_format(&locs, geom.num_disks)
                .expect("bucket blocks must satisfy Definition 2");
        }
    }

    /// Scratch tracks are recycled after routing: repeated supersteps do
    /// not grow the disk.
    #[test]
    fn scratch_space_is_reused_across_supersteps() {
        let (mut disks, mut alloc, geom) = setup(8, 2, 1000, 4, 64);
        let mut rng = StdRng::seed_from_u64(3);
        let mut frontier_after_first = 0;
        for round in 0..5 {
            let mut scratch = ScratchState::new(&geom);
            let msgs: Vec<OutMsg> = (0..16)
                .map(|i| OutMsg {
                    dst: (i % 8) as u32,
                    src: 0,
                    seq: i as u32,
                    payload: vec![0u8; 30],
                })
                .collect();
            scatter_messages(
                &mut disks,
                &mut alloc,
                &geom,
                &mut scratch,
                0,
                msgs,
                &mut rng,
                Placement::Random,
            )
            .unwrap();
            simulate_routing(&mut disks, &mut alloc, &geom, scratch).unwrap();
            if round == 0 {
                frontier_after_first = alloc.max_frontier();
            }
        }
        // Frontier may wobble by a few tracks due to random placement, but
        // must not grow linearly with rounds.
        assert!(
            alloc.max_frontier() <= frontier_after_first + geom.num_disks * 4,
            "scratch area grew: {} -> {}",
            frontier_after_first,
            alloc.max_frontier()
        );
    }
}
