//! Durable checkpoint/restart support for the EM simulators.
//!
//! Both [`SeqEmSimulator`](crate::SeqEmSimulator) and
//! [`ParEmSimulator`](crate::ParEmSimulator) can persist a *manifest* at
//! every barrier sync describing exactly the state needed to resume the
//! run after a process crash: the next superstep to execute, the track
//! allocator frontier, the group counts of the last completed superstep,
//! the committed [`IoStats`], the communication ledger and the fault
//! injection schedule position. Manifests are written through
//! [`em_disk::CheckpointStore`] (write-new → fsync → rename), so a crash
//! mid-commit leaves the previous committed manifest intact and a CRC
//! check rejects torn files.
//!
//! Superstep writes that land *after* the last committed barrier are made
//! undoable by the durable pre-image journal
//! ([`em_disk::JournalFile`]): resume first rolls the drive files back to
//! the committed barrier, then deterministically replays from there.
//!
//! Crashes themselves are simulated in-process via [`KillPoint`] so the
//! whole kill-and-resume cycle is testable deterministically.

use em_disk::IoStats;

use em_bsp::SuperstepComm;

use crate::error::EmError;
use crate::report::PhaseIo;

/// A simulated crash point for chaos testing.
///
/// A simulator configured with a kill point runs normally until the
/// named superstep, then returns [`EmError::Killed`] leaving the on-disk
/// state exactly as a real crash at that moment would: drive files,
/// checkpoint manifests and the pre-image journal are whatever had been
/// made durable so far. A subsequent `resume` call must reproduce the
/// uninterrupted run bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Crash immediately *after* the barrier commit of superstep `b`
    /// completed in full (manifest committed, journal cleared). Resume
    /// replays from superstep `b + 1`.
    AtBarrier(usize),
    /// Crash *during* the manifest write of superstep `b`'s barrier:
    /// superstep writes are on disk and the journal is intact, but the
    /// new manifest is torn. Resume must detect the torn manifest, fall
    /// back to the previous committed one and undo superstep `b` via the
    /// journal. On the parallel simulator only worker 0 tears its
    /// manifest; the other workers commit in full, exercising the
    /// one-superstep commit skew the recovery protocol tolerates.
    MidManifest(usize),
    /// Crash after superstep `b`'s data writes were synced but before
    /// any barrier commit began: no new manifest, journal intact.
    /// Resume undoes superstep `b` and replays it.
    MidSuperstep(usize),
}

impl KillPoint {
    /// The superstep this kill point interrupts.
    pub fn step(self) -> usize {
        match self {
            KillPoint::AtBarrier(s) | KillPoint::MidManifest(s) | KillPoint::MidSuperstep(s) => s,
        }
    }
}

/// Derive the RNG seed for one superstep attempt of one worker.
///
/// Checkpoint durability forbids snapshotting RNG state: a resumed
/// process must reconstruct exactly the stream the uninterrupted run
/// used, starting *mid-run*. Instead every superstep attempt reseeds
/// from `(seed, worker, step)` through a splitmix64-style finalizer, so
/// replay after a rollback — in-process or across a crash — is trivially
/// deterministic and manifests only need to store the base seed.
pub(crate) fn superstep_seed(seed: u64, worker: u64, step: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(worker.wrapping_add(1)))
        .wrapping_add(0x6A09_E667_F3BC_C909u64.wrapping_mul(step.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Everything one worker needs to resume from a committed barrier.
///
/// Serialized as the payload of a CRC-framed manifest
/// ([`em_disk::CheckpointStore::commit_manifest`]). The first block of
/// fields is a *shape guard*: resume refuses to continue a run whose
/// program geometry, machine shape, seed or worker identity differ from
/// the checkpointed run, because replay determinism would be silently
/// lost.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Manifest {
    /// Number of virtual processors.
    pub v: u64,
    /// Contexts per group (sequential) or per batch slot (parallel).
    pub k: u64,
    /// Number of groups / batches.
    pub num_groups: u64,
    /// Declared μ (max context bytes).
    pub mu: u64,
    /// Declared γ envelope (max comm bytes).
    pub gamma: u64,
    /// Base RNG seed of the run.
    pub seed: u64,
    /// Drives per (simulated) processor.
    pub num_disks: u32,
    /// Logical block size in bytes.
    pub block_bytes: u64,
    /// Simulated processor count (1 for the sequential simulator).
    pub p: u32,
    /// Which worker wrote this manifest.
    pub worker: u32,
    /// The next superstep to execute on resume.
    pub next_step: u64,
    /// Whether the program had already terminated at this barrier.
    pub finished: bool,
    /// `GroupCounts::counts` of the last completed superstep.
    pub counts: Vec<u64>,
    /// `GroupCounts::prefix_in_bucket` of the last completed superstep.
    pub prefix: Vec<u64>,
    /// Track allocator frontier per drive.
    pub alloc_next: Vec<u64>,
    /// Track allocator free lists per drive.
    pub alloc_free: Vec<Vec<u64>>,
    /// Per-drive fault-injection operation counters, when a fault plan
    /// is attached.
    pub fault_ops: Option<Vec<u64>>,
    /// Committed per-phase parallel I/O counters.
    pub phases: PhaseIo,
    /// Committed I/O statistics up to and including this barrier.
    pub io: IoStats,
    /// Routing balance factors of the completed supersteps.
    pub balances: Vec<f64>,
    /// Communication ledger (worker 0 only on the parallel simulator).
    pub ledger: Vec<SuperstepComm>,
    /// Real exchanged bytes so far (parallel simulator, worker 0).
    pub real_comm: u64,
    /// Supersteps recovered by in-process replay so far.
    pub recovered: u64,
    /// Total in-process replays so far.
    pub replays: u64,
}

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64s(out: &mut Vec<u8>, xs: &[u64]) {
    put_u64(out, xs.len() as u64);
    for &x in xs {
        put_u64(out, x);
    }
}

/// A bounds-checked little-endian reader over a manifest payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn truncated() -> EmError {
        EmError::InvalidConfig("checkpoint payload truncated".into())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], EmError> {
        let end = self.pos.checked_add(n).ok_or_else(Self::truncated)?;
        if end > self.buf.len() {
            return Err(Self::truncated());
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, EmError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, EmError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u64s(&mut self) -> Result<Vec<u64>, EmError> {
        let n = self.u64()? as usize;
        if n > self.buf.len() / 8 + 1 {
            return Err(Self::truncated());
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    fn done(&self) -> Result<(), EmError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(EmError::InvalidConfig("checkpoint payload has trailing bytes".into()))
        }
    }
}

impl Manifest {
    /// Serialize to the little-endian payload stored inside the
    /// CRC-framed manifest file.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        put_u64(&mut out, self.v);
        put_u64(&mut out, self.k);
        put_u64(&mut out, self.num_groups);
        put_u64(&mut out, self.mu);
        put_u64(&mut out, self.gamma);
        put_u64(&mut out, self.seed);
        put_u32(&mut out, self.num_disks);
        put_u64(&mut out, self.block_bytes);
        put_u32(&mut out, self.p);
        put_u32(&mut out, self.worker);
        put_u64(&mut out, self.next_step);
        out.push(self.finished as u8);
        put_u64s(&mut out, &self.counts);
        put_u64s(&mut out, &self.prefix);
        put_u64s(&mut out, &self.alloc_next);
        put_u64(&mut out, self.alloc_free.len() as u64);
        for free in &self.alloc_free {
            put_u64s(&mut out, free);
        }
        match &self.fault_ops {
            None => out.push(0),
            Some(ops) => {
                out.push(1);
                put_u64s(&mut out, ops);
            }
        }
        put_u64(&mut out, self.phases.fetch_ctx);
        put_u64(&mut out, self.phases.fetch_msg);
        put_u64(&mut out, self.phases.scatter);
        put_u64(&mut out, self.phases.write_ctx);
        put_u64(&mut out, self.phases.routing);
        put_u64(&mut out, self.io.parallel_ops);
        put_u64(&mut out, self.io.blocks_read);
        put_u64(&mut out, self.io.blocks_written);
        put_u64(&mut out, self.io.bytes_read);
        put_u64(&mut out, self.io.bytes_written);
        put_u64s(&mut out, &self.io.per_disk_reads);
        put_u64s(&mut out, &self.io.per_disk_writes);
        put_u64(&mut out, self.io.retried_blocks);
        put_u64(&mut out, self.io.recovery_ops);
        put_u64(&mut out, self.io.cache_hit_blocks);
        put_u64(&mut out, self.io.cache_absorbed_writes);
        put_u64(&mut out, self.balances.len() as u64);
        for &b in &self.balances {
            put_u64(&mut out, b.to_bits());
        }
        put_u64(&mut out, self.ledger.len() as u64);
        for s in &self.ledger {
            put_u64(&mut out, s.msgs);
            put_u64(&mut out, s.bytes);
            put_u64(&mut out, s.h_bytes);
            put_u64(&mut out, s.h_msgs);
            put_u64(&mut out, s.h_packets);
            put_u64(&mut out, s.w_comp);
        }
        put_u64(&mut out, self.real_comm);
        put_u64(&mut out, self.recovered);
        put_u64(&mut out, self.replays);
        out
    }

    /// Decode a manifest payload, rejecting truncated or over-long
    /// buffers with [`EmError::InvalidConfig`].
    pub fn decode(buf: &[u8]) -> Result<Manifest, EmError> {
        let mut c = Cursor::new(buf);
        let v = c.u64()?;
        let k = c.u64()?;
        let num_groups = c.u64()?;
        let mu = c.u64()?;
        let gamma = c.u64()?;
        let seed = c.u64()?;
        let num_disks = c.u32()?;
        let block_bytes = c.u64()?;
        let p = c.u32()?;
        let worker = c.u32()?;
        let next_step = c.u64()?;
        let finished = c.take(1)?[0] != 0;
        let counts = c.u64s()?;
        let prefix = c.u64s()?;
        let alloc_next = c.u64s()?;
        let free_len = c.u64()? as usize;
        if free_len > buf.len() {
            return Err(Cursor::truncated());
        }
        let mut alloc_free = Vec::with_capacity(free_len);
        for _ in 0..free_len {
            alloc_free.push(c.u64s()?);
        }
        let fault_ops = match c.take(1)?[0] {
            0 => None,
            _ => Some(c.u64s()?),
        };
        let phases = PhaseIo {
            fetch_ctx: c.u64()?,
            fetch_msg: c.u64()?,
            scatter: c.u64()?,
            write_ctx: c.u64()?,
            routing: c.u64()?,
        };
        let mut io = IoStats::new(num_disks as usize);
        io.parallel_ops = c.u64()?;
        io.blocks_read = c.u64()?;
        io.blocks_written = c.u64()?;
        io.bytes_read = c.u64()?;
        io.bytes_written = c.u64()?;
        io.per_disk_reads = c.u64s()?;
        io.per_disk_writes = c.u64s()?;
        io.retried_blocks = c.u64()?;
        io.recovery_ops = c.u64()?;
        io.cache_hit_blocks = c.u64()?;
        io.cache_absorbed_writes = c.u64()?;
        let n_bal = c.u64()? as usize;
        if n_bal > buf.len() {
            return Err(Cursor::truncated());
        }
        let mut balances = Vec::with_capacity(n_bal);
        for _ in 0..n_bal {
            balances.push(f64::from_bits(c.u64()?));
        }
        let n_steps = c.u64()? as usize;
        if n_steps > buf.len() {
            return Err(Cursor::truncated());
        }
        let mut ledger = Vec::with_capacity(n_steps);
        for _ in 0..n_steps {
            ledger.push(SuperstepComm {
                msgs: c.u64()?,
                bytes: c.u64()?,
                h_bytes: c.u64()?,
                h_msgs: c.u64()?,
                h_packets: c.u64()?,
                w_comp: c.u64()?,
            });
        }
        let real_comm = c.u64()?;
        let recovered = c.u64()?;
        let replays = c.u64()?;
        c.done()?;
        Ok(Manifest {
            v,
            k,
            num_groups,
            mu,
            gamma,
            seed,
            num_disks,
            block_bytes,
            p,
            worker,
            next_step,
            finished,
            counts,
            prefix,
            alloc_next,
            alloc_free,
            fault_ops,
            phases,
            io,
            balances,
            ledger,
            real_comm,
            recovered,
            replays,
        })
    }

    /// Validate the shape-guard fields against the resuming run's
    /// configuration, returning a descriptive error on any mismatch.
    #[allow(clippy::too_many_arguments)]
    pub fn check_shape(
        &self,
        mu: u64,
        gamma: u64,
        seed: u64,
        num_disks: u32,
        block_bytes: u64,
        p: u32,
        worker: u32,
    ) -> Result<(), EmError> {
        let mismatch = |what: &str| {
            Err(EmError::InvalidConfig(format!(
                "checkpoint resume shape mismatch: {what} differs from the checkpointed run"
            )))
        };
        if self.mu != mu {
            return mismatch("max_state_bytes (mu)");
        }
        if self.gamma != gamma {
            return mismatch("max_comm_bytes (gamma)");
        }
        if self.seed != seed {
            return mismatch("seed");
        }
        if self.num_disks != num_disks {
            return mismatch("num_disks");
        }
        if self.block_bytes != block_bytes {
            return mismatch("block_bytes");
        }
        if self.p != p {
            return mismatch("processor count");
        }
        if self.worker != worker {
            return mismatch("worker index");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            v: 16,
            k: 4,
            num_groups: 4,
            mu: 128,
            gamma: 512,
            seed: 0xD15C_5EED,
            num_disks: 4,
            block_bytes: 256,
            p: 1,
            worker: 0,
            next_step: 3,
            finished: false,
            counts: vec![4, 4, 4, 4],
            prefix: vec![0, 1, 2, 3],
            alloc_next: vec![7, 7, 6, 6],
            alloc_free: vec![vec![], vec![2], vec![], vec![1, 3]],
            fault_ops: Some(vec![10, 11, 12, 13]),
            phases: PhaseIo { fetch_ctx: 8, fetch_msg: 4, scatter: 2, write_ctx: 8, routing: 3 },
            io: {
                let mut io = IoStats::new(4);
                io.parallel_ops = 25;
                io.blocks_read = 80;
                io.blocks_written = 60;
                io.bytes_read = 80 * 256;
                io.bytes_written = 60 * 256;
                io.per_disk_reads = vec![20, 20, 20, 20];
                io.per_disk_writes = vec![15, 15, 15, 15];
                io.retried_blocks = 1;
                io.recovery_ops = 5;
                io.cache_hit_blocks = 0;
                io.cache_absorbed_writes = 0;
                io
            },
            balances: vec![1.0, 1.25, 0.75],
            ledger: vec![SuperstepComm {
                msgs: 12,
                bytes: 480,
                h_bytes: 160,
                h_msgs: 4,
                h_packets: 4,
                w_comp: 99,
            }],
            real_comm: 480,
            recovered: 1,
            replays: 2,
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample();
        let bytes = m.encode();
        let back = Manifest::decode(&bytes).expect("decode");
        assert_eq!(back, m);
    }

    #[test]
    fn none_fault_ops_round_trips() {
        let mut m = sample();
        m.fault_ops = None;
        m.finished = true;
        m.ledger.clear();
        let back = Manifest::decode(&m.encode()).expect("decode");
        assert_eq!(back, m);
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let bytes = sample().encode();
        for cut in [0, 1, 8, 17, bytes.len() / 2, bytes.len() - 1] {
            assert!(Manifest::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(Manifest::decode(&bytes).is_err());
    }

    #[test]
    fn shape_guard_rejects_mismatches() {
        let m = sample();
        assert!(m.check_shape(128, 512, 0xD15C_5EED, 4, 256, 1, 0).is_ok());
        assert!(m.check_shape(129, 512, 0xD15C_5EED, 4, 256, 1, 0).is_err());
        assert!(m.check_shape(128, 513, 0xD15C_5EED, 4, 256, 1, 0).is_err());
        assert!(m.check_shape(128, 512, 1, 4, 256, 1, 0).is_err());
        assert!(m.check_shape(128, 512, 0xD15C_5EED, 5, 256, 1, 0).is_err());
        assert!(m.check_shape(128, 512, 0xD15C_5EED, 4, 512, 1, 0).is_err());
        assert!(m.check_shape(128, 512, 0xD15C_5EED, 4, 256, 2, 0).is_err());
        assert!(m.check_shape(128, 512, 0xD15C_5EED, 4, 256, 1, 1).is_err());
    }

    #[test]
    fn superstep_seeds_are_distinct_across_workers_and_steps() {
        let mut seen = std::collections::HashSet::new();
        for worker in 0..8u64 {
            for step in 0..64u64 {
                assert!(seen.insert(superstep_seed(42, worker, step)));
            }
        }
        // And deterministic.
        assert_eq!(superstep_seed(42, 3, 7), superstep_seed(42, 3, 7));
        assert_ne!(superstep_seed(42, 0, 0), superstep_seed(43, 0, 0));
    }

    #[test]
    fn kill_point_reports_its_step() {
        assert_eq!(KillPoint::AtBarrier(3).step(), 3);
        assert_eq!(KillPoint::MidManifest(2).step(), 2);
        assert_eq!(KillPoint::MidSuperstep(0).step(), 0);
    }
}
