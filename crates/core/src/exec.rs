//! [`Executor`] implementations for the external-memory simulators, so CGM
//! algorithm pipelines run unchanged on them — plus a recording wrapper
//! that accumulates the per-stage [`CostReport`]s for the benchmark
//! harness.

use crate::{CostReport, ParEmSimulator, SeqEmSimulator};
use em_bsp::{BspProgram, ExecError, Executor, RunResult};
use parking_lot::Mutex;

impl Executor for SeqEmSimulator {
    fn execute<P: BspProgram>(
        &self,
        prog: &P,
        states: Vec<P::State>,
    ) -> Result<RunResult<P::State>, ExecError> {
        self.run(prog, states).map(|(res, _report)| res).map_err(|e| Box::new(e) as ExecError)
    }
}

impl Executor for ParEmSimulator {
    fn execute<P: BspProgram>(
        &self,
        prog: &P,
        states: Vec<P::State>,
    ) -> Result<RunResult<P::State>, ExecError> {
        self.run(prog, states).map(|(res, _report)| res).map_err(|e| Box::new(e) as ExecError)
    }
}

/// Wraps a simulator and keeps every stage's [`CostReport`] so a pipeline
/// of BSP programs (e.g. sort → sweep → gather) can be costed end to end.
pub struct Recording<S> {
    /// The wrapped simulator.
    pub sim: S,
    /// One report per executed program, in execution order.
    pub reports: Mutex<Vec<CostReport>>,
}

impl<S> Recording<S> {
    /// Wrap a simulator.
    pub fn new(sim: S) -> Self {
        Recording { sim, reports: Mutex::new(Vec::new()) }
    }

    /// Total parallel I/O operations across all recorded stages.
    pub fn total_io_ops(&self) -> u64 {
        self.reports.lock().iter().map(|r| r.io.parallel_ops).sum()
    }

    /// Total charged I/O time across all recorded stages.
    pub fn total_io_time(&self) -> u64 {
        self.reports.lock().iter().map(|r| r.io_time).sum()
    }

    /// Total λ across all recorded stages.
    pub fn total_lambda(&self) -> usize {
        self.reports.lock().iter().map(|r| r.lambda).sum()
    }

    /// Drain the recorded reports.
    pub fn take_reports(&self) -> Vec<CostReport> {
        std::mem::take(&mut *self.reports.lock())
    }
}

impl Executor for Recording<SeqEmSimulator> {
    fn execute<P: BspProgram>(
        &self,
        prog: &P,
        states: Vec<P::State>,
    ) -> Result<RunResult<P::State>, ExecError> {
        let (res, report) = self.sim.run(prog, states).map_err(|e| Box::new(e) as ExecError)?;
        self.reports.lock().push(report);
        Ok(res)
    }
}

impl Executor for Recording<ParEmSimulator> {
    fn execute<P: BspProgram>(
        &self,
        prog: &P,
        states: Vec<P::State>,
    ) -> Result<RunResult<P::State>, ExecError> {
        let (res, report) = self.sim.run(prog, states).map_err(|e| Box::new(e) as ExecError)?;
        self.reports.lock().push(report);
        Ok(res)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EmMachine;
    use em_bsp::{Mailbox, SeqExecutor, Step};

    struct Double;
    impl BspProgram for Double {
        type State = u64;
        type Msg = u64;
        fn superstep(&self, _: usize, _: &mut Mailbox<u64>, state: &mut u64) -> Step {
            *state *= 2;
            Step::Halt
        }
        fn max_state_bytes(&self) -> usize {
            8
        }
    }

    #[test]
    fn em_executor_agrees_with_reference_and_records() {
        let init: Vec<u64> = (0..8).collect();
        let reference = SeqExecutor.execute(&Double, init.clone()).unwrap();
        let rec = Recording::new(SeqEmSimulator::new(EmMachine::uniprocessor(1 << 16, 2, 64, 1)));
        let a = rec.execute(&Double, init).unwrap();
        let b = rec.execute(&Double, a.states.clone()).unwrap();
        assert_eq!(a.states, reference.states);
        assert_eq!(b.states[7], 28);
        assert_eq!(rec.reports.lock().len(), 2);
        assert!(rec.total_io_ops() > 0);
        assert_eq!(rec.total_lambda(), 2);
    }
}
