//! Persisted virtual-processor contexts in standard consecutive format —
//! the "Details of Steps 1(a) and 1(e)" of Algorithm 1.
//!
//! Each context `V_j` gets a fixed region of `⌈(4 + μ)/B⌉` blocks; block
//! `i` of `V_j` lives on disk `(i + j·(μ/B)) mod D`, track
//! `base + ⌊(i + j·(μ/B))/D⌋` — i.e. the regions are striped round-robin,
//! so the contexts of `k` consecutive virtual processors are read/written
//! with full `D`-way parallelism.
//!
//! On-disk encoding of one context: `u32` length prefix followed by the
//! serialized state, zero-padded to the region size.

use crate::{EmError, EmResult};
use em_disk::{
    Block, ConsecutiveLayout, DiskArray, ReadStripeTicket, TrackAllocator, WriteBacklog,
};

/// A free list of byte buffers recycled across group reads and writes.
///
/// The simulators keep one per run: [`PendingGroupRead::join_into`] draws
/// decoded-context buffers from it, and after a group's contexts are
/// written back (the [`Block`] copies are made at submission) the buffers
/// return via [`BufferPool::put_all`]. Steady state is therefore
/// allocation-free in the context path: a run touches at most one group's
/// worth of live buffers plus the pool. An empty pool is always valid —
/// `take` falls back to a fresh allocation.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Pop a cleared buffer, or allocate a fresh one when the pool is dry.
    pub fn take(&mut self) -> Vec<u8> {
        self.free.pop().unwrap_or_default()
    }

    /// Return a buffer to the pool (cleared, capacity kept).
    pub fn put(&mut self, mut buf: Vec<u8>) {
        buf.clear();
        self.free.push(buf);
    }

    /// Return a batch of buffers to the pool.
    pub fn put_all(&mut self, bufs: impl IntoIterator<Item = Vec<u8>>) {
        for buf in bufs {
            self.put(buf);
        }
    }

    /// Buffers currently pooled.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// True when no buffer is pooled.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }
}

/// The context area of one simulating processor.
#[derive(Debug, Clone)]
pub struct ContextStore {
    layout: ConsecutiveLayout,
    capacity_bytes: usize,
}

impl ContextStore {
    /// Reserve disk space for `v` contexts of at most `mu` serialized bytes
    /// each on an array of shape (`num_disks`, `block_bytes`).
    pub fn allocate(
        alloc: &mut TrackAllocator,
        num_disks: usize,
        block_bytes: usize,
        v: usize,
        mu: usize,
    ) -> EmResult<Self> {
        let capacity_bytes = 4 + mu; // u32 length prefix + payload
        let blocks_per_region = capacity_bytes.div_ceil(block_bytes);
        let layout = ConsecutiveLayout::new(0, blocks_per_region, v, num_disks)?;
        let base = alloc.reserve_region(layout.tracks_per_disk());
        let layout = ConsecutiveLayout { base_track: base, ..layout };
        Ok(ContextStore { layout, capacity_bytes: blocks_per_region * block_bytes })
    }

    /// Blocks per context region (`⌈(4+μ)/B⌉`).
    pub fn blocks_per_context(&self) -> usize {
        self.layout.blocks_per_region
    }

    /// Bytes a serialized context may occupy (excluding the length prefix).
    pub fn payload_capacity(&self) -> usize {
        self.capacity_bytes - 4
    }

    /// Tracks this store occupies per disk — the `O(vμ/DB)` of Lemma 1.
    pub fn tracks_per_disk(&self) -> usize {
        self.layout.tracks_per_disk()
    }

    /// Write the already-serialized contexts of virtual processors
    /// `first..first+bufs.len()` (Step 1(e)). Full `D`-way-parallel stripes.
    pub fn write_group(
        &self,
        disks: &mut DiskArray,
        first: usize,
        bufs: &[Vec<u8>],
    ) -> EmResult<()> {
        let mut backlog = WriteBacklog::new();
        self.submit_write_group(disks, first, bufs, &mut backlog)?;
        backlog.drain()?;
        Ok(())
    }

    /// Submit the stripes of [`Self::write_group`] without waiting for them.
    ///
    /// The tickets land in `backlog`; counted I/O is identical to the
    /// synchronous call because [`DiskArray`] counts at submission. The
    /// caller must [`WriteBacklog::drain`] before reading these regions
    /// back (the simulators drain before Algorithm 2's reorganization).
    pub fn submit_write_group(
        &self,
        disks: &mut DiskArray,
        first: usize,
        bufs: &[Vec<u8>],
        backlog: &mut WriteBacklog,
    ) -> EmResult<()> {
        let bb = disks.block_bytes();
        // Assemble the regions' raw bytes, then cut into blocks and write
        // them stripe by stripe in global-index order. One staging buffer
        // serves every context in the group.
        let mut writes: Vec<(usize, usize, Block)> =
            Vec::with_capacity(bufs.len() * self.layout.blocks_per_region);
        let mut region: Vec<u8> = Vec::with_capacity(self.capacity_bytes);
        for (off, buf) in bufs.iter().enumerate() {
            let pid = first + off;
            if 4 + buf.len() > self.capacity_bytes {
                return Err(EmError::ContextOverflow {
                    pid,
                    need: buf.len(),
                    capacity: self.payload_capacity(),
                });
            }
            region.clear();
            region.extend_from_slice(&(buf.len() as u32).to_le_bytes());
            region.extend_from_slice(buf);
            region.resize(self.capacity_bytes, 0);
            for (i, chunk) in region.chunks(bb).enumerate() {
                let (disk, track) = self.layout.location(pid, i);
                writes.push((disk, track, Block::from_bytes_padded(chunk, bb)));
            }
        }
        // Consecutive global indices stripe cleanly: every chunk of D
        // successive writes targets distinct disks.
        for chunk in writes.chunks(disks.num_disks()) {
            backlog.push(disks.submit_write_stripe(chunk)?);
        }
        Ok(())
    }

    /// Read back the serialized contexts of `count` virtual processors
    /// starting at `first` (Step 1(a)).
    pub fn read_group(
        &self,
        disks: &mut DiskArray,
        first: usize,
        count: usize,
    ) -> EmResult<Vec<Vec<u8>>> {
        self.submit_read_group(disks, first, count)?.join()
    }

    /// Submit the stripe reads of [`Self::read_group`] and return a handle;
    /// [`PendingGroupRead::join`] waits for the transfers and decodes the
    /// contexts. Counted I/O happens here, at submission, so prefetching a
    /// group early costs exactly what fetching it on demand costs.
    pub fn submit_read_group(
        &self,
        disks: &mut DiskArray,
        first: usize,
        count: usize,
    ) -> EmResult<PendingGroupRead> {
        let stripes = self.layout.stripes(first, count);
        let mut tickets = Vec::with_capacity(stripes.len());
        for stripe in &stripes {
            tickets.push(disks.submit_read_stripe(stripe)?);
        }
        Ok(PendingGroupRead { tickets, first, count, capacity_bytes: self.capacity_bytes })
    }
}

/// Contexts in flight from [`ContextStore::submit_read_group`].
pub struct PendingGroupRead {
    tickets: Vec<ReadStripeTicket>,
    first: usize,
    count: usize,
    capacity_bytes: usize,
}

impl PendingGroupRead {
    /// Wait for every submitted stripe (all are joined even on failure, so
    /// the earliest submission's error wins deterministically) and decode
    /// the length-prefixed contexts.
    pub fn join(self) -> EmResult<Vec<Vec<u8>>> {
        self.join_into(&mut BufferPool::new())
    }

    /// [`PendingGroupRead::join`], drawing the decoded-context buffers from
    /// `pool` instead of allocating. The simulators recycle each group's
    /// buffers back into the pool after writing the group, so the context
    /// path stops allocating once the pool is warm.
    pub fn join_into(self, pool: &mut BufferPool) -> EmResult<Vec<Vec<u8>>> {
        let payload_capacity = self.capacity_bytes - 4;
        let mut raw: Vec<u8> = pool.take();
        raw.reserve(self.count * self.capacity_bytes);
        let mut first_err: Option<EmError> = None;
        for ticket in self.tickets {
            match ticket.join() {
                Ok(blocks) => {
                    for block in &blocks {
                        raw.extend_from_slice(block.as_bytes());
                    }
                }
                Err(e) => {
                    first_err.get_or_insert(e.into());
                }
            }
        }
        if let Some(e) = first_err {
            pool.put(raw);
            return Err(e);
        }
        let mut out = Vec::with_capacity(self.count);
        for r in 0..self.count {
            let region = &raw[r * self.capacity_bytes..(r + 1) * self.capacity_bytes];
            let len = u32::from_le_bytes(region[..4].try_into().expect("4-byte prefix")) as usize;
            if len > payload_capacity {
                pool.put(raw);
                pool.put_all(out);
                return Err(EmError::ContextOverflow {
                    pid: self.first + r,
                    need: len,
                    capacity: payload_capacity,
                });
            }
            let mut ctx = pool.take();
            ctx.extend_from_slice(&region[4..4 + len]);
            out.push(ctx);
        }
        pool.put(raw);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_disk::DiskConfig;

    fn setup(v: usize, mu: usize, d: usize, b: usize) -> (DiskArray, ContextStore) {
        let mut alloc = TrackAllocator::new(d);
        let store = ContextStore::allocate(&mut alloc, d, b, v, mu).unwrap();
        let disks = DiskArray::new_memory(DiskConfig::new(d, b).unwrap());
        (disks, store)
    }

    #[test]
    fn round_trip_group() {
        let (mut disks, store) = setup(8, 60, 4, 32);
        let bufs: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 + 1; 10 + i]).collect();
        store.write_group(&mut disks, 2, &bufs).unwrap();
        let back = store.read_group(&mut disks, 2, 4).unwrap();
        assert_eq!(back, bufs);
    }

    #[test]
    fn io_ops_are_fully_parallel() {
        // 8 contexts x 2 blocks on 4 disks: writing all of them should be
        // 16/4 = 4 ops; reading the same.
        let (mut disks, store) = setup(8, 60, 4, 32);
        assert_eq!(store.blocks_per_context(), 2);
        let bufs: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 60]).collect();
        store.write_group(&mut disks, 0, &bufs).unwrap();
        assert_eq!(disks.stats().parallel_ops, 4);
        assert!((disks.stats().utilization() - 1.0).abs() < 1e-9);
        disks.reset_stats();
        store.read_group(&mut disks, 0, 8).unwrap();
        assert_eq!(disks.stats().parallel_ops, 4);
    }

    #[test]
    fn oversized_context_is_rejected() {
        let (mut disks, store) = setup(4, 60, 2, 32);
        let too_big = vec![vec![0u8; 61]];
        let err = store.write_group(&mut disks, 0, &too_big).unwrap_err();
        assert!(matches!(err, EmError::ContextOverflow { pid: 0, need: 61, .. }));
    }

    #[test]
    fn empty_context_round_trips() {
        let (mut disks, store) = setup(2, 16, 2, 32);
        store.write_group(&mut disks, 0, &[vec![], vec![7]]).unwrap();
        let back = store.read_group(&mut disks, 0, 2).unwrap();
        assert_eq!(back, vec![vec![], vec![7]]);
    }

    #[test]
    fn submitted_group_io_round_trips_and_counts_identically() {
        // Deferred writes + prefetch-style reads must move the same data and
        // count the same ops as the synchronous entry points.
        let (mut disks, store) = setup(8, 60, 4, 32);
        let bufs: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 60]).collect();
        store.write_group(&mut disks, 0, &bufs).unwrap();
        let sync_stats = disks.take_stats();

        let mut backlog = WriteBacklog::new();
        store.submit_write_group(&mut disks, 0, &bufs, &mut backlog).unwrap();
        // Overlap: both groups' reads submitted while writes are in flight
        // is illegal (read-after-write); drain first, as the simulators do.
        backlog.drain().unwrap();
        let a = store.submit_read_group(&mut disks, 0, 4).unwrap();
        let b = store.submit_read_group(&mut disks, 4, 4).unwrap();
        let mut back = a.join().unwrap();
        back.extend(b.join().unwrap());
        assert_eq!(back, bufs);
        let mut deferred_stats = disks.take_stats();
        // The deferred run also performed the reads; remove them to compare
        // the write halves, then compare the read half against a sync read.
        store.read_group(&mut disks, 0, 8).unwrap();
        let read_stats = disks.take_stats();
        deferred_stats.parallel_ops -= read_stats.parallel_ops;
        deferred_stats.blocks_read -= read_stats.blocks_read;
        deferred_stats.bytes_read -= read_stats.bytes_read;
        for (a, b) in deferred_stats.per_disk_reads.iter_mut().zip(&read_stats.per_disk_reads) {
            *a -= b;
        }
        assert_eq!(deferred_stats, sync_stats);
    }

    #[test]
    fn pooled_join_round_trips_and_recycles() {
        let (mut disks, store) = setup(8, 60, 4, 32);
        let bufs: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 + 1; 10 + i]).collect();
        store.write_group(&mut disks, 0, &bufs).unwrap();
        let mut pool = BufferPool::new();
        let back = store.submit_read_group(&mut disks, 0, 4).unwrap().join_into(&mut pool).unwrap();
        assert_eq!(back, bufs);
        pool.put_all(back);
        let warm = pool.len();
        assert!(warm >= 4, "contexts plus the raw staging buffer are pooled");
        let back2 =
            store.submit_read_group(&mut disks, 0, 4).unwrap().join_into(&mut pool).unwrap();
        assert_eq!(back2, bufs);
        assert!(pool.len() < warm, "the warm pool supplied the second read");
    }

    #[test]
    fn writes_do_not_clobber_neighbours() {
        let (mut disks, store) = setup(6, 20, 3, 16);
        let all: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; 20]).collect();
        store.write_group(&mut disks, 0, &all).unwrap();
        // Overwrite the middle two only.
        store.write_group(&mut disks, 2, &[vec![99; 5], vec![98; 5]]).unwrap();
        let back = store.read_group(&mut disks, 0, 6).unwrap();
        assert_eq!(back[0], vec![0u8; 20]);
        assert_eq!(back[2], vec![99u8; 5]);
        assert_eq!(back[3], vec![98u8; 5]);
        assert_eq!(back[5], vec![5u8; 20]);
    }
}
