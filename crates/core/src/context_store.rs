//! Persisted virtual-processor contexts in standard consecutive format —
//! the "Details of Steps 1(a) and 1(e)" of Algorithm 1.
//!
//! Each context `V_j` gets a fixed region of `⌈(4 + μ)/B⌉` blocks; block
//! `i` of `V_j` lives on disk `(i + j·(μ/B)) mod D`, track
//! `base + ⌊(i + j·(μ/B))/D⌋` — i.e. the regions are striped round-robin,
//! so the contexts of `k` consecutive virtual processors are read/written
//! with full `D`-way parallelism.
//!
//! On-disk encoding of one context: `u32` length prefix followed by the
//! serialized state, zero-padded to the region size.

use crate::{EmError, EmResult};
use em_disk::{Block, ConsecutiveLayout, DiskArray, TrackAllocator};

/// The context area of one simulating processor.
#[derive(Debug, Clone)]
pub struct ContextStore {
    layout: ConsecutiveLayout,
    capacity_bytes: usize,
}

impl ContextStore {
    /// Reserve disk space for `v` contexts of at most `mu` serialized bytes
    /// each on an array of shape (`num_disks`, `block_bytes`).
    pub fn allocate(
        alloc: &mut TrackAllocator,
        num_disks: usize,
        block_bytes: usize,
        v: usize,
        mu: usize,
    ) -> EmResult<Self> {
        let capacity_bytes = 4 + mu; // u32 length prefix + payload
        let blocks_per_region = capacity_bytes.div_ceil(block_bytes);
        let layout = ConsecutiveLayout::new(0, blocks_per_region, v, num_disks)?;
        let base = alloc.reserve_region(layout.tracks_per_disk());
        let layout = ConsecutiveLayout { base_track: base, ..layout };
        Ok(ContextStore { layout, capacity_bytes: blocks_per_region * block_bytes })
    }

    /// Blocks per context region (`⌈(4+μ)/B⌉`).
    pub fn blocks_per_context(&self) -> usize {
        self.layout.blocks_per_region
    }

    /// Bytes a serialized context may occupy (excluding the length prefix).
    pub fn payload_capacity(&self) -> usize {
        self.capacity_bytes - 4
    }

    /// Tracks this store occupies per disk — the `O(vμ/DB)` of Lemma 1.
    pub fn tracks_per_disk(&self) -> usize {
        self.layout.tracks_per_disk()
    }

    /// Write the already-serialized contexts of virtual processors
    /// `first..first+bufs.len()` (Step 1(e)). Full `D`-way-parallel stripes.
    pub fn write_group(
        &self,
        disks: &mut DiskArray,
        first: usize,
        bufs: &[Vec<u8>],
    ) -> EmResult<()> {
        let bb = disks.block_bytes();
        // Assemble the regions' raw bytes, then cut into blocks and write
        // them stripe by stripe in global-index order.
        let mut writes: Vec<(usize, usize, Block)> = Vec::new();
        for (off, buf) in bufs.iter().enumerate() {
            let pid = first + off;
            if 4 + buf.len() > self.capacity_bytes {
                return Err(EmError::ContextOverflow {
                    pid,
                    need: buf.len(),
                    capacity: self.payload_capacity(),
                });
            }
            let mut region = Vec::with_capacity(self.capacity_bytes);
            region.extend_from_slice(&(buf.len() as u32).to_le_bytes());
            region.extend_from_slice(buf);
            region.resize(self.capacity_bytes, 0);
            for (i, chunk) in region.chunks(bb).enumerate() {
                let (disk, track) = self.layout.location(pid, i);
                writes.push((disk, track, Block::from_bytes_padded(chunk, bb)));
            }
        }
        // Consecutive global indices stripe cleanly: every chunk of D
        // successive writes targets distinct disks.
        for chunk in writes.chunks(disks.num_disks()) {
            disks.write_stripe(chunk)?;
        }
        Ok(())
    }

    /// Read back the serialized contexts of `count` virtual processors
    /// starting at `first` (Step 1(a)).
    pub fn read_group(
        &self,
        disks: &mut DiskArray,
        first: usize,
        count: usize,
    ) -> EmResult<Vec<Vec<u8>>> {
        let stripes = self.layout.stripes(first, count);
        let mut raw: Vec<u8> = Vec::with_capacity(count * self.capacity_bytes);
        for stripe in &stripes {
            for block in disks.read_stripe(stripe)? {
                raw.extend_from_slice(block.as_bytes());
            }
        }
        let mut out = Vec::with_capacity(count);
        for r in 0..count {
            let region = &raw[r * self.capacity_bytes..(r + 1) * self.capacity_bytes];
            let len = u32::from_le_bytes(region[..4].try_into().expect("4-byte prefix")) as usize;
            if len > self.payload_capacity() {
                return Err(EmError::ContextOverflow {
                    pid: first + r,
                    need: len,
                    capacity: self.payload_capacity(),
                });
            }
            out.push(region[4..4 + len].to_vec());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_disk::DiskConfig;

    fn setup(v: usize, mu: usize, d: usize, b: usize) -> (DiskArray, ContextStore) {
        let mut alloc = TrackAllocator::new(d);
        let store = ContextStore::allocate(&mut alloc, d, b, v, mu).unwrap();
        let disks = DiskArray::new_memory(DiskConfig::new(d, b).unwrap());
        (disks, store)
    }

    #[test]
    fn round_trip_group() {
        let (mut disks, store) = setup(8, 60, 4, 32);
        let bufs: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 + 1; 10 + i]).collect();
        store.write_group(&mut disks, 2, &bufs).unwrap();
        let back = store.read_group(&mut disks, 2, 4).unwrap();
        assert_eq!(back, bufs);
    }

    #[test]
    fn io_ops_are_fully_parallel() {
        // 8 contexts x 2 blocks on 4 disks: writing all of them should be
        // 16/4 = 4 ops; reading the same.
        let (mut disks, store) = setup(8, 60, 4, 32);
        assert_eq!(store.blocks_per_context(), 2);
        let bufs: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 60]).collect();
        store.write_group(&mut disks, 0, &bufs).unwrap();
        assert_eq!(disks.stats().parallel_ops, 4);
        assert!((disks.stats().utilization() - 1.0).abs() < 1e-9);
        disks.reset_stats();
        store.read_group(&mut disks, 0, 8).unwrap();
        assert_eq!(disks.stats().parallel_ops, 4);
    }

    #[test]
    fn oversized_context_is_rejected() {
        let (mut disks, store) = setup(4, 60, 2, 32);
        let too_big = vec![vec![0u8; 61]];
        let err = store.write_group(&mut disks, 0, &too_big).unwrap_err();
        assert!(matches!(err, EmError::ContextOverflow { pid: 0, need: 61, .. }));
    }

    #[test]
    fn empty_context_round_trips() {
        let (mut disks, store) = setup(2, 16, 2, 32);
        store.write_group(&mut disks, 0, &[vec![], vec![7]]).unwrap();
        let back = store.read_group(&mut disks, 0, 2).unwrap();
        assert_eq!(back, vec![vec![], vec![7]]);
    }

    #[test]
    fn writes_do_not_clobber_neighbours() {
        let (mut disks, store) = setup(6, 20, 3, 16);
        let all: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; 20]).collect();
        store.write_group(&mut disks, 0, &all).unwrap();
        // Overwrite the middle two only.
        store.write_group(&mut disks, 2, &[vec![99; 5], vec![98; 5]]).unwrap();
        let back = store.read_group(&mut disks, 0, 6).unwrap();
        assert_eq!(back[0], vec![0u8; 20]);
        assert_eq!(back[2], vec![99u8; 5]);
        assert_eq!(back[3], vec![98u8; 5]);
        assert_eq!(back[5], vec![5u8; 20]);
    }
}
