//! The EM-BSP\* machine description (Section 3 of the paper) and the
//! side-condition checks of Theorem 1.

use crate::EmError;
use em_bsp::BspStarParams;
use em_disk::DiskConfig;

/// Parameters of the target external-memory machine: the BSP\* parameters
/// `(p, g, b, L)` extended with `(M, D, B, G)` per Section 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmMachine {
    /// `p` — number of real processors.
    pub p: usize,
    /// `M` — local memory of each real processor, in bytes.
    pub m_bytes: usize,
    /// `D` — number of disk drives per real processor.
    pub d: usize,
    /// `B` — transfer block (track) size in bytes.
    pub b_bytes: usize,
    /// `G` — time per parallel I/O operation (in computation units).
    pub g_io: u64,
    /// Router parameters `(g, b, L)` used to price communication.
    pub router: BspStarParams,
}

impl EmMachine {
    /// A single-processor machine with the given memory, disks and block
    /// size, and a default router (irrelevant for `p = 1`).
    pub fn uniprocessor(m_bytes: usize, d: usize, b_bytes: usize, g_io: u64) -> Self {
        EmMachine {
            p: 1,
            m_bytes,
            d,
            b_bytes,
            g_io,
            router: BspStarParams { p: 1, g: 1.0, b: b_bytes.max(1), l: 1.0 },
        }
    }

    /// Disk-array shape for one processor.
    pub fn disk_config(&self) -> Result<DiskConfig, EmError> {
        DiskConfig::new(self.d, self.b_bytes).map_err(EmError::from)
    }

    /// Validate the hard requirements of the model: `M ≥ D·B` ("a processor
    /// can store in its local memory at least one block from each local
    /// disk"), nonzero shape, and enough block room for the simulation's
    /// 20-byte block headers.
    pub fn validate(&self) -> Result<(), EmError> {
        if self.p == 0 {
            return Err(EmError::InvalidConfig("p must be >= 1".into()));
        }
        if self.d == 0 {
            return Err(EmError::InvalidConfig("D must be >= 1".into()));
        }
        if self.b_bytes < crate::msg::BLOCK_HEADER_BYTES + 4 {
            return Err(EmError::InvalidConfig(format!(
                "B = {} bytes is too small; need at least {} for block headers",
                self.b_bytes,
                crate::msg::BLOCK_HEADER_BYTES + 4
            )));
        }
        if self.m_bytes < self.d * self.b_bytes {
            return Err(EmError::InvalidConfig(format!(
                "model requires M >= D*B, but M = {} < {} * {}",
                self.m_bytes, self.d, self.b_bytes
            )));
        }
        Ok(())
    }

    /// `k = ⌊M/μ⌋` clamped to `[1, v]` — how many virtual processors are
    /// simulated per round. `μ_padded` is the context region size in bytes
    /// (μ plus the length prefix, rounded up to whole blocks).
    pub fn group_size(&self, mu_padded: usize, v: usize) -> Result<usize, EmError> {
        if mu_padded == 0 {
            return Err(EmError::InvalidConfig("μ must be positive".into()));
        }
        let k = self.m_bytes / mu_padded;
        if k == 0 {
            return Err(EmError::MemoryTooSmall { m_bytes: self.m_bytes, needed: mu_padded });
        }
        Ok(k.min(v).max(1))
    }

    /// `log2(M/B)` — the exponent that drives every high-probability bound
    /// in the paper.
    pub fn log_m_over_b(&self) -> f64 {
        ((self.m_bytes as f64) / (self.b_bytes as f64)).log2().max(1.0)
    }

    /// Check the soft side conditions of Theorem 1, returning advisory
    /// notes rather than failing: the simulation is still *correct* when
    /// they are violated, but the high-probability cost bounds may not
    /// hold.
    pub fn check_theorem_conditions(&self, v: usize, k: usize, mu: usize) -> Vec<ModelCheck> {
        let mut out = Vec::new();
        let logmb = self.log_m_over_b();

        let slack_needed = (k * self.p * self.d) as f64 * logmb;
        out.push(ModelCheck {
            condition: "v ≥ k·p·D·log(M/B)".into(),
            satisfied: (v as f64) >= slack_needed,
            detail: format!("v = {v}, k·p·D·log(M/B) = {slack_needed:.1}"),
        });

        out.push(ModelCheck {
            condition: "M = Θ(k·μ)".into(),
            satisfied: self.m_bytes >= k * mu,
            detail: format!("M = {}, k·μ = {}", self.m_bytes, k * mu),
        });

        let b_router = self.router.b;
        out.push(ModelCheck {
            condition: "b ≥ B (router packet at least one disk block)".into(),
            satisfied: b_router >= self.b_bytes,
            detail: format!("b = {b_router}, B = {}", self.b_bytes),
        });

        out.push(ModelCheck {
            condition: "b·log(M/B) = O(M)".into(),
            satisfied: (b_router as f64) * logmb <= self.m_bytes as f64,
            detail: format!("b·log(M/B) = {:.0}, M = {}", b_router as f64 * logmb, self.m_bytes),
        });

        if self.p > 1 {
            // M/B ≥ p^ε for some constant ε > 0; we report against ε = 1/2.
            let ratio = self.m_bytes as f64 / self.b_bytes as f64;
            let p_eps = (self.p as f64).sqrt();
            out.push(ModelCheck {
                condition: "M/B ≥ p^ε (ε = 1/2)".into(),
                satisfied: ratio >= p_eps,
                detail: format!("M/B = {ratio:.1}, p^0.5 = {p_eps:.1}"),
            });
        }

        out
    }
}

/// One advisory side-condition check from Theorem 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelCheck {
    /// Human-readable condition.
    pub condition: String,
    /// Whether the current configuration satisfies it.
    pub satisfied: bool,
    /// The numbers behind the verdict.
    pub detail: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_model_violations() {
        let mut m = EmMachine::uniprocessor(1 << 20, 4, 256, 1);
        m.validate().unwrap();
        m.d = 0;
        assert!(m.validate().is_err());
        m.d = 4;
        m.b_bytes = 8; // too small for headers
        assert!(m.validate().is_err());
        m.b_bytes = 1 << 19; // D*B = 2^21 > M
        assert!(m.validate().is_err());
    }

    #[test]
    fn group_size_is_floor_m_over_mu() {
        let m = EmMachine::uniprocessor(1000, 1, 64, 1);
        assert_eq!(m.group_size(100, 64).unwrap(), 10);
        assert_eq!(m.group_size(100, 4).unwrap(), 4); // clamped to v
        assert!(matches!(m.group_size(2000, 64), Err(EmError::MemoryTooSmall { .. })));
    }

    #[test]
    fn theorem_conditions_report_slackness() {
        let m = EmMachine::uniprocessor(1 << 16, 4, 256, 1);
        let checks = m.check_theorem_conditions(1024, 4, 1 << 14);
        let slack = &checks[0];
        assert!(slack.condition.contains("log(M/B)"));
        // v = 1024 vs 4*1*4*8 = 128 -> satisfied.
        assert!(slack.satisfied);
        let tiny = m.check_theorem_conditions(8, 4, 1 << 14);
        assert!(!tiny[0].satisfied);
    }
}
