//! Self-tuning knob resolution (`Auto` → concrete values).
//!
//! The simulators expose three `Auto` requests — [`ComputeMode::Auto`],
//! [`em_disk::Pipeline::Auto`] and [`em_disk::DiskConfig::auto_cache`] —
//! and this module turns them into concrete knob values **before any disk
//! is built**. Resolution is a pure function of three integers
//! ([`TuneInputs`]): the usable core count, the measured-or-assumed
//! compute/fetch wall ratio (fixed-point, ×16), and the run's `v·μ+γ`
//! memory footprint. Because every knob the tuner sets is, by the
//! substrate's own contract, incapable of changing counted I/O, final
//! states or the message ledger (counting happens in `em_disk::DiskArray`
//! at submission), *any* resolution is correct — the tuner only chooses
//! wall-clock speed, and reproducibility reduces to the inputs being
//! stable.
//!
//! The inputs come from one of four [`TuneSource`]s, in the order a
//! resolution attempts them:
//!
//! 1. [`TuneSource::Explicit`] — the caller pinned [`TuneInputs`] (tests,
//!    CI determinism lanes, service configs that must not drift).
//! 2. [`TuneSource::Corpus`] — the compute/fetch ratio is read from a
//!    committed `results/BENCH_*.json` corpus file (the `figures compute`
//!    sweep's serial phase-wall row); committed bytes are stable, so the
//!    parse is too.
//! 3. [`TuneSource::Probe`] — an opt-in seeded in-process microbenchmark
//!    measures the ratio on the current host and quantizes it to the
//!    nearest power of two, so run-to-run timer noise on one host
//!    collapses onto the same bucket.
//! 4. [`TuneSource::Default`] — the ratio the committed BENCH corpus
//!    shows for the mixed workload (compute ≈ 40× fetch).
//!
//! The chosen values, the inputs and the source are recorded in
//! [`ResolvedConfig`] and carried in `CostReport::resolved_config`, so a
//! run's effective configuration is always reproducible from its report;
//! [`ResolvedConfig::deterministic_line`] renders it byte-stably for
//! ledgers and determinism diffs.

use crate::compute::ComputeMode;
use em_disk::Pipeline;

/// Default compute/fetch wall ratio (×16) when no corpus, probe or
/// explicit inputs are supplied: the committed `results/BENCH_*.json`
/// corpus shows compute dominating fetch ≈ 40:1 on the mixed workload.
const DEFAULT_RATIO_X16: u32 = 40 * 16;

/// Widest `Threaded(n)` the tuner will pick: beyond the corpus-measured
/// scaling knee, extra in-group workers only add dispatch overhead.
const MAX_AUTO_WORKERS: usize = 8;

/// Upper bound on an auto-resolved cache capacity.
const MAX_AUTO_CACHE_BYTES: u64 = 64 << 20;

/// The three integers a knob resolution is a pure function of.
///
/// Kept as integers (the ratio in ×16 fixed point) so that equality,
/// hashing and the rendered [`ResolvedConfig::deterministic_line`] are
/// exact — no float formatting in any determinism-diffed artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TuneInputs {
    /// Usable cores (`std::thread::available_parallelism`, or pinned).
    pub cores: u32,
    /// Compute-wall / fetch-wall ratio in ×16 fixed point (so 640 = 40:1).
    pub compute_per_fetch_x16: u32,
    /// The run's `v·μ+γ` working-set footprint in bytes.
    pub footprint_bytes: u64,
}

/// Where a resolution's [`TuneInputs`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TuneSource {
    /// Built-in constants (corpus-derived 40:1 ratio, host core count).
    Default,
    /// Ratio parsed from a committed `results/BENCH_*.json` file.
    Corpus,
    /// Ratio measured by the seeded in-process calibration probe.
    Probe,
    /// Inputs pinned verbatim by the caller.
    Explicit,
}

impl TuneSource {
    fn as_str(&self) -> &'static str {
        match self {
            TuneSource::Default => "default",
            TuneSource::Corpus => "corpus",
            TuneSource::Probe => "probe",
            TuneSource::Explicit => "explicit",
        }
    }
}

/// The concrete knob values an `Auto` resolution produced, plus the
/// inputs and source it produced them from.
///
/// Only knobs that were *requested* as `Auto` are `Some`; a knob the
/// caller set explicitly is untouched and reported as `None` here, so the
/// record reads as "what the tuner decided", never "what the run used"
/// (the latter is the simulator's own builder state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResolvedConfig {
    /// The compute mode chosen for a [`ComputeMode::Auto`] request.
    pub compute: Option<ComputeMode>,
    /// The pipeline chosen for a [`Pipeline::Auto`] request.
    pub pipeline: Option<Pipeline>,
    /// The cache capacity chosen for a `with_auto_cache` request.
    pub cache_bytes: Option<usize>,
    /// The inputs the choices are a pure function of.
    pub inputs: TuneInputs,
    /// Where the inputs came from.
    pub source: TuneSource,
}

impl ResolvedConfig {
    /// Render the resolution as one canonical, byte-stable line — integers
    /// only, fixed field order — suitable for service ledgers and CI
    /// determinism diffs.
    ///
    /// ```
    /// use em_core::{AutoTuner, TuneInputs};
    ///
    /// let tuner = AutoTuner::default()
    ///     .with_inputs(TuneInputs { cores: 4, compute_per_fetch_x16: 640, footprint_bytes: 1 << 16 });
    /// let rc = tuner.resolve(true, true, true, 1 << 16).unwrap();
    /// assert_eq!(
    ///     rc.deterministic_line(),
    ///     "compute=threaded(4) pipeline=stream(2) cache=131072 \
    ///      cores=4 ratio_x16=640 footprint=65536 source=explicit"
    /// );
    /// ```
    pub fn deterministic_line(&self) -> String {
        let compute = match self.compute {
            None => "-".to_string(),
            Some(ComputeMode::Serial) => "serial".to_string(),
            Some(ComputeMode::Threaded(n)) => format!("threaded({n})"),
            Some(ComputeMode::Auto) => "auto".to_string(),
        };
        let pipeline = match self.pipeline {
            None => "-".to_string(),
            Some(Pipeline::Off) => "off".to_string(),
            Some(Pipeline::DoubleBuffer) => "stream(1)".to_string(),
            Some(Pipeline::Stream(n)) => format!("stream({n})"),
            Some(Pipeline::Auto) => "auto".to_string(),
        };
        let cache = match self.cache_bytes {
            None => "-".to_string(),
            Some(b) => b.to_string(),
        };
        format!(
            "compute={compute} pipeline={pipeline} cache={cache} cores={} ratio_x16={} \
             footprint={} source={}",
            self.inputs.cores,
            self.inputs.compute_per_fetch_x16,
            self.inputs.footprint_bytes,
            self.source.as_str(),
        )
    }
}

/// Resolves the simulators' `Auto` knob requests into concrete values.
///
/// Plain data — `Clone`, no threads, no I/O until [`AutoTuner::resolve`]
/// (and even then only the opt-in corpus read / probe run). The default
/// tuner takes the host core count and the corpus-derived 40:1 ratio;
/// builders narrow it:
///
/// ```
/// use em_core::{AutoTuner, ComputeMode, TuneInputs};
/// use em_disk::Pipeline;
///
/// // Pinned inputs: resolution is a pure function, so this is what the
/// // CI determinism lanes use.
/// let tuner = AutoTuner::default()
///     .with_inputs(TuneInputs { cores: 1, compute_per_fetch_x16: 640, footprint_bytes: 4096 });
/// let rc = tuner.resolve(true, true, false, 4096).unwrap();
/// assert_eq!(rc.compute, Some(ComputeMode::Serial), "one core: stay serial");
/// assert_eq!(rc.pipeline, Some(Pipeline::Stream(2)));
/// assert_eq!(rc.cache_bytes, None, "cache was not requested as Auto");
/// ```
#[derive(Debug, Clone, Default)]
pub struct AutoTuner {
    /// Pinned inputs ([`TuneSource::Explicit`]); wins over everything.
    explicit: Option<TuneInputs>,
    /// Corpus file to parse the ratio from ([`TuneSource::Corpus`]).
    corpus_path: Option<std::path::PathBuf>,
    /// Seed for the opt-in calibration probe ([`TuneSource::Probe`]).
    probe_seed: Option<u64>,
}

impl AutoTuner {
    /// Pin the inputs verbatim ([`TuneSource::Explicit`]): resolution
    /// becomes a pure function, independent of the host.
    pub fn with_inputs(mut self, inputs: TuneInputs) -> Self {
        self.explicit = Some(inputs);
        self
    }

    /// Read the compute/fetch ratio from a committed `BENCH_*.json`
    /// corpus file ([`TuneSource::Corpus`]). The file's `figures compute`
    /// serial phase-wall row supplies the ratio; a missing or unparsable
    /// file falls back to the built-in default rather than erroring — a
    /// tuner may never fail a run over a hint.
    pub fn with_corpus(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.corpus_path = Some(path.into());
        self
    }

    /// Measure the compute/fetch ratio with a seeded in-process
    /// microbenchmark at resolve time ([`TuneSource::Probe`]). The result
    /// is quantized to the nearest power of two, so repeated probes on
    /// one host land in the same bucket despite timer noise. Off by
    /// default; the CI determinism lanes use pinned inputs instead.
    pub fn with_probe(mut self, seed: u64) -> Self {
        self.probe_seed = Some(seed);
        self
    }

    /// Gather the inputs from the strongest configured source.
    fn inputs(&self, footprint_bytes: u64) -> (TuneInputs, TuneSource) {
        if let Some(inputs) = self.explicit {
            return (inputs, TuneSource::Explicit);
        }
        let cores = std::thread::available_parallelism().map(|n| n.get() as u32).unwrap_or(1);
        if let Some(ratio) = self.corpus_path.as_deref().and_then(corpus_ratio_x16) {
            return (
                TuneInputs { cores, compute_per_fetch_x16: ratio, footprint_bytes },
                TuneSource::Corpus,
            );
        }
        if let Some(seed) = self.probe_seed {
            let ratio = probe_ratio_x16(seed);
            return (
                TuneInputs { cores, compute_per_fetch_x16: ratio, footprint_bytes },
                TuneSource::Probe,
            );
        }
        (
            TuneInputs { cores, compute_per_fetch_x16: DEFAULT_RATIO_X16, footprint_bytes },
            TuneSource::Default,
        )
    }

    /// Resolve the requested `Auto` knobs against a `v·μ+γ` footprint.
    ///
    /// Returns `None` when nothing was requested as `Auto` — the common
    /// case, which must stay allocation- and I/O-free. The policy (each
    /// rule traceable to the committed BENCH corpus, see DESIGN.md
    /// §3.2.11):
    ///
    /// * **compute** — `Serial` on a single core or when compute fails to
    ///   dominate fetch at least 2:1 (pool dispatch would be pure
    ///   overhead); otherwise `Threaded(min(cores, 8))`.
    /// * **pipeline** — `Stream(2)` when compute dominates ≥ 8:1 (the
    ///   window only needs to hide a thin fetch phase); `Stream(4)` when
    ///   fetch is a larger fraction and deeper prefetch pays.
    /// * **cache** — twice the working-set footprint, clamped to 64 MiB,
    ///   and 0 for an empty footprint (the capacity sweep shows residency
    ///   at ≥ `v·μ+γ`; ×2 covers scratch message tracks).
    pub fn resolve(
        &self,
        compute_auto: bool,
        pipeline_auto: bool,
        cache_auto: bool,
        footprint_bytes: u64,
    ) -> Option<ResolvedConfig> {
        if !compute_auto && !pipeline_auto && !cache_auto {
            return None;
        }
        let (inputs, source) = self.inputs(footprint_bytes);
        let compute = compute_auto.then(|| {
            if inputs.cores <= 1 || inputs.compute_per_fetch_x16 < 2 * 16 {
                ComputeMode::Serial
            } else {
                ComputeMode::Threaded((inputs.cores as usize).min(MAX_AUTO_WORKERS))
            }
        });
        let pipeline = pipeline_auto.then(|| {
            if inputs.compute_per_fetch_x16 >= 8 * 16 {
                Pipeline::Stream(2)
            } else {
                Pipeline::Stream(4)
            }
        });
        let cache_bytes = cache_auto.then(|| {
            if inputs.footprint_bytes == 0 {
                0
            } else {
                inputs.footprint_bytes.saturating_mul(2).min(MAX_AUTO_CACHE_BYTES) as usize
            }
        });
        Some(ResolvedConfig { compute, pipeline, cache_bytes, inputs, source })
    }
}

/// Parse the compute/fetch ratio (×16) out of a `BENCH_*.json` corpus
/// file: the `phase_walls` row whose variant is the `figures compute`
/// sweep's serial lane carries `compute_wall_ms` and `fetch_wall_ms`.
///
/// Line-oriented string scanning on purpose: `em-core` has no JSON
/// dependency, the bench writer emits one record per line, and a hint
/// parser that rejects the file is strictly better than one that guesses.
fn corpus_ratio_x16(path: &std::path::Path) -> Option<u32> {
    let text = std::fs::read_to_string(path).ok()?;
    for line in text.lines() {
        if !line.contains("\"F-compute mix serial\"") {
            continue;
        }
        let compute = json_number_field(line, "\"compute_wall_ms\":")?;
        let fetch = json_number_field(line, "\"fetch_wall_ms\":")?;
        if !(compute.is_finite() && fetch.is_finite()) || compute < 0.0 || fetch <= 0.0 {
            return None;
        }
        let ratio = (compute / fetch * 16.0).round();
        return Some(ratio.clamp(1.0, u32::MAX as f64) as u32);
    }
    None
}

/// Extract the numeric value following `key` in a one-record JSON line.
fn json_number_field(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Seeded calibration probe: time a fixed compute kernel (the `figures
/// compute` mixing loop) against a fixed memory-backend block copy, and
/// return their wall ratio quantized to the nearest power of two (×16).
///
/// The quantization is the determinism story: raw timings jitter run to
/// run, but on one host the ratio stays inside one log₂ bucket, so
/// identically-seeded runs resolve identically (asserted in
/// `tests/reorg_modes.rs`).
fn probe_ratio_x16(seed: u64) -> u32 {
    const CHUNK: usize = 1 << 12;
    let mut data: Vec<u64> = (0..CHUNK as u64).map(|i| i ^ seed).collect();

    let t0 = std::time::Instant::now();
    for r in 0..48u64 {
        for x in data.iter_mut() {
            *x = x.wrapping_add(seed ^ r).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
        }
    }
    let compute = t0.elapsed();

    // The fetch stand-in: block-sized memory copies, the memory-backend
    // floor of a context fetch.
    let mut dst = vec![0u8; CHUNK * 8];
    let src = vec![0x5Au8; CHUNK * 8];
    let t0 = std::time::Instant::now();
    for _ in 0..48 {
        dst.copy_from_slice(&src);
        std::hint::black_box(&dst);
    }
    let fetch = t0.elapsed().max(std::time::Duration::from_nanos(1));
    std::hint::black_box(data.as_mut_slice());

    let raw = compute.as_secs_f64() / fetch.as_secs_f64();
    // Quantize to the nearest power of two, floored at 1:16 and capped at
    // 4096:1 — far beyond any policy threshold.
    let quantized = 2f64.powf(raw.max(1.0 / 16.0).log2().round()).min(4096.0);
    (quantized * 16.0).round().max(1.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(cores: u32, ratio_x16: u32, footprint: u64) -> TuneInputs {
        TuneInputs { cores, compute_per_fetch_x16: ratio_x16, footprint_bytes: footprint }
    }

    #[test]
    fn no_auto_requests_resolve_to_none() {
        let tuner = AutoTuner::default().with_inputs(inputs(8, 640, 1 << 20));
        assert!(tuner.resolve(false, false, false, 1 << 20).is_none());
    }

    #[test]
    fn policy_matches_the_documented_rules() {
        let t = |cores, ratio| {
            AutoTuner::default()
                .with_inputs(inputs(cores, ratio, 1 << 16))
                .resolve(true, true, true, 1 << 16)
                .unwrap()
        };
        // Single core or compute-light: serial.
        assert_eq!(t(1, 640).compute, Some(ComputeMode::Serial));
        assert_eq!(t(8, 16).compute, Some(ComputeMode::Serial), "1:1 ratio: pool is overhead");
        // Multi-core, compute-dominated: threaded, capped at 8.
        assert_eq!(t(4, 640).compute, Some(ComputeMode::Threaded(4)));
        assert_eq!(t(64, 640).compute, Some(ComputeMode::Threaded(8)), "cap at 8");
        // Pipeline depth from the ratio.
        assert_eq!(t(4, 640).pipeline, Some(Pipeline::Stream(2)), "thin fetch: shallow window");
        assert_eq!(t(4, 64).pipeline, Some(Pipeline::Stream(4)), "fat fetch: deeper prefetch");
        // Cache: 2× footprint.
        assert_eq!(t(4, 640).cache_bytes, Some(2 << 16));
    }

    #[test]
    fn cache_resolution_clamps_and_zeroes() {
        let t = |footprint: u64| {
            AutoTuner::default()
                .with_inputs(inputs(4, 640, footprint))
                .resolve(false, false, true, footprint)
                .unwrap()
                .cache_bytes
                .unwrap()
        };
        assert_eq!(t(0), 0, "empty footprint: no cache");
        assert_eq!(t(1 << 10), 2 << 10);
        assert_eq!(t(1 << 30), 64 << 20, "clamped to 64 MiB");
    }

    #[test]
    fn unrequested_knobs_stay_none() {
        let rc = AutoTuner::default()
            .with_inputs(inputs(4, 640, 4096))
            .resolve(true, false, false, 4096)
            .unwrap();
        assert!(rc.compute.is_some());
        assert_eq!(rc.pipeline, None);
        assert_eq!(rc.cache_bytes, None);
    }

    #[test]
    fn explicit_resolution_is_a_pure_function() {
        let tuner = AutoTuner::default().with_inputs(inputs(4, 640, 8192));
        let a = tuner.resolve(true, true, true, 8192).unwrap();
        let b = tuner.resolve(true, true, true, 8192).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.deterministic_line(), b.deterministic_line());
        assert_eq!(a.source, TuneSource::Explicit);
    }

    #[test]
    fn deterministic_line_is_integer_only_and_stable() {
        let rc = AutoTuner::default()
            .with_inputs(inputs(2, 640, 4096))
            .resolve(true, true, true, 4096)
            .unwrap();
        let line = rc.deterministic_line();
        assert_eq!(
            line,
            "compute=threaded(2) pipeline=stream(2) cache=8192 cores=2 ratio_x16=640 \
             footprint=4096 source=explicit"
        );
        assert!(!line.contains('.'), "no float formatting in a diffed artifact");
    }

    #[test]
    fn corpus_parse_reads_the_serial_compute_row() {
        let dir = std::env::temp_dir().join(format!("em-tune-corpus-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        std::fs::write(
            &path,
            concat!(
                "{\"bench\":\"figures\",\"rows\":[\n",
                "{\"variant\":\"F-compute mix serial\",\"io_ops\":10,\
                 \"fetch_wall_ms\":2.0,\"compute_wall_ms\":80.0,\"write_wall_ms\":1.0}\n",
                "]}\n",
            ),
        )
        .unwrap();
        assert_eq!(corpus_ratio_x16(&path), Some(640), "80/2 = 40:1 → 640");
        let rc = AutoTuner::default().with_corpus(&path).resolve(true, false, false, 4096).unwrap();
        assert_eq!(rc.source, TuneSource::Corpus);
        assert_eq!(rc.inputs.compute_per_fetch_x16, 640);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_corpus_falls_back_to_default() {
        let rc = AutoTuner::default()
            .with_corpus("/nonexistent/BENCH_nope.json")
            .resolve(true, false, false, 4096)
            .unwrap();
        assert_eq!(rc.source, TuneSource::Default);
        assert_eq!(rc.inputs.compute_per_fetch_x16, DEFAULT_RATIO_X16);
    }

    #[test]
    fn probe_is_quantized_and_repeatable() {
        let a = probe_ratio_x16(42);
        let b = probe_ratio_x16(42);
        // Power-of-two quantization: the bucket is exact, so two probes on
        // one host agree unless the timing straddles a bucket edge; allow
        // one adjacent bucket to keep the test robust on loaded CI hosts.
        let (lo, hi) = (a.min(b), a.max(b));
        assert!(hi <= lo * 2, "probe buckets drifted: {a} vs {b}");
        assert!(a >= 1);
    }
}
