//! Error type for the EM simulation.

use crate::report::FaultReport;
use em_bsp::BspError;
use em_disk::DiskError;
use em_serial::DecodeError;
use std::fmt;

/// Errors raised while simulating a BSP program in external memory.
#[derive(Debug)]
pub enum EmError {
    /// Error from the BSP layer (bad destination, superstep limit, ...).
    Bsp(BspError),
    /// Error from the disk substrate.
    Disk(DiskError),
    /// A persisted context or message failed to decode — indicates state
    /// corruption or a `Serial` implementation violating its laws.
    Decode(DecodeError),
    /// A virtual processor's serialized context exceeded the declared
    /// μ = `max_state_bytes()` and no longer fits its disk region.
    ContextOverflow {
        /// Virtual processor whose context overflowed.
        pid: usize,
        /// Serialized size in bytes.
        need: usize,
        /// Region capacity in bytes.
        capacity: usize,
    },
    /// A virtual processor sent more traffic in one superstep than the
    /// declared γ = `max_comm_bytes()` (16-byte per-message envelope
    /// headers included).
    CommBudgetExceeded {
        /// Offending virtual processor.
        pid: usize,
        /// Envelope bytes it tried to send.
        sent: u64,
        /// Declared budget γ.
        budget: usize,
    },
    /// The message blocks destined for one group exceeded the group's
    /// preallocated disk region (receive-side γ violation).
    GroupRegionOverflow {
        /// Destination group.
        group: usize,
        /// Blocks generated for it.
        blocks: usize,
        /// Region capacity in blocks.
        capacity: usize,
    },
    /// The machine's memory cannot hold even one virtual processor's
    /// context (`k = ⌊M/μ⌋ = 0`).
    MemoryTooSmall {
        /// Machine memory `M` in bytes.
        m_bytes: usize,
        /// Bytes needed for a single context plus working buffers.
        needed: usize,
    },
    /// A configuration parameter combination is invalid.
    InvalidConfig(String),
    /// A disk fault survived the substrate's retry policy and exhausted
    /// the superstep replay budget — or was inherently unrecoverable, such
    /// as a dead drive worker. Carries the full injection/recovery tally.
    FaultUnrecoverable {
        /// Compound superstep that could not be completed.
        step: usize,
        /// Injection and recovery tallies up to the failure.
        report: FaultReport,
        /// The underlying error that exhausted the budgets.
        source: Box<EmError>,
    },
    /// The run was terminated by a simulated crash point
    /// ([`KillPoint`](crate::KillPoint)) for chaos testing. The on-disk
    /// state is exactly what a real process crash at that moment would
    /// leave behind; a `resume` call continues the run bit-identically.
    Killed {
        /// Compound superstep at which the simulated crash fired.
        step: usize,
    },
}

impl fmt::Display for EmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmError::Bsp(e) => write!(f, "BSP error: {e}"),
            EmError::Disk(e) => write!(f, "disk error: {e}"),
            EmError::Decode(e) => write!(f, "decode error: {e}"),
            EmError::ContextOverflow { pid, need, capacity } => write!(
                f,
                "context of virtual processor {pid} is {need} bytes, exceeding its μ-region of {capacity} bytes; \
                 raise max_state_bytes()"
            ),
            EmError::CommBudgetExceeded { pid, sent, budget } => write!(
                f,
                "virtual processor {pid} sent {sent} envelope bytes in one superstep, exceeding γ = {budget}; \
                 raise max_comm_bytes()"
            ),
            EmError::GroupRegionOverflow { group, blocks, capacity } => write!(
                f,
                "group {group} received {blocks} message blocks, exceeding its region of {capacity} blocks"
            ),
            EmError::MemoryTooSmall { m_bytes, needed } => write!(
                f,
                "machine memory M = {m_bytes} bytes cannot hold one context ({needed} bytes needed); k = ⌊M/μ⌋ = 0"
            ),
            EmError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            EmError::FaultUnrecoverable { step, report, source } => write!(
                f,
                "superstep {step} could not be recovered ({} replays performed, {} retried blocks): {source}",
                report.replays, report.retried_blocks
            ),
            EmError::Killed { step } => write!(
                f,
                "run killed by a simulated crash point at superstep {step}; resume from the last committed checkpoint"
            ),
        }
    }
}

impl std::error::Error for EmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EmError::Bsp(e) => Some(e),
            EmError::Disk(e) => Some(e),
            EmError::Decode(e) => Some(e),
            EmError::FaultUnrecoverable { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<BspError> for EmError {
    fn from(e: BspError) -> Self {
        EmError::Bsp(e)
    }
}

impl From<DiskError> for EmError {
    fn from(e: DiskError) -> Self {
        EmError::Disk(e)
    }
}

impl From<DecodeError> for EmError {
    fn from(e: DecodeError) -> Self {
        EmError::Decode(e)
    }
}
