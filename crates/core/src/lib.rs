//! # em-core
//!
//! The paper's contribution: a simulation technique that executes any
//! [`em_bsp::BspProgram`] (a BSP / BSP\* / CGM algorithm with `v` virtual
//! processors) as an **external-memory algorithm** on a machine with `p`
//! real processors, each having `M` bytes of memory and `D` disks of block
//! size `B` — with all disk traffic *fully blocked* and *`D`-way parallel*.
//!
//! * [`SeqEmSimulator`] — Algorithm 1 (`SeqCompoundSuperstep`) +
//!   Algorithm 2 (`SimulateRouting`): the single-processor simulation.
//!   Groups of `k = ⌊M/μ⌋` virtual processors are simulated at a time;
//!   contexts live in *standard consecutive format*; generated message
//!   blocks are scattered over the disks with a fresh random permutation
//!   per write cycle, bucketed by destination in *standard linked format*,
//!   and reorganized once per superstep into per-group consecutive regions.
//! * [`ParEmSimulator`] — Algorithm 3 (`ParCompoundSuperstep`): the
//!   `p ≥ 1` generalization with random scattering of packets across real
//!   processors.
//! * [`theory`] — machine-checkable versions of the paper's bounds
//!   (Lemma 2, Lemmas 8–10, Theorem 1, Corollary 1) used by the benchmark
//!   harness to print predicted columns next to measured counts.
//!
//! The simulators produce results **identical** to the in-memory reference
//! executor [`em_bsp::run_sequential`] — that is the correctness contract,
//! enforced by differential tests — while every byte of context and message
//! traffic flows through an [`em_disk::DiskArray`] whose parallel I/O
//! operations are counted exactly.

#![warn(missing_docs)]

mod checkpoint;
mod compute;
mod context_store;
mod error;
mod exec;
mod machine;
mod msg;
mod par_sim;
mod planner;
mod report;
mod routing;
mod seq_sim;
pub mod theory;
mod tune;

pub use checkpoint::KillPoint;
pub use compute::{ComputeMode, ComputePool};
pub use context_store::{BufferPool, ContextStore, PendingGroupRead};
pub use error::EmError;
pub use exec::Recording;
pub use machine::{EmMachine, ModelCheck};
pub use msg::{
    fetch_group_messages, scatter_messages, scatter_messages_deferred, submit_fetch_group_messages,
    GroupCounts, InMsg, MsgGeometry, OutMsg, PendingGroupMsgs, PendingRawBlocks, Placement,
    ScratchState, BLOCK_HEADER_BYTES, MSG_HEADER_BYTES,
};
pub use par_sim::ParEmSimulator;
pub use planner::{Plan, Planner, ProblemProfile};
pub use report::{CostReport, FaultReport, PhaseIo, PhaseWall, RecoveryPolicy};
pub use routing::{simulate_routing, RoutingScratch, RoutingTrace};
pub use seq_sim::SeqEmSimulator;
pub use tune::{AutoTuner, ResolvedConfig, TuneInputs, TuneSource};

/// Result alias for simulation operations.
pub type EmResult<T> = Result<T, EmError>;
