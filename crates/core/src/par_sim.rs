//! Algorithm 3 — `ParCompoundSuperstep`: the `p`-processor external-memory
//! simulation.
//!
//! Real processor `i` is an OS thread owning a private [`DiskArray`] of
//! `D` disks. The `v` virtual processors are processed in `⌈v/(k·p)⌉`
//! *batches* of `k·p`; in round `j`, processor `i` simulates virtual
//! processors `j·k·p + i·k … j·k·p + (i+1)·k − 1` — the assignment that
//! matches the paper's batch definition (see DESIGN.md on the paper's
//! internally inconsistent indexing).
//!
//! Per round:
//!
//! 1. **Fetching Phase** (Step 1(a)): each processor reads the message
//!    blocks of the current batch from its local disks (fully blocked,
//!    `D`-way parallel) and forwards each block to the processor
//!    simulating its destination virtual processor, which reassembles the
//!    `(src, dst)` streams. Contexts are read from the owner's local
//!    disks.
//! 2. **Computing Phase** (Step 1(b)): the owner runs the superstep for
//!    its `k` virtual processors.
//! 3. **Writing Phase** (Step 1(c)): generated messages are cut into
//!    blocks and every block is sent to a *uniformly random* processor,
//!    which stores it on its local disks in write cycles of `D` with a
//!    random disk permutation, binned by destination batch.
//!
//! After the last round, each processor reorganizes its received blocks
//! with Algorithm 2 ([`crate::routing::simulate_routing`]) — Step 2 of
//! `ParCompoundSuperstep` — entirely locally.
//!
//! Inter-processor transport uses channels; exchanges are lock-stepped
//! (every processor sends exactly one bundle to every other processor per
//! exchange, empty if it has nothing), so the protocol needs no barriers
//! inside a round. A failing processor turns into a "zombie" that keeps
//! the protocol alive with empty bundles until the superstep ends, then
//! every thread observes the failure and exits.

use crate::checkpoint::{superstep_seed, KillPoint, Manifest};
use crate::compute::{run_group_vps, ComputeMode, ComputePool, VpWork};
use crate::context_store::{BufferPool, ContextStore, PendingGroupRead};
use crate::machine::EmMachine;
use crate::msg::{
    build_stream_blocks, fetch_batch_raw_blocks, reassemble_blocks, store_received_blocks,
    store_received_blocks_deferred, GroupCounts, MsgGeometry, OutMsg, Placement, RawBlock,
    MSG_HEADER_BYTES,
};
use crate::report::{CostReport, FaultReport, PhaseIo, PhaseWall, RecoveryPolicy};
use crate::routing::{simulate_routing, RoutingScratch};
use crate::tune::{AutoTuner, ResolvedConfig};
use crate::{EmError, EmResult};
use em_bsp::{BspError, BspProgram, CommLedger, RunResult, SuperstepComm};
use em_disk::{
    CheckpointStore, DiskArray, DiskConfig, EngineKind, FaultPlan, FaultStats, IoMode, IoStats,
    JournalFile, Pipeline, RetryPolicy, TrackAllocator, WriteBacklog,
};
use em_serial::{from_bytes, to_bytes};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex as StdMutex};
use std::time::Instant;

/// Per-worker run summary: counted I/O, per-phase split (ops and wall),
/// the allocator's track frontier, and per-superstep balance factors.
type WorkerReport = (IoStats, PhaseIo, PhaseWall, usize, Vec<f64>);

/// One inter-processor bundle: sender id, exchange phase, raw blocks.
///
/// The `phase` is a per-thread monotone exchange counter. Every thread
/// executes the identical sequence of exchanges, but a fast thread can
/// finish one exchange and send its next-phase bundles before a slow
/// thread has drained the current phase — so receivers must match on the
/// phase and stash early arrivals, or bundles from adjacent exchanges
/// would be mixed.
struct Bundle {
    from: usize,
    phase: u64,
    blocks: Vec<RawBlock>,
}

/// Receive exactly `p` bundles of `phase`, buffering any early arrivals
/// from later phases.
fn recv_exchange(
    rx: &crossbeam_channel::Receiver<Bundle>,
    pending: &mut Vec<Bundle>,
    phase: u64,
    p: usize,
) -> Vec<Bundle> {
    let mut got: Vec<Bundle> = Vec::with_capacity(p);
    let mut i = 0;
    while i < pending.len() {
        if pending[i].phase == phase {
            got.push(pending.swap_remove(i));
        } else {
            i += 1;
        }
    }
    while got.len() < p {
        let b = rx.recv().expect("sender alive");
        debug_assert!(b.phase >= phase, "stale bundle from phase {}", b.phase);
        if b.phase == phase {
            got.push(b);
        } else {
            pending.push(b);
        }
    }
    got.sort_by_key(|b| b.from);
    got
}

/// The `p`-processor EM-BSP\* simulator (Algorithm 3).
#[derive(Debug, Clone)]
pub struct ParEmSimulator {
    machine: EmMachine,
    seed: u64,
    placement: Placement,
    max_supersteps: usize,
    file_dir: Option<PathBuf>,
    io_mode: IoMode,
    pipeline: Pipeline,
    compute: ComputeMode,
    fault_plan: Option<FaultPlan>,
    checksums: bool,
    retry: Option<RetryPolicy>,
    recovery: Option<RecoveryPolicy>,
    cache_bytes: usize,
    auto_cache: bool,
    checkpoint: bool,
    kill: Option<KillPoint>,
    engine: EngineKind,
    pin_workers: bool,
    tuner: AutoTuner,
    /// The tuner's choices, recorded when a resolution ran (on the clone
    /// [`Self::resolved_for`] returns; the original stays `None`).
    resolved: Option<ResolvedConfig>,
    /// Lazily created persistent compute pool shared by the `p` processor
    /// threads of every run of this simulator (and of its clones — the
    /// cell is behind an `Arc`). `None` until the first `Threaded` run, or
    /// preset via [`Self::with_compute_pool`].
    pool: Arc<StdMutex<Option<ComputePool>>>,
}

impl ParEmSimulator {
    /// Simulator for the given machine (which carries `p`).
    pub fn new(machine: EmMachine) -> Self {
        ParEmSimulator {
            machine,
            seed: 0x9A7_5EED,
            placement: Placement::Random,
            max_supersteps: em_bsp::DEFAULT_MAX_SUPERSTEPS,
            file_dir: None,
            io_mode: IoMode::Parallel,
            pipeline: Pipeline::Off,
            compute: ComputeMode::Serial,
            fault_plan: None,
            checksums: false,
            retry: None,
            recovery: None,
            cache_bytes: 0,
            auto_cache: false,
            checkpoint: false,
            kill: None,
            engine: EngineKind::default(),
            pin_workers: false,
            tuner: AutoTuner::default(),
            resolved: None,
            pool: Arc::new(StdMutex::new(None)),
        }
    }

    /// Use a specific RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Choose the disk-assignment strategy for stored blocks.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Back each processor's disks with real files under `dir/proc-<i>/`.
    pub fn with_file_backend(mut self, dir: impl Into<PathBuf>) -> Self {
        self.file_dir = Some(dir.into());
        self
    }

    /// Choose how each processor's file backend executes stripes
    /// ([`IoMode::Parallel`] by default — one worker thread per drive, so a
    /// `p`-processor file-backed run uses up to `p·D` I/O threads). Ignored
    /// by the memory backend; counted I/O and final states are identical
    /// either way.
    pub fn with_io_mode(mut self, mode: IoMode) -> Self {
        self.io_mode = mode;
        self
    }

    /// Overlap each processor's local disk transfers with computation and
    /// with the inter-processor exchanges ([`Pipeline::Off`] by default).
    /// With [`Pipeline::Stream(n)`](Pipeline::Stream) each processor keeps
    /// the context reads of up to `n` rounds in flight: round `j+n-1`'s
    /// read is submitted before round `j`'s block-forwarding exchange
    /// runs, and context/scatter writes drain in the background, joined
    /// before the local reorganization. [`Pipeline::DoubleBuffer`] is
    /// exactly `Stream(1)`. Counted I/O, per-phase attribution, final
    /// states and the per-thread RNG streams are identical at every
    /// depth.
    pub fn with_pipeline(mut self, pipeline: Pipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Run each processor's share of a batch's Computing Phase on a scoped
    /// worker pool ([`ComputeMode::Serial`] by default — note a
    /// `Threaded(n)` run uses up to `p·n` compute threads). Final states,
    /// the message ledger, counted I/O and the per-thread RNG streams are
    /// identical in every mode (see [`ComputeMode`]).
    pub fn with_compute_mode(mut self, mode: ComputeMode) -> Self {
        self.compute = mode;
        self
    }

    /// Prefer a stripe-execution engine for each processor's file backend
    /// ([`EngineKind::Threaded`] by default). [`EngineKind::Uring`] is a
    /// *preference* that silently falls back to worker threads when the
    /// `io-uring` feature is off or the kernel refuses a ring
    /// ([`em_disk::uring_available`]). Counted I/O, final states and
    /// seeded traces are identical under every engine.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Best-effort pin worker threads (drive workers and the compute
    /// pool) to cores, off by default. Purely a wall-clock knob.
    pub fn with_pinned_workers(mut self, pin: bool) -> Self {
        self.pin_workers = pin;
        self
    }

    /// Attach an existing persistent [`ComputePool`] shared by all `p`
    /// processor threads instead of letting the simulator lazily create
    /// one (sized `n·p`) on the first `Threaded` run. Dispatches queue
    /// when chunks outnumber workers; chunking — hence determinism — is
    /// governed solely by [`ComputeMode::Threaded`], never by pool size.
    pub fn with_compute_pool(self, pool: ComputePool) -> Self {
        *self.pool.lock().expect("compute pool cell") = Some(pool);
        self
    }

    /// The persistent compute pool for a run: an attached pool if one is
    /// present, otherwise one lazily created and cached for
    /// [`ComputeMode::Threaded`]`(n > 1)` — sized `n·p` so every
    /// processor's chunks can run concurrently — or `None` for
    /// effectively serial modes.
    fn compute_pool(&self) -> Option<ComputePool> {
        let mut guard = self.pool.lock().expect("compute pool cell");
        if let Some(pool) = guard.as_ref() {
            return Some(pool.clone());
        }
        match self.compute {
            ComputeMode::Threaded(n) if n > 1 => Some(
                guard
                    .get_or_insert_with(|| {
                        ComputePool::with_pinning(
                            n.saturating_mul(self.machine.p.max(1)),
                            self.pin_workers,
                        )
                    })
                    .clone(),
            ),
            _ => None,
        }
    }

    /// Guard limit for non-terminating programs.
    pub fn with_max_supersteps(mut self, limit: usize) -> Self {
        self.max_supersteps = limit;
        self
    }

    /// Inject disk faults from a seeded [`FaultPlan`] into *every*
    /// processor's private disk array (each thread gets a clone of the
    /// plan; injection counters are shared and aggregated). Pair it with
    /// [`Self::with_retry`] and [`Self::with_recovery`] to absorb the
    /// faults, or expect a typed [`EmError::FaultUnrecoverable`].
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Frame every stored track with a CRC32 and verify it on read
    /// ([`em_disk::DiskError::Corrupt`] on mismatch). Off by default.
    pub fn with_checksums(mut self, on: bool) -> Self {
        self.checksums = on;
        self
    }

    /// Retry transient per-track faults inside each processor's disk
    /// substrate; tallied in [`em_disk::IoStats::retried_blocks`], never
    /// in the counted parallel I/O.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Enable superstep-granular recovery. The replay decision is global:
    /// thread 0 inspects every processor's failure at the superstep
    /// barrier, and either *all* threads roll their disks back to the last
    /// committed superstep and replay in lockstep, or the run degrades
    /// into a typed [`EmError::FaultUnrecoverable`]. Without faults the
    /// machinery is inert.
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Layer a write-back block cache of `capacity_bytes` over *each*
    /// processor's private disk array ([`em_disk::BlockCacheBackend`]; 0 —
    /// the default — disables it). Reads of resident tracks and repeated
    /// writes are absorbed until each superstep's barrier `sync()`, which
    /// flushes dirty tracks in deterministic `(track, disk)` order.
    /// Counted I/O, final states and the per-thread RNG streams are
    /// identical with the cache on or off; absorbed traffic is tallied in
    /// [`em_disk::IoStats::cache_hit_blocks`] /
    /// [`em_disk::IoStats::cache_absorbed_writes`].
    pub fn with_cache(mut self, capacity_bytes: usize) -> Self {
        self.cache_bytes = capacity_bytes;
        self.auto_cache = false;
        self
    }

    /// Let the [`AutoTuner`] size each processor's block cache instead of
    /// pinning a capacity with [`Self::with_cache`] (mutually exclusive;
    /// whichever is set last wins). The capacity is resolved from the
    /// run's `v·μ+γ` footprint before any disk is built; like every tuned
    /// knob it cannot change counted I/O, final states or the per-thread
    /// RNG streams — only wall clock. The choice is recorded in
    /// [`CostReport::resolved_config`].
    pub fn with_auto_cache(mut self, on: bool) -> Self {
        self.auto_cache = on;
        if on {
            self.cache_bytes = 0;
        }
        self
    }

    /// Replace the default [`AutoTuner`] that resolves `Auto` knob
    /// requests ([`ComputeMode::Auto`], [`Pipeline::Auto`],
    /// [`Self::with_auto_cache`]). The default tuner uses the host core
    /// count and the corpus-derived compute/fetch ratio; tests and CI
    /// determinism lanes pin inputs via [`AutoTuner::with_inputs`].
    pub fn with_tuner(mut self, tuner: AutoTuner) -> Self {
        self.tuner = tuner;
        self
    }

    /// Whether any knob is currently requested as `Auto` (and therefore
    /// still awaiting resolution).
    pub fn has_auto_request(&self) -> bool {
        self.compute.is_auto() || self.pipeline.is_auto() || self.auto_cache
    }

    /// The [`AutoTuner`] resolution behind this simulator's knobs: `None`
    /// unless this value came out of [`Self::resolved_for`] (runs resolve
    /// on an internal clone and record the choice in
    /// [`CostReport::resolved_config`] instead).
    pub fn resolved_config(&self) -> Option<&ResolvedConfig> {
        self.resolved.as_ref()
    }

    /// Resolve any `Auto` knob requests against a known problem shape —
    /// `v` virtual processors with state budget `mu` and per-processor
    /// communication budget `gamma` — returning a simulator whose knobs
    /// are all concrete and whose [`Self::resolved_config`] records the
    /// tuner's choices (a plain clone when nothing is `Auto`).
    /// [`Self::run`] and [`Self::resume`] do this implicitly;
    /// `em-service` calls it at admission so the resolution lands in the
    /// tenant ledger before pool shares are granted.
    pub fn resolved_for(&self, v: usize, mu: usize, gamma: usize) -> Self {
        match self.resolve_auto(v, mu, gamma) {
            Some(rc) => self.apply_resolution(rc),
            None => self.clone(),
        }
    }

    /// Run the tuner for the current `Auto` requests; `None` when nothing
    /// is requested as `Auto`.
    fn resolve_auto(&self, v: usize, mu: usize, gamma: usize) -> Option<ResolvedConfig> {
        let footprint = (v as u64).saturating_mul(mu as u64).saturating_add(gamma as u64);
        self.tuner.resolve(
            self.compute.is_auto(),
            self.pipeline.is_auto(),
            self.auto_cache,
            footprint,
        )
    }

    /// A clone with the resolution's concrete values substituted for the
    /// `Auto` requests; it reports [`Self::has_auto_request`] `false`, so
    /// re-entering `run`/`resume` on it cannot resolve again.
    fn apply_resolution(&self, rc: ResolvedConfig) -> Self {
        let mut resolved = self.clone();
        if let Some(mode) = rc.compute {
            resolved.compute = mode;
        }
        if let Some(pipeline) = rc.pipeline {
            resolved.pipeline = pipeline;
        }
        if let Some(bytes) = rc.cache_bytes {
            resolved.cache_bytes = bytes;
        }
        resolved.auto_cache = false;
        resolved.resolved = Some(rc);
        resolved
    }

    /// Persist a durable checkpoint at every superstep barrier on *every*
    /// worker, so the whole `p`-processor run survives a process crash.
    /// Requires the file backend ([`Self::with_file_backend`]); each
    /// worker keeps its manifests and pre-image journal in its own
    /// `dir/proc-<i>/`. The commit protocol tolerates the one-superstep
    /// skew a crash can leave between workers: all workers make their
    /// barrier data durable, then commit manifests, then — only after a
    /// barrier proves every manifest is durable — truncate their
    /// journals. [`Self::resume`] picks the *minimum* committed barrier
    /// across workers, rolls ahead workers back via their journals, and
    /// replays deterministically: final states, ledger, counted parallel
    /// I/O and drive bytes are bit-identical to the uninterrupted run.
    pub fn with_checkpointing(mut self, on: bool) -> Self {
        self.checkpoint = on;
        self
    }

    /// Simulate a whole-process crash at `kill` for chaos testing: every
    /// worker dies at the kill point and the run returns
    /// [`EmError::Killed`]. With [`KillPoint::MidManifest`] worker 0
    /// tears its manifest while the others commit in full — the commit
    /// skew [`Self::resume`] must reconcile. Requires
    /// [`Self::with_checkpointing`].
    pub fn with_kill_point(mut self, kill: KillPoint) -> Self {
        self.kill = Some(kill);
        self
    }

    /// The [`DiskConfig`] each processor's private array is built with —
    /// the shape every array passed to [`Self::run_on`] must have.
    pub fn disk_config(&self) -> EmResult<DiskConfig> {
        let cfg = self
            .machine
            .disk_config()?
            .with_io_mode(self.io_mode)
            .with_pipeline(self.pipeline)
            .with_checksums(self.checksums)
            .with_cache(self.cache_bytes)
            .with_auto_cache(self.auto_cache)
            .with_engine(self.engine)
            .with_pinned_workers(self.pin_workers);
        Ok(match self.retry {
            Some(policy) => cfg.with_retry(policy),
            None => cfg,
        })
    }

    /// Build the `p` private disk arrays [`Self::run`] would construct
    /// internally (file-backed arrays land in `dir/proc-<i>`). Pair with
    /// [`Self::run_on`] to reuse arrays across runs or substitute
    /// caller-provided storage.
    pub fn build_disks(&self) -> EmResult<Vec<DiskArray>> {
        self.machine.validate()?;
        let cfg = self.disk_config()?;
        (0..self.machine.p)
            .map(|i| {
                Ok(match &self.file_dir {
                    None => DiskArray::new_memory_with_faults(cfg, self.fault_plan.clone()),
                    Some(dir) => DiskArray::new_file_with_faults(
                        cfg,
                        dir.join(format!("proc-{i}")),
                        self.fault_plan.clone(),
                    )?,
                })
            })
            .collect()
    }

    /// Run `prog` on `states.len()` virtual processors across `p` threads.
    ///
    /// Equivalent to [`Self::build_disks`] followed by [`Self::run_on`]:
    /// the simulator holds no per-run state, so one value can execute any
    /// number of runs.
    pub fn run<P: BspProgram>(
        &self,
        prog: &P,
        states: Vec<P::State>,
    ) -> EmResult<(RunResult<P::State>, CostReport)> {
        // Resolve `Auto` knob requests *before* the disks are built, so a
        // tuned cache capacity (and pipeline) shape the arrays themselves.
        let gamma = prog.max_comm_bytes().max(MSG_HEADER_BYTES);
        if let Some(rc) = self.resolve_auto(states.len(), prog.max_state_bytes(), gamma) {
            let resolved = self.apply_resolution(rc);
            let disks = resolved.build_disks()?;
            return resolved.run_on(disks, prog, states);
        }
        let disks = self.build_disks()?;
        self.run_on(disks, prog, states)
    }

    /// [`Self::run`] on caller-provided disk arrays, one per processor.
    ///
    /// `disks` must hold exactly `p` arrays matching this simulator's
    /// [`Self::disk_config`] in drive count and block size (typed
    /// [`EmError::InvalidConfig`] otherwise). Each run addresses tracks
    /// from 0 upward and rewrites every region it allocates, so repeated
    /// runs on the same arrays are independent.
    pub fn run_on<P: BspProgram>(
        &self,
        disks: Vec<DiskArray>,
        prog: &P,
        states: Vec<P::State>,
    ) -> EmResult<(RunResult<P::State>, CostReport)> {
        self.run_inner(disks, prog, ParStart::Fresh(states))
    }

    /// Resume a checkpointed `p`-processor run after a (real or simulated)
    /// process crash, continuing from the last barrier every worker
    /// committed.
    ///
    /// Each worker's drive files under `dir/proc-<i>/` are reattached
    /// without truncation. A crash can leave the workers' manifests skewed
    /// by one superstep (some committed barrier `s+1`, some only `s`); the
    /// global resume point is the *minimum* committed barrier, and each
    /// ahead worker's durable pre-image journal — never truncated before
    /// every manifest was proven durable — rolls its drives back to it.
    /// Fault-injection schedule positions are restored per worker, and the
    /// remaining supersteps replay deterministically: final states, the
    /// communication ledger, counted parallel I/O operations and the drive
    /// bytes are bit-identical to the uninterrupted run. Resuming an
    /// already-finished run just rebuilds its result. The simulator's
    /// configuration must match the checkpointed run; a typed
    /// [`EmError::InvalidConfig`] names the first mismatch.
    pub fn resume<P: BspProgram>(&self, prog: &P) -> EmResult<(RunResult<P::State>, CostReport)> {
        self.machine.validate()?;
        if !self.checkpoint {
            return Err(EmError::InvalidConfig(
                "resume requires checkpointing (with_checkpointing)".into(),
            ));
        }
        let Some(dir) = &self.file_dir else {
            return Err(EmError::InvalidConfig(
                "resume requires the file backend (with_file_backend)".into(),
            ));
        };
        let p = self.machine.p;
        let cfg = self.disk_config()?;
        let mu = prog.max_state_bytes();
        let gamma = prog.max_comm_bytes().max(MSG_HEADER_BYTES);

        // Pass 1: every worker's latest committed manifest. The commit
        // protocol bounds the skew between workers to one superstep, so
        // the minimum committed barrier is the global resume point and
        // the keep-two manifest retention guarantees every worker still
        // holds a manifest *at* that barrier.
        let mut stores = Vec::with_capacity(p);
        let mut latest = Vec::with_capacity(p);
        for i in 0..p {
            let pdir = dir.join(format!("proc-{i}"));
            let store = CheckpointStore::attach(&pdir)?;
            let (step, payload) = store.latest_manifest()?.ok_or_else(|| {
                EmError::InvalidConfig(format!(
                    "no committed checkpoint manifest for processor {i} to resume from"
                ))
            })?;
            let m = Manifest::decode(&payload)?;
            m.check_shape(
                mu as u64,
                gamma as u64,
                self.seed,
                cfg.num_disks as u32,
                cfg.block_bytes as u64,
                p as u32,
                i as u32,
            )?;
            if m.next_step != step {
                return Err(EmError::InvalidConfig(
                    "checkpoint manifest step disagrees with its payload".into(),
                ));
            }
            stores.push((pdir, store));
            latest.push(m);
        }
        let resume_step = latest.iter().map(|m| m.next_step).min().expect("p >= 1 workers");
        let v = latest[0].v as usize;
        // `v` is only known from the manifests, so `Auto` knob resolution
        // happens here: re-enter `resume` on the resolved clone (which has
        // no `Auto` request left, so it proceeds straight through).
        if let Some(rc) = self.resolve_auto(v, mu, gamma) {
            return self.apply_resolution(rc).resume(prog);
        }
        let k = self.machine.group_size(4 + mu, v)?;
        let batch_unit = k * p;
        let num_batches = v.div_ceil(batch_unit);

        // Pass 2: load each worker's manifest at the resume barrier, undo
        // any journaled writes past it, and reattach the real array. The
        // undo runs on a plain array — no cache, retry or fault injection
        // — so the restoring writes neither advance nor consume the fault
        // schedule the real array restores below.
        let mut workers = Vec::with_capacity(p);
        let mut disks = Vec::with_capacity(p);
        let mut globals = None;
        for (i, m_latest) in latest.into_iter().enumerate() {
            let (pdir, store) = &stores[i];
            let m = if m_latest.next_step == resume_step {
                m_latest
            } else {
                let payload = store.load_manifest(resume_step)?.ok_or_else(|| {
                    EmError::InvalidConfig(format!(
                        "processor {i} committed past barrier {resume_step} but no longer \
                         holds that barrier's manifest"
                    ))
                })?;
                let m = Manifest::decode(&payload)?;
                m.check_shape(
                    mu as u64,
                    gamma as u64,
                    self.seed,
                    cfg.num_disks as u32,
                    cfg.block_bytes as u64,
                    p as u32,
                    i as u32,
                )?;
                m
            };
            if m.v as usize != v || m.k != k as u64 || m.num_groups != num_batches as u64 {
                return Err(EmError::InvalidConfig(
                    "checkpoint resume shape mismatch: group geometry differs from the \
                     checkpointed run"
                        .into(),
                ));
            }
            if let Some(journal) = JournalFile::read(pdir)? {
                if journal.epoch > resume_step {
                    let plain = self
                        .machine
                        .disk_config()?
                        .with_io_mode(self.io_mode)
                        .with_checksums(self.checksums);
                    let mut undo = DiskArray::open_file(plain, pdir)?;
                    undo.apply_journal_undo(&journal)?;
                }
            }
            let mut arr = DiskArray::open_file_with_faults(cfg, pdir, self.fault_plan.clone())?;
            if let Some(ops) = &m.fault_ops {
                arr.restore_fault_op_counts(ops);
            }
            disks.push(arr);
            if i == 0 {
                // Run-global bookkeeping (ledger, aggregates, recovery
                // tallies) lives in worker 0's manifest only.
                globals = Some((
                    m.finished,
                    CommLedger { steps: m.ledger.clone() },
                    m.real_comm,
                    m.recovered,
                    m.replays,
                ));
            }
            workers.push(WorkerResume {
                counts: GroupCounts {
                    counts: m.counts.iter().map(|&c| c as usize).collect(),
                    prefix_in_bucket: m.prefix.iter().map(|&c| c as usize).collect(),
                },
                alloc_next: m.alloc_next.iter().map(|&t| t as usize).collect(),
                alloc_free: m
                    .alloc_free
                    .iter()
                    .map(|f| f.iter().map(|&t| t as usize).collect())
                    .collect(),
                phases: m.phases,
                committed_io: m.io,
                balances: m.balances,
            });
        }
        let (finished, ledger, real_comm, recovered, replays) = globals.expect("p >= 1 workers");
        let resume = ParResume {
            v,
            start_step: resume_step as usize,
            finished,
            workers,
            ledger,
            real_comm,
            recovered,
            replays,
        };
        self.run_inner(disks, prog, ParStart::Resume(Box::new(resume)))
    }

    /// The shared engine behind [`Self::run_on`] and [`Self::resume`]:
    /// identical superstep machinery, differing only in whether each
    /// worker's committed bookkeeping starts empty or from its manifest.
    fn run_inner<P: BspProgram>(
        &self,
        disks: Vec<DiskArray>,
        prog: &P,
        start: ParStart<P::State>,
    ) -> EmResult<(RunResult<P::State>, CostReport)> {
        let start_time = Instant::now();
        self.machine.validate()?;
        if self.checkpoint && self.file_dir.is_none() {
            return Err(EmError::InvalidConfig(
                "checkpointing requires the file backend (with_file_backend)".into(),
            ));
        }
        if self.kill.is_some() && !self.checkpoint {
            return Err(EmError::InvalidConfig(
                "a kill point requires checkpointing (with_checkpointing)".into(),
            ));
        }
        let v = match &start {
            ParStart::Fresh(states) => states.len(),
            ParStart::Resume(r) => r.v,
        };
        if v == 0 {
            return Err(EmError::Bsp(BspError::NoProcessors));
        }
        // `run`/`resume` resolve before the disks exist; this covers
        // `run_on` callers with their own arrays. Compute and pipeline
        // resolutions apply fully here; a tuned cache capacity cannot be
        // retrofitted onto caller-built arrays, so on this path the
        // unresolved `auto_cache` request simply leaves the cache off
        // (inert by the substrate's contract).
        {
            let gamma = prog.max_comm_bytes().max(MSG_HEADER_BYTES);
            if let Some(rc) = self.resolve_auto(v, prog.max_state_bytes(), gamma) {
                return self.apply_resolution(rc).run_inner(disks, prog, start);
            }
        }
        let p = self.machine.p;
        if disks.len() != p {
            return Err(EmError::InvalidConfig(format!(
                "{} disk arrays provided for p = {p} processors",
                disks.len()
            )));
        }
        {
            let expected = self.machine.disk_config()?;
            for arr in &disks {
                let cfg = arr.config();
                if cfg.num_disks != expected.num_disks || cfg.block_bytes != expected.block_bytes {
                    return Err(EmError::InvalidConfig(format!(
                        "disk array shape {}x{}B does not match the machine's {}x{}B",
                        cfg.num_disks, cfg.block_bytes, expected.num_disks, expected.block_bytes
                    )));
                }
            }
        }
        let disk_slots: Vec<Mutex<Option<DiskArray>>> =
            disks.into_iter().map(|d| Mutex::new(Some(d))).collect();
        let mu = prog.max_state_bytes();
        let gamma = prog.max_comm_bytes().max(MSG_HEADER_BYTES);
        let ctx_region = 4 + mu;
        let k = self.machine.group_size(ctx_region, v)?;
        let batch_unit = k * p; // virtual processors per batch
        let num_batches = v.div_ceil(batch_unit);

        // Local context region index on the owner for (batch, slot).
        let local_region = move |batch: usize, slot: usize| batch * k + slot;

        // Unpack the start mode: fresh initial states, or per-worker
        // committed bookkeeping plus worker 0's run-global bookkeeping.
        let (init_states, resume_state) = match start {
            ParStart::Fresh(states) => (Some(states), None),
            ParStart::Resume(r) => (None, Some(*r)),
        };
        let (start_step, resume_finished, ledger0, real0, rec0, rep0, worker_resumes) =
            match resume_state {
                None => (0, false, CommLedger::default(), 0, 0, 0, None),
                Some(r) => (
                    r.start_step,
                    r.finished,
                    r.ledger,
                    r.real_comm,
                    r.recovered,
                    r.replays,
                    Some(r.workers),
                ),
            };

        // Shared state.
        let slots: Vec<Mutex<Option<P::State>>> = match init_states {
            Some(states) => states.into_iter().map(|s| Mutex::new(Some(s))).collect(),
            None => (0..v).map(|_| Mutex::new(None)).collect(),
        };
        let resume_slots: Vec<Mutex<Option<WorkerResume>>> = match worker_resumes {
            Some(ws) => ws.into_iter().map(|w| Mutex::new(Some(w))).collect(),
            None => (0..p).map(|_| Mutex::new(None)).collect(),
        };
        let barrier = Barrier::new(p);
        let stop = AtomicBool::new(false);
        // Set only by thread 0's termination decision — never by failures
        // — so a manifest's `finished` flag cannot be corrupted by an
        // error racing in from another worker's commit.
        let terminated = AtomicBool::new(false);
        let failed: Mutex<Option<EmError>> = Mutex::new(None);
        let any_continue = AtomicBool::new(false);
        let any_msgs = AtomicBool::new(false);
        let agg_msgs = AtomicU64::new(0);
        let agg_bytes = AtomicU64::new(0);
        let agg_h = AtomicU64::new(0);
        let agg_h_msgs = AtomicU64::new(0);
        let agg_w = AtomicU64::new(0);
        let real_comm = AtomicU64::new(real0);
        let ledger: Mutex<CommLedger> = Mutex::new(ledger0);
        let reports: Mutex<Vec<WorkerReport>> = Mutex::new(Vec::with_capacity(p));

        // Recovery coordination. Each thread that fails an attempt
        // registers `(error, retried_blocks, recovery_ops)` here *before*
        // the superstep barrier; thread 0 decides replay-vs-fail for
        // everyone between the two barriers. `replay_token` signals a
        // replay by carrying the (lockstep) decision number it applies to,
        // so no reset-race is possible.
        let fault_run = self.fault_plan.is_some() || self.recovery.is_some();
        let fault_stats = self.fault_plan.as_ref().map(|plan| plan.stats());
        let attempt_errors: Mutex<Vec<(EmError, u64, u64)>> = Mutex::new(Vec::new());
        let replay_token = AtomicU64::new(u64::MAX);
        let replays_total = AtomicU64::new(rep0);
        let recovered_total = AtomicU64::new(rec0);

        // Lock-step transport: one channel per processor.
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..p).map(|_| crossbeam_channel::unbounded::<Bundle>()).unzip();

        // One persistent compute pool (sized n·p) shared by all processor
        // threads; acquired once per run, reused across supersteps,
        // batches, replays and subsequent runs of this simulator.
        let compute_pool = self.compute_pool();

        std::thread::scope(|scope| {
            for (i, rx) in receivers.into_iter().enumerate() {
                let senders = senders.clone();
                let slots = &slots;
                let barrier = &barrier;
                let stop = &stop;
                let failed = &failed;
                let any_continue = &any_continue;
                let any_msgs = &any_msgs;
                let agg_msgs = &agg_msgs;
                let agg_bytes = &agg_bytes;
                let agg_h = &agg_h;
                let agg_h_msgs = &agg_h_msgs;
                let agg_w = &agg_w;
                let real_comm = &real_comm;
                let ledger = &ledger;
                let reports = &reports;
                let machine = self.machine;
                let placement = self.placement;
                let seed = self.seed;
                let max_supersteps = self.max_supersteps;
                let io_mode = self.io_mode;
                let pipeline = self.pipeline;
                let compute = self.compute;
                let compute_pool = compute_pool.clone();
                let checksums = self.checksums;
                let retry = self.retry;
                let recovery = self.recovery;
                let cache_bytes = self.cache_bytes;
                let checkpoint = self.checkpoint;
                let kill = self.kill;
                let file_dir = self.file_dir.clone();
                let disk_slots = &disk_slots;
                let resume_slots = &resume_slots;
                let terminated = &terminated;
                let fault_stats = fault_stats.clone();
                let attempt_errors = &attempt_errors;
                let replay_token = &replay_token;
                let replays_total = &replays_total;
                let recovered_total = &recovered_total;

                std::thread::Builder::new()
                    .name(format!("em-par-p{i}"))
                    .spawn_scoped(scope, move || {
                    let work = (|| -> EmResult<()> {
                        let depth = pipeline.depth();
                        let cfg = machine
                            .disk_config()?
                            .with_io_mode(io_mode)
                            .with_pipeline(pipeline)
                            .with_checksums(checksums)
                            .with_cache(cache_bytes);
                        let cfg = match retry {
                            Some(policy) => cfg.with_retry(policy),
                            None => cfg,
                        };
                        let mut disks =
                            disk_slots[i].lock().take().expect("one disk array per processor");
                        // Durable checkpointing: this worker's manifests
                        // and pre-image journal live next to its drive
                        // files in `dir/proc-<i>/`.
                        let store = if checkpoint {
                            let pdir = file_dir
                                .as_ref()
                                .expect("checkpointing validated to have a file dir")
                                .join(format!("proc-{i}"));
                            if !disks.durable_journal_attached() {
                                disks.attach_durable_journal(&pdir)?;
                            }
                            Some(CheckpointStore::attach(&pdir)?)
                        } else {
                            None
                        };
                        let mut alloc = TrackAllocator::new(cfg.num_disks);
                        // Context store: this processor holds num_batches*k regions.
                        let ctx = ContextStore::allocate(
                            &mut alloc,
                            cfg.num_disks,
                            cfg.block_bytes,
                            num_batches * k,
                            mu,
                        )?;
                        // Message geometry: groups are batches of k*p pids.
                        // Partial-block slack: each of the p·num_batches
                        // producer slots can leave one partial block per
                        // owner stream of a batch (p streams).
                        let geom = MsgGeometry::allocate_with_slack(
                            &mut alloc,
                            v.max(batch_unit),
                            batch_unit,
                            gamma,
                            cfg.num_disks,
                            cfg.block_bytes,
                            p * p * num_batches + num_batches,
                        )?;
                        // My pids in a batch: (pid, slot) pairs.
                        let my_pids = |batch: usize| -> Vec<(usize, usize)> {
                            (0..k)
                                .map(move |slot| (batch * batch_unit + i * k + slot, slot))
                                .filter(|&(pid, _)| pid < v)
                                .collect()
                        };

                        let resume = resume_slots[i].lock().take();
                        if resume.is_none() {
                            // Initial context load (batched per round).
                            for batch in 0..num_batches {
                                let pids = my_pids(batch);
                                if let Some(&(_, first_slot)) = pids.first() {
                                    let bufs: Vec<Vec<u8>> = pids
                                        .iter()
                                        .map(|&(pid, _)| {
                                            let state = slots[pid]
                                                .lock()
                                                .take()
                                                .expect("initial state present");
                                            to_bytes(&state)
                                        })
                                        .collect();
                                    ctx.write_group(
                                        &mut disks,
                                        local_region(batch, first_slot),
                                        &bufs,
                                    )?;
                                }
                            }
                            disks.sync()?; // input distribution durable before timing
                        }
                        disks.reset_stats();

                        // Committed bookkeeping: empty on a fresh run, or
                        // restored from this worker's barrier manifest.
                        // `committed_io` carries the I/O counted before
                        // the barrier the run resumed from; the live
                        // array counts only what this process adds.
                        let mut counts;
                        let mut phases;
                        let committed_io;
                        let mut balances;
                        match resume {
                            Some(r) => {
                                alloc.restore_state(r.alloc_next, r.alloc_free);
                                counts = r.counts;
                                phases = r.phases;
                                committed_io = r.committed_io;
                                balances = r.balances;
                            }
                            None => {
                                counts = GroupCounts::empty(geom.num_groups);
                                phases = PhaseIo::default();
                                committed_io = IoStats::new(cfg.num_disks);
                                balances = Vec::new();
                                if let Some(store) = &store {
                                    // A fresh checkpointed run must not
                                    // inherit a previous run's manifests
                                    // or journal — stale artifacts would
                                    // poison a later resume.
                                    store.clear()?;
                                    disks.clear_durable_journal()?;
                                    let manifest = par_manifest(
                                        v,
                                        k,
                                        num_batches,
                                        mu,
                                        gamma,
                                        seed,
                                        &cfg,
                                        p,
                                        i,
                                        0,
                                        false,
                                        &counts,
                                        &alloc,
                                        disks.fault_op_counts(),
                                        &phases,
                                        committed_io.clone(),
                                        &balances,
                                        &CommLedger::default(),
                                        0,
                                        0,
                                        0,
                                    );
                                    store.commit_manifest(0, &manifest.encode())?;
                                }
                            }
                        }
                        // Wall-clock split; never rewound on replay — the
                        // time genuinely elapsed.
                        let mut walls = PhaseWall::default();
                        // Per-thread context-buffer pool; caches only
                        // capacity, so replay needs no snapshot of it.
                        let mut ctx_pool = BufferPool::new();
                        // Per-thread routing bookkeeping; like the pool it
                        // caches only capacity, so replay needs no snapshot.
                        let mut routing_scratch = RoutingScratch::new();
                        let mut zombie: Option<EmError> = None;
                        let mut exchange_phase = 0u64;
                        let mut pending_bundles: Vec<Bundle> = Vec::new();
                        // Lockstep counter of barrier decisions; pairs with
                        // `replay_token` to signal replays race-free.
                        let mut decision_no = 0u64;

                        // A resumed finished run has nothing left to
                        // replay; skip straight to the final read-back.
                        let step_limit =
                            if resume_finished { start_step } else { max_supersteps };
                        'steps: for step in start_step..step_limit {
                            let mut attempt = 0usize;
                            loop {
                            // Each attempt runs the whole compound
                            // superstep inside a disk recovery epoch;
                            // committed bookkeeping is snapshotted so a
                            // rolled-back attempt leaves no trace. With
                            // checkpointing the epoch also journals
                            // durable pre-images keyed to this superstep,
                            // so a crashed process can undo a half-done
                            // superstep on resume.
                            if store.is_some() {
                                if let Err(e) = disks.begin_checkpoint_epoch(step as u64 + 1) {
                                    if zombie.is_none() {
                                        zombie = Some(e.into());
                                    }
                                }
                            } else if recovery.is_some() {
                                if let Err(e) = disks.begin_recovery_epoch() {
                                    if zombie.is_none() {
                                        zombie = Some(e.into());
                                    }
                                }
                            }
                            // Determinism across crash/resume: the
                            // placement stream is a pure function of
                            // (seed, worker, superstep), re-derived at
                            // every attempt — never of run history.
                            let mut rng = StdRng::seed_from_u64(superstep_seed(
                                seed,
                                i as u64,
                                step as u64,
                            ));
                            let alloc_snap = alloc.clone();
                            let counts_snap = counts.clone();
                            let phases_snap = phases.clone();
                            let balances_len = balances.len();

                            let mut scratch = crate::msg::ScratchState::new(&geom);
                            let mut backlog = WriteBacklog::new();
                            // Streaming window: the context reads of up to
                            // `depth` rounds are in flight at once. One
                            // `Option` entry per prefetched round (`None`
                            // for a round with no local pids) keeps the
                            // window aligned with the batch sequence.
                            let mut ctx_window: VecDeque<Option<PendingGroupRead>> =
                                VecDeque::with_capacity(depth.min(num_batches));
                            let mut next_prefetch = 0usize;

                            for batch in 0..num_batches {
                                let pids = my_pids(batch);

                                // Prefetch the window's rounds so their
                                // local reads overlap the block-forwarding
                                // exchanges below (counted at submit).
                                let fetch_t0 = Instant::now();
                                while depth > 0
                                    && zombie.is_none()
                                    && next_prefetch < num_batches
                                    && next_prefetch < batch + depth
                                {
                                    let ppids = my_pids(next_prefetch);
                                    if ppids.is_empty() {
                                        ctx_window.push_back(None);
                                    } else {
                                        let ops0 = disks.stats().parallel_ops;
                                        match ctx.submit_read_group(
                                            &mut disks,
                                            local_region(next_prefetch, ppids[0].1),
                                            ppids.len(),
                                        ) {
                                            Ok(pending) => ctx_window.push_back(Some(pending)),
                                            Err(e) => {
                                                zombie = Some(e);
                                                ctx_window.push_back(None);
                                            }
                                        }
                                        phases.fetch_ctx += disks.stats().parallel_ops - ops0;
                                    }
                                    next_prefetch += 1;
                                }
                                let mut pending_ctx: Option<PendingGroupRead> =
                                    ctx_window.pop_front().flatten();
                                if zombie.is_some() {
                                    // A failing attempt joins nothing more:
                                    // drop the in-flight reads so the
                                    // barrier's unjoined-ticket check sees
                                    // a clean array.
                                    pending_ctx = None;
                                    ctx_window.clear();
                                }

                                // --- Fetching Phase: forward local blocks to owners. ---
                                let mut fwd: Vec<Vec<RawBlock>> =
                                    (0..p).map(|_| Vec::new()).collect();
                                if zombie.is_none() {
                                    let ops0 = disks.stats().parallel_ops;
                                    match fetch_batch_raw_blocks(&mut disks, &geom, &counts, batch)
                                    {
                                        Ok(blocks) => {
                                            for b in blocks {
                                                // dst_tag = batch·p + owner.
                                                fwd[b.dst_tag as usize % p].push(b);
                                            }
                                        }
                                        Err(e) => zombie = Some(e),
                                    }
                                    phases.fetch_msg += disks.stats().parallel_ops - ops0;
                                }
                                for (dst, blocks) in fwd.into_iter().enumerate() {
                                    if dst != i {
                                        real_comm.fetch_add(
                                            (blocks.len() * cfg.block_bytes) as u64,
                                            Ordering::Relaxed,
                                        );
                                    }
                                    senders[dst]
                                        .send(Bundle { from: i, phase: exchange_phase, blocks })
                                        .expect("receiver alive");
                                }
                                let arrived =
                                    recv_exchange(&rx, &mut pending_bundles, exchange_phase, p);
                                exchange_phase += 1;
                                let my_blocks: Vec<RawBlock> =
                                    arrived.into_iter().flat_map(|b| b.blocks).collect();
                                walls.fetch += fetch_t0.elapsed();

                                // --- Computing + Writing Phases. ---
                                let mut to_store: Vec<Vec<RawBlock>> =
                                    (0..p).map(|_| Vec::new()).collect();
                                if zombie.is_none() {
                                    let result = run_batch_compute::<P>(
                                        prog,
                                        &mut disks,
                                        &ctx,
                                        &geom,
                                        my_blocks,
                                        &pids,
                                        local_region,
                                        batch,
                                        step,
                                        v,
                                        p,
                                        batch_unit,
                                        k,
                                        gamma,
                                        compute,
                                        compute_pool.as_ref(),
                                        pending_ctx.take(),
                                        if depth > 0 { Some(&mut backlog) } else { None },
                                        &mut rng,
                                        &mut phases,
                                        &mut walls,
                                        &mut ctx_pool,
                                        agg_msgs,
                                        agg_bytes,
                                        agg_h,
                                        agg_h_msgs,
                                        agg_w,
                                        any_continue,
                                        any_msgs,
                                    );
                                    match result {
                                        Ok(bundles) => to_store = bundles,
                                        Err(e) => zombie = Some(e),
                                    }
                                }
                                for (dst, blocks) in to_store.into_iter().enumerate() {
                                    if dst != i {
                                        real_comm.fetch_add(
                                            (blocks.len() * cfg.block_bytes) as u64,
                                            Ordering::Relaxed,
                                        );
                                    }
                                    senders[dst]
                                        .send(Bundle { from: i, phase: exchange_phase, blocks })
                                        .expect("receiver alive");
                                }
                                let arrived =
                                    recv_exchange(&rx, &mut pending_bundles, exchange_phase, p);
                                exchange_phase += 1;
                                let write_t0 = Instant::now();
                                if zombie.is_none() {
                                    let received: Vec<RawBlock> =
                                        arrived.into_iter().flat_map(|b| b.blocks).collect();
                                    let ops0 = disks.stats().parallel_ops;
                                    let stored = if depth > 0 {
                                        store_received_blocks_deferred(
                                            &mut disks,
                                            &mut alloc,
                                            &geom,
                                            &mut scratch,
                                            received,
                                            |tag| tag as usize / p,
                                            &mut rng,
                                            placement,
                                            &mut backlog,
                                        )
                                    } else {
                                        store_received_blocks(
                                            &mut disks,
                                            &mut alloc,
                                            &geom,
                                            &mut scratch,
                                            received,
                                            |tag| tag as usize / p,
                                            &mut rng,
                                            placement,
                                        )
                                    };
                                    if let Err(e) = stored {
                                        zombie = Some(e);
                                    }
                                    phases.scatter += disks.stats().parallel_ops - ops0;
                                }
                                walls.write += write_t0.elapsed();
                            }

                            // Deferred writes must be on disk — and their
                            // errors known — before the local
                            // reorganization (or a rollback) reuses their
                            // tracks.
                            let drain_t0 = Instant::now();
                            if let Err(e) = backlog.drain() {
                                if zombie.is_none() {
                                    zombie = Some(e.into());
                                }
                            }
                            walls.write += drain_t0.elapsed();

                            // --- Step 2: local reorganization (Algorithm 2). ---
                            if zombie.is_none() {
                                balances.push(scratch.balance_factor());
                                let reorg_t0 = Instant::now();
                                let ops0 = disks.stats().parallel_ops;
                                match simulate_routing(
                                    &mut disks,
                                    &mut alloc,
                                    &geom,
                                    scratch,
                                    &mut routing_scratch,
                                    &mut ctx_pool,
                                    compute_pool.as_ref(),
                                ) {
                                    Ok((c, _)) => counts = c,
                                    Err(e) => zombie = Some(e),
                                }
                                phases.routing += disks.stats().parallel_ops - ops0;
                                walls.reorganize += reorg_t0.elapsed();
                            }

                            // Superstep boundary: this processor's writes are
                            // durable before the barrier ends the superstep.
                            // No-op on memory; generates no counted I/O ops.
                            if zombie.is_none() {
                                let sync_t0 = Instant::now();
                                if let Err(e) = disks.sync() {
                                    zombie = Some(e.into());
                                }
                                walls.sync += sync_t0.elapsed();
                            }

                            // Register this attempt's failure *before* the
                            // barrier so thread 0 can decide replay-vs-fail
                            // for everyone between the barriers.
                            if let Some(e) = zombie.take() {
                                if recovery.is_some() {
                                    attempt_errors.lock().push((
                                        e,
                                        disks.stats().retried_blocks,
                                        disks.stats().recovery_ops,
                                    ));
                                } else {
                                    let e = wrap_par_fault(
                                        fault_run,
                                        step,
                                        e,
                                        &fault_stats,
                                        disks.stats().retried_blocks,
                                        disks.stats().recovery_ops,
                                        0,
                                        0,
                                    );
                                    register_failure(failed, e);
                                    stop.store(true, Ordering::SeqCst);
                                }
                            }

                            barrier.wait();
                            if i == 0 {
                                let mut regs = if recovery.is_some() {
                                    std::mem::take(&mut *attempt_errors.lock())
                                } else {
                                    Vec::new()
                                };
                                if regs.is_empty() {
                                    ledger.lock().push(SuperstepComm {
                                        msgs: agg_msgs.swap(0, Ordering::Relaxed),
                                        bytes: agg_bytes.swap(0, Ordering::Relaxed),
                                        h_bytes: agg_h.swap(0, Ordering::Relaxed),
                                        h_msgs: agg_h_msgs.swap(0, Ordering::Relaxed),
                                        h_packets: 0,
                                        w_comp: agg_w.swap(0, Ordering::Relaxed),
                                    });
                                    if attempt > 0 {
                                        recovered_total.fetch_add(1, Ordering::Relaxed);
                                    }
                                    let had_continue = any_continue.swap(false, Ordering::Relaxed);
                                    let had_msgs = any_msgs.swap(false, Ordering::Relaxed);
                                    if !had_continue && !had_msgs {
                                        terminated.store(true, Ordering::SeqCst);
                                        stop.store(true, Ordering::SeqCst);
                                    }
                                    if step + 1 == max_supersteps && !stop.load(Ordering::SeqCst) {
                                        let mut f = failed.lock();
                                        if f.is_none() {
                                            *f = Some(EmError::Bsp(BspError::SuperstepLimit {
                                                limit: max_supersteps,
                                            }));
                                        }
                                        stop.store(true, Ordering::SeqCst);
                                    }
                                } else {
                                    let budget =
                                        recovery.map_or(0, |r| r.max_replays_per_superstep);
                                    let all_transient = regs.iter().all(
                                        |(e, _, _)| matches!(e, EmError::Disk(d) if d.is_transient()),
                                    );
                                    if all_transient && attempt < budget {
                                        // Replay: every thread rolls back and
                                        // re-runs this superstep. The failed
                                        // attempt's aggregates are discarded
                                        // and re-accumulated by the replay.
                                        replays_total.fetch_add(1, Ordering::Relaxed);
                                        agg_msgs.swap(0, Ordering::Relaxed);
                                        agg_bytes.swap(0, Ordering::Relaxed);
                                        agg_h.swap(0, Ordering::Relaxed);
                                        agg_h_msgs.swap(0, Ordering::Relaxed);
                                        agg_w.swap(0, Ordering::Relaxed);
                                        any_continue.swap(false, Ordering::Relaxed);
                                        any_msgs.swap(false, Ordering::Relaxed);
                                        replay_token.store(decision_no, Ordering::SeqCst);
                                    } else {
                                        let retried: u64 = regs.iter().map(|r| r.1).sum();
                                        let rec_ops: u64 = regs.iter().map(|r| r.2).sum();
                                        // Registration order races across
                                        // threads; surface the disk error as
                                        // the root cause — co-failing threads
                                        // derive logic errors from the faulty
                                        // thread's partial exchange bundles.
                                        let root = regs
                                            .iter()
                                            .position(|(e, _, _)| matches!(e, EmError::Disk(_)))
                                            .unwrap_or(0);
                                        let (first, _, _) = regs.swap_remove(root);
                                        let e = wrap_par_fault(
                                            fault_run,
                                            step,
                                            first,
                                            &fault_stats,
                                            retried,
                                            rec_ops,
                                            recovered_total.load(Ordering::Relaxed),
                                            replays_total.load(Ordering::Relaxed),
                                        );
                                        register_failure(failed, e);
                                        stop.store(true, Ordering::SeqCst);
                                    }
                                }
                            }
                            barrier.wait();
                            let do_replay = replay_token.load(Ordering::SeqCst) == decision_no;
                            decision_no += 1;
                            if do_replay {
                                // Every thread — failed or not — rewinds its
                                // disks and bookkeeping to the last committed
                                // superstep; the next attempt re-runs the
                                // exchanges in lockstep (exchange phases stay
                                // monotone, they are never rewound).
                                if let Err(e) = disks.rollback_recovery_epoch() {
                                    zombie = Some(e.into());
                                }
                                alloc = alloc_snap;
                                counts = counts_snap;
                                phases = phases_snap;
                                balances.truncate(balances_len);
                                attempt += 1;
                                continue;
                            }
                            if store.is_some() || recovery.is_some() {
                                disks.commit_recovery_epoch();
                            }
                            if let Some(store) = &store {
                                // Barrier commit protocol. Every worker's
                                // superstep data is already durable (the
                                // pre-barrier sync); now each worker
                                // commits its manifest, a barrier proves
                                // *all* manifests durable, and only then
                                // may anyone truncate the journal that
                                // protects this epoch — so a crash at any
                                // instant leaves the workers' committed
                                // barriers skewed by at most one
                                // superstep, which resume reconciles.
                                let failed_run = failed.lock().is_some();
                                let mid_superstep_kill = matches!(
                                    kill,
                                    Some(KillPoint::MidSuperstep(b)) if b == step
                                );
                                if !failed_run && !mid_superstep_kill {
                                    let mut io_now = committed_io.clone();
                                    io_now.merge(disks.stats());
                                    let (ledger_now, real_now, rec_now, rep_now) = if i == 0 {
                                        (
                                            ledger.lock().clone(),
                                            real_comm.load(Ordering::SeqCst),
                                            recovered_total.load(Ordering::SeqCst),
                                            replays_total.load(Ordering::SeqCst),
                                        )
                                    } else {
                                        (CommLedger::default(), 0, 0, 0)
                                    };
                                    let manifest = par_manifest(
                                        v,
                                        k,
                                        num_batches,
                                        mu,
                                        gamma,
                                        seed,
                                        &cfg,
                                        p,
                                        i,
                                        step + 1,
                                        terminated.load(Ordering::SeqCst),
                                        &counts,
                                        &alloc,
                                        disks.fault_op_counts(),
                                        &phases,
                                        io_now,
                                        &balances,
                                        &ledger_now,
                                        real_now,
                                        rec_now,
                                        rep_now,
                                    );
                                    let payload = manifest.encode();
                                    let committed = if i == 0
                                        && matches!(
                                            kill,
                                            Some(KillPoint::MidManifest(b)) if b == step
                                        ) {
                                        // The crash tears worker 0's
                                        // manifest mid-write while the
                                        // other workers committed theirs
                                        // in full — the worst-case commit
                                        // skew the resume protocol exists
                                        // to reconcile.
                                        store.write_torn_manifest(
                                            step as u64 + 1,
                                            &payload,
                                            payload.len() / 2 + 8,
                                        )
                                    } else {
                                        store.commit_manifest(step as u64 + 1, &payload)
                                    };
                                    if let Err(e) = committed {
                                        register_failure(failed, e.into());
                                        stop.store(true, Ordering::SeqCst);
                                    }
                                }
                                // No journal truncation before every
                                // worker's manifest is durable.
                                barrier.wait();
                                let failed_run = failed.lock().is_some();
                                let keep_journal = matches!(
                                    kill,
                                    Some(KillPoint::MidManifest(b) | KillPoint::MidSuperstep(b))
                                        if b == step
                                );
                                if !failed_run && !keep_journal {
                                    if let Err(e) = disks.clear_durable_journal() {
                                        register_failure(failed, e.into());
                                        stop.store(true, Ordering::SeqCst);
                                    }
                                }
                                if matches!(kill, Some(kp) if kp.step() == step) {
                                    // The simulated whole-process crash:
                                    // every worker dies here, skipping the
                                    // final read-back exactly as a real
                                    // crash would.
                                    return Err(EmError::Killed { step });
                                }
                            }
                            if stop.load(Ordering::SeqCst) {
                                break 'steps;
                            }
                            break;
                            }
                        }

                        // Return final states (batched per round).
                        for batch in 0..num_batches {
                            let pids = my_pids(batch);
                            if let Some(&(_, first_slot)) = pids.first() {
                                let bufs = ctx.read_group(
                                    &mut disks,
                                    local_region(batch, first_slot),
                                    pids.len(),
                                )?;
                                for (&(pid, _), buf) in pids.iter().zip(bufs) {
                                    *slots[pid].lock() = Some(from_bytes::<P::State>(&buf)?);
                                }
                            }
                        }
                        // The reported I/O is the committed base (zero on
                        // a fresh run) plus everything this process did —
                        // bit-identical to an uninterrupted run's count.
                        let mut final_io = committed_io;
                        final_io.merge(&disks.take_stats());
                        reports.lock().push((
                            final_io,
                            phases,
                            walls,
                            alloc.max_frontier(),
                            balances,
                        ));
                        Ok(())
                    })();
                    if let Err(e) = work {
                        register_failure(failed, e);
                        stop.store(true, Ordering::SeqCst);
                    }
                })
                    .expect("spawn em-par processor thread");
            }
        });

        if let Some(err) = failed.into_inner() {
            // In-loop failures are already wrapped; this catches raw disk
            // errors from the initial load or final read-back of a fault
            // run (already-wrapped and non-disk errors pass through).
            return Err(wrap_par_fault(
                fault_run,
                0,
                err,
                &fault_stats,
                0,
                0,
                recovered_total.into_inner(),
                replays_total.into_inner(),
            ));
        }
        let ledger = ledger.into_inner();

        let mut final_states = Vec::with_capacity(v);
        for slot in slots {
            final_states.push(
                slot.into_inner()
                    .ok_or_else(|| EmError::InvalidConfig("worker lost a state".into()))?,
            );
        }

        let mut io = IoStats::new(self.machine.d);
        let mut phases = PhaseIo::default();
        let mut phase_wall = PhaseWall::default();
        let mut tracks = 0usize;
        let mut balances: Vec<f64> = Vec::new();
        let mut max_ops = 0u64;
        for (s, ph, pw, t, b) in reports.into_inner() {
            max_ops = max_ops.max(s.parallel_ops);
            io.merge(&s);
            phases.fetch_ctx += ph.fetch_ctx;
            phases.fetch_msg += ph.fetch_msg;
            phases.scatter += ph.scatter;
            phases.write_ctx += ph.write_ctx;
            phases.routing += ph.routing;
            // Workers run concurrently: the slowest worker bounds the wall.
            phase_wall.merge_max(&pw);
            tracks = tracks.max(t);
            for (idx, bf) in b.into_iter().enumerate() {
                if balances.len() <= idx {
                    balances.push(bf);
                } else {
                    balances[idx] = balances[idx].max(bf);
                }
            }
        }

        let report = CostReport {
            v,
            k,
            num_groups: num_batches,
            p,
            lambda: ledger.lambda(),
            io_time: max_ops * self.machine.g_io,
            phases,
            phase_wall,
            comm: ledger.clone(),
            real_comm_bytes: real_comm.into_inner(),
            wall: start_time.elapsed(),
            tracks_per_disk: tracks,
            balance_factors: balances,
            checks: self.machine.check_theorem_conditions(v, k, 4 + mu),
            faults: fault_run.then(|| FaultReport {
                injected: fault_stats.as_ref().map(|s| s.counts()).unwrap_or_default(),
                retried_blocks: io.retried_blocks,
                recovery_ops: io.recovery_ops,
                recovered_supersteps: recovered_total.into_inner(),
                replays: replays_total.into_inner(),
                failed_superstep: None,
            }),
            resolved_config: self.resolved,
            io,
        };
        Ok((RunResult { states: final_states, ledger }, report))
    }
}

/// How [`ParEmSimulator::run_inner`] starts: a fresh run with initial
/// states, or a continuation from the workers' committed checkpoint
/// manifests.
enum ParStart<S> {
    Fresh(Vec<S>),
    Resume(Box<ParResume>),
}

/// Run-global bookkeeping restored from worker 0's manifest, plus each
/// worker's private committed bookkeeping.
struct ParResume {
    v: usize,
    start_step: usize,
    finished: bool,
    workers: Vec<WorkerResume>,
    ledger: CommLedger,
    real_comm: u64,
    recovered: u64,
    replays: u64,
}

/// One worker's committed bookkeeping restored from its manifest.
struct WorkerResume {
    counts: GroupCounts,
    alloc_next: Vec<usize>,
    alloc_free: Vec<Vec<usize>>,
    phases: PhaseIo,
    committed_io: IoStats,
    balances: Vec<f64>,
}

/// Assemble one worker's barrier manifest: the committed bookkeeping its
/// resumed process needs, plus a shape guard against resuming with a
/// different configuration. Run-global bookkeeping (ledger, real
/// communication bytes, recovery tallies) is carried by worker 0 only;
/// the other workers store empty placeholders.
#[allow(clippy::too_many_arguments)]
fn par_manifest(
    v: usize,
    k: usize,
    num_batches: usize,
    mu: usize,
    gamma: usize,
    seed: u64,
    cfg: &DiskConfig,
    p: usize,
    worker: usize,
    next_step: usize,
    finished: bool,
    counts: &GroupCounts,
    alloc: &TrackAllocator,
    fault_ops: Option<Vec<u64>>,
    phases: &PhaseIo,
    io: IoStats,
    balances: &[f64],
    ledger: &CommLedger,
    real_comm: u64,
    recovered: u64,
    replays: u64,
) -> Manifest {
    let (next, free) = alloc.export_state();
    Manifest {
        v: v as u64,
        k: k as u64,
        num_groups: num_batches as u64,
        mu: mu as u64,
        gamma: gamma as u64,
        seed,
        num_disks: cfg.num_disks as u32,
        block_bytes: cfg.block_bytes as u64,
        p: p as u32,
        worker: worker as u32,
        next_step: next_step as u64,
        finished,
        counts: counts.counts.iter().map(|&c| c as u64).collect(),
        prefix: counts.prefix_in_bucket.iter().map(|&c| c as u64).collect(),
        alloc_next: next.iter().map(|&t| t as u64).collect(),
        alloc_free: free.iter().map(|f| f.iter().map(|&t| t as u64).collect()).collect(),
        fault_ops,
        phases: phases.clone(),
        io,
        balances: balances.to_vec(),
        ledger: ledger.steps.clone(),
        real_comm,
        recovered,
        replays,
    }
}

/// File a worker's failure into the shared slot. First error wins, except
/// a disk-rooted error (raw or already wrapped in
/// [`EmError::FaultUnrecoverable`]) replaces a co-failing thread's derived
/// logic error: when a drive dies mid-exchange, the *other* processors
/// decode the faulty processor's partial bundles and fail with
/// truncated/misrouted-block errors whose root cause is the fault — the
/// typed error must surface regardless of which thread registers first.
fn register_failure(slot: &Mutex<Option<EmError>>, e: EmError) {
    let disk_rooted =
        |e: &EmError| matches!(e, EmError::Disk(_) | EmError::FaultUnrecoverable { .. });
    let mut f = slot.lock();
    if f.is_none() || (disk_rooted(&e) && !f.as_ref().is_some_and(disk_rooted)) {
        *f = Some(e);
    }
}

/// Dress an unrecoverable error in [`EmError::FaultUnrecoverable`] with the
/// injection/recovery tally — but only for disk errors of a run that had
/// fault machinery enabled; logic errors (γ violations, misrouted blocks,
/// ...) pass through untouched.
#[allow(clippy::too_many_arguments)]
fn wrap_par_fault(
    fault_run: bool,
    step: usize,
    err: EmError,
    fault_stats: &Option<Arc<FaultStats>>,
    retried_blocks: u64,
    recovery_ops: u64,
    recovered_supersteps: u64,
    replays: u64,
) -> EmError {
    if !fault_run || !matches!(err, EmError::Disk(_)) {
        return err;
    }
    EmError::FaultUnrecoverable {
        step,
        report: FaultReport {
            injected: fault_stats.as_ref().map(|s| s.counts()).unwrap_or_default(),
            retried_blocks,
            recovery_ops,
            recovered_supersteps,
            replays,
            failed_superstep: Some(step),
        },
        source: Box::new(err),
    }
}

/// Compute + Writing Phases for one processor's share of one batch.
/// Returns the per-target-processor bundles of scatter blocks.
#[allow(clippy::too_many_arguments)]
fn run_batch_compute<P: BspProgram>(
    prog: &P,
    disks: &mut DiskArray,
    ctx: &ContextStore,
    geom: &MsgGeometry,
    my_blocks: Vec<RawBlock>,
    pids: &[(usize, usize)],
    local_region: impl Fn(usize, usize) -> usize,
    batch: usize,
    step: usize,
    v: usize,
    p: usize,
    batch_unit: usize,
    k_size: usize,
    gamma: usize,
    mode: ComputeMode,
    pool: Option<&ComputePool>,
    pending_ctx: Option<PendingGroupRead>,
    backlog: Option<&mut WriteBacklog>,
    rng: &mut StdRng,
    phases: &mut PhaseIo,
    walls: &mut PhaseWall,
    ctx_pool: &mut BufferPool,
    agg_msgs: &AtomicU64,
    agg_bytes: &AtomicU64,
    agg_h: &AtomicU64,
    agg_h_msgs: &AtomicU64,
    agg_w: &AtomicU64,
    any_continue: &AtomicBool,
    any_msgs: &AtomicBool,
) -> EmResult<Vec<Vec<RawBlock>>> {
    let msgs = reassemble_blocks(my_blocks)?;
    let mut inboxes: Vec<Vec<(u32, u32, P::Msg)>> = (0..pids.len()).map(|_| Vec::new()).collect();
    let mut recv_bytes = vec![0u64; pids.len()];
    let mut recv_msgs = vec![0u64; pids.len()];
    for m in msgs {
        let dst = m.dst as usize;
        let local = pids
            .iter()
            .position(|&(pid, _)| pid == dst)
            .ok_or_else(|| EmError::InvalidConfig(format!("block for pid {dst} misrouted")))?;
        recv_bytes[local] += m.payload.len() as u64;
        recv_msgs[local] += 1;
        inboxes[local].push((m.src, m.seq, from_bytes(&m.payload)?));
    }

    // Fetch the round's contexts in one fully-striped batch (Step 1(a)):
    // the k regions of this round are consecutive on this processor. A
    // pipelined caller submitted (and counted) the read before the
    // block-forwarding exchange; only the join happens here.
    let fetch_t0 = Instant::now();
    let ctx_bufs = if pids.is_empty() {
        Vec::new()
    } else if let Some(pending) = pending_ctx {
        pending.join_into(ctx_pool)?
    } else {
        let ops0 = disks.stats().parallel_ops;
        let first_slot = pids[0].1;
        let pending = ctx.submit_read_group(disks, local_region(batch, first_slot), pids.len())?;
        phases.fetch_ctx += disks.stats().parallel_ops - ops0;
        pending.join_into(ctx_pool)?
    };
    walls.fetch += fetch_t0.elapsed();

    // --- Computing Phase: the shared per-vp kernel, serial or pooled. ---
    let compute_t0 = Instant::now();
    let work: Vec<VpWork<P::Msg>> = pids
        .iter()
        .zip(ctx_bufs)
        .enumerate()
        .map(|(local, (&(pid, _slot), ctx_buf))| VpWork {
            pid,
            ctx: ctx_buf,
            inbox: std::mem::take(&mut inboxes[local]),
            recv_bytes: recv_bytes[local],
            recv_msgs: recv_msgs[local],
        })
        .collect();
    let mut new_states: Vec<Vec<u8>> = Vec::with_capacity(pids.len());
    let mut outgoing: Vec<OutMsg> = Vec::new();
    for slot in run_group_vps(prog, mode, step, v, gamma, work, pool) {
        let slot = slot?; // first error in vp order wins, as the serial loop would
        if slot.continued {
            any_continue.store(true, Ordering::Relaxed);
        }
        agg_msgs.fetch_add(slot.msgs_sent, Ordering::Relaxed);
        agg_bytes.fetch_add(slot.bytes_sent, Ordering::Relaxed);
        agg_h.fetch_max(slot.bytes_sent.max(slot.recv_bytes), Ordering::Relaxed);
        agg_h_msgs.fetch_max(slot.msgs_sent.max(slot.recv_msgs), Ordering::Relaxed);
        agg_w.fetch_max(slot.work, Ordering::Relaxed);
        outgoing.extend(slot.outbox);
        new_states.push(slot.state_bytes);
    }
    walls.compute += compute_t0.elapsed();

    // Write the changed contexts back in one fully-striped batch
    // (Step 1(b)) — deferred into the superstep's backlog when pipelined.
    let write_t0 = Instant::now();
    if let Some(&(_, first_slot)) = pids.first() {
        let ops0 = disks.stats().parallel_ops;
        match backlog {
            Some(backlog) => ctx.submit_write_group(
                disks,
                local_region(batch, first_slot),
                &new_states,
                backlog,
            )?,
            None => ctx.write_group(disks, local_region(batch, first_slot), &new_states)?,
        }
        phases.write_ctx += disks.stats().parallel_ops - ops0;
    }
    // The submitted stripes hold their own copies of the bytes.
    ctx_pool.put_all(new_states);

    // Writing Phase: cut into blocks — one stream per (this producer,
    // destination batch·owner), so blocks are shared by all messages that
    // the same processor will simulate in the same round — then scatter
    // each block to a uniformly random processor.
    // The first pid of this (processor, round) slice is unique across all
    // (processor, round) pairs of the superstep — a collision-free tag.
    let src_tag = pids.first().map_or(0, |&(pid, _)| pid) as u32;
    let blocks = build_stream_blocks(geom.block_bytes, outgoing, src_tag, |dst| {
        let b = dst as usize / batch_unit;
        let owner = (dst as usize % batch_unit) / k_size;
        (b * p + owner) as u32
    });
    let mut bundles: Vec<Vec<RawBlock>> = (0..p).map(|_| Vec::new()).collect();
    for b in blocks {
        any_msgs.store(true, Ordering::Relaxed);
        bundles[rng.gen_range(0..p)].push(b);
    }
    walls.write += write_t0.elapsed();
    Ok(bundles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_bsp::{run_sequential, BspStarParams, Mailbox, Step};

    fn machine(p: usize, m: usize, d: usize, b: usize) -> EmMachine {
        EmMachine {
            p,
            m_bytes: m,
            d,
            b_bytes: b,
            g_io: 1,
            router: BspStarParams { p, g: 1.0, b, l: 1.0 },
        }
    }

    struct AllToAll {
        mu: usize,
    }
    impl BspProgram for AllToAll {
        type State = u64;
        type Msg = u64;
        fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut u64) -> Step {
            match step {
                0 => {
                    for dst in 0..mb.nprocs() {
                        mb.send(dst, (mb.pid() as u64 + 1) * 1000 + dst as u64);
                    }
                    Step::Continue
                }
                _ => {
                    *state = mb.take_incoming().iter().map(|e| e.msg).sum();
                    Step::Halt
                }
            }
        }
        fn max_state_bytes(&self) -> usize {
            self.mu.max(8)
        }
        fn max_comm_bytes(&self) -> usize {
            32 * 24
        }
    }

    #[test]
    fn parallel_matches_reference() {
        let v = 32;
        let prog = AllToAll { mu: 124 };
        let reference = run_sequential(&prog, vec![0u64; v]).unwrap();
        // p=4, M=256 -> k=2, batches of 8.
        let sim = ParEmSimulator::new(machine(4, 256, 2, 64)).with_seed(5);
        let (res, report) = sim.run(&prog, vec![0u64; v]).unwrap();
        assert_eq!(res.states, reference.states);
        assert_eq!(report.p, 4);
        assert_eq!(report.k, 2);
        assert_eq!(report.num_groups, 4); // 32 / (2*4)
        assert!(report.io.parallel_ops > 0);
        assert!(report.real_comm_bytes > 0);
    }

    #[test]
    fn pipelined_parallel_run_is_bit_identical() {
        // A state-dependent multi-superstep program with *distinct*
        // initial states: a stale or misaligned context read (e.g. a
        // window handing batch b the contexts of batch b-1) changes the
        // final states, which the symmetric all-to-all workload cannot
        // detect because it never reads its prior state.
        struct Diffuse;
        impl BspProgram for Diffuse {
            type State = u64;
            type Msg = u64;
            fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut u64) -> Step {
                let v = mb.nprocs();
                for e in mb.take_incoming() {
                    *state = state.wrapping_add(e.msg);
                }
                if step < 4 {
                    mb.send((mb.pid() + 1) % v, *state + step as u64);
                    mb.send((mb.pid() + v - 1) % v, state.wrapping_mul(3));
                    Step::Continue
                } else {
                    Step::Halt
                }
            }
            fn max_state_bytes(&self) -> usize {
                124
            }
            fn max_comm_bytes(&self) -> usize {
                2 * 24
            }
        }
        let v = 32;
        let init: Vec<u64> = (0..v as u64).map(|x| x * 11 + 3).collect();
        let reference = run_sequential(&Diffuse, init.clone()).unwrap();
        let base = ParEmSimulator::new(machine(4, 256, 2, 64)).with_seed(5);
        let (a, ra) = base.run(&Diffuse, init.clone()).unwrap();
        assert_eq!(a.states, reference.states, "Pipeline::Off must match the reference");
        // 4 batches: depth 2 keeps several rounds in flight, depth 8 a
        // window wider than the whole superstep.
        for pipeline in
            [Pipeline::DoubleBuffer, Pipeline::Stream(1), Pipeline::Stream(2), Pipeline::Stream(8)]
        {
            let pipelined = base.clone().with_pipeline(pipeline);
            let (b, rb) = pipelined.run(&Diffuse, init.clone()).unwrap();
            assert_eq!(a.states, b.states, "{pipeline:?}");
            assert_eq!(a.ledger, b.ledger, "{pipeline:?}");
            assert_eq!(ra.io, rb.io, "counted I/O must not depend on {pipeline:?}");
            assert_eq!(ra.phases, rb.phases, "{pipeline:?}");
            assert_eq!(ra.tracks_per_disk, rb.tracks_per_disk, "{pipeline:?}");
        }
    }

    #[test]
    fn cached_parallel_run_is_bit_identical() {
        let v = 32;
        let prog = AllToAll { mu: 124 };
        let base = ParEmSimulator::new(machine(4, 256, 2, 64)).with_seed(5);
        let (a, ra) = base.run(&prog, vec![0u64; v]).unwrap();
        for cache_bytes in [64usize, 1 << 16] {
            let cached = base.clone().with_cache(cache_bytes);
            let (b, rb) = cached.run(&prog, vec![0u64; v]).unwrap();
            assert_eq!(a.states, b.states);
            assert_eq!(a.ledger, b.ledger);
            let mut masked = rb.io.clone();
            masked.cache_hit_blocks = 0;
            masked.cache_absorbed_writes = 0;
            assert_eq!(ra.io, masked, "counted I/O must not depend on the cache knob");
            assert_eq!(ra.phases, rb.phases);
            assert_eq!(ra.tracks_per_disk, rb.tracks_per_disk);
        }
        let (_, rb) = base.clone().with_cache(1 << 16).run(&prog, vec![0u64; v]).unwrap();
        assert!(rb.io.cache_absorbed_writes > 0, "writes must be buffered until the barrier");
        assert_eq!(ra.io.cache_absorbed_writes, 0);
    }

    #[test]
    fn threaded_compute_parallel_run_is_bit_identical() {
        let v = 32;
        let prog = AllToAll { mu: 124 };
        let base = ParEmSimulator::new(machine(4, 256, 2, 64)).with_seed(5);
        let (a, ra) = base.run(&prog, vec![0u64; v]).unwrap();
        for n in [1usize, 2, 8] {
            for pipeline in [Pipeline::Off, Pipeline::DoubleBuffer, Pipeline::Stream(4)] {
                let threaded = base
                    .clone()
                    .with_pipeline(pipeline)
                    .with_compute_mode(ComputeMode::Threaded(n));
                let (b, rb) = threaded.run(&prog, vec![0u64; v]).unwrap();
                assert_eq!(a.states, b.states);
                assert_eq!(a.ledger, b.ledger);
                assert_eq!(ra.io, rb.io, "counted I/O must not depend on ComputeMode");
                assert_eq!(ra.phases, rb.phases);
                assert_eq!(ra.tracks_per_disk, rb.tracks_per_disk);
            }
        }
    }

    #[test]
    fn pipelined_parallel_file_backend_matches_reference() {
        let prog = AllToAll { mu: 124 };
        let reference = run_sequential(&prog, vec![0u64; 16]).unwrap();
        for (tag, pipeline) in [("db", Pipeline::DoubleBuffer), ("s3", Pipeline::Stream(3))] {
            let dir =
                std::env::temp_dir().join(format!("em-par-pipe-{tag}-{}", std::process::id()));
            let sim = ParEmSimulator::new(machine(2, 256, 2, 64))
                .with_file_backend(&dir)
                .with_pipeline(pipeline);
            let (res, _) = sim.run(&prog, vec![0u64; 16]).unwrap();
            assert_eq!(res.states, reference.states, "{pipeline:?}");
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn single_processor_degenerate_case() {
        let prog = AllToAll { mu: 124 };
        let reference = run_sequential(&prog, vec![0u64; 8]).unwrap();
        let sim = ParEmSimulator::new(machine(1, 256, 2, 64));
        let (res, _) = sim.run(&prog, vec![0u64; 8]).unwrap();
        assert_eq!(res.states, reference.states);
    }

    #[test]
    fn ragged_tail_batch() {
        // v not divisible by k*p: last batch is partial.
        let prog = AllToAll { mu: 124 };
        let v = 13;
        let reference = run_sequential(&prog, vec![0u64; v]).unwrap();
        let sim = ParEmSimulator::new(machine(4, 256, 2, 64)).with_seed(11);
        let (res, _) = sim.run(&prog, vec![0u64; v]).unwrap();
        assert_eq!(res.states, reference.states);
    }

    #[test]
    fn multi_superstep_program_parallel() {
        /// Nearest-neighbour diffusion for several rounds.
        struct Diffuse;
        impl BspProgram for Diffuse {
            type State = u64;
            type Msg = u64;
            fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut u64) -> Step {
                let v = mb.nprocs();
                for e in mb.take_incoming() {
                    *state = state.wrapping_add(e.msg);
                }
                if step < 5 {
                    mb.send((mb.pid() + 1) % v, *state + step as u64);
                    mb.send((mb.pid() + v - 1) % v, state.wrapping_mul(3));
                    Step::Continue
                } else {
                    Step::Halt
                }
            }
            fn max_state_bytes(&self) -> usize {
                124
            }
            fn max_comm_bytes(&self) -> usize {
                2 * 24
            }
        }
        let v = 24;
        let init: Vec<u64> = (0..v as u64).collect();
        let reference = run_sequential(&Diffuse, init.clone()).unwrap();
        let sim = ParEmSimulator::new(machine(3, 256, 2, 64)).with_seed(2);
        let (res, report) = sim.run(&Diffuse, init).unwrap();
        assert_eq!(res.states, reference.states);
        assert_eq!(report.lambda, reference.supersteps());
    }

    #[test]
    fn error_in_one_thread_propagates() {
        struct Chatty;
        impl BspProgram for Chatty {
            type State = u64;
            type Msg = u64;
            fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, _: &mut u64) -> Step {
                if step == 0 && mb.pid() == 3 {
                    for _ in 0..100 {
                        mb.send(0, 1);
                    }
                }
                if step == 0 {
                    Step::Continue
                } else {
                    mb.take_incoming();
                    Step::Halt
                }
            }
            fn max_state_bytes(&self) -> usize {
                124
            }
            fn max_comm_bytes(&self) -> usize {
                48 // two messages' worth; pid 3 exceeds it
            }
        }
        let sim = ParEmSimulator::new(machine(2, 256, 2, 64));
        let err = sim.run(&Chatty, vec![0u64; 8]).unwrap_err();
        assert!(matches!(err, EmError::CommBudgetExceeded { pid: 3, .. }));
    }

    #[test]
    fn parallel_file_backend() {
        let dir = std::env::temp_dir().join(format!("em-par-sim-{}", std::process::id()));
        let prog = AllToAll { mu: 124 };
        let reference = run_sequential(&prog, vec![0u64; 16]).unwrap();
        let sim = ParEmSimulator::new(machine(2, 256, 2, 64)).with_file_backend(&dir);
        let (res, _) = sim.run(&prog, vec![0u64; 16]).unwrap();
        assert_eq!(res.states, reference.states);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A state-dependent multi-superstep workload for crash tests: every
    /// superstep folds the incoming messages into the state, so resuming
    /// from the wrong barrier or with the wrong context bytes changes the
    /// final states.
    struct Diffuse;
    impl BspProgram for Diffuse {
        type State = u64;
        type Msg = u64;
        fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut u64) -> Step {
            let v = mb.nprocs();
            for e in mb.take_incoming() {
                *state = state.wrapping_add(e.msg);
            }
            if step < 4 {
                mb.send((mb.pid() + 1) % v, *state + step as u64);
                mb.send((mb.pid() + v - 1) % v, state.wrapping_mul(3));
                Step::Continue
            } else {
                Step::Halt
            }
        }
        fn max_state_bytes(&self) -> usize {
            124
        }
        fn max_comm_bytes(&self) -> usize {
            2 * 24
        }
    }

    #[test]
    fn checkpointing_requires_file_backend() {
        let sim = ParEmSimulator::new(machine(2, 256, 2, 64)).with_checkpointing(true);
        let err = sim.run(&AllToAll { mu: 124 }, vec![0u64; 8]).unwrap_err();
        assert!(matches!(err, EmError::InvalidConfig(_)));
    }

    #[test]
    fn checkpointed_parallel_run_is_bit_identical_to_unchecked() {
        let base_dir =
            std::env::temp_dir().join(format!("em-par-ckpt-plain-{}", std::process::id()));
        let v = 24;
        let init: Vec<u64> = (0..v as u64).map(|x| x * 7 + 1).collect();
        let plain = ParEmSimulator::new(machine(3, 256, 2, 64))
            .with_seed(9)
            .with_file_backend(base_dir.join("plain"));
        let (a, ra) = plain.run(&Diffuse, init.clone()).unwrap();
        let ckpt = ParEmSimulator::new(machine(3, 256, 2, 64))
            .with_seed(9)
            .with_file_backend(base_dir.join("ckpt"))
            .with_checkpointing(true);
        let (b, rb) = ckpt.run(&Diffuse, init).unwrap();
        assert_eq!(a.states, b.states);
        assert_eq!(a.ledger, b.ledger);
        assert_eq!(ra.io.parallel_ops, rb.io.parallel_ops);
        assert_eq!(ra.phases, rb.phases);
        std::fs::remove_dir_all(&base_dir).ok();
    }

    #[test]
    fn parallel_kill_and_resume_matches_uninterrupted_run() {
        let base_dir = std::env::temp_dir().join(format!("em-par-ckpt-{}", std::process::id()));
        let v = 24;
        let init: Vec<u64> = (0..v as u64).map(|x| x * 11 + 3).collect();
        // Uninterrupted checkpointed run — the reference.
        let sim_a = ParEmSimulator::new(machine(3, 256, 2, 64))
            .with_seed(7)
            .with_file_backend(base_dir.join("uninterrupted"))
            .with_checkpointing(true);
        let (a, ra) = sim_a.run(&Diffuse, init.clone()).unwrap();
        for kill in [KillPoint::AtBarrier(0), KillPoint::MidSuperstep(2), KillPoint::MidManifest(1)]
        {
            let sim_b = ParEmSimulator::new(machine(3, 256, 2, 64))
                .with_seed(7)
                .with_file_backend(base_dir.join(format!("{kill:?}")))
                .with_checkpointing(true);
            let err = sim_b.clone().with_kill_point(kill).run(&Diffuse, init.clone()).unwrap_err();
            assert!(matches!(err, EmError::Killed { .. }), "{kill:?}: {err}");
            let (b, rb) = sim_b.resume(&Diffuse).unwrap();
            assert_eq!(a.states, b.states, "{kill:?}");
            assert_eq!(a.ledger, b.ledger, "{kill:?}");
            assert_eq!(ra.io.parallel_ops, rb.io.parallel_ops, "{kill:?}");
            assert_eq!(ra.io.per_disk_reads, rb.io.per_disk_reads, "{kill:?}");
            assert_eq!(ra.io.per_disk_writes, rb.io.per_disk_writes, "{kill:?}");
            assert_eq!(ra.phases, rb.phases, "{kill:?}");
            assert_eq!(ra.real_comm_bytes, rb.real_comm_bytes, "{kill:?}");
        }
        std::fs::remove_dir_all(&base_dir).ok();
    }

    #[test]
    fn resume_of_finished_parallel_run_rebuilds_result() {
        let base_dir = std::env::temp_dir().join(format!("em-par-ckpt-fin-{}", std::process::id()));
        let v = 24;
        let init: Vec<u64> = (0..v as u64).collect();
        let sim = ParEmSimulator::new(machine(3, 256, 2, 64))
            .with_seed(3)
            .with_file_backend(&base_dir)
            .with_checkpointing(true);
        let (a, ra) = sim.run(&Diffuse, init).unwrap();
        let (b, rb) = sim.resume(&Diffuse).unwrap();
        assert_eq!(a.states, b.states);
        assert_eq!(a.ledger, b.ledger);
        assert_eq!(ra.io.parallel_ops, rb.io.parallel_ops);
        std::fs::remove_dir_all(&base_dir).ok();
    }
}
