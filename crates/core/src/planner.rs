//! Resource planning — the paper's closing claim made executable:
//! *"an application that is based on our method could adapt dynamically to
//! the operating parameters and numbers of the available resources such as
//! processors, memory, and disks."*
//!
//! Given a machine description and a problem profile (size, per-record
//! bytes, rounds), [`Planner::plan`] chooses the number of virtual
//! processors `v` (and derives `k = ⌊M/μ⌋`), maximizing the theorem's
//! slackness subject to the memory constraints, and predicts the run's
//! cost under Theorem 1 / Corollary 1 so callers can compare candidate
//! configurations before touching a disk.

use crate::machine::{EmMachine, ModelCheck};
use crate::theory;

/// What the algorithm needs per virtual processor, as functions of `n`
/// and `v`.
#[derive(Debug, Clone, Copy)]
pub struct ProblemProfile {
    /// Total records.
    pub n: usize,
    /// Encoded bytes per record.
    pub rec_bytes: usize,
    /// Communication rounds λ of the CGM algorithm.
    pub lambda: usize,
    /// Context chunk factor: records per context that scale with `n/v`
    /// (2.2 covers the sample sort's worst-case chunk growth).
    pub ctx_factor: f64,
    /// Context per-`v` factor: records per context that scale with `v`
    /// (the sample sort keeps `v − 1` splitters per virtual processor).
    pub ctx_v_factor: f64,
    /// Communication chunk factor (records scaling with `n/v`).
    pub comm_factor: f64,
    /// Communication per-`v²` factor (processor 0 collects `v²` samples).
    pub comm_v2_factor: f64,
}

impl ProblemProfile {
    /// Profile of a one-shot CGM sample sort of `n` records.
    pub fn sort(n: usize, rec_bytes: usize) -> Self {
        ProblemProfile {
            n,
            rec_bytes,
            lambda: 4,
            ctx_factor: 2.2,
            ctx_v_factor: 2.2,
            comm_factor: 2.2,
            comm_v2_factor: 1.1,
        }
    }

    /// μ in bytes for a given `v`.
    pub fn mu(&self, v: usize) -> usize {
        let records = self.ctx_factor * self.n.div_ceil(v) as f64 + self.ctx_v_factor * v as f64;
        (records * self.rec_bytes as f64) as usize + 256
    }

    /// γ in envelope bytes for a given `v`.
    pub fn gamma(&self, v: usize) -> usize {
        let records =
            self.comm_factor * self.n.div_ceil(v) as f64 + self.comm_v2_factor * (v * v) as f64;
        (records * self.rec_bytes as f64) as usize + 48 * v + 512
    }
}

/// A chosen configuration with its predicted costs.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Virtual processors to use.
    pub v: usize,
    /// Group size `k = ⌊M/μ⌋` the simulator will derive.
    pub k: usize,
    /// μ the profile predicts for this `v`.
    pub mu: usize,
    /// Predicted parallel I/O operations per simulating processor.
    pub predicted_io_ops: f64,
    /// Predicted I/O time (`G ·` ops).
    pub predicted_io_time: f64,
    /// Theorem 1 side-condition report at this configuration.
    pub checks: Vec<ModelCheck>,
    /// True when every advisory condition holds.
    pub all_conditions_hold: bool,
}

/// Chooses `v` for a machine/problem pair.
///
/// ```
/// use em_core::{EmMachine, Planner, ProblemProfile};
///
/// let planner = Planner { machine: EmMachine::uniprocessor(1 << 18, 4, 2048, 1) };
/// let plan = planner.plan(&ProblemProfile::sort(1_000_000, 8)).unwrap();
/// assert!(plan.v > 1 && plan.k >= 1);
/// println!("simulate with v = {} (k = {}), predicted {} I/Os",
///          plan.v, plan.k, plan.predicted_io_ops as u64);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Planner {
    /// The target machine.
    pub machine: EmMachine,
}

impl Planner {
    /// Evaluate one candidate `v`, or `None` when it cannot run at all
    /// (context too large for memory).
    pub fn evaluate(&self, profile: &ProblemProfile, v: usize) -> Option<Plan> {
        let mu = profile.mu(v);
        let k = self.machine.group_size(4 + mu, v).ok()?;
        let gamma = profile.gamma(v);
        let io_ops = theory::superstep_io_prediction(
            v as u64 / self.machine.p as u64,
            mu as u64,
            gamma as u64,
            self.machine.d as u64,
            self.machine.b_bytes as u64,
            k as u64,
            1.0,
        ) * profile.lambda as f64;
        let checks = self.machine.check_theorem_conditions(v, k, 4 + mu);
        let all = checks.iter().all(|c| c.satisfied);
        Some(Plan {
            v,
            k,
            mu,
            predicted_io_ops: io_ops,
            predicted_io_time: io_ops * self.machine.g_io as f64,
            checks,
            all_conditions_hold: all,
        })
    }

    /// Scan candidate `v` (powers of two times `p`, from `p` up to `n`)
    /// and return the feasible plan with the lowest predicted I/O time,
    /// preferring plans whose theorem conditions all hold.
    pub fn plan(&self, profile: &ProblemProfile) -> Option<Plan> {
        let mut best: Option<Plan> = None;
        let mut v = self.machine.p.max(1);
        while v <= profile.n.max(1) {
            if let Some(plan) = self.evaluate(profile, v) {
                let better = match &best {
                    None => true,
                    Some(b) => {
                        (plan.all_conditions_hold, -plan.predicted_io_time)
                            > (b.all_conditions_hold, -b.predicted_io_time)
                    }
                };
                if better {
                    best = Some(plan);
                }
            }
            v *= 2;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(m: usize, d: usize) -> EmMachine {
        EmMachine::uniprocessor(m, d, 2048, 1)
    }

    #[test]
    fn plan_exists_for_out_of_core_sort() {
        let planner = Planner { machine: machine(1 << 18, 4) };
        let profile = ProblemProfile::sort(1_000_000, 8);
        let plan = planner.plan(&profile).expect("a feasible plan");
        assert!(plan.v >= 32, "needs enough virtual processors, got {}", plan.v);
        assert!(plan.k >= 1);
        assert!(plan.predicted_io_ops > 0.0);
        // The chosen μ must actually fit the machine.
        assert!(plan.mu <= planner.machine.m_bytes);
    }

    #[test]
    fn too_little_memory_is_infeasible_at_small_v_only() {
        let planner = Planner { machine: machine(1 << 16, 2) };
        let profile = ProblemProfile::sort(1_000_000, 8);
        // v = p = 1 cannot hold an ~18MB context...
        assert!(planner.evaluate(&profile, 1).is_none());
        // ...but the planner finds a bigger v that fits.
        let plan = planner.plan(&profile).expect("plan at high v");
        assert!(plan.v >= 256, "v = {}", plan.v);

        // And a machine below the profile's μ minimum (attained near
        // v = √n) is infeasible at *every* v — honestly reported.
        let tiny = Planner { machine: machine(1 << 14, 2) };
        assert!(tiny.plan(&profile).is_none());
    }

    #[test]
    fn more_disks_predict_less_io_time() {
        let profile = ProblemProfile::sort(500_000, 8);
        let p1 = Planner { machine: machine(1 << 18, 1) }.plan(&profile).unwrap();
        let p8 = Planner { machine: machine(1 << 18, 8) }.plan(&profile).unwrap();
        assert!(
            p8.predicted_io_time < p1.predicted_io_time / 3.0,
            "8 disks should predict far less I/O time: {} vs {}",
            p8.predicted_io_time,
            p1.predicted_io_time
        );
    }

    #[test]
    fn planner_tracks_processor_count() {
        let mut m = machine(1 << 18, 4);
        m.p = 4;
        m.router.p = 4;
        let profile = ProblemProfile::sort(500_000, 8);
        let plan = Planner { machine: m }.plan(&profile).unwrap();
        // v must be a multiple of p by construction of the scan.
        assert_eq!(plan.v % 4, 0);
    }
}
