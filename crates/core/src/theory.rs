//! Machine-checkable versions of the paper's cost bounds and probability
//! estimates: Lemma 2 (bucket balance), Lemmas 8–10 (tail estimates),
//! Lemma 1 / Theorem 1 / Corollary 1 (I/O-operation predictions), plus the
//! classical external-memory baselines of Table 1's second column
//! (Aggarwal–Vitter). The benchmark harness prints these predictions next
//! to measured counts so the *shape* agreement is visible per experiment.

/// Lemma 2 upper bound on `Pr[X_{j,k} ≥ l·R/D]`: `exp(−Ω(l·log l·R/D))`.
/// We evaluate the dominant exponent `exp(−(l·ln l − l + 1)·R/D)`, the
/// exact form derived in the proof (before the Ω is applied), which is a
/// valid bound for `l > 1`.
pub fn lemma2_tail_bound(l: f64, r: f64, d: f64) -> f64 {
    if l <= 1.0 || r <= 0.0 || d <= 0.0 {
        return 1.0;
    }
    let exponent = (l * l.ln() - l + 1.0) * (r / d);
    (-exponent).exp().min(1.0)
}

/// Lemma 9 (Chernoff–Hoeffding form): for independent `X_i ∈ [0, k]` with
/// mean-sum `m`, `Pr[Σ X_i ≥ u·m] ≤ exp(−u·m/k)` for `u ≥ e²`.
pub fn lemma9_tail_bound(u: f64, m: f64, k: f64) -> f64 {
    if u < std::f64::consts::E * std::f64::consts::E || k <= 0.0 {
        return 1.0;
    }
    (-u * m / k).exp().min(1.0)
}

/// Lemma 10 (balls in bins): `x` balls into `y` bins; probability any bin
/// exceeds `l·x/y` is at most `exp(l·x/y − l·ln l·x/y − ln l + 2·ln y)`
/// (the exact pre-Ω expression from the proof).
pub fn lemma10_tail_bound(l: f64, x: f64, y: f64) -> f64 {
    if l <= std::f64::consts::E || x <= 0.0 || y <= 0.0 {
        return 1.0;
    }
    let share = x / y;
    let exponent = l * share - l * l.ln() * share - l.ln() + 2.0 * y.ln();
    exponent.exp().min(1.0)
}

/// Lemma 1: parallel I/O operations to read+write the contexts of all `v`
/// virtual processors once (one compound superstep's Steps 1(a) + 1(e)):
/// `2·⌈v·μ/(D·B)⌉` plus one partial stripe per group.
pub fn lemma1_context_ops(v: u64, mu: u64, d: u64, b: u64, k: u64) -> u64 {
    let blocks_per_ctx = mu.div_ceil(b);
    let total_blocks = v * blocks_per_ctx;
    let groups = v.div_ceil(k.max(1));
    2 * (total_blocks.div_ceil(d) + groups)
}

/// Theorem 1 / Lemma 4 I/O prediction for one compound superstep of the
/// uniprocessor simulation: `c · l · v·γ/(D·B)` operations for the message
/// traffic (the constant `c` covers scatter + two-pass routing + fetch,
/// c ≈ 5 in our implementation: 1 scatter write + 2 routing reads + 2
/// routing writes per block over D) plus the context traffic of Lemma 1.
pub fn superstep_io_prediction(v: u64, mu: u64, gamma: u64, d: u64, b: u64, k: u64, l: f64) -> f64 {
    let msg_blocks = (v * gamma).div_ceil(b.saturating_sub(20).max(1)) as f64;
    let msg_ops = 5.0 * l * msg_blocks / d as f64;
    msg_ops + lemma1_context_ops(v, mu, d, b, k) as f64
}

/// Corollary 1: total I/O time prediction for a λ-round CGM algorithm
/// simulated on `p` processors with `D` disks each: `λ·G·c·(n_bytes/(p·D·B))`
/// I/O-time units — "the parallel EM algorithm reads the entire disk
/// contents λ times".
pub fn corollary1_io_time(lambda: u64, g_io: u64, n_bytes: u64, p: u64, d: u64, b: u64) -> f64 {
    lambda as f64 * g_io as f64 * (n_bytes as f64 / (p * d * b) as f64)
}

/// Aggarwal–Vitter optimal external merge-sort I/O bound (Table 1, column
/// 2, sorting): `Θ((n/(D·B)) · log_{M/B}(n/B))` parallel I/O operations,
/// counting both reads and writes (factor 2 per pass).
pub fn av_sort_io_prediction(n_records: u64, rec_bytes: u64, m_bytes: u64, d: u64, b: u64) -> f64 {
    let n_bytes = (n_records * rec_bytes) as f64;
    let blocks = n_bytes / b as f64;
    let fanout = (m_bytes as f64 / b as f64).max(2.0);
    let passes = (blocks.max(2.0)).log(fanout).ceil().max(1.0);
    2.0 * (blocks / d as f64) * passes
}

/// Naive unblocked access: one record per parallel I/O — the `×B` penalty
/// the introduction quantifies ("the runtime can typically be up to a
/// factor of 10³ (the blocking factor) too high").
pub fn naive_unblocked_io_prediction(n_records: u64) -> f64 {
    n_records as f64
}

/// PRAM-simulation baseline (Chiang et al.): one EM sort of the whole
/// input per PRAM step; for `t` steps, `t · sort(n)` I/Os.
pub fn pram_sim_io_prediction(
    steps: u64,
    n_records: u64,
    rec_bytes: u64,
    m_bytes: u64,
    d: u64,
    b: u64,
) -> f64 {
    steps as f64 * av_sort_io_prediction(n_records, rec_bytes, m_bytes, d, b)
}

/// Sibeyn–Kaufmann-style simulation: one virtual processor at a time on a
/// single disk, context plus a `v × v` message matrix, without blocking
/// adaptation: per superstep, `v` context loads/stores plus `v²` message
/// cell accesses (each a separate I/O on one disk when unblocked).
pub fn sibeyn_io_prediction(v: u64, mu: u64, b: u64, lambda: u64) -> f64 {
    let ctx = 2 * v * mu.div_ceil(b);
    let cells = v * v;
    lambda as f64 * (ctx + cells) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma2_decays_in_l_and_r() {
        let p1 = lemma2_tail_bound(2.0, 64.0, 4.0);
        let p2 = lemma2_tail_bound(3.0, 64.0, 4.0);
        let p3 = lemma2_tail_bound(2.0, 256.0, 4.0);
        assert!(p2 < p1, "larger l must shrink the bound");
        assert!(p3 < p1, "larger R must shrink the bound");
        assert!(p1 <= 1.0 && p2 > 0.0);
        assert_eq!(lemma2_tail_bound(1.0, 64.0, 4.0), 1.0);
    }

    #[test]
    fn lemma9_requires_u_at_least_e_squared() {
        assert_eq!(lemma9_tail_bound(2.0, 100.0, 1.0), 1.0);
        let p = lemma9_tail_bound(8.0, 100.0, 1.0);
        assert!(p < 1e-100);
    }

    #[test]
    fn lemma10_decays_in_l() {
        let p1 = lemma10_tail_bound(4.0, 1000.0, 10.0);
        let p2 = lemma10_tail_bound(8.0, 1000.0, 10.0);
        assert!(p2 < p1);
    }

    #[test]
    fn lemma1_counts_context_stripes() {
        // 64 contexts of 2 blocks on 4 disks, k=8: 2*(32 + 8) = 80.
        assert_eq!(lemma1_context_ops(64, 128, 4, 64, 8), 80);
    }

    #[test]
    fn av_sort_scales_with_disks() {
        let one = av_sort_io_prediction(1 << 20, 8, 1 << 20, 1, 4096);
        let four = av_sort_io_prediction(1 << 20, 8, 1 << 20, 4, 4096);
        assert!((one / four - 4.0).abs() < 1e-9, "D disks cut I/Os by D");
    }

    #[test]
    fn corollary1_is_linear_in_lambda_and_inverse_in_pdb() {
        let a = corollary1_io_time(3, 1, 1 << 20, 1, 1, 4096);
        let b = corollary1_io_time(6, 1, 1 << 20, 1, 1, 4096);
        let c = corollary1_io_time(3, 1, 1 << 20, 2, 2, 4096);
        assert!((b / a - 2.0).abs() < 1e-9);
        assert!((a / c - 4.0).abs() < 1e-9);
    }

    #[test]
    fn blocking_factor_shows_up() {
        // Naive unblocked I/O vs blocked: ratio ~ B/record_size.
        let n = 1u64 << 16;
        let naive = naive_unblocked_io_prediction(n);
        let blocked = (n * 8).div_ceil(4096) as f64;
        assert!(naive / blocked > 400.0);
    }
}

/// Observation 2 — c-optimality preservation. Given a measured simulated
/// run and the best sequential baseline time for the same problem, report
/// the three c-optimality ratios of the paper's Section 5.4: computation
/// over `T(A)/p`, communication over `T(A)/p`, and I/O over `T(A)/p`.
/// An EM-BSP\* algorithm is c-optimal when the first is `c + o(1)` and
/// the other two are `o(1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalityReport {
    /// `T_comp(A*) / (T(A)/p)` — should be `c + o(1)`.
    pub comp_ratio: f64,
    /// `T_comm(A*) / (T(A)/p)` — should be `o(1)`.
    pub comm_ratio: f64,
    /// `T_io(A*) / (T(A)/p)` — should be `o(1)`.
    pub io_ratio: f64,
}

/// Evaluate Observation 2's ratios from measured times (all in the same
/// cost unit).
pub fn observation2_ratios(
    t_seq_best: f64,
    p: u64,
    t_comp_sim: f64,
    t_comm_sim: f64,
    t_io_sim: f64,
) -> OptimalityReport {
    let denom = (t_seq_best / p as f64).max(f64::MIN_POSITIVE);
    OptimalityReport {
        comp_ratio: t_comp_sim / denom,
        comm_ratio: t_comm_sim / denom,
        io_ratio: t_io_sim / denom,
    }
}

#[cfg(test)]
mod obs2_tests {
    use super::*;

    #[test]
    fn ratios_divide_by_per_processor_sequential_time() {
        let r = observation2_ratios(1000.0, 4, 260.0, 10.0, 25.0);
        assert!((r.comp_ratio - 1.04).abs() < 1e-9);
        assert!((r.comm_ratio - 0.04).abs() < 1e-9);
        assert!((r.io_ratio - 0.1).abs() < 1e-9);
    }

    #[test]
    fn c_optimality_shape_under_scaling() {
        // With G = BD·o(β/μλ) (Observation 2's condition), growing the
        // problem at fixed machine shrinks the I/O ratio: model it by
        // scaling t_seq linearly and t_io as n/(BD).
        let mut prev = f64::MAX;
        for n in [1_000_000.0f64, 4_000_000.0, 16_000_000.0] {
            let t_seq = n * n.log2();
            let t_io = n / (4.0 * 4096.0) * 5.0;
            let r = observation2_ratios(t_seq, 4, t_seq / 4.0, 0.0, t_io);
            assert!(r.io_ratio < prev, "io ratio must shrink with n");
            prev = r.io_ratio;
        }
    }
}
