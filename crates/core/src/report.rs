//! Cost reporting for simulation runs.

use crate::machine::ModelCheck;
use em_bsp::CommLedger;
use em_disk::{FaultCounts, IoStats};
use std::time::Duration;

/// Superstep-granular recovery knobs for the EM simulators.
///
/// When recovery is enabled, each compound superstep runs inside a disk
/// recovery epoch: committed state is only advanced at the barrier
/// `sync()`, and a transient disk fault that survives the substrate's
/// [`em_disk::RetryPolicy`] triggers a rollback to the last committed
/// state followed by a bounded replay of the whole superstep.
///
/// ```
/// use em_core::RecoveryPolicy;
///
/// // Allow each faulted superstep up to 8 replays before the run is
/// // declared unrecoverable; the default budget is 3.
/// assert_eq!(RecoveryPolicy::new(8).max_replays_per_superstep, 8);
/// assert_eq!(RecoveryPolicy::default().max_replays_per_superstep, 3);
/// // The budget is clamped to at least one replay.
/// assert_eq!(RecoveryPolicy::new(0).max_replays_per_superstep, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecoveryPolicy {
    /// Maximum number of times any single compound superstep may be
    /// replayed before the run is declared unrecoverable.
    pub max_replays_per_superstep: usize,
}

impl RecoveryPolicy {
    /// Replay each faulted superstep at most `max_replays_per_superstep`
    /// times (clamped to at least 1).
    pub fn new(max_replays_per_superstep: usize) -> Self {
        RecoveryPolicy { max_replays_per_superstep: max_replays_per_superstep.max(1) }
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy::new(3)
    }
}

/// How a fault-injected run went: what the plan fired, what the substrate
/// absorbed via retries, and what the simulator recovered via replays.
///
/// None of these tallies touch the paper-facing counted parallel I/O in
/// [`IoStats::parallel_ops`]; retry and recovery traffic is reported
/// separately (see `EXPERIMENTS.md`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Faults fired by the injection plan, by kind.
    pub injected: FaultCounts,
    /// Per-track retries absorbed by the substrate's retry policy.
    pub retried_blocks: u64,
    /// Uncounted recovery operations: pre-image reads, discarded
    /// rolled-back attempt operations, and rollback restore writes.
    pub recovery_ops: u64,
    /// Supersteps that completed only after at least one replay.
    pub recovered_supersteps: u64,
    /// Total superstep replays performed across the run.
    pub replays: u64,
    /// Superstep that could not be completed, when the run failed.
    pub failed_superstep: Option<usize>,
}

/// Parallel I/O operations attributed to each phase of the simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseIo {
    /// Step 1(a): context reads.
    pub fetch_ctx: u64,
    /// Step 1(b): message-region reads.
    pub fetch_msg: u64,
    /// Step 1(d): scratch message writes (the randomized scatter).
    pub scatter: u64,
    /// Step 1(e): context writes.
    pub write_ctx: u64,
    /// Step 2: `SimulateRouting` (both sub-steps).
    pub routing: u64,
}

impl PhaseIo {
    /// Total operations across phases.
    pub fn total(&self) -> u64 {
        self.fetch_ctx + self.fetch_msg + self.scatter + self.write_ctx + self.routing
    }
}

/// Wall-clock time attributed to each phase of the simulation.
///
/// This is the *secondary* signal of DESIGN.md §3.2.2 — host-dependent
/// and page-cache-sensitive — split by phase so that a speedup (from
/// [`crate::ComputeMode::Threaded`], [`em_disk::Pipeline::DoubleBuffer`],
/// ...) is attributable. Deliberately a separate struct from [`PhaseIo`]:
/// the counted per-phase I/O operations are asserted bit-identical across
/// the `IoMode`/`Pipeline`/`ComputeMode` knobs, while wall clocks may —
/// and should — differ. On the parallel simulator each field is the
/// maximum across worker threads (the phases run concurrently, so the
/// slowest worker bounds the wall). Replayed supersteps keep their
/// timers: the time genuinely elapsed, even if the attempt was rolled
/// back.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseWall {
    /// Fetching Phase: context and message-region reads (Steps 1(a)/1(b)),
    /// including pipelined submission and join time.
    pub fetch: Duration,
    /// Computation Phase: decode, superstep, re-encode (Step 1(c)).
    pub compute: Duration,
    /// Writing Phase: message scatter and context write-back
    /// (Steps 1(d)/1(e)), including backlog drains.
    pub write: Duration,
    /// Step 2: `SimulateRouting` reorganization.
    pub reorganize: Duration,
    /// Superstep-boundary durability barrier (`sync()`).
    pub sync: Duration,
}

impl PhaseWall {
    /// Total wall time across phases.
    pub fn total(&self) -> Duration {
        self.fetch + self.compute + self.write + self.reorganize + self.sync
    }

    /// Element-wise maximum, used to merge concurrent workers' timers.
    pub fn merge_max(&mut self, other: &PhaseWall) {
        self.fetch = self.fetch.max(other.fetch);
        self.compute = self.compute.max(other.compute);
        self.write = self.write.max(other.write);
        self.reorganize = self.reorganize.max(other.reorganize);
        self.sync = self.sync.max(other.sync);
    }
}

/// Everything measured during one external-memory simulation run.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// `v` — virtual processors simulated.
    pub v: usize,
    /// `k` — group size used (`⌊M/μ⌋` clamped to `[1, v]`).
    pub k: usize,
    /// Number of groups (`⌈v/k⌉`) per simulating processor.
    pub num_groups: usize,
    /// `p` — real processors used.
    pub p: usize,
    /// λ — supersteps simulated.
    pub lambda: usize,
    /// Disk counters, merged across real processors.
    pub io: IoStats,
    /// Per-phase I/O operation counts, merged across real processors.
    pub phases: PhaseIo,
    /// Per-phase wall-clock split (max across real processors; secondary
    /// signal — see [`PhaseWall`]).
    pub phase_wall: PhaseWall,
    /// Communication ledger of the simulated program (virtual traffic).
    pub comm: CommLedger,
    /// h-relation bytes actually exchanged between *real* processors
    /// (zero for the uniprocessor simulation).
    pub real_comm_bytes: u64,
    /// Charged I/O time `G · parallel_ops` (max over real processors).
    pub io_time: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Disk tracks used per drive (space, the `O(vμ/DB)` of Lemma 1).
    pub tracks_per_disk: usize,
    /// Empirical Lemma 2 balance factor per superstep (worst bucket/disk
    /// load over its even share).
    pub balance_factors: Vec<f64>,
    /// Theorem 1 side-condition report for this configuration.
    pub checks: Vec<ModelCheck>,
    /// Fault-injection and recovery tallies; `None` unless the run had a
    /// fault plan or recovery enabled.
    pub faults: Option<FaultReport>,
    /// The concrete knob values the [`crate::AutoTuner`] chose; `None`
    /// unless at least one knob was requested as `Auto`. Identically
    /// seeded runs on one host carry byte-identical resolutions (see
    /// [`crate::ResolvedConfig::deterministic_line`]).
    pub resolved_config: Option<crate::ResolvedConfig>,
}

impl CostReport {
    /// Blocks of message traffic routed, per superstep on average.
    pub fn avg_blocks_per_superstep(&self) -> f64 {
        if self.lambda == 0 {
            return 0.0;
        }
        self.io.blocks_moved() as f64 / self.lambda as f64
    }

    /// Worst balance factor observed across supersteps.
    pub fn worst_balance(&self) -> f64 {
        self.balance_factors.iter().copied().fold(1.0, f64::max)
    }

    /// Render a compact human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "v={} k={} groups={} p={} λ={} | io_ops={} blocks={} util={:.2} io_time={} \
             cache_hits={} cache_absorbed={} | \
             phases: ctx_r={} msg_r={} scatter={} ctx_w={} routing={} | msgs={} bytes={} | \
             tracks/disk={} balance≤{:.2} wall={:?}",
            self.v,
            self.k,
            self.num_groups,
            self.p,
            self.lambda,
            self.io.parallel_ops,
            self.io.blocks_moved(),
            self.io.utilization(),
            self.io_time,
            self.io.cache_hit_blocks,
            self.io.cache_absorbed_writes,
            self.phases.fetch_ctx,
            self.phases.fetch_msg,
            self.phases.scatter,
            self.phases.write_ctx,
            self.phases.routing,
            self.comm.total_msgs(),
            self.comm.total_bytes(),
            self.tracks_per_disk,
            self.worst_balance(),
            self.wall,
        )
    }

    /// Render the per-phase wall-clock split as a compact one-liner.
    pub fn phase_wall_summary(&self) -> String {
        let w = &self.phase_wall;
        format!(
            "phase wall: fetch={:.1?} compute={:.1?} write={:.1?} reorg={:.1?} sync={:.1?}",
            w.fetch, w.compute, w.write, w.reorganize, w.sync
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_totals_add_up() {
        let p = PhaseIo { fetch_ctx: 1, fetch_msg: 2, scatter: 3, write_ctx: 4, routing: 5 };
        assert_eq!(p.total(), 15);
    }

    #[test]
    fn phase_wall_merge_takes_elementwise_max() {
        let ms = Duration::from_millis;
        let mut a = PhaseWall {
            fetch: ms(5),
            compute: ms(1),
            write: ms(3),
            reorganize: ms(2),
            sync: ms(0),
        };
        let b = PhaseWall {
            fetch: ms(2),
            compute: ms(9),
            write: ms(3),
            reorganize: ms(1),
            sync: ms(4),
        };
        a.merge_max(&b);
        assert_eq!(a.fetch, ms(5));
        assert_eq!(a.compute, ms(9));
        assert_eq!(a.write, ms(3));
        assert_eq!(a.reorganize, ms(2));
        assert_eq!(a.sync, ms(4));
        assert_eq!(a.total(), ms(23));
    }
}
