//! Property tests for the simulation: (1) scatter → route → fetch
//! preserves arbitrary message multisets exactly; (2) the EM simulators
//! are observationally equivalent to the in-memory reference on randomly
//! generated message-passing programs.

use em_bsp::{run_sequential, BspProgram, BspStarParams, Mailbox, Step};
use em_core::{
    fetch_group_messages, scatter_messages, simulate_routing, BufferPool, EmMachine, MsgGeometry,
    OutMsg, ParEmSimulator, Placement, RoutingScratch, ScratchState, SeqEmSimulator,
};
use em_disk::{DiskArray, DiskConfig, TrackAllocator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Multiset preservation through the full message machinery, for
    /// arbitrary message sets, sizes and placements.
    #[test]
    fn scatter_route_fetch_preserves_messages(
        msgs in proptest::collection::vec(
            (0u32..16, 0u32..16, proptest::collection::vec(any::<u8>(), 0..80)),
            0..60
        ),
        seed in any::<u64>(),
        random_placement in any::<bool>(),
    ) {
        let d = 4;
        let b = 64;
        let v = 16;
        let k = 2;
        let mut alloc = TrackAllocator::new(d);
        let geom = MsgGeometry::allocate(&mut alloc, v, k, 16 * 1024, d, b).unwrap();
        let mut disks = DiskArray::new_memory(DiskConfig::new(d, b).unwrap());
        let mut scratch = ScratchState::new(&geom);
        let mut rng = StdRng::seed_from_u64(seed);
        let placement = if random_placement { Placement::Random } else { Placement::RoundRobin };

        // Group messages by source group and assign per-source sequence
        // numbers the way the simulator does.
        let mut sent: Vec<(u32, u32, u32, Vec<u8>)> = Vec::new();
        for src_group in 0..v / k {
            let mut out = Vec::new();
            let mut seq_per_src = std::collections::HashMap::new();
            for (dst, src, payload) in msgs.iter().filter(|&&(_, s, _)| (s as usize) / k == src_group) {
                let seq = seq_per_src.entry(*src).or_insert(0u32);
                out.push(OutMsg { dst: *dst, src: *src, seq: *seq, payload: payload.clone() });
                sent.push((*dst, *src, *seq, payload.clone()));
                *seq += 1;
            }
            scatter_messages(&mut disks, &mut alloc, &geom, &mut scratch, src_group, out, &mut rng, placement).unwrap();
        }

        let (counts, _) = simulate_routing(&mut disks, &mut alloc, &geom, scratch, &mut RoutingScratch::new(), &mut BufferPool::new(), None).unwrap();
        let mut got: Vec<(u32, u32, u32, Vec<u8>)> = Vec::new();
        for g in 0..geom.num_groups {
            for m in fetch_group_messages(&mut disks, &geom, &counts, g).unwrap() {
                prop_assert_eq!(geom.group_of(m.dst as usize), g);
                got.push((m.dst, m.src, m.seq, m.payload));
            }
        }
        sent.sort();
        got.sort();
        prop_assert_eq!(got, sent);
    }

    /// Differential test: a randomized message-passing program produces
    /// identical states on the reference runner, the uniprocessor EM
    /// simulator, and the 2-processor EM simulator.
    #[test]
    fn em_simulators_match_reference_on_random_programs(
        v in 2usize..10,
        rounds in 1usize..5,
        fan in 1usize..4,
        mul in 1u64..1000,
        seed in any::<u64>(),
    ) {
        /// Every vproc sends `fan` messages per round to pseudo-random
        /// destinations derived from (pid, round, mul); state accumulates
        /// a rolling hash of everything received.
        struct Random {
            rounds: usize,
            fan: usize,
            mul: u64,
        }
        impl BspProgram for Random {
            type State = u64;
            type Msg = u64;
            fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut u64) -> Step {
                for e in mb.take_incoming() {
                    *state = state
                        .wrapping_mul(31)
                        .wrapping_add(e.msg)
                        .wrapping_add(e.src as u64);
                }
                if step < self.rounds {
                    let v = mb.nprocs();
                    for f in 0..self.fan {
                        let dst = (mb.pid() * 7 + step * 13 + f * 3 + self.mul as usize) % v;
                        mb.send(dst, (mb.pid() as u64) << 16 | (step as u64) << 8 | f as u64);
                    }
                    Step::Continue
                } else {
                    Step::Halt
                }
            }
            fn max_state_bytes(&self) -> usize {
                8
            }
            fn max_comm_bytes(&self) -> usize {
                // fan sends, up to v*fan receipts of 24 envelope bytes.
                24 * self.fan * 12 + 64
            }
        }

        let prog = Random { rounds, fan, mul };
        let init: Vec<u64> = (0..v as u64).collect();
        let reference = run_sequential(&prog, init.clone()).unwrap();

        let m1 = EmMachine::uniprocessor(512, 2, 64, 1);
        let (res1, _) = SeqEmSimulator::new(m1).with_seed(seed).run(&prog, init.clone()).unwrap();
        prop_assert_eq!(&res1.states, &reference.states, "uniprocessor EM");

        let m2 = EmMachine {
            p: 2,
            m_bytes: 512,
            d: 2,
            b_bytes: 64,
            g_io: 1,
            router: BspStarParams { p: 2, g: 1.0, b: 64, l: 1.0 },
        };
        let (res2, _) = ParEmSimulator::new(m2).with_seed(seed).run(&prog, init).unwrap();
        prop_assert_eq!(&res2.states, &reference.states, "2-processor EM");
    }
}
