//! Property tests: every CGM algorithm agrees with its sequential
//! reference on arbitrary inputs (run on the sequential reference
//! executor; the executors themselves are covered by the cross-executor
//! differential suite and the em-core property tests).

use em_algos::geometry::dominance::{cgm_dominance_counts, seq_dominance_counts};
use em_algos::geometry::envelope::{cgm_lower_envelope, seq_lower_envelope};
use em_algos::geometry::hull::{cgm_convex_hull, seq_convex_hull};
use em_algos::geometry::next_element::{cgm_predecessor, seq_predecessor};
use em_algos::geometry::rectangles::{cgm_union_area, seq_union_area, Rect};
use em_algos::geometry::Point2;
use em_algos::graph::cc::{cgm_connected_components, seq_connected_components};
use em_algos::graph::euler::{cgm_euler_tree, seq_tree_info};
use em_algos::graph::list_ranking::{cgm_list_rank, seq_list_rank, NIL};
use em_algos::permute::{cgm_permute, seq_permute};
use em_algos::prefix::{cgm_prefix_sums, seq_prefix_sums};
use em_algos::sort::{cgm_sort, seq_sort};
use em_bsp::SeqExecutor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sort_matches(items in proptest::collection::vec(any::<u64>(), 0..300), v in 1usize..12) {
        let want = seq_sort(items.clone());
        let got = cgm_sort(&SeqExecutor, v, items).unwrap();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn permute_matches(n in 0usize..200, v in 1usize..10, seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let items: Vec<u64> = (0..n as u64).collect();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let want = seq_permute(&items, &perm);
        let got = cgm_permute(&SeqExecutor, v, items, &perm).unwrap();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn prefix_matches(items in proptest::collection::vec(any::<u64>(), 0..300), v in 1usize..12) {
        let want = seq_prefix_sums(&items);
        let got = cgm_prefix_sums(&SeqExecutor, v, items).unwrap();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn hull_matches(
        pts in proptest::collection::vec((-200i64..200, -200i64..200), 0..150),
        v in 1usize..10,
    ) {
        let pts: Vec<Point2> = pts.into_iter().map(|(x, y)| Point2::new(x, y)).collect();
        let want = seq_convex_hull(&pts);
        let got = cgm_convex_hull(&SeqExecutor, v, pts).unwrap();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn dominance_matches(
        pts in proptest::collection::vec(((-50i64..50, -50i64..50), 1u64..20), 0..120),
        v in 1usize..9,
    ) {
        let pts: Vec<(Point2, u64)> = pts
            .into_iter()
            .map(|((x, y), w)| (Point2::new(x, y), w))
            .collect();
        let want = seq_dominance_counts(&pts);
        let got = cgm_dominance_counts(&SeqExecutor, v, &pts).unwrap();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn predecessor_matches(
        keys in proptest::collection::vec(-500i64..500, 0..100),
        queries in proptest::collection::vec(-600i64..600, 0..150),
        v in 1usize..9,
    ) {
        let want = seq_predecessor(&keys, &queries);
        let got = cgm_predecessor(&SeqExecutor, v, &keys, &queries).unwrap();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn envelope_matches(
        segs in proptest::collection::vec((-300i64..300, 1i64..200, -80i64..80), 0..100),
        v in 1usize..9,
    ) {
        let segs: Vec<(i64, i64, i64)> =
            segs.into_iter().map(|(x1, len, y)| (x1, x1 + len, y)).collect();
        let want = seq_lower_envelope(&segs);
        let got = cgm_lower_envelope(&SeqExecutor, v, &segs).unwrap();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn union_area_matches(
        rects in proptest::collection::vec(
            (-200i64..200, 1i64..100, -200i64..200, 1i64..100),
            0..80
        ),
        v in 1usize..9,
    ) {
        let rects: Vec<Rect> = rects
            .into_iter()
            .map(|(x1, w, y1, h)| Rect::new(x1, x1 + w, y1, y1 + h))
            .collect();
        let want = seq_union_area(&rects);
        let got = cgm_union_area(&SeqExecutor, v, &rects).unwrap();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn closest_pair_matches(
        pts in proptest::collection::vec((-1000i64..1000, -1000i64..1000), 2..120),
        v in 1usize..10,
    ) {
        use em_algos::geometry::closest_pair::{cgm_closest_pair, seq_closest_pair};
        let pts: Vec<Point2> = pts.into_iter().map(|(x, y)| Point2::new(x, y)).collect();
        let want = seq_closest_pair(&pts);
        let got = cgm_closest_pair(&SeqExecutor, v, pts).unwrap();
        prop_assert_eq!(got.0, want.0);
    }

    /// Arbitrary chain forests: build from a random permutation cut into
    /// segments, with arbitrary weights.
    #[test]
    fn list_rank_matches(
        n in 1usize..150,
        cuts in proptest::collection::vec(any::<bool>(), 0..150),
        seed in any::<u64>(),
        weights_seed in any::<u64>(),
    ) {
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};
        let mut order: Vec<u64> = (0..n as u64).collect();
        order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let mut succ = vec![NIL; n];
        for (i, w) in order.windows(2).enumerate() {
            if !cuts.get(i).copied().unwrap_or(false) {
                succ[w[0] as usize] = w[1];
            }
        }
        let mut wrng = rand::rngs::StdRng::seed_from_u64(weights_seed);
        let weights: Vec<u64> = (0..n).map(|_| wrng.gen_range(0..100)).collect();
        let want = seq_list_rank(&succ, &weights);
        let got = cgm_list_rank(&SeqExecutor, 6, &succ, &weights).unwrap();
        prop_assert_eq!(got, want);
    }

    /// Random attachment trees with arbitrary roots.
    #[test]
    fn euler_tree_matches(n in 2usize..80, seed in any::<u64>(), root_pick in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let edges: Vec<(u64, u64)> = (1..n as u64).map(|i| (rng.gen_range(0..i), i)).collect();
        let root = root_pick % n as u64;
        let (wp, wd, ws) = seq_tree_info(n, &edges, root);
        let info = cgm_euler_tree(&SeqExecutor, 5, n, &edges, root).unwrap();
        prop_assert_eq!(info.parent, wp);
        prop_assert_eq!(info.depth, wd);
        prop_assert_eq!(info.size, ws);
    }

    #[test]
    fn cc_matches(
        n in 1usize..80,
        edges in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..150),
        v in 1usize..8,
    ) {
        let edges: Vec<(u64, u64)> = edges
            .into_iter()
            .map(|(a, b)| (a % n as u64, b % n as u64))
            .filter(|&(a, b)| a != b)
            .collect();
        let want = seq_connected_components(n, &edges);
        let got = cgm_connected_components(&SeqExecutor, v, n, &edges).unwrap();
        prop_assert_eq!(got.label, want.clone());
        // Spanning forest: rebuilds the same components, right edge count.
        let forest: Vec<(u64, u64)> =
            got.forest_edges.iter().map(|&i| edges[i as usize]).collect();
        prop_assert_eq!(seq_connected_components(n, &forest), want.clone());
        let comps: std::collections::HashSet<u64> = want.iter().copied().collect();
        prop_assert_eq!(forest.len(), n - comps.len());
    }
}
