//! # em-algos
//!
//! The CGM algorithms of the paper's Table 1, written against the
//! [`em_bsp::BspProgram`] API so each runs unchanged on the in-memory
//! reference runner, the threaded BSP machine, or the external-memory
//! simulators of `em-core` — the portability that the paper's simulation
//! technique converts into *parallel external-memory algorithms*.
//!
//! * **Group A — fundamental** (λ = O(1)): [`sort::cgm_sort`] (sample
//!   sort), [`permute::cgm_permute`], [`transpose::cgm_transpose`],
//!   [`prefix::cgm_prefix_sums`].
//! * **Group B — GIS / computational geometry** (λ = O(1)), on exact
//!   `i64` coordinates: convex hull, 3D maxima, 2D weighted dominance
//!   counting, batched next-element (predecessor) search, lower envelope
//!   of horizontal segments, area of union of rectangles.
//! * **Group C — graph algorithms** (λ = O(log n) supersteps in our
//!   pointer-jumping/hooking formulations; the paper's cited CGM
//!   algorithms achieve O(log p) rounds — the simulation theorem consumes
//!   λ as a parameter either way): list ranking, Euler tour, tree depth,
//!   connected components, spanning forest.
//!
//! Every algorithm ships with a sequential reference implementation used
//! by unit, property and differential tests.

#![warn(missing_docs)]

pub mod common;
pub mod geometry;
pub mod graph;
pub mod permute;
pub mod prefix;
pub mod sort;
pub mod transpose;

pub use common::{distribute, AlgoError, AlgoResult, Rec};
