//! CGM prefix sums — the workhorse primitive behind several Table 1
//! algorithms (rank assignment, offset computation). λ = 2: every
//! processor announces its local sum to all higher-numbered processors,
//! then applies the received offset locally.

use crate::common::{distribute, AlgoError, AlgoResult};
use em_bsp::{BspProgram, Executor, Mailbox, Step};
use em_serial::impl_serial_struct;

/// State: this processor's values, replaced by inclusive prefix sums.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixState {
    /// Local values / results.
    pub data: Vec<u64>,
}
impl_serial_struct!(PrefixState { data });

/// The prefix-sum BSP program (wrapping-add semantics on `u64`).
#[derive(Debug, Clone)]
pub struct PrefixSums {
    /// `⌈n/v⌉` for μ/γ sizing.
    pub chunk: usize,
    /// `v`.
    pub v: usize,
}

impl PrefixSums {
    /// Program for `n` values over `v` virtual processors.
    pub fn new(n: usize, v: usize) -> Self {
        PrefixSums { chunk: n.div_ceil(v).max(1), v }
    }
}

impl BspProgram for PrefixSums {
    type State = PrefixState;
    type Msg = u64;

    fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut PrefixState) -> Step {
        match step {
            0 => {
                let local: u64 = state.data.iter().fold(0u64, |a, &b| a.wrapping_add(b));
                for dst in mb.pid() + 1..mb.nprocs() {
                    mb.send(dst, local);
                }
                Step::Continue
            }
            _ => {
                let offset: u64 =
                    mb.take_incoming().iter().fold(0u64, |a, e| a.wrapping_add(e.msg));
                let mut acc = offset;
                for x in &mut state.data {
                    acc = acc.wrapping_add(*x);
                    *x = acc;
                }
                Step::Halt
            }
        }
    }

    fn max_state_bytes(&self) -> usize {
        16 + 8 * (self.chunk + 1)
    }

    fn max_comm_bytes(&self) -> usize {
        // A processor sends (or receives) at most v-1 single-u64 messages.
        24 * self.v + 64
    }
}

/// Inclusive prefix sums (wrapping) of `items` over `v` virtual processors.
pub fn cgm_prefix_sums<E: Executor>(exec: &E, v: usize, items: Vec<u64>) -> AlgoResult<Vec<u64>> {
    if v == 0 {
        return Err(AlgoError::Input("v must be >= 1".into()));
    }
    if items.is_empty() {
        return Ok(items);
    }
    let prog = PrefixSums::new(items.len(), v);
    let states = distribute(items, v).into_iter().map(|data| PrefixState { data }).collect();
    let res = exec.execute(&prog, states)?;
    Ok(res.states.into_iter().flat_map(|s| s.data).collect())
}

/// Sequential reference.
pub fn seq_prefix_sums(items: &[u64]) -> Vec<u64> {
    items
        .iter()
        .scan(0u64, |acc, &x| {
            *acc = acc.wrapping_add(x);
            Some(*acc)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_bsp::SeqExecutor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_reference() {
        let mut rng = StdRng::seed_from_u64(5);
        let items: Vec<u64> = (0..333).map(|_| rng.gen_range(0..1000)).collect();
        let want = seq_prefix_sums(&items);
        let got = cgm_prefix_sums(&SeqExecutor, 7, items).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn wrapping_behaviour() {
        let items = vec![u64::MAX, 2, 3];
        let got = cgm_prefix_sums(&SeqExecutor, 2, items.clone()).unwrap();
        assert_eq!(got, seq_prefix_sums(&items));
    }

    #[test]
    fn edge_cases() {
        assert!(cgm_prefix_sums(&SeqExecutor, 3, vec![]).unwrap().is_empty());
        assert_eq!(cgm_prefix_sums(&SeqExecutor, 3, vec![5]).unwrap(), vec![5]);
        assert_eq!(cgm_prefix_sums(&SeqExecutor, 8, vec![1; 4]).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn lambda_is_two() {
        let prog = PrefixSums::new(100, 4);
        let states = distribute((0..100u64).collect(), 4)
            .into_iter()
            .map(|data| PrefixState { data })
            .collect();
        let res = em_bsp::run_sequential(&prog, states).unwrap();
        assert!(res.supersteps() <= 2);
    }
}
