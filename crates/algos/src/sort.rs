//! CGM sample sort (parallel sorting by regular sampling) — Table 1,
//! Group A, "Sorting". λ = 4 supersteps, 3 of them communicating, i.e.
//! O(1) communication rounds as required for the optimal `Õ(G·n/(pBD))`
//! simulated I/O bound.
//!
//! Superstep plan (v virtual processors, n records):
//!
//! 0. local sort; every processor sends `v` regular samples to processor 0;
//! 1. processor 0 sorts the `v²` samples, picks `v − 1` splitters, and
//!    broadcasts them;
//! 2. every processor partitions its sorted run by the splitters and sends
//!    partition `i` to processor `i` (the all-to-all);
//! 3. every processor merges what it received.
//!
//! Regular sampling guarantees every processor ends with fewer than
//! `2·⌈n/v⌉ + v` records (the classical PSRS bound), which sizes μ.

use crate::common::{distribute, max_item_bytes, AlgoError, AlgoResult, Rec};
use em_bsp::{BspProgram, Executor, Mailbox, Step};
use em_serial::impl_serial_struct_generic;

/// Per-virtual-processor state of the sample sort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortState<T> {
    /// This processor's records (sorted from superstep 0 onward).
    pub data: Vec<T>,
    /// The global splitters (received in superstep 2).
    pub splitters: Vec<T>,
}
impl_serial_struct_generic!(SortState<T> { data, splitters });

/// The sample-sort BSP program. Construct via [`cgm_sort`] or directly for
/// pipeline use.
#[derive(Debug, Clone)]
pub struct SampleSort {
    /// `⌈n/v⌉` — chunk capacity used for μ/γ sizing.
    pub chunk: usize,
    /// `v`.
    pub v: usize,
    /// Upper bound on one record's encoded bytes.
    pub item_bytes: usize,
}

impl SampleSort {
    /// Program for sorting `n` records of at most `item_bytes` encoded
    /// bytes on `v` virtual processors.
    pub fn new(n: usize, v: usize, item_bytes: usize) -> Self {
        SampleSort { chunk: n.div_ceil(v).max(1), v, item_bytes }
    }
}

impl<T: Rec> BspProgram for SampleSortProg<T> {
    type State = SortState<T>;
    type Msg = Vec<T>;

    fn superstep(&self, step: usize, mb: &mut Mailbox<Vec<T>>, state: &mut SortState<T>) -> Step {
        let v = mb.nprocs();
        // Work charging: sorts cost n·log2(n), scans cost n (model units).
        let sort_cost = |n: usize| (n as u64) * (usize::BITS - n.max(2).leading_zeros()) as u64;
        match step {
            0 => {
                state.data.sort_unstable();
                mb.charge(sort_cost(state.data.len()));
                if v == 1 {
                    return Step::Halt;
                }
                // v regular samples of the local sorted run.
                let len = state.data.len();
                let samples: Vec<T> =
                    (0..v).filter_map(|j| state.data.get(j * len / v).cloned()).collect();
                mb.send(0, samples);
                Step::Continue
            }
            1 => {
                if mb.pid() == 0 {
                    let mut all: Vec<T> =
                        mb.take_incoming().into_iter().flat_map(|e| e.msg).collect();
                    all.sort_unstable();
                    mb.charge(sort_cost(all.len()));
                    let splitters: Vec<T> =
                        (1..v).filter_map(|i| all.get(i * all.len() / v).cloned()).collect();
                    for dst in 0..v {
                        mb.send(dst, splitters.clone());
                    }
                }
                Step::Continue
            }
            2 => {
                let splitters = mb.take_incoming().pop().map(|e| e.msg).unwrap_or_default();
                let data = std::mem::take(&mut state.data);
                mb.charge(data.len() as u64);
                // Partition the sorted run by the splitters.
                let mut start = 0;
                for (i, s) in splitters.iter().enumerate() {
                    let end = start + data[start..].partition_point(|x| x <= s);
                    if end > start {
                        mb.send(i, data[start..end].to_vec());
                    }
                    start = end;
                }
                if start < data.len() {
                    mb.send(v - 1, data[start..].to_vec());
                }
                state.splitters = splitters;
                Step::Continue
            }
            _ => {
                let mut merged: Vec<T> =
                    mb.take_incoming().into_iter().flat_map(|e| e.msg).collect();
                merged.sort_unstable();
                mb.charge(sort_cost(merged.len()));
                state.data = merged;
                Step::Halt
            }
        }
    }

    fn max_state_bytes(&self) -> usize {
        // PSRS bound: < 2·chunk + v records, plus splitters and vec headers.
        64 + self.params.item_bytes * (2 * self.params.chunk + 2 * self.params.v + 4)
    }

    fn max_comm_bytes(&self) -> usize {
        // Worst single-processor traffic: processor 0 receives v² samples;
        // the all-to-all moves ≤ 2·chunk records; each superstep sends at
        // most v messages of ≤ 36 bytes framing each.
        let p = &self.params;
        p.item_bytes * (2 * p.chunk + p.v * p.v + 2 * p.v) + 40 * p.v + 256
    }
}

/// Typed wrapper binding [`SampleSort`] parameters to a record type.
#[derive(Debug, Clone)]
pub struct SampleSortProg<T> {
    /// Size parameters.
    pub params: SampleSort,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> SampleSortProg<T> {
    /// Bind the parameters to a record type.
    pub fn new(params: SampleSort) -> Self {
        SampleSortProg { params, _marker: std::marker::PhantomData }
    }
}

/// Sort `items` with the CGM sample sort on `v` virtual processors.
///
/// ```
/// use em_algos::sort::cgm_sort;
/// use em_bsp::SeqExecutor;
///
/// let sorted = cgm_sort(&SeqExecutor, 4, vec![5u64, 3, 9, 1]).unwrap();
/// assert_eq!(sorted, vec![1, 3, 5, 9]);
/// ```
pub fn cgm_sort<E: Executor, T: Rec>(exec: &E, v: usize, items: Vec<T>) -> AlgoResult<Vec<T>> {
    if v == 0 {
        return Err(AlgoError::Input("v must be >= 1".into()));
    }
    if items.is_empty() {
        return Ok(items);
    }
    let n = items.len();
    let item_bytes = max_item_bytes(&items);
    let prog = SampleSortProg::<T>::new(SampleSort::new(n, v, item_bytes));
    let states = distribute(items, v)
        .into_iter()
        .map(|chunk| SortState { data: chunk, splitters: Vec::new() })
        .collect();
    let res = exec.execute(&prog, states)?;
    Ok(res.states.into_iter().flat_map(|s| s.data).collect())
}

/// Sequential reference: `sort_unstable`.
pub fn seq_sort<T: Ord>(mut items: Vec<T>) -> Vec<T> {
    items.sort_unstable();
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_bsp::SeqExecutor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sorts_random_u64() {
        let mut rng = StdRng::seed_from_u64(1);
        let items: Vec<u64> = (0..500).map(|_| rng.gen_range(0..10_000)).collect();
        let want = seq_sort(items.clone());
        let got = cgm_sort(&SeqExecutor, 8, items).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn sorts_with_heavy_duplicates() {
        let mut rng = StdRng::seed_from_u64(2);
        let items: Vec<u64> = (0..300).map(|_| rng.gen_range(0..5)).collect();
        let want = seq_sort(items.clone());
        let got = cgm_sort(&SeqExecutor, 6, items).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn sorts_tuples_by_lexicographic_order() {
        let mut rng = StdRng::seed_from_u64(3);
        let items: Vec<(u32, u64)> = (0..200).map(|_| (rng.gen_range(0..50), rng.gen())).collect();
        let want = seq_sort(items.clone());
        let got = cgm_sort(&SeqExecutor, 5, items).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn edge_cases() {
        assert_eq!(cgm_sort::<_, u64>(&SeqExecutor, 4, vec![]).unwrap(), vec![]);
        assert_eq!(cgm_sort(&SeqExecutor, 4, vec![7u64]).unwrap(), vec![7]);
        assert_eq!(cgm_sort(&SeqExecutor, 1, vec![3u64, 1, 2]).unwrap(), vec![1, 2, 3]);
        // More processors than items.
        assert_eq!(
            cgm_sort(&SeqExecutor, 16, vec![5u64, 4, 3, 2, 1]).unwrap(),
            vec![1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn already_sorted_and_reversed() {
        let asc: Vec<u64> = (0..100).collect();
        assert_eq!(cgm_sort(&SeqExecutor, 4, asc.clone()).unwrap(), asc);
        let desc: Vec<u64> = (0..100).rev().collect();
        assert_eq!(cgm_sort(&SeqExecutor, 4, desc).unwrap(), asc);
    }

    #[test]
    fn lambda_is_constant() {
        // The run must finish in a constant number of supersteps (4 plus
        // the final all-halt detection), independent of n.
        for n in [100usize, 1000] {
            let items: Vec<u64> = (0..n as u64).rev().collect();
            let prog = SampleSortProg::<u64>::new(SampleSort::new(n, 8, 8));
            let states = distribute(items, 8)
                .into_iter()
                .map(|c| SortState { data: c, splitters: Vec::new() })
                .collect();
            let res = em_bsp::run_sequential(&prog, states).unwrap();
            assert!(res.supersteps() <= 5, "λ grew with n: {}", res.supersteps());
        }
    }
}
