//! CGM batched lowest common ancestors — Table 1, Group C ("Lowest common
//! ancestor"). Classic reduction: LCA(u, w) is the minimum-depth vertex
//! visited between the first visits of `u` and `w` on the Euler tour, so a
//! batch of LCA queries becomes a batch of range-minimum queries over the
//! tour's depth sequence.
//!
//! Pipeline: [`crate::graph::euler::cgm_euler_tree`] (tour positions,
//! depths, parents) → one CGM range-minimum program ([`RmqBatch`],
//! λ = 3): every processor holds a chunk of the depth-by-tour-position
//! sequence and a share of the queries; chunk minima are broadcast, the
//! two boundary sub-ranges of each query are answered by their chunk
//! owners, and the requester combines.

use crate::common::{distribute, AlgoError, AlgoResult, ChunkMap};
use crate::graph::euler::cgm_euler_tree;
use crate::graph::list_ranking::NIL;
use em_bsp::{BspProgram, Executor, Mailbox, Step};
use em_serial::impl_serial_struct;

/// `(depth, vertex)` entry of the tour sequence; `Ord` on the tuple makes
/// "minimum depth, ties by vertex id" deterministic.
type Entry = (u64, u64);

/// State of the batched RMQ stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RmqState {
    /// Global index of my chunk's first sequence entry.
    pub start: u64,
    /// My chunk of the sequence.
    pub seq: Vec<Entry>,
    /// My share of the queries: `(l, r, query_id)`, `l ≤ r` inclusive.
    pub queries: Vec<(u64, u64, u64)>,
    /// Broadcast chunk minima, by processor.
    pub chunk_mins: Vec<Entry>,
    /// Answers `(query_id, depth, vertex)` for my queries.
    pub answers: Vec<(u64, u64, u64)>,
}
impl_serial_struct!(RmqState { start, seq, queries, chunk_mins, answers });

/// The batched range-minimum BSP program (3 fixed supersteps).
#[derive(Debug, Clone)]
pub struct RmqBatch {
    /// Sequence-ownership map.
    pub map: ChunkMap,
    /// Total queries (for sizing).
    pub q: usize,
}

impl BspProgram for RmqBatch {
    type State = RmqState;
    /// `(tag, a, b, c, d)` — 0: chunk min `(depth, vertex, _, _)`;
    /// 1: boundary sub-query `(lo, hi, query_key, _)` (inclusive, within
    /// the receiver's chunk); 2: sub-answer `(query_key, depth, vertex, _)`.
    type Msg = (u8, u64, u64, u64, u64);

    fn superstep(
        &self,
        step: usize,
        mb: &mut Mailbox<(u8, u64, u64, u64, u64)>,
        state: &mut RmqState,
    ) -> Step {
        match step {
            0 => {
                // Broadcast my chunk minimum.
                let min = state.seq.iter().copied().min().unwrap_or((u64::MAX, u64::MAX));
                for dst in 0..mb.nprocs() {
                    mb.send(dst, (0, min.0, min.1, mb.pid() as u64, 0));
                }
                // Split each query into at most two boundary sub-ranges;
                // key = (local query index << 1 | side).
                for (qi, &(l, r, _)) in state.queries.iter().enumerate() {
                    let cl = self.map.owner(l as usize);
                    let cr = self.map.owner(r as usize);
                    if cl == cr {
                        mb.send(cl, (1, l, r, (qi as u64) << 1, 0));
                    } else {
                        let l_end = (self.map.chunk_start(cl) + self.map.chunk_len(cl) - 1) as u64;
                        let r_start = self.map.chunk_start(cr) as u64;
                        mb.send(cl, (1, l, l_end, (qi as u64) << 1, 0));
                        mb.send(cr, (1, r_start, r, ((qi as u64) << 1) | 1, 0));
                    }
                }
                Step::Continue
            }
            1 => {
                let mut mins: Vec<(u64, Entry)> = Vec::new(); // (proc, min)
                for env in mb.take_incoming() {
                    match env.msg.0 {
                        0 => mins.push((env.msg.3, (env.msg.1, env.msg.2))),
                        1 => {
                            let (_, lo, hi, key, _) = env.msg;
                            let a = (lo - state.start) as usize;
                            let b = (hi - state.start) as usize;
                            let m = state.seq[a..=b].iter().copied().min().expect("nonempty");
                            mb.send(env.src, (2, key, m.0, m.1, 0));
                        }
                        _ => unreachable!("tag 2 arrives at step 2"),
                    }
                }
                mins.sort_unstable();
                state.chunk_mins = mins.into_iter().map(|(_, m)| m).collect();
                Step::Continue
            }
            _ => {
                let mut subs: Vec<(u64, Entry)> =
                    mb.take_incoming().into_iter().map(|e| (e.msg.1, (e.msg.2, e.msg.3))).collect();
                subs.sort_unstable();
                let lookup = |key: u64| -> Option<Entry> {
                    subs.binary_search_by_key(&key, |&(k, _)| k).ok().map(|i| subs[i].1)
                };
                let mut answers = Vec::with_capacity(state.queries.len());
                for (qi, &(l, r, qid)) in state.queries.iter().enumerate() {
                    let cl = self.map.owner(l as usize);
                    let cr = self.map.owner(r as usize);
                    let mut best = lookup((qi as u64) << 1).expect("left sub-answer");
                    if let Some(rhs) = lookup(((qi as u64) << 1) | 1) {
                        best = best.min(rhs);
                    }
                    // Full chunks strictly between the boundary chunks.
                    for c in cl + 1..cr {
                        best = best.min(state.chunk_mins[c]);
                    }
                    answers.push((qid, best.0, best.1));
                }
                state.answers = answers;
                Step::Halt
            }
        }
    }

    fn max_state_bytes(&self) -> usize {
        let chunk = self.map.n.div_ceil(self.map.v).max(1);
        let qchunk = self.q.div_ceil(self.map.v).max(1);
        128 + 16 * (chunk + 2) + 24 * (2 * qchunk + 2) + 16 * (self.map.v + 2)
    }

    fn max_comm_bytes(&self) -> usize {
        let qchunk = self.q.div_ceil(self.map.v).max(1);
        // Chunk-min broadcast + 2 sub-queries/answers per query; a single
        // chunk owner can receive every sub-query in the worst case.
        (41 + 16) * (2 * self.q + 2 * qchunk + self.map.v + 8) + 512
    }
}

/// Batched range-minimum over `seq` (global, driver-distributed): returns
/// for each inclusive range `(l, r)` the minimum entry.
pub fn cgm_batched_rmq<E: Executor>(
    exec: &E,
    v: usize,
    seq: &[Entry],
    ranges: &[(u64, u64)],
) -> AlgoResult<Vec<Entry>> {
    if v == 0 {
        return Err(AlgoError::Input("v must be >= 1".into()));
    }
    if seq.is_empty() {
        return Err(AlgoError::Input("empty sequence".into()));
    }
    for &(l, r) in ranges {
        if l > r || r as usize >= seq.len() {
            return Err(AlgoError::Input(format!("bad range ({l}, {r})")));
        }
    }
    let map = ChunkMap { n: seq.len(), v };
    let tagged: Vec<(u64, u64, u64)> =
        ranges.iter().enumerate().map(|(i, &(l, r))| (l, r, i as u64)).collect();
    let qchunks = distribute(tagged, v);
    let schunks = distribute(seq.to_vec(), v);
    let mut states = Vec::with_capacity(v);
    let mut start = 0u64;
    for (sc, qc) in schunks.into_iter().zip(qchunks) {
        let len = sc.len() as u64;
        states.push(RmqState {
            start,
            seq: sc,
            queries: qc,
            chunk_mins: Vec::new(),
            answers: Vec::new(),
        });
        start += len;
    }
    let prog = RmqBatch { map, q: ranges.len() };
    let res = exec.execute(&prog, states)?;
    let mut out = vec![(u64::MAX, u64::MAX); ranges.len()];
    for s in res.states {
        for (qid, d, vx) in s.answers {
            out[qid as usize] = (d, vx);
        }
    }
    Ok(out)
}

/// Batched LCA: for every query pair `(u, w)` on the tree given by
/// `edges`/`root`, the lowest common ancestor.
pub fn cgm_batched_lca<E: Executor>(
    exec: &E,
    v: usize,
    n_vertices: usize,
    edges: &[(u64, u64)],
    root: u64,
    queries: &[(u64, u64)],
) -> AlgoResult<Vec<u64>> {
    for &(a, b) in queries {
        if a as usize >= n_vertices || b as usize >= n_vertices {
            return Err(AlgoError::Input(format!("query ({a}, {b}) out of range")));
        }
    }
    if n_vertices == 1 {
        return Ok(vec![root; queries.len()]);
    }
    let info = cgm_euler_tree(exec, v, n_vertices, edges, root)?;
    if queries.is_empty() {
        return Ok(Vec::new());
    }

    // Vertex-visit sequence: position 0 is the root, position i+1 is the
    // head of the arc at tour position i.
    let m = info.arcs.len();
    let mut vseq = vec![(0u64, root); m + 1];
    let mut enter = vec![0u64; n_vertices]; // first-visit position in vseq
    for (arc_idx, &(_, dst)) in info.arcs.iter().enumerate() {
        let pos = info.tour_pos[arc_idx] as usize + 1;
        vseq[pos] = (info.depth[dst as usize], dst);
    }
    for (vx, &parent) in info.parent.iter().enumerate() {
        enter[vx] = if parent == NIL {
            0
        } else {
            // enter arc position + 1 (driver glue on already-local data).
            let arc_idx = info.arcs.binary_search(&(parent, vx as u64)).expect("enter arc exists");
            info.tour_pos[arc_idx] + 1
        };
    }

    let ranges: Vec<(u64, u64)> = queries
        .iter()
        .map(|&(a, b)| {
            let (x, y) = (enter[a as usize], enter[b as usize]);
            (x.min(y), x.max(y))
        })
        .collect();
    let mins = cgm_batched_rmq(exec, v, &vseq, &ranges)?;
    Ok(mins.into_iter().map(|(_, vx)| vx).collect())
}

/// Sequential reference: walk both vertices up to the root.
pub fn seq_lca(parent: &[u64], depth: &[u64], mut a: u64, mut b: u64) -> u64 {
    while depth[a as usize] > depth[b as usize] {
        a = parent[a as usize];
    }
    while depth[b as usize] > depth[a as usize] {
        b = parent[b as usize];
    }
    while a != b {
        a = parent[a as usize];
        b = parent[b as usize];
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::euler::seq_tree_info;
    use em_bsp::SeqExecutor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rmq_small() {
        let seq: Vec<Entry> = vec![(3, 0), (1, 1), (4, 2), (1, 3), (5, 4), (9, 5)];
        let ranges = vec![(0, 5), (0, 0), (2, 4), (4, 5), (1, 3)];
        let got = cgm_batched_rmq(&SeqExecutor, 3, &seq, &ranges).unwrap();
        assert_eq!(got, vec![(1, 1), (3, 0), (1, 3), (5, 4), (1, 1)]);
    }

    #[test]
    fn rmq_matches_brute_force_random() {
        let mut rng = StdRng::seed_from_u64(60);
        let n = 200;
        let seq: Vec<Entry> = (0..n as u64).map(|i| (rng.gen_range(0..50), i)).collect();
        let ranges: Vec<(u64, u64)> = (0..100)
            .map(|_| {
                let a = rng.gen_range(0..n as u64);
                let b = rng.gen_range(0..n as u64);
                (a.min(b), a.max(b))
            })
            .collect();
        let want: Vec<Entry> = ranges
            .iter()
            .map(|&(l, r)| seq[l as usize..=r as usize].iter().copied().min().unwrap())
            .collect();
        let got = cgm_batched_rmq(&SeqExecutor, 7, &seq, &ranges).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn lca_on_path_and_star() {
        // Path 0-1-2-3-4 rooted at 0.
        let edges: Vec<(u64, u64)> = (0..4).map(|i| (i, i + 1)).collect();
        let queries = vec![(4, 2), (0, 4), (3, 3), (1, 4)];
        let got = cgm_batched_lca(&SeqExecutor, 3, 5, &edges, 0, &queries).unwrap();
        assert_eq!(got, vec![2, 0, 3, 1]);
        // Star rooted at center.
        let edges: Vec<(u64, u64)> = (1..6).map(|i| (0, i)).collect();
        let got =
            cgm_batched_lca(&SeqExecutor, 3, 6, &edges, 0, &[(1, 2), (3, 3), (5, 1)]).unwrap();
        assert_eq!(got, vec![0, 3, 0]);
    }

    #[test]
    fn lca_matches_reference_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(61);
        for _ in 0..4 {
            let n = rng.gen_range(10..80);
            let edges: Vec<(u64, u64)> = (1..n as u64).map(|i| (rng.gen_range(0..i), i)).collect();
            let root = rng.gen_range(0..n as u64);
            let (parent, depth, _) = seq_tree_info(n, &edges, root);
            let queries: Vec<(u64, u64)> =
                (0..60).map(|_| (rng.gen_range(0..n as u64), rng.gen_range(0..n as u64))).collect();
            let want: Vec<u64> =
                queries.iter().map(|&(a, b)| seq_lca(&parent, &depth, a, b)).collect();
            let got = cgm_batched_lca(&SeqExecutor, 5, n, &edges, root, &queries).unwrap();
            assert_eq!(got, want, "n={n} root={root}");
        }
    }

    #[test]
    fn lca_edge_cases() {
        // Single vertex.
        let got = cgm_batched_lca(&SeqExecutor, 2, 1, &[], 0, &[(0, 0)]).unwrap();
        assert_eq!(got, vec![0]);
        // No queries.
        let got = cgm_batched_lca(&SeqExecutor, 2, 2, &[(0, 1)], 0, &[]).unwrap();
        assert!(got.is_empty());
        // Out-of-range query.
        assert!(cgm_batched_lca(&SeqExecutor, 2, 2, &[(0, 1)], 0, &[(0, 9)]).is_err());
    }
}
