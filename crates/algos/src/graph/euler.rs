//! CGM Euler tour and tree computations — Table 1, Group C ("Euler tour
//! (tree)", "tree contraction"-style aggregates).
//!
//! Pipeline (each stage a BSP program; positions/offset arithmetic on
//! chunk *counts* is driver glue):
//!
//! 1. CGM-sort the `2(n−1)` directed arcs by `(src, dst)`;
//! 2. [`EulerBuild`]: construct the Euler-circuit successor of every arc
//!    — `succ((u,v))` is the arc after `(v,u)` in `v`'s circular
//!    adjacency — using one boundary broadcast plus key-range rendezvous
//!    routing for block heads and twins; the circuit is cut at the first
//!    arc out of the root;
//! 3. list ranking (unit weights) → tour positions;
//! 4. [`FirstVisit`]: per vertex, the minimum-position incoming arc gives
//!    the parent, enter and exit positions (→ subtree sizes); per arc a
//!    ±1 advance/retreat weight;
//! 5. list ranking (±1 weights) → depths.

use crate::common::{distribute, AlgoError, AlgoResult, ChunkMap};
use crate::graph::list_ranking::{cgm_list_rank, NIL};
use crate::sort::cgm_sort;
use em_bsp::{BspProgram, Executor, Mailbox, Step};
use em_serial::impl_serial_struct;

/// State of the successor-construction stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EbState {
    /// Global position of this chunk's first arc.
    pub start: u64,
    /// Sorted arc chunk `(src, dst)`.
    pub arcs: Vec<(u64, u64)>,
    /// Output: tour successor position per local arc (`NIL` = tour end).
    pub succ: Vec<u64>,
    /// Chunk ranges learned in step 1: `(start, first_src, first_dst)`.
    pub ranges: Vec<(u64, u64, u64)>,
    /// Rendezvous-owner scratch: block-head candidates `(src, pos)`.
    pub heads: Vec<(u64, u64)>,
    /// Requests this processor issued: `(pos_of_arc, u, v)` awaiting a
    /// block-head reply for `src = v`.
    pub waiting: Vec<(u64, u64, u64)>,
    /// Buffered twin assignments `(u, v, succ_pos)` until the head of the
    /// root's block is known.
    pub pending: Vec<(u64, u64, u64)>,
    /// Position of the tour's first arc (first arc out of the root).
    pub head_root: u64,
}
impl_serial_struct!(EbState { start, arcs, succ, ranges, heads, waiting, pending, head_root });

/// The successor-construction BSP program (5 fixed supersteps).
#[derive(Debug, Clone)]
pub struct EulerBuild {
    /// Number of arcs `m = 2(n−1)`.
    pub m: usize,
    /// Root vertex.
    pub root: u64,
    /// `v` (for sizing).
    pub v: usize,
}

impl EulerBuild {
    /// Which processor's key range contains `(src, dst)` (the processor
    /// with the largest first key `≤` it; keys below the global minimum
    /// clamp to the first non-empty processor).
    fn range_owner(ranges: &[(u64, u64, u64)], key: (u64, u64)) -> usize {
        debug_assert!(!ranges.is_empty());
        let idx = ranges.partition_point(|&(_, s, d)| (s, d) <= key);
        // ranges are sorted by start; map back through the announcement's
        // order index — the announcements carry src in sorted key order,
        // which coincides with start order.
        idx.saturating_sub(1)
    }
}

impl BspProgram for EulerBuild {
    type State = EbState;
    /// `(tag, a, b, c)` — 0: range `(start, first_src, first_dst)`;
    /// 1: head announce `(src, pos, _)`; 2: head request `(src, pos_of_arc,
    /// _)`; 3: head reply `(src, head_pos, pos_of_arc)`; 4: twin assign
    /// `(u, v, succ_pos)`; 5: root head broadcast `(head_root, _, _)`.
    type Msg = (u8, u64, u64, u64);

    fn superstep(
        &self,
        step: usize,
        mb: &mut Mailbox<(u8, u64, u64, u64)>,
        state: &mut EbState,
    ) -> Step {
        let v = mb.nprocs();
        match step {
            0 => {
                if let Some(&(s, d)) = state.arcs.first() {
                    for dst in 0..v {
                        mb.send(dst, (0, state.start, s, d));
                    }
                }
                state.succ = vec![NIL; state.arcs.len()];
                Step::Continue
            }
            1 => {
                let mut ranges: Vec<(u64, u64, u64)> = mb
                    .take_incoming()
                    .into_iter()
                    .filter(|e| e.msg.0 == 0)
                    .map(|e| (e.msg.1, e.msg.2, e.msg.3))
                    .collect();
                ranges.sort_unstable();
                state.ranges = ranges;
                if state.arcs.is_empty() {
                    return Step::Continue;
                }
                let ranges = &state.ranges;
                // Announcement index == pid: chunks are distributed evenly
                // in pid order, so non-empty chunks are exactly pids
                // 0..#announcements and start order equals pid order.
                // Announce block heads: first local arc of each distinct src.
                let mut prev_src = None;
                for (i, &(s, _)) in state.arcs.iter().enumerate() {
                    if prev_src != Some(s) {
                        let owner = Self::range_owner(ranges, (s, 0));
                        mb.send(self.pid_of(owner), (1, s, state.start + i as u64, 0));
                        prev_src = Some(s);
                    }
                }
                // For each local arc (v_, u_) at pos q, the twin (u_, v_)
                // gets succ = next arc in v_'s block (circular).
                let last = state.arcs.len() - 1;
                for (i, &(vv, uu)) in state.arcs.iter().enumerate() {
                    let q = state.start + i as u64;
                    let next_same_block = if i < last {
                        if state.arcs[i + 1].0 == vv {
                            Some(q + 1)
                        } else {
                            None
                        }
                    } else {
                        // Next arc lives on the next non-empty processor.
                        let my_idx = ranges.partition_point(|&(st, _, _)| st <= state.start) - 1;
                        match ranges.get(my_idx + 1) {
                            Some(&(st, s, _)) if s == vv => Some(st),
                            _ => None,
                        }
                    };
                    match next_same_block {
                        Some(np) => {
                            let owner = Self::range_owner(ranges, (uu, vv));
                            mb.send(self.pid_of(owner), (4, uu, vv, np));
                        }
                        None => {
                            // Block of vv ends here: request its head.
                            let owner = Self::range_owner(ranges, (vv, 0));
                            mb.send(self.pid_of(owner), (2, vv, q, 0));
                            state.waiting.push((q, uu, vv));
                        }
                    }
                }
                Step::Continue
            }
            2 => {
                let mut announces: Vec<(u64, u64)> = Vec::new();
                let mut requests: Vec<(usize, u64, u64)> = Vec::new();
                for env in mb.take_incoming() {
                    match env.msg.0 {
                        1 => announces.push((env.msg.1, env.msg.2)),
                        2 => requests.push((env.src, env.msg.1, env.msg.2)),
                        4 => state.pending.push((env.msg.1, env.msg.2, env.msg.3)),
                        _ => {}
                    }
                }
                announces.sort_unstable();
                // head[s] = min pos per src.
                let mut heads: Vec<(u64, u64)> = Vec::new();
                for (s, pos) in announces {
                    match heads.last_mut() {
                        Some((ls, lp)) if *ls == s => *lp = (*lp).min(pos),
                        _ => heads.push((s, pos)),
                    }
                }
                // If I own the root's rendezvous key, broadcast its head.
                if let Ok(idx) = heads.binary_search_by_key(&self.root, |&(s, _)| s) {
                    for dst in 0..v {
                        mb.send(dst, (5, heads[idx].1, 0, 0));
                    }
                }
                for (src, s, q) in requests {
                    let head = heads
                        .binary_search_by_key(&s, |&(hs, _)| hs)
                        .map(|i| heads[i].1)
                        .unwrap_or(NIL);
                    mb.send(src, (3, s, head, q));
                }
                state.heads = heads;
                Step::Continue
            }
            3 => {
                let mut replies: Vec<(u64, u64)> = Vec::new(); // (pos_of_arc, head)
                for env in mb.take_incoming() {
                    match env.msg.0 {
                        3 => replies.push((env.msg.3, env.msg.2)),
                        5 => state.head_root = env.msg.1,
                        4 => state.pending.push((env.msg.1, env.msg.2, env.msg.3)),
                        _ => {}
                    }
                }
                replies.sort_unstable();
                for &(q, uu, vv) in &state.waiting {
                    let head = replies
                        .binary_search_by_key(&q, |&(rq, _)| rq)
                        .map(|i| replies[i].1)
                        .expect("head reply for every request");
                    let owner = Self::range_owner(&state.ranges, (uu, vv));
                    mb.send(self.pid_of(owner), (4, uu, vv, head));
                }
                state.waiting.clear();
                Step::Continue
            }
            _ => {
                for env in mb.take_incoming() {
                    if env.msg.0 == 4 {
                        state.pending.push((env.msg.1, env.msg.2, env.msg.3));
                    } else if env.msg.0 == 5 {
                        state.head_root = env.msg.1;
                    }
                }
                let pending = std::mem::take(&mut state.pending);
                for (uu, vv, succ_pos) in pending {
                    let idx = state
                        .arcs
                        .binary_search(&(uu, vv))
                        .expect("twin arc owned by its range owner");
                    state.succ[idx] = if succ_pos == state.head_root { NIL } else { succ_pos };
                }
                Step::Halt
            }
        }
    }

    fn max_state_bytes(&self) -> usize {
        let chunk = self.m.div_ceil(self.v).max(1);
        256 + 24 * (chunk + 2) * 4 + 32 * (self.v + 2)
    }

    fn max_comm_bytes(&self) -> usize {
        // Rendezvous owners can receive the announcements and requests of
        // every processor for a popular source vertex (star trees), so
        // size on the total arc count.
        (25 + 16) * (4 * self.m + 2 * self.v + 8) + 512
    }
}

impl EulerBuild {
    /// pid of the `idx`-th non-empty chunk. Chunks are distributed evenly
    /// in pid order, so with `m ≥ v` every pid is non-empty and the
    /// mapping is the identity; with `m < v` only the first `m` pids hold
    /// one arc each — still the identity. (Empty chunks never announce.)
    fn pid_of(&self, idx: usize) -> usize {
        idx
    }
}

/// State of the first-visit stage (vertex-chunk side and arc-chunk side in
/// one program: every processor owns both an arc chunk and a vertex
/// chunk).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FvState {
    /// Global id of my first vertex.
    pub vstart: u64,
    /// Arc chunk: `(u, v, pos)`.
    pub arcs: Vec<(u64, u64, u64)>,
    /// Per local vertex: parent (`NIL` for the root).
    pub parent: Vec<u64>,
    /// Per local vertex: enter position.
    pub enter: Vec<u64>,
    /// Per local vertex: subtree size.
    pub size: Vec<u64>,
    /// Per local arc: weight `+1`/`−1` as wrapped `u64`.
    pub weight: Vec<u64>,
}
impl_serial_struct!(FvState { vstart, arcs, parent, enter, size, weight });

/// The first-visit / weights BSP program (3 fixed supersteps).
#[derive(Debug, Clone)]
pub struct FirstVisit {
    /// Vertex-ownership map.
    pub vmap: ChunkMap,
    /// Number of arcs.
    pub m: usize,
    /// Root vertex.
    pub root: u64,
}

impl BspProgram for FirstVisit {
    type State = FvState;
    /// `(tag, a, b, c)` — 0: incoming arc `(v, pos, u)`; 1: outgoing arc
    /// `(v, pos, dst)`; 2: weight reply `(arc_pos, is_down, _)`.
    type Msg = (u8, u64, u64, u64);

    fn superstep(
        &self,
        step: usize,
        mb: &mut Mailbox<(u8, u64, u64, u64)>,
        state: &mut FvState,
    ) -> Step {
        match step {
            0 => {
                for &(u, vv, pos) in &state.arcs {
                    mb.send(self.vmap.owner(vv as usize), (0, vv, pos, u));
                    mb.send(self.vmap.owner(u as usize), (1, u, pos, vv));
                }
                Step::Continue
            }
            1 => {
                let nloc = self.vmap.chunk_len(mb.pid());
                let mut best: Vec<(u64, u64)> = vec![(NIL, NIL); nloc]; // (pos, parent)
                let mut outgoing: Vec<Vec<(u64, u64)>> = vec![Vec::new(); nloc]; // (dst, pos)
                let mut incoming: Vec<(usize, u64, u64, u64)> = Vec::new(); // (src, v, pos, u)
                for env in mb.take_incoming() {
                    let (tag, vv, pos, other) = env.msg;
                    let local = (vv - state.vstart) as usize;
                    match tag {
                        0 => {
                            incoming.push((env.src, vv, pos, other));
                            if pos < best[local].0 {
                                best[local] = (pos, other);
                            }
                        }
                        _ => outgoing[local].push((other, pos)),
                    }
                }
                state.parent = vec![NIL; nloc];
                state.enter = vec![NIL; nloc];
                state.size = vec![0; nloc];
                for local in 0..nloc {
                    let vid = state.vstart + local as u64;
                    if vid == self.root {
                        state.parent[local] = NIL;
                        state.enter[local] = 0;
                        state.size[local] = (self.m as u64 + 2) / 2; // n
                        continue;
                    }
                    let (pos, parent) = best[local];
                    state.parent[local] = parent;
                    state.enter[local] = pos;
                    if parent != NIL {
                        // Exit arc: the outgoing arc towards the parent.
                        let exit = outgoing[local]
                            .iter()
                            .find(|&&(dst, _)| dst == parent)
                            .map(|&(_, p)| p)
                            .unwrap_or(NIL);
                        if exit != NIL {
                            state.size[local] = (exit - pos + 1).div_ceil(2);
                        }
                    }
                }
                // Weight replies: the arc (u, v) at `pos` is a down arc iff
                // it is v's enter arc.
                for (src, vv, pos, _) in incoming {
                    let local = (vv - state.vstart) as usize;
                    let is_down = u64::from(state.enter[local] == pos && vv != self.root);
                    mb.send(src, (2, pos, is_down, 0));
                }
                Step::Continue
            }
            _ => {
                let mut replies: Vec<(u64, u64)> = mb
                    .take_incoming()
                    .into_iter()
                    .filter(|e| e.msg.0 == 2)
                    .map(|e| (e.msg.1, e.msg.2))
                    .collect();
                replies.sort_unstable();
                state.weight = vec![0; state.arcs.len()];
                for (i, &(_, _, pos)) in state.arcs.iter().enumerate() {
                    let idx = replies
                        .binary_search_by_key(&pos, |&(p, _)| p)
                        .expect("weight reply per arc");
                    state.weight[i] = if replies[idx].1 == 1 { 1u64 } else { (-1i64) as u64 };
                }
                Step::Halt
            }
        }
    }

    fn max_state_bytes(&self) -> usize {
        let chunk = self.m.div_ceil(self.vmap.v).max(self.vmap.n.div_ceil(self.vmap.v)).max(1);
        256 + 24 * (chunk + 2) + 8 * 4 * (chunk + 2)
    }

    fn max_comm_bytes(&self) -> usize {
        // Vertex owners receive one message per incident arc endpoint;
        // degree skew (star trees) can concentrate Θ(m) of them on one
        // owner, so size on the total arc count.
        (25 + 16) * 3 * (self.m + self.vmap.v + 4) + 512
    }
}

/// Result of the tree pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeInfo {
    /// Parent of every vertex (`NIL` for the root).
    pub parent: Vec<u64>,
    /// Depth of every vertex (root = 0).
    pub depth: Vec<u64>,
    /// Subtree size of every vertex.
    pub size: Vec<u64>,
    /// Euler-tour position of every arc, aligned with the sorted arc list.
    pub tour_pos: Vec<u64>,
    /// The sorted arc list `(u, v)`.
    pub arcs: Vec<(u64, u64)>,
}

/// Run the full Euler-tour pipeline on a tree given by undirected edges.
pub fn cgm_euler_tree<E: Executor>(
    exec: &E,
    v: usize,
    n_vertices: usize,
    edges: &[(u64, u64)],
    root: u64,
) -> AlgoResult<TreeInfo> {
    if v == 0 {
        return Err(AlgoError::Input("v must be >= 1".into()));
    }
    if n_vertices == 0 || root as usize >= n_vertices {
        return Err(AlgoError::Input("root out of range".into()));
    }
    if edges.len() + 1 != n_vertices {
        return Err(AlgoError::Input(format!(
            "a tree on {n_vertices} vertices has {} edges, got {}",
            n_vertices - 1,
            edges.len()
        )));
    }
    if n_vertices == 1 {
        return Ok(TreeInfo {
            parent: vec![NIL],
            depth: vec![0],
            size: vec![1],
            tour_pos: Vec::new(),
            arcs: Vec::new(),
        });
    }
    for &(a, b) in edges {
        if a as usize >= n_vertices || b as usize >= n_vertices || a == b {
            return Err(AlgoError::Input(format!("bad edge ({a}, {b})")));
        }
    }

    // Stage 1: sort the directed arcs.
    let arcs: Vec<(u64, u64)> = edges.iter().flat_map(|&(a, b)| [(a, b), (b, a)]).collect();
    let m = arcs.len();
    let sorted = cgm_sort(exec, v, arcs)?;

    // Stage 2: successor construction.
    let chunks = distribute(sorted.clone(), v);
    let mut states = Vec::with_capacity(v);
    let mut start = 0u64;
    for chunk in chunks {
        let len = chunk.len() as u64;
        states.push(EbState {
            start,
            arcs: chunk,
            succ: Vec::new(),
            ranges: Vec::new(),
            heads: Vec::new(),
            waiting: Vec::new(),
            pending: Vec::new(),
            head_root: NIL,
        });
        start += len;
    }
    let eb = EulerBuild { m, root, v };
    let res = exec.execute(&eb, states)?;
    let succ: Vec<u64> = res.states.into_iter().flat_map(|s| s.succ).collect();

    // Stage 3: tour positions via list ranking (unit weights).
    let ranks = cgm_list_rank(exec, v, &succ, &vec![1u64; m])?;
    let tour_pos: Vec<u64> = ranks.iter().map(|&r| m as u64 - r).collect();

    // Stage 4: first visits, parents, sizes, ±1 weights.
    let vmap = ChunkMap { n: n_vertices, v };
    let arc_recs: Vec<(u64, u64, u64)> =
        sorted.iter().zip(&tour_pos).map(|(&(u, vv), &pos)| (u, vv, pos)).collect();
    let chunks = distribute(arc_recs, v);
    let mut states = Vec::with_capacity(v);
    for (pid, chunk) in chunks.into_iter().enumerate() {
        states.push(FvState {
            vstart: vmap.chunk_start(pid) as u64,
            arcs: chunk,
            parent: Vec::new(),
            enter: Vec::new(),
            size: Vec::new(),
            weight: Vec::new(),
        });
    }
    let fv = FirstVisit { vmap, m, root };
    let res = exec.execute(&fv, states)?;
    let mut parent = Vec::with_capacity(n_vertices);
    let mut size = Vec::with_capacity(n_vertices);
    let mut enter = Vec::with_capacity(n_vertices);
    let mut weights_by_arc: Vec<u64> = Vec::with_capacity(m);
    for s in res.states {
        parent.extend(s.parent);
        size.extend(s.size);
        enter.extend(s.enter);
        weights_by_arc.extend(s.weight);
    }

    // Stage 5: depths via ±1 list ranking over tour order. The ranking
    // operates on arcs *ordered by tour position*: permute weights/succ
    // into tour order so node ids equal tour positions (driver glue).
    let mut w_tour = vec![0u64; m];
    let mut succ_tour = vec![NIL; m];
    for i in 0..m {
        let p = tour_pos[i] as usize;
        w_tour[p] = weights_by_arc[i];
        succ_tour[p] = if p + 1 < m { p as u64 + 1 } else { NIL };
    }
    let s_tour = cgm_list_rank(exec, v, &succ_tour, &w_tour)?;
    // depth(v) = w(enter_v) − s(enter_v) in signed arithmetic; enter arcs
    // are down arcs with weight +1.
    let mut depth = vec![0u64; n_vertices];
    for vid in 0..n_vertices {
        if vid as u64 == root {
            continue;
        }
        let e = enter[vid] as usize;
        depth[vid] = 1u64.wrapping_sub(s_tour[e]);
    }

    Ok(TreeInfo { parent, depth, size, tour_pos, arcs: sorted })
}

/// Sequential reference: iterative DFS.
pub fn seq_tree_info(n: usize, edges: &[(u64, u64)], root: u64) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a as usize].push(b as usize);
        adj[b as usize].push(a as usize);
    }
    let mut parent = vec![NIL; n];
    let mut depth = vec![0u64; n];
    let mut size = vec![1u64; n];
    let mut order = Vec::with_capacity(n);
    let mut stack = vec![root as usize];
    let mut seen = vec![false; n];
    seen[root as usize] = true;
    while let Some(u) = stack.pop() {
        order.push(u);
        for &w in &adj[u] {
            if !seen[w] {
                seen[w] = true;
                parent[w] = u as u64;
                depth[w] = depth[u] + 1;
                stack.push(w);
            }
        }
    }
    for &u in order.iter().rev() {
        if parent[u] != NIL {
            size[parent[u] as usize] += size[u];
        }
    }
    (parent, depth, size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_bsp::SeqExecutor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_tree(n: usize, edges: &[(u64, u64)], root: u64, v: usize) {
        let (want_parent, want_depth, want_size) = seq_tree_info(n, edges, root);
        let info = cgm_euler_tree(&SeqExecutor, v, n, edges, root).unwrap();
        assert_eq!(info.parent, want_parent, "parents for n={n}");
        assert_eq!(info.depth, want_depth, "depths for n={n}");
        assert_eq!(info.size, want_size, "sizes for n={n}");
        // Tour positions are a permutation of 0..m.
        let mut pos = info.tour_pos.clone();
        pos.sort_unstable();
        assert_eq!(pos, (0..edges.len() as u64 * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_edge() {
        check_tree(2, &[(0, 1)], 0, 2);
        check_tree(2, &[(0, 1)], 1, 2);
    }

    #[test]
    fn path_graph() {
        let edges: Vec<(u64, u64)> = (0..9).map(|i| (i, i + 1)).collect();
        check_tree(10, &edges, 0, 4);
        check_tree(10, &edges, 5, 4);
    }

    #[test]
    fn star_graph() {
        let edges: Vec<(u64, u64)> = (1..12).map(|i| (0, i)).collect();
        check_tree(12, &edges, 0, 3);
        check_tree(12, &edges, 7, 3);
    }

    #[test]
    fn random_trees_match_reference() {
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..5 {
            let n = rng.gen_range(20..80);
            // Random attachment tree.
            let edges: Vec<(u64, u64)> = (1..n as u64).map(|i| (rng.gen_range(0..i), i)).collect();
            let root = rng.gen_range(0..n as u64);
            check_tree(n, &edges, root, 5);
        }
    }

    #[test]
    fn single_vertex() {
        let info = cgm_euler_tree(&SeqExecutor, 2, 1, &[], 0).unwrap();
        assert_eq!(info.parent, vec![NIL]);
        assert_eq!(info.size, vec![1]);
    }

    #[test]
    fn invalid_inputs() {
        assert!(cgm_euler_tree(&SeqExecutor, 2, 3, &[(0, 1)], 0).is_err()); // wrong edge count
        assert!(cgm_euler_tree(&SeqExecutor, 2, 2, &[(0, 0)], 0).is_err()); // self loop
        assert!(cgm_euler_tree(&SeqExecutor, 2, 2, &[(0, 1)], 5).is_err()); // bad root
    }
}
