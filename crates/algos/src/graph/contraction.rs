//! CGM list ranking by independent-set contraction — the ablation
//! counterpart to pointer jumping ([`crate::graph::list_ranking`]).
//!
//! Pointer jumping keeps all `n` nodes active for every one of its
//! `O(log n)` rounds (Θ(n) traffic per round). Contraction instead
//! *splices out* an expected constant fraction of the nodes per round — a
//! node `s` leaves when `coin(s) = tails` and `coin(pred(s)) = heads`,
//! with coins a pure hash of `(node, round)`, so selection needs no
//! communication and spliced-out neighbours never collide — and folds its
//! weight into its predecessor. Traffic shrinks geometrically, which is
//! exactly the "geometrically decreasing size" property the paper's
//! Section 2.1 discusses: under the simulation, contraction's total I/O
//! is O(n/DB) while pointer jumping pays O((n/DB)·log n). A reverse
//! unwinding pass then assigns ranks to the spliced nodes.

use crate::common::{distribute, AlgoError, AlgoResult, ChunkMap};
use crate::graph::list_ranking::NIL;
use em_bsp::{BspProgram, Executor, Mailbox, Step};
use em_serial::impl_serial_struct;

/// Deterministic per-(node, round) coin.
fn coin(node: u64, round: u64) -> bool {
    let mut x = node ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x & 1 == 1
}

/// Per-chunk state shared by the contraction and unwinding stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtState {
    /// Global id of my first node.
    pub start: u64,
    /// Current successor per node (`NIL` at chain tails / after full
    /// contraction).
    pub succ: Vec<u64>,
    /// Current predecessor per node (`NIL` at heads).
    pub pred: Vec<u64>,
    /// Accumulated weight (absorbs spliced successors).
    pub w: Vec<u64>,
    /// 1 while the node participates in the contraction.
    pub alive: Vec<u8>,
    /// For spliced nodes: the successor at splice time (`NIL` if tail).
    pub splice_t: Vec<u64>,
    /// For spliced nodes: the frozen weight.
    pub splice_w: Vec<u64>,
    /// Round at which the node was spliced (`NIL` = never).
    pub splice_round: Vec<u64>,
    /// Final ranks (valid after unwinding).
    pub rank: Vec<u64>,
}
impl_serial_struct!(CtState {
    start,
    succ,
    pred,
    w,
    alive,
    splice_t,
    splice_w,
    splice_round,
    rank
});

/// Contraction stage: one superstep per round. Superstep 0 additionally
/// builds the predecessor pointers.
#[derive(Debug, Clone)]
pub struct Contract {
    /// Node-ownership map.
    pub map: ChunkMap,
}

impl BspProgram for Contract {
    type State = CtState;
    /// `(tag, a, b, c)` — 0: "a is the pred of b"; 1: set-succ
    /// `(p, new_succ, folded_w)`; 2: set-pred `(t, new_pred, _)`.
    type Msg = (u8, u64, u64, u64);

    fn superstep(
        &self,
        step: usize,
        mb: &mut Mailbox<(u8, u64, u64, u64)>,
        state: &mut CtState,
    ) -> Step {
        if step == 0 {
            for (l, &s) in state.succ.iter().enumerate() {
                if s != NIL {
                    let x = state.start + l as u64;
                    mb.send(self.map.owner(s as usize), (0, x, s, 0));
                }
            }
            return Step::Continue;
        }
        // Apply updates from the previous superstep.
        for env in mb.take_incoming() {
            let (tag, a, b, c) = env.msg;
            match tag {
                0 => {
                    let local = (b - state.start) as usize;
                    state.pred[local] = a;
                }
                1 => {
                    let local = (a - state.start) as usize;
                    state.succ[local] = b;
                    state.w[local] = state.w[local].wrapping_add(c);
                }
                _ => {
                    let local = (a - state.start) as usize;
                    state.pred[local] = b;
                }
            }
        }
        // Decide this round's splices: node s leaves when coin(s) = tails,
        // it has a predecessor, and coin(pred) = heads.
        let round = step as u64;
        let mut active = false;
        for l in 0..state.succ.len() {
            if state.alive[l] == 0 {
                continue;
            }
            let s = state.start + l as u64;
            let p = state.pred[l];
            if state.succ[l] != NIL || p != NIL {
                active = true;
            }
            if p != NIL && !coin(s, round) && coin(p, round) {
                let t = state.succ[l];
                state.alive[l] = 0;
                state.splice_t[l] = t;
                state.splice_w[l] = state.w[l];
                state.splice_round[l] = round;
                mb.send(self.map.owner(p as usize), (1, p, t, state.w[l]));
                if t != NIL {
                    mb.send(self.map.owner(t as usize), (2, t, p, 0));
                }
            }
        }
        if active {
            Step::Continue
        } else {
            // Fully contracted: every alive node is an isolated head whose
            // accumulated weight is its rank.
            for l in 0..state.succ.len() {
                if state.alive[l] == 1 {
                    state.rank[l] = state.w[l];
                }
            }
            Step::Halt
        }
    }

    fn max_state_bytes(&self) -> usize {
        let chunk = self.map.n.div_ceil(self.map.v).max(1);
        192 + (8 * 7 + 1) * (chunk + 2)
    }

    fn max_comm_bytes(&self) -> usize {
        let chunk = self.map.n.div_ceil(self.map.v).max(1);
        (25 + 16) * (3 * chunk + 4) + 256
    }
}

/// Unwinding stage: rounds are replayed in reverse; nodes spliced at round
/// `r` query their splice-time successor (already final) for its rank.
#[derive(Debug, Clone)]
pub struct Unwind {
    /// Node-ownership map.
    pub map: ChunkMap,
    /// Highest contraction round used.
    pub max_round: u64,
}

impl BspProgram for Unwind {
    type State = CtState;
    /// `(tag, a, b, c)` — 0: rank query `(s, t, _)`; 1: rank reply
    /// `(s, rank_t, _)`.
    type Msg = (u8, u64, u64, u64);

    fn superstep(
        &self,
        step: usize,
        mb: &mut Mailbox<(u8, u64, u64, u64)>,
        state: &mut CtState,
    ) -> Step {
        // Even steps: apply replies, then issue queries for the next
        // reverse round; odd steps: answer queries.
        if step.is_multiple_of(2) {
            for env in mb.take_incoming() {
                let (_, s, rank_t, _) = env.msg;
                let local = (s - state.start) as usize;
                state.rank[local] = state.splice_w[local].wrapping_add(rank_t);
            }
            let i = (step / 2) as u64;
            if i > self.max_round {
                return Step::Halt;
            }
            let round = self.max_round - i;
            for l in 0..state.succ.len() {
                if state.splice_round[l] != round {
                    continue;
                }
                let s = state.start + l as u64;
                let t = state.splice_t[l];
                if t == NIL {
                    state.rank[l] = state.splice_w[l];
                } else {
                    mb.send(self.map.owner(t as usize), (0, s, t, 0));
                }
            }
            Step::Continue
        } else {
            for env in mb.take_incoming() {
                let (_, s, t, _) = env.msg;
                let local = (t - state.start) as usize;
                mb.send(env.src, (1, s, state.rank[local], 0));
            }
            Step::Continue
        }
    }

    fn max_state_bytes(&self) -> usize {
        let chunk = self.map.n.div_ceil(self.map.v).max(1);
        192 + (8 * 7 + 1) * (chunk + 2)
    }

    fn max_comm_bytes(&self) -> usize {
        let chunk = self.map.n.div_ceil(self.map.v).max(1);
        (25 + 16) * (2 * chunk + 4) + 256
    }
}

/// List ranking by independent-set contraction: same contract as
/// [`crate::graph::list_ranking::cgm_list_rank`] (weight sum from node to
/// its chain tail, inclusive, wrapping), geometrically decreasing traffic.
pub fn cgm_list_rank_contraction<E: Executor>(
    exec: &E,
    v: usize,
    succ: &[u64],
    weights: &[u64],
) -> AlgoResult<Vec<u64>> {
    if v == 0 {
        return Err(AlgoError::Input("v must be >= 1".into()));
    }
    let n = succ.len();
    if weights.len() != n {
        return Err(AlgoError::Input("succ and weights must have equal length".into()));
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    for &s in succ {
        if s != NIL && s as usize >= n {
            return Err(AlgoError::Input(format!("successor {s} out of range")));
        }
    }
    let map = ChunkMap { n, v };
    let tagged: Vec<(u64, u64)> = succ.iter().copied().zip(weights.iter().copied()).collect();
    let chunks = distribute(tagged, v);
    let mut states = Vec::with_capacity(v);
    let mut start = 0u64;
    for chunk in chunks {
        let len = chunk.len();
        let (succ, w): (Vec<u64>, Vec<u64>) = chunk.into_iter().unzip();
        states.push(CtState {
            start,
            succ,
            pred: vec![NIL; len],
            w,
            alive: vec![1; len],
            splice_t: vec![NIL; len],
            splice_w: vec![0; len],
            splice_round: vec![NIL; len],
            rank: vec![0; len],
        });
        start += len as u64;
    }

    let res = exec.execute(&Contract { map }, states)?;
    let max_round = res
        .states
        .iter()
        .flat_map(|s| s.splice_round.iter().copied())
        .filter(|&r| r != NIL)
        .max()
        .unwrap_or(0);
    let res = exec.execute(&Unwind { map, max_round }, res.states)?;
    Ok(res.states.into_iter().flat_map(|s| s.rank).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::list_ranking::{cgm_list_rank, random_chain, seq_list_rank};
    use em_bsp::SeqExecutor;

    #[test]
    fn simple_chain() {
        let succ = vec![1, 2, 3, NIL];
        let got = cgm_list_rank_contraction(&SeqExecutor, 2, &succ, &[1; 4]).unwrap();
        assert_eq!(got, vec![4, 3, 2, 1]);
    }

    #[test]
    fn matches_pointer_jumping_on_random_chains() {
        for seed in [70, 71, 72] {
            let n = 173;
            let succ = random_chain(n, seed);
            let weights: Vec<u64> = (0..n as u64).map(|i| i % 9 + 1).collect();
            let want = seq_list_rank(&succ, &weights);
            let via_jump = cgm_list_rank(&SeqExecutor, 6, &succ, &weights).unwrap();
            let via_contract = cgm_list_rank_contraction(&SeqExecutor, 6, &succ, &weights).unwrap();
            assert_eq!(via_contract, want, "seed {seed}");
            assert_eq!(via_jump, via_contract);
        }
    }

    #[test]
    fn multiple_chains_and_singletons() {
        let succ = vec![1, NIL, 3, 4, NIL, NIL];
        let got = cgm_list_rank_contraction(&SeqExecutor, 3, &succ, &[1; 6]).unwrap();
        assert_eq!(got, vec![2, 1, 3, 2, 1, 1]);
    }

    /// Contraction moves geometrically less data: on a long chain its
    /// total message volume stays below pointer jumping's.
    #[test]
    fn contraction_moves_less_traffic() {
        let n = 2048;
        let succ = random_chain(n, 73);
        let w = vec![1u64; n];
        let jump = em_bsp::run_sequential(
            &crate::graph::list_ranking::PointerJump { map: ChunkMap { n, v: 8 } },
            {
                let tagged: Vec<(u64, u64)> = succ.iter().map(|&s| (s, 1)).collect();
                let mut states = Vec::new();
                let mut start = 0u64;
                for chunk in distribute(tagged, 8) {
                    let len = chunk.len() as u64;
                    let (ptr, rank): (Vec<u64>, Vec<u64>) = chunk.into_iter().unzip();
                    states.push(crate::graph::list_ranking::LrState { start, ptr, rank });
                    start += len;
                }
                states
            },
        )
        .unwrap();
        // Reference totals via the driver (contract + unwind ledgers are
        // not directly exposed, so compare through a counting executor).
        struct Count {
            bytes: std::sync::atomic::AtomicU64,
        }
        impl em_bsp::Executor for Count {
            fn execute<P: BspProgram>(
                &self,
                prog: &P,
                states: Vec<P::State>,
            ) -> Result<em_bsp::RunResult<P::State>, em_bsp::ExecError> {
                let res = em_bsp::run_sequential(prog, states)
                    .map_err(|e| Box::new(e) as em_bsp::ExecError)?;
                self.bytes
                    .fetch_add(res.ledger.total_bytes(), std::sync::atomic::Ordering::Relaxed);
                Ok(res)
            }
        }
        let counter = Count { bytes: std::sync::atomic::AtomicU64::new(0) };
        let got = cgm_list_rank_contraction(&counter, 8, &succ, &w).unwrap();
        assert_eq!(got, seq_list_rank(&succ, &w));
        let contraction_bytes = counter.bytes.load(std::sync::atomic::Ordering::Relaxed);
        let jump_bytes = jump.ledger.total_bytes();
        assert!(
            contraction_bytes * 2 < jump_bytes,
            "contraction ({contraction_bytes} B) should move well under half of pointer jumping ({jump_bytes} B)"
        );
    }
}
