//! CGM connected components and spanning forest — Table 1, Group C.
//!
//! Deterministic min-label hook-and-compress (Shiloach–Vishkin style):
//! every vertex keeps a parent pointer `P[u]` (initially itself). Each
//! iteration: (1) for every edge `(u, v)`, the owners look up the current
//! parents and propose hooking the larger root under the smaller
//! (`min`-hooking, so proposals compose without races); (2) every vertex
//! pointer-jumps `P[u] ← P[P[u]]`. Parents only decrease, so the process
//! converges to the minimum vertex id of each component in O(log n)
//! iterations of a constant number of supersteps each.
//!
//! The edge that wins a hook is recorded — the winning hooks over the run
//! form a spanning forest.

use crate::common::{distribute, AlgoError, AlgoResult, ChunkMap};
use em_bsp::{BspProgram, Executor, Mailbox, Step};
use em_serial::impl_serial_struct;

/// State: a chunk of vertices and a chunk of edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CcState {
    /// Global id of my first vertex.
    pub vstart: u64,
    /// Parent per local vertex.
    pub parent: Vec<u64>,
    /// Edge chunk `(u, v, edge_id)`.
    pub edges: Vec<(u64, u64, u64)>,
    /// Edge ids that won a hook (spanning-forest output, may hold ids of
    /// edges stored on this processor only).
    pub forest: Vec<u64>,
    /// Scratch: pending parent lookups for my edges `(edge_idx, pu, pv)`.
    pub lookups: Vec<(u64, u64, u64)>,
    /// Whether anything changed in the last iteration (for convergence).
    pub changed: bool,
}
impl_serial_struct!(CcState { vstart, parent, edges, forest, lookups, changed });

/// The hook-and-compress BSP program. One iteration is 6 supersteps:
///
/// 0. edge owners query `P[u]`, `P[v]` (and every vertex queries
///    `P[P[u]]` for compression);
/// 1. vertex owners answer;
/// 2. edge owners send hook proposals `(root, new_parent, edge_id)` to the
///    root's owner; vertices apply compression;
/// 3. root owners apply the minimum proposal, record the winning edge;
/// 4. every processor broadcasts its local `changed` flag;
/// 5. everyone either halts (no change anywhere) or starts over.
#[derive(Debug, Clone)]
pub struct HookCompress {
    /// Vertex-ownership map.
    pub vmap: ChunkMap,
    /// Edges total (for sizing).
    pub m: usize,
}

const PHASES: usize = 6;

impl BspProgram for HookCompress {
    type State = CcState;
    /// `(tag, a, b, c)` — 0: parent query `(vertex, token, kind)`;
    /// 1: parent reply `(token, parent, kind)`; 2: hook proposal
    /// `(root, new_parent, edge_id)`; 3: changed flag `(flag, _, _)`.
    type Msg = (u8, u64, u64, u64);

    fn superstep(
        &self,
        step: usize,
        mb: &mut Mailbox<(u8, u64, u64, u64)>,
        state: &mut CcState,
    ) -> Step {
        match step % PHASES {
            0 => {
                // Edge queries: for edge i ask owners of u and v for their
                // parents. kind 0 = u-side, 1 = v-side. Token = edge index
                // local to me, so replies can be matched.
                state.lookups =
                    state.edges.iter().map(|&(_, _, _)| (0, u64::MAX, u64::MAX)).collect();
                for (i, &(u, v, _)) in state.edges.iter().enumerate() {
                    state.lookups[i].0 = i as u64;
                    mb.send(self.vmap.owner(u as usize), (0, u, i as u64, 0));
                    mb.send(self.vmap.owner(v as usize), (0, v, i as u64, 1));
                }
                // Compression queries: each vertex asks P[u]'s owner for
                // P[P[u]]. kind 2, token = local vertex index.
                for (l, &p) in state.parent.iter().enumerate() {
                    mb.send(self.vmap.owner(p as usize), (0, p, l as u64, 2));
                }
                state.changed = false;
                Step::Continue
            }
            1 => {
                for env in mb.take_incoming() {
                    let (_, vertex, token, kind) = env.msg;
                    let local = (vertex - state.vstart) as usize;
                    mb.send(env.src, (1, token, state.parent[local], kind));
                }
                Step::Continue
            }
            2 => {
                let mut grand = vec![u64::MAX; state.parent.len()];
                for env in mb.take_incoming() {
                    let (_, token, parent, kind) = env.msg;
                    match kind {
                        0 => state.lookups[token as usize].1 = parent,
                        1 => state.lookups[token as usize].2 = parent,
                        _ => grand[token as usize] = parent,
                    }
                }
                // Hook proposals: hook the larger parent under the smaller.
                for &(i, pu, pv) in &state.lookups {
                    if pu == pv {
                        continue;
                    }
                    let (root, new_parent) = if pu > pv { (pu, pv) } else { (pv, pu) };
                    let edge_id = state.edges[i as usize].2;
                    mb.send(self.vmap.owner(root as usize), (2, root, new_parent, edge_id));
                }
                // Compression.
                for (l, g) in grand.into_iter().enumerate() {
                    if g != u64::MAX && g != state.parent[l] {
                        state.parent[l] = g;
                        state.changed = true;
                    }
                }
                Step::Continue
            }
            3 => {
                // Apply the minimum hook proposal per vertex, but only to
                // *true roots* (classic Shiloach–Vishkin hooking): a vertex
                // is hooked at most once per lifetime as a root, keeping
                // the recorded candidate edges near-forest; the driver
                // filters residual cycles (stale proposals can still merge
                // already-merged components) with a union-find pass.
                let mut best: Vec<Option<(u64, u64)>> = vec![None; state.parent.len()];
                for env in mb.take_incoming() {
                    let (_, root, new_parent, edge_id) = env.msg;
                    let local = (root - state.vstart) as usize;
                    if state.parent[local] == root && new_parent < root {
                        match best[local] {
                            Some((np, _)) if np <= new_parent => {}
                            _ => best[local] = Some((new_parent, edge_id)),
                        }
                    }
                }
                for (l, b) in best.into_iter().enumerate() {
                    if let Some((np, edge_id)) = b {
                        state.parent[l] = np;
                        state.forest.push(edge_id);
                        state.changed = true;
                    }
                }
                Step::Continue
            }
            4 => {
                for dst in 0..mb.nprocs() {
                    mb.send(dst, (3, u64::from(state.changed), 0, 0));
                }
                Step::Continue
            }
            _ => {
                let any = mb.take_incoming().iter().any(|e| e.msg.1 == 1);
                if any {
                    Step::Continue
                } else {
                    Step::Halt
                }
            }
        }
    }

    fn max_state_bytes(&self) -> usize {
        let vchunk = self.vmap.n.div_ceil(self.vmap.v).max(1);
        let echunk = self.m.div_ceil(self.vmap.v).max(1);
        256 + 8 * (vchunk + 2) + 24 * 2 * (echunk + 2) + 8 * (echunk + 2)
    }

    fn max_comm_bytes(&self) -> usize {
        // Vertex owners answer one reply per incident edge endpoint; with
        // skewed degree (star graphs) a single owner can see Θ(m) queries,
        // so the per-processor budget is sized on the total edge count.
        let vchunk = self.vmap.n.div_ceil(self.vmap.v).max(1);
        (25 + 16) * (2 * self.m + 2 * vchunk + self.vmap.v + 8) + 512
    }
}

/// Output of [`cgm_connected_components`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// Component label per vertex (the minimum vertex id of its component).
    pub label: Vec<u64>,
    /// Edge ids forming a spanning forest.
    pub forest_edges: Vec<u64>,
}

/// Connected components (labels = component minima) and a spanning forest
/// of an undirected graph on `n` vertices.
pub fn cgm_connected_components<E: Executor>(
    exec: &E,
    v: usize,
    n: usize,
    edges: &[(u64, u64)],
) -> AlgoResult<Components> {
    if v == 0 {
        return Err(AlgoError::Input("v must be >= 1".into()));
    }
    if n == 0 {
        return Ok(Components { label: Vec::new(), forest_edges: Vec::new() });
    }
    for &(a, b) in edges {
        if a as usize >= n || b as usize >= n {
            return Err(AlgoError::Input(format!("edge ({a},{b}) out of range")));
        }
    }
    let vmap = ChunkMap { n, v };
    let tagged: Vec<(u64, u64, u64)> =
        edges.iter().enumerate().map(|(i, &(a, b))| (a, b, i as u64)).collect();
    let echunks = distribute(tagged, v);
    let mut states = Vec::with_capacity(v);
    for (pid, edges) in echunks.into_iter().enumerate() {
        let vstart = vmap.chunk_start(pid) as u64;
        let vlen = vmap.chunk_len(pid);
        states.push(CcState {
            vstart,
            parent: (vstart..vstart + vlen as u64).collect(),
            edges,
            forest: Vec::new(),
            lookups: Vec::new(),
            changed: false,
        });
    }
    let prog = HookCompress { vmap, m: edges.len() };
    let res = exec.execute(&prog, states)?;
    let mut label = Vec::with_capacity(n);
    let mut candidates = Vec::new();
    for s in res.states {
        label.extend(s.parent);
        candidates.extend(s.forest);
    }
    candidates.sort_unstable();
    candidates.dedup();
    // Filter residual cycles among the O(n) candidate edges with a
    // union-find pass (driver glue, linear in the candidate count).
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut forest_edges = Vec::with_capacity(candidates.len());
    for id in candidates {
        let (a, b) = edges[id as usize];
        let (ra, rb) = (find(&mut parent, a as usize), find(&mut parent, b as usize));
        if ra != rb {
            parent[ra.max(rb)] = ra.min(rb);
            forest_edges.push(id);
        }
    }
    Ok(Components { label, forest_edges })
}

/// Sequential reference: union-find with min-label extraction.
pub fn seq_connected_components(n: usize, edges: &[(u64, u64)]) -> Vec<u64> {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = x;
        while parent[c] != r {
            let next = parent[c];
            parent[c] = r;
            c = next;
        }
        r
    }
    for &(a, b) in edges {
        let (ra, rb) = (find(&mut parent, a as usize), find(&mut parent, b as usize));
        if ra != rb {
            // Union by min id so labels are deterministic minima.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parent[hi] = lo;
        }
    }
    (0..n).map(|x| find(&mut parent, x) as u64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_bsp::SeqExecutor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check(n: usize, edges: &[(u64, u64)], v: usize) {
        let want = seq_connected_components(n, edges);
        let got = cgm_connected_components(&SeqExecutor, v, n, edges).unwrap();
        assert_eq!(got.label, want);
        // The forest connects exactly what the graph connects: rebuild CC
        // from forest edges and compare.
        let forest: Vec<(u64, u64)> = got.forest_edges.iter().map(|&i| edges[i as usize]).collect();
        let rebuilt = seq_connected_components(n, &forest);
        assert_eq!(rebuilt, want, "forest spans differently");
        // Forest has exactly n - #components edges.
        let comps: std::collections::HashSet<u64> = want.iter().copied().collect();
        assert_eq!(forest.len(), n - comps.len(), "not a spanning forest");
    }

    #[test]
    fn path_and_cycle() {
        let path: Vec<(u64, u64)> = (0..9).map(|i| (i, i + 1)).collect();
        check(10, &path, 4);
        let mut cycle = path.clone();
        cycle.push((9, 0));
        check(10, &cycle, 4);
    }

    #[test]
    fn disconnected_components() {
        let edges = vec![(0, 1), (1, 2), (4, 5), (7, 8), (8, 9), (9, 7)];
        check(10, &edges, 3);
    }

    #[test]
    fn random_graphs_match_reference() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..4 {
            let n = rng.gen_range(20..60);
            let m = rng.gen_range(5..100);
            let edges: Vec<(u64, u64)> = (0..m)
                .map(|_| (rng.gen_range(0..n as u64), rng.gen_range(0..n as u64)))
                .filter(|&(a, b)| a != b)
                .collect();
            check(n, &edges, 5);
        }
    }

    #[test]
    fn no_edges_all_singletons() {
        check(7, &[], 3);
    }

    #[test]
    fn parallel_edges_and_self_handling() {
        let edges = vec![(0, 1), (0, 1), (1, 0), (2, 3)];
        check(4, &edges, 2);
    }

    #[test]
    fn out_of_range_edge_rejected() {
        assert!(matches!(
            cgm_connected_components(&SeqExecutor, 2, 3, &[(0, 9)]),
            Err(AlgoError::Input(_))
        ));
    }
}
