//! Group C of Table 1: graph algorithms. Our formulations use pointer
//! jumping and min-hooking, giving λ = O(log n) supersteps (the paper's
//! cited CGM algorithms achieve O(log p) rounds; the simulation theorem
//! consumes λ as a parameter either way, and the benches report measured
//! λ explicitly).

pub mod cc;
pub mod contraction;
pub mod euler;
pub mod lca;
pub mod list_ranking;
