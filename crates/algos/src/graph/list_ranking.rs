//! CGM list ranking by synchronous pointer jumping — Table 1, Group C.
//!
//! Input: a forest of singly-linked chains over nodes `0..n−1` (`succ[i]`,
//! `NIL = u64::MAX` terminates a chain) with per-node weights. Output per
//! node: the weight sum of the path from the node to its chain's tail,
//! **inclusive** of both ends. With unit weights this is the classical
//! "distance to end + 1" list rank.
//!
//! Each jumping round is two supersteps (query the owner of `succ[x]`,
//! apply the reply), and pointers double every round, so
//! λ = 2·⌈log₂ L⌉ + O(1) for maximum chain length L. Per round every node
//! sends/receives O(1) messages: an h-relation of O(n/v).

use crate::common::{distribute, AlgoError, AlgoResult, ChunkMap};
use em_bsp::{BspProgram, Executor, Mailbox, Step};
use em_serial::impl_serial_struct;

/// Terminator marker for chain tails.
pub const NIL: u64 = u64::MAX;

/// State: a chunk of nodes with their current pointers and partial ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LrState {
    /// Global id of the first node of this chunk.
    pub start: u64,
    /// Current pointer per node (`NIL` when saturated).
    pub ptr: Vec<u64>,
    /// Accumulated weight of the segment `[node, ptr)` (or to the tail,
    /// inclusive, once `ptr = NIL`).
    pub rank: Vec<u64>,
}
impl_serial_struct!(LrState { start, ptr, rank });

/// The pointer-jumping BSP program.
#[derive(Debug, Clone)]
pub struct PointerJump {
    /// Node-ownership map.
    pub map: ChunkMap,
}

impl BspProgram for PointerJump {
    type State = LrState;
    /// Query `(x, s, 0)` at even steps; reply `(x, ptr[s], rank[s])` at
    /// odd steps.
    type Msg = (u64, u64, u64);

    fn superstep(
        &self,
        step: usize,
        mb: &mut Mailbox<(u64, u64, u64)>,
        state: &mut LrState,
    ) -> Step {
        if step.is_multiple_of(2) {
            // Apply replies from the previous round, then issue queries.
            for env in mb.take_incoming() {
                let (x, succ_s, rank_s) = env.msg;
                let local = (x - state.start) as usize;
                state.rank[local] = state.rank[local].wrapping_add(rank_s);
                state.ptr[local] = succ_s;
            }
            let mut active = false;
            for (local, &p) in state.ptr.iter().enumerate() {
                if p != NIL {
                    active = true;
                    let x = state.start + local as u64;
                    mb.send(self.map.owner(p as usize), (x, p, 0));
                }
            }
            if active {
                Step::Continue
            } else {
                Step::Halt
            }
        } else {
            // Answer queries with this round's consistent snapshot.
            let mut any = false;
            for env in mb.take_incoming() {
                any = true;
                let (x, s, _) = env.msg;
                let local = (s - state.start) as usize;
                mb.send(self.map.owner(x as usize), (x, state.ptr[local], state.rank[local]));
            }
            if any {
                Step::Continue
            } else {
                Step::Halt
            }
        }
    }

    fn max_state_bytes(&self) -> usize {
        let chunk = self.map.n.div_ceil(self.map.v).max(1);
        64 + 16 * (chunk + 2)
    }

    fn max_comm_bytes(&self) -> usize {
        let chunk = self.map.n.div_ceil(self.map.v).max(1);
        // Each node sends ≤ 1 query and ≤ 1 reply per superstep.
        (24 + 16) * (chunk + 2) + 64
    }
}

/// Rank every node of the chain forest: weight sum from the node to its
/// chain tail, inclusive (wrapping `u64` arithmetic, so `i64` weights can
/// be passed via two's complement).
pub fn cgm_list_rank<E: Executor>(
    exec: &E,
    v: usize,
    succ: &[u64],
    weights: &[u64],
) -> AlgoResult<Vec<u64>> {
    if v == 0 {
        return Err(AlgoError::Input("v must be >= 1".into()));
    }
    let n = succ.len();
    if weights.len() != n {
        return Err(AlgoError::Input("succ and weights must have equal length".into()));
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    for &s in succ {
        if s != NIL && s as usize >= n {
            return Err(AlgoError::Input(format!("successor {s} out of range")));
        }
    }
    let map = ChunkMap { n, v };
    let tagged: Vec<(u64, u64)> = succ.iter().copied().zip(weights.iter().copied()).collect();
    let chunks = distribute(tagged, v);
    let mut states = Vec::with_capacity(v);
    let mut start = 0u64;
    for chunk in chunks {
        let len = chunk.len() as u64;
        let (ptr, rank): (Vec<u64>, Vec<u64>) = chunk.into_iter().unzip();
        states.push(LrState { start, ptr, rank });
        start += len;
    }
    let res = exec.execute(&PointerJump { map }, states)?;
    Ok(res.states.into_iter().flat_map(|s| s.rank).collect())
}

/// Sequential reference: walk each chain from its tail.
pub fn seq_list_rank(succ: &[u64], weights: &[u64]) -> Vec<u64> {
    let n = succ.len();
    let mut indeg = vec![0u32; n];
    for &s in succ {
        if s != NIL {
            indeg[s as usize] += 1;
        }
    }
    let mut rank = vec![0u64; n];
    // Start from heads (indegree 0) and push ranks backwards from tails:
    // compute by following each chain once from its head using a stack.
    for (head, &deg) in indeg.iter().enumerate() {
        if deg != 0 {
            continue;
        }
        let mut path = Vec::new();
        let mut cur = head as u64;
        loop {
            path.push(cur as usize);
            if succ[cur as usize] == NIL {
                break;
            }
            cur = succ[cur as usize];
        }
        let mut acc = 0u64;
        for &node in path.iter().rev() {
            acc = acc.wrapping_add(weights[node]);
            rank[node] = acc;
        }
    }
    rank
}

/// Generate a random single chain over `n` nodes (for tests/benches):
/// returns `succ` such that the nodes form one list in a shuffled order.
pub fn random_chain(n: usize, seed: u64) -> Vec<u64> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut order: Vec<u64> = (0..n as u64).collect();
    order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
    let mut succ = vec![NIL; n];
    for w in order.windows(2) {
        succ[w[0] as usize] = w[1];
    }
    succ
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_bsp::SeqExecutor;

    #[test]
    fn unit_weights_give_position_from_end() {
        // 0 -> 1 -> 2 -> 3
        let succ = vec![1, 2, 3, NIL];
        let got = cgm_list_rank(&SeqExecutor, 2, &succ, &[1, 1, 1, 1]).unwrap();
        assert_eq!(got, vec![4, 3, 2, 1]);
    }

    #[test]
    fn random_chain_matches_reference() {
        let n = 137;
        let succ = random_chain(n, 20);
        let weights: Vec<u64> = (0..n as u64).map(|i| i % 7 + 1).collect();
        let want = seq_list_rank(&succ, &weights);
        let got = cgm_list_rank(&SeqExecutor, 6, &succ, &weights).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn multiple_chains() {
        // Two chains: 0->1, 2->3->4, and an isolated node 5.
        let succ = vec![1, NIL, 3, 4, NIL, NIL];
        let got = cgm_list_rank(&SeqExecutor, 3, &succ, &[1; 6]).unwrap();
        assert_eq!(got, vec![2, 1, 3, 2, 1, 1]);
    }

    #[test]
    fn signed_weights_via_wrapping() {
        // 0 -> 1 -> 2 with weights +1, -1, +1 (as two's complement).
        let succ = vec![1, 2, NIL];
        let w = vec![1u64, (-1i64) as u64, 1u64];
        let got = cgm_list_rank(&SeqExecutor, 2, &succ, &w).unwrap();
        assert_eq!(got.iter().map(|&x| x as i64).collect::<Vec<_>>(), vec![1, 0, 1]);
    }

    #[test]
    fn lambda_is_logarithmic() {
        let n = 256;
        let succ = random_chain(n, 21);
        let map = ChunkMap { n, v: 8 };
        let tagged: Vec<(u64, u64)> = succ.iter().map(|&s| (s, 1u64)).collect();
        let chunks = distribute(tagged, 8);
        let mut states = Vec::new();
        let mut start = 0u64;
        for chunk in chunks {
            let len = chunk.len() as u64;
            let (ptr, rank): (Vec<u64>, Vec<u64>) = chunk.into_iter().unzip();
            states.push(LrState { start, ptr, rank });
            start += len;
        }
        let res = em_bsp::run_sequential(&PointerJump { map }, states).unwrap();
        // 2 log2(256) = 16 plus constant slack.
        assert!(res.supersteps() <= 2 * 8 + 4, "λ = {}", res.supersteps());
    }

    #[test]
    fn bad_input_rejected() {
        assert!(matches!(cgm_list_rank(&SeqExecutor, 2, &[5], &[1]), Err(AlgoError::Input(_))));
        assert!(matches!(
            cgm_list_rank(&SeqExecutor, 2, &[NIL], &[1, 2]),
            Err(AlgoError::Input(_))
        ));
    }

    #[test]
    fn empty_input() {
        assert!(cgm_list_rank(&SeqExecutor, 2, &[], &[]).unwrap().is_empty());
    }
}
