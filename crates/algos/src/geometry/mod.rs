//! Group B of Table 1: GIS / computational-geometry algorithms on exact
//! `i64` coordinates (so all comparisons are exact and `Ord`-deterministic;
//! cross products are evaluated in `i128`).

pub mod closest_pair;
pub mod dominance;
pub mod envelope;
pub mod hull;
pub mod maxima3d;
pub mod next_element;
pub mod point;
pub mod rectangles;
pub mod separability;

pub use point::{Point2, Point3};
