//! CGM 2D closest pair — the computational core of Table 1's "2D-nearest
//! neighbors" row. λ = O(1):
//!
//! 1. CGM-sort the points by `(x, y)`;
//! 2. every processor solves its x-contiguous chunk locally (sweep over
//!    the y-ordered active set) and broadcasts its local minimum;
//! 3. with the global candidate δ known, every processor sends the points
//!    within δ of its right chunk boundary to its right neighbour, which
//!    checks the cross-boundary pairs.
//!
//! Distances are compared as exact squared Euclidean distances in `u128`.
//! Cross-boundary strips hold O(points within δ of a boundary); under the
//! usual density assumptions that is O(n/v) — the strip budget is explicit
//! and a violation surfaces as a typed communication-budget error.

use crate::common::{distribute, AlgoError, AlgoResult};
use crate::geometry::point::Point2;
use crate::sort::cgm_sort;
use em_bsp::{BspProgram, Executor, Mailbox, Step};
use em_serial::impl_serial_struct;

/// Exact squared distance.
fn dist2(a: Point2, b: Point2) -> u128 {
    let dx = (a.x - b.x).unsigned_abs() as u128;
    let dy = (a.y - b.y).unsigned_abs() as u128;
    dx * dx + dy * dy
}

/// Sweep a slice sorted by `(x, y)` for its closest pair; returns
/// `(dist², a, b)`.
fn sweep_closest(pts: &[Point2]) -> Option<(u128, Point2, Point2)> {
    if pts.len() < 2 {
        return None;
    }
    use std::collections::BTreeSet;
    let mut active: BTreeSet<(i64, i64)> = BTreeSet::new();
    let mut best: Option<(u128, Point2, Point2)> = None;
    let mut left = 0usize;
    for &p in pts {
        let limit =
            |best: &Option<(u128, Point2, Point2)>| best.map_or(i64::MAX as u128, |(d, _, _)| d);
        // Shrink the active window to x within the current best radius.
        while left < pts.len() {
            let q = pts[left];
            if q == p {
                break;
            }
            let dx = (p.x - q.x).unsigned_abs() as u128;
            if dx * dx > limit(&best) {
                active.remove(&(q.y, q.x));
                left += 1;
            } else {
                break;
            }
        }
        // Scan the y-window around p.
        let d = limit(&best);
        let dy_window = ((d as f64).sqrt() as i64).saturating_add(1);
        let lo = p.y.saturating_sub(dy_window);
        let hi = p.y.saturating_add(dy_window);
        for &(qy, qx) in active.range((lo, i64::MIN)..=(hi, i64::MAX)) {
            let q = Point2::new(qx, qy);
            let dq = dist2(p, q);
            if best.is_none() || dq < best.unwrap().0 {
                best = Some((dq, q, p));
            }
        }
        active.insert((p.y, p.x));
    }
    best
}

/// State of the closest-pair stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpState {
    /// x-sorted chunk.
    pub pts: Vec<Point2>,
    /// Best pair found so far: `(dist², ax, ay, bx, by)` flattened
    /// (`u64::MAX` markers when none).
    pub best: Vec<u64>,
}
impl_serial_struct!(CpState { pts, best });

/// The closest-pair BSP program (run after a CGM sort). 3 supersteps.
#[derive(Debug, Clone)]
pub struct ClosestPair {
    /// ⌈n/v⌉ for sizing.
    pub chunk: usize,
    /// `v`.
    pub v: usize,
    /// Budget for boundary-strip points sent to a neighbour.
    pub max_strip: usize,
}

impl BspProgram for ClosestPair {
    type State = CpState;
    /// `(tag, payload)`: tag 0 = local δ² candidate (16 bytes hi/lo),
    /// tag 1 = strip points, tag 2 = chunk boundary x (for empty-aware
    /// neighbour discovery).
    type Msg = (u8, Vec<i64>);

    fn superstep(
        &self,
        step: usize,
        mb: &mut Mailbox<(u8, Vec<i64>)>,
        state: &mut CpState,
    ) -> Step {
        match step {
            0 => {
                // Local solve + broadcast candidate and my presence.
                let local = sweep_closest(&state.pts);
                if let Some((d, a, b)) = local {
                    state.best = vec![
                        (d >> 64) as u64,
                        d as u64,
                        a.x as u64,
                        a.y as u64,
                        b.x as u64,
                        b.y as u64,
                    ];
                    for dst in 0..mb.nprocs() {
                        mb.send(dst, (0, vec![(d >> 64) as i64, d as i64]));
                    }
                }
                if !state.pts.is_empty() {
                    for dst in 0..mb.nprocs() {
                        mb.send(dst, (2, vec![state.pts[0].x]));
                    }
                }
                Step::Continue
            }
            1 => {
                // Global δ, then ship my right-boundary strip to the next
                // non-empty processor.
                let mut delta: Option<u128> = None;
                let mut present: Vec<(usize, i64)> = Vec::new();
                for env in mb.take_incoming() {
                    match env.msg.0 {
                        0 => {
                            let d =
                                ((env.msg.1[0] as u64 as u128) << 64) | env.msg.1[1] as u64 as u128;
                            delta = Some(delta.map_or(d, |x| x.min(d)));
                        }
                        _ => present.push((env.src, env.msg.1[0])),
                    }
                }
                present.sort_unstable();
                let me = mb.pid();
                // No candidate yet (every chunk held < 2 points): fall
                // back to δ = ∞, which ships whole chunks — still O(n)
                // because n < 2v in that case.
                let d = delta.unwrap_or(u128::MAX);
                if let Some(my_idx) = present.iter().position(|&(src, _)| src == me) {
                    let boundary = state.pts.last().expect("non-empty").x;
                    let w = ((d as f64).sqrt() as i64).saturating_add(1);
                    let strip: Vec<i64> = state
                        .pts
                        .iter()
                        .filter(|p| p.x >= boundary.saturating_sub(w))
                        .flat_map(|p| [p.x, p.y])
                        .collect();
                    // A sub-δ pair can span a narrow intermediate chunk, so
                    // the strip goes to *every* later processor whose chunk
                    // starts within δ of my boundary.
                    for &(dst, first_x) in &present[my_idx + 1..] {
                        if first_x <= boundary.saturating_add(w) {
                            mb.send(dst, (1, strip.clone()));
                        }
                    }
                }
                Step::Continue
            }
            _ => {
                // Check cross-boundary pairs against my chunk.
                let mut best = decode_best(&state.best);
                for env in mb.take_incoming() {
                    if env.msg.0 != 1 {
                        continue;
                    }
                    let strip: Vec<Point2> =
                        env.msg.1.chunks(2).map(|c| Point2::new(c[0], c[1])).collect();
                    // Merge the strip with my own left portion and sweep.
                    let d = best.map_or(u128::MAX, |(d, _, _)| d);
                    let w = ((d as f64).sqrt() as i64).saturating_add(1);
                    let lo = strip.first().map_or(i64::MIN, |p| p.x);
                    let mut merged: Vec<Point2> = strip;
                    merged.extend(
                        state
                            .pts
                            .iter()
                            .filter(|p| p.x <= lo.saturating_add(w.saturating_mul(2)))
                            .copied(),
                    );
                    // No dedup: identical points in strip and chunk are a
                    // genuine zero-distance cross pair.
                    merged.sort_unstable();
                    if let Some((d, a, b)) = sweep_closest(&merged) {
                        if best.is_none() || d < best.unwrap().0 {
                            best = Some((d, a, b));
                        }
                    }
                }
                state.best = best.map_or(Vec::new(), |(d, a, b)| {
                    vec![(d >> 64) as u64, d as u64, a.x as u64, a.y as u64, b.x as u64, b.y as u64]
                });
                Step::Halt
            }
        }
    }

    fn max_state_bytes(&self) -> usize {
        64 + 16 * (2 * self.chunk + 4) + 8 * 8
    }

    fn max_comm_bytes(&self) -> usize {
        16 * (self.max_strip + 2) + 48 * self.v + 512
    }
}

fn decode_best(best: &[u64]) -> Option<(u128, Point2, Point2)> {
    if best.len() != 6 {
        return None;
    }
    Some((
        ((best[0] as u128) << 64) | best[1] as u128,
        Point2::new(best[2] as i64, best[3] as i64),
        Point2::new(best[4] as i64, best[5] as i64),
    ))
}

/// Closest pair of `points` (needs at least two): the exact squared
/// distance and the pair, with deterministic tie-breaking.
pub fn cgm_closest_pair<E: Executor>(
    exec: &E,
    v: usize,
    points: Vec<Point2>,
) -> AlgoResult<(u128, Point2, Point2)> {
    if v == 0 {
        return Err(AlgoError::Input("v must be >= 1".into()));
    }
    if points.len() < 2 {
        return Err(AlgoError::Input("need at least two points".into()));
    }
    if points.iter().any(|p| p.x.abs() > 1 << 31 || p.y.abs() > 1 << 31) {
        return Err(AlgoError::Input(
            "coordinates must fit 32 bits (squared distances are exact in u128)".into(),
        ));
    }
    let n = points.len();
    let sorted = cgm_sort(exec, v, points)?;
    let prog = ClosestPair { chunk: n.div_ceil(v).max(1), v, max_strip: n.div_ceil(v) + 16 };
    let states =
        distribute(sorted, v).into_iter().map(|pts| CpState { pts, best: Vec::new() }).collect();
    let res = exec.execute(&prog, states)?;
    let best = res
        .states
        .iter()
        .filter_map(|s| decode_best(&s.best))
        .min_by_key(|&(d, a, b)| (d, a, b))
        .expect("n >= 2 yields a pair");
    Ok(best)
}

/// Sequential reference: O(n²) exact scan with the same tie-breaking.
pub fn seq_closest_pair(points: &[Point2]) -> (u128, Point2, Point2) {
    assert!(points.len() >= 2);
    let mut best: Option<(u128, Point2, Point2)> = None;
    for i in 0..points.len() {
        for j in i + 1..points.len() {
            let (a, b) = if points[i] <= points[j] {
                (points[i], points[j])
            } else {
                (points[j], points[i])
            };
            let d = dist2(a, b);
            let cand = (d, a, b);
            if best.is_none() || cand < best.unwrap() {
                best = Some(cand);
            }
        }
    }
    best.unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_bsp::SeqExecutor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sweep_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(80);
        for _ in 0..20 {
            let mut pts: Vec<Point2> = (0..60)
                .map(|_| Point2::new(rng.gen_range(-100..100), rng.gen_range(-100..100)))
                .collect();
            pts.sort_unstable();
            pts.dedup();
            if pts.len() < 2 {
                continue;
            }
            let got = sweep_closest(&pts).unwrap();
            let want = seq_closest_pair(&pts);
            assert_eq!(got.0, want.0);
        }
    }

    #[test]
    fn cgm_matches_reference_random() {
        let mut rng = StdRng::seed_from_u64(81);
        for trial in 0..6 {
            let pts: Vec<Point2> = (0..200)
                .map(|_| Point2::new(rng.gen_range(-5000..5000), rng.gen_range(-5000..5000)))
                .collect();
            let want = seq_closest_pair(&pts);
            let got = cgm_closest_pair(&SeqExecutor, 7, pts).unwrap();
            assert_eq!(got.0, want.0, "trial {trial}");
        }
    }

    #[test]
    fn pair_straddling_chunk_boundary() {
        // Two very close points far right, noise far left: the pair spans
        // the last chunk boundary when v is large.
        let mut pts: Vec<Point2> = (0..40).map(|i| Point2::new(i * 1000, i * 7)).collect();
        pts.push(Point2::new(39_500, 0));
        pts.push(Point2::new(39_501, 1));
        let want = seq_closest_pair(&pts);
        let got = cgm_closest_pair(&SeqExecutor, 8, pts).unwrap();
        assert_eq!(got.0, want.0);
        assert_eq!(got.0, 2);
    }

    #[test]
    fn pair_spanning_a_narrow_middle_chunk() {
        // 12 points over 6 chunks of 2: the closest pair is (999,0)/(1002,0)
        // with the points 1000,1001 (a whole chunk) in between x-wise but
        // far away in y.
        let pts = vec![
            Point2::new(0, 0),
            Point2::new(200, 0),
            Point2::new(400, 0),
            Point2::new(600, 0),
            Point2::new(800, 0),
            Point2::new(999, 0),
            Point2::new(1000, 100_000),
            Point2::new(1001, -100_000),
            Point2::new(1002, 0),
            Point2::new(1200, 0),
            Point2::new(1400, 0),
            Point2::new(1600, 0),
        ];
        let want = seq_closest_pair(&pts);
        assert_eq!(want.0, 9);
        let got = cgm_closest_pair(&SeqExecutor, 6, pts).unwrap();
        assert_eq!(got.0, 9);
    }

    #[test]
    fn duplicates_give_distance_zero() {
        let pts = vec![Point2::new(5, 5), Point2::new(1, 2), Point2::new(5, 5)];
        let got = cgm_closest_pair(&SeqExecutor, 3, pts).unwrap();
        assert_eq!(got.0, 0);
    }

    #[test]
    fn tiny_inputs_and_bounds() {
        assert!(cgm_closest_pair(&SeqExecutor, 2, vec![Point2::new(0, 0)]).is_err());
        assert!(cgm_closest_pair(
            &SeqExecutor,
            2,
            vec![Point2::new(i64::MAX, 0), Point2::new(0, 0)]
        )
        .is_err());
        let got =
            cgm_closest_pair(&SeqExecutor, 4, vec![Point2::new(0, 0), Point2::new(3, 4)]).unwrap();
        assert_eq!(got.0, 25);
    }
}
