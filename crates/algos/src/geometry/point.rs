//! Exact integer points.

use em_serial::impl_serial_struct;

/// A 2D point with exact integer coordinates; ordered by `(x, y)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Point2 {
    /// x coordinate.
    pub x: i64,
    /// y coordinate.
    pub y: i64,
}
impl_serial_struct!(Point2 { x, y });

impl Point2 {
    /// Construct a point.
    pub fn new(x: i64, y: i64) -> Self {
        Point2 { x, y }
    }
}

/// Exact orientation test: `> 0` if `a → b → c` turns counter-clockwise,
/// `< 0` clockwise, `0` collinear. Evaluated in `i128`; exact for
/// coordinates of magnitude at most `2^62` (coordinate differences then
/// fit 63 bits and their products 126 bits).
pub fn cross(a: Point2, b: Point2, c: Point2) -> i128 {
    let abx = b.x as i128 - a.x as i128;
    let aby = b.y as i128 - a.y as i128;
    let acx = c.x as i128 - a.x as i128;
    let acy = c.y as i128 - a.y as i128;
    abx * acy - aby * acx
}

/// A 3D point with exact integer coordinates; ordered by `(x, y, z)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Point3 {
    /// x coordinate.
    pub x: i64,
    /// y coordinate.
    pub y: i64,
    /// z coordinate.
    pub z: i64,
}
impl_serial_struct!(Point3 { x, y, z });

impl Point3 {
    /// Construct a point.
    pub fn new(x: i64, y: i64, z: i64) -> Self {
        Point3 { x, y, z }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_serial::{from_bytes, to_bytes};

    #[test]
    fn points_round_trip() {
        let p = Point2::new(-5, i64::MAX);
        assert_eq!(from_bytes::<Point2>(&to_bytes(&p)).unwrap(), p);
        let q = Point3::new(1, -2, 3);
        assert_eq!(from_bytes::<Point3>(&to_bytes(&q)).unwrap(), q);
    }

    #[test]
    fn cross_orientation() {
        let o = Point2::new(0, 0);
        assert!(cross(o, Point2::new(1, 0), Point2::new(0, 1)) > 0);
        assert!(cross(o, Point2::new(0, 1), Point2::new(1, 0)) < 0);
        assert_eq!(cross(o, Point2::new(1, 1), Point2::new(2, 2)), 0);
    }

    #[test]
    fn cross_is_exact_at_the_documented_coordinate_bound() {
        let m = 1i64 << 62;
        let a = Point2::new(-m, -m);
        let b = Point2::new(m, -m);
        let c = Point2::new(-m, m);
        assert!(cross(a, b, c) > 0);
        assert!(cross(a, c, b) < 0);
    }
}
