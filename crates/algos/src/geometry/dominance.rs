//! CGM 2D weighted dominance counting — Table 1, Group B. For every point
//! `p`, the total weight of points `q ≠ p` with `q.x ≤ p.x` and
//! `q.y ≤ p.y` (exact duplicates are counted once, ordered by input
//! index).
//!
//! λ = O(1). Pipeline:
//!
//! 1. CGM-sort by `(y, x, id)` and assign global y-ranks (the rank offset
//!    per chunk is a λ = 2 prefix round, performed as driver glue on the
//!    per-chunk counts);
//! 2. CGM-sort by `(x, y, id)` and assign global x-ranks the same way.
//!    Dominance becomes pure rank dominance: `q` counts for `p` iff
//!    `xr_q < xr_p ∧ yr_q < yr_p`;
//! 3. one sweep program: every processor (an x-contiguous chunk)
//!    broadcasts its per-y-slab weight histogram to higher processors
//!    (cross-slab base terms) and routes each point to its y-slab owner,
//!    which resolves the within-slab term with a Fenwick tree and replies.

use crate::common::{distribute, AlgoError, AlgoResult};
use crate::geometry::point::Point2;
use crate::sort::cgm_sort;
use em_bsp::{BspProgram, Executor, Mailbox, Step};
use em_serial::impl_serial_struct;

/// Fenwick tree (binary indexed tree) over `0..n` with `u64` sums.
#[derive(Debug, Clone)]
pub struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    /// Zero-initialized tree over `n` slots.
    pub fn new(n: usize) -> Self {
        Fenwick { tree: vec![0; n + 1] }
    }

    /// Add `w` at index `i`.
    pub fn add(&mut self, i: usize, w: u64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(w);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of indices `< i`.
    pub fn prefix(&self, i: usize) -> u64 {
        let mut i = i.min(self.tree.len() - 1);
        let mut s = 0u64;
        while i > 0 {
            s = s.wrapping_add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// A point record in the sweep: `(x, y, w, id, xr, yr)`.
type Rec6 = (i64, i64, u64, u64, u64, u64);

/// State of the sweep stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomState {
    /// x-sorted chunk with ranks attached.
    pub pts: Vec<Rec6>,
    /// `(id, count)` results for the points of this chunk.
    pub answers: Vec<(u64, u64)>,
    /// Scratch: `(id, base)` cross-slab terms awaiting the within-slab
    /// replies.
    pub bases: Vec<(u64, u64)>,
}
impl_serial_struct!(DomState { pts, answers, bases });

/// The dominance sweep BSP program. Slab `s` covers y-ranks
/// `[s·slab, (s+1)·slab)` and is owned by processor `s`.
#[derive(Debug, Clone)]
pub struct DomSweep {
    /// `n` points total.
    pub n: usize,
    /// `v`.
    pub v: usize,
}

impl DomSweep {
    fn slab_size(&self) -> usize {
        self.n.div_ceil(self.v).max(1)
    }

    fn slab_of(&self, yr: u64) -> usize {
        ((yr as usize) / self.slab_size()).min(self.v - 1)
    }
}

impl BspProgram for DomSweep {
    type State = DomState;
    /// `(tag, payload)`: tag 0 = slab histogram, 1 = routed points
    /// `[xr, yr, w, id]*`, 2 = replies `[id, count]*`.
    type Msg = (u8, Vec<u64>);

    fn superstep(
        &self,
        step: usize,
        mb: &mut Mailbox<(u8, Vec<u64>)>,
        state: &mut DomState,
    ) -> Step {
        let v = mb.nprocs();
        match step {
            0 => {
                // Histogram of local weights per y-slab → higher procs.
                let mut hist = vec![0u64; v];
                for &(_, _, w, _, _, yr) in &state.pts {
                    hist[self.slab_of(yr)] = hist[self.slab_of(yr)].wrapping_add(w);
                }
                for dst in mb.pid() + 1..v {
                    mb.send(dst, (0, hist.clone()));
                }
                // Route points to their slab owners.
                let mut per_owner: Vec<Vec<u64>> = (0..v).map(|_| Vec::new()).collect();
                for &(_, _, w, id, xr, yr) in &state.pts {
                    let owner = self.slab_of(yr);
                    per_owner[owner].extend_from_slice(&[xr, yr, w, id]);
                }
                for (owner, flat) in per_owner.into_iter().enumerate() {
                    if !flat.is_empty() {
                        mb.send(owner, (1, flat));
                    }
                }
                Step::Continue
            }
            1 => {
                let mut cum_hist = vec![0u64; v];
                let mut slab_pts: Vec<(usize, u64, u64, u64, u64)> = Vec::new(); // (src, xr, yr, w, id)
                for env in mb.take_incoming() {
                    match env.msg.0 {
                        0 => {
                            for (a, b) in cum_hist.iter_mut().zip(&env.msg.1) {
                                *a = a.wrapping_add(*b);
                            }
                        }
                        _ => {
                            for rec in env.msg.1.chunks(4) {
                                slab_pts.push((env.src, rec[0], rec[1], rec[2], rec[3]));
                            }
                        }
                    }
                }

                // Cross-slab base terms for my own points: weight in lower
                // slabs from lower processors (cum_hist) plus lower-slab
                // weight from earlier points of my own chunk.
                let mut cum_prefix = vec![0u64; v + 1];
                for s in 0..v {
                    cum_prefix[s + 1] = cum_prefix[s].wrapping_add(cum_hist[s]);
                }
                let mut local_acc = vec![0u64; v + 1];
                let mut bases = Vec::with_capacity(state.pts.len());
                for &(_, _, w, id, _, yr) in &state.pts {
                    let s = self.slab_of(yr);
                    let local_lower = local_acc[..s].iter().fold(0u64, |a, &b| a.wrapping_add(b));
                    bases.push((id, cum_prefix[s].wrapping_add(local_lower)));
                    local_acc[s] = local_acc[s].wrapping_add(w);
                }
                state.bases = bases;

                // Within-slab term: Fenwick over the slab's y-rank order.
                if !slab_pts.is_empty() {
                    let mut yrs: Vec<u64> = slab_pts.iter().map(|&(_, _, yr, _, _)| yr).collect();
                    yrs.sort_unstable();
                    let yr_index = |yr: u64| yrs.partition_point(|&x| x < yr);
                    let mut by_x = slab_pts;
                    by_x.sort_unstable_by_key(|&(_, xr, _, _, _)| xr);
                    let mut bit = Fenwick::new(by_x.len());
                    let mut replies: Vec<(usize, u64, u64)> = Vec::new(); // (src, id, cnt)
                    for &(src, _, yr, w, id) in &by_x {
                        let idx = yr_index(yr);
                        replies.push((src, id, bit.prefix(idx)));
                        bit.add(idx, w);
                    }
                    let mut per_src: Vec<Vec<u64>> = (0..v).map(|_| Vec::new()).collect();
                    for (src, id, cnt) in replies {
                        per_src[src].extend_from_slice(&[id, cnt]);
                    }
                    for (src, flat) in per_src.into_iter().enumerate() {
                        if !flat.is_empty() {
                            mb.send(src, (2, flat));
                        }
                    }
                }
                Step::Continue
            }
            _ => {
                let mut within: Vec<(u64, u64)> = Vec::new();
                for env in mb.take_incoming() {
                    for rec in env.msg.1.chunks(2) {
                        within.push((rec[0], rec[1]));
                    }
                }
                within.sort_unstable();
                let mut answers = Vec::with_capacity(state.bases.len());
                for &(id, base) in &state.bases {
                    let idx = within.partition_point(|&(i, _)| i < id);
                    let w =
                        if idx < within.len() && within[idx].0 == id { within[idx].1 } else { 0 };
                    answers.push((id, base.wrapping_add(w)));
                }
                state.answers = answers;
                state.bases.clear();
                Step::Halt
            }
        }
    }

    fn max_state_bytes(&self) -> usize {
        let chunk = self.slab_size();
        128 + 48 * (2 * chunk + 4) + 32 * (2 * chunk + 4)
    }

    fn max_comm_bytes(&self) -> usize {
        let chunk = self.slab_size();
        // Histogram broadcast + routed points + replies, with framing.
        8 * self.v * self.v + 2 * 32 * (chunk + 2) + 64 * self.v + 1024
    }
}

/// Weighted dominance counts in input order: `out[i]` = total weight of
/// points `q ≠ p_i` with `q.x ≤ p_i.x ∧ q.y ≤ p_i.y` (exact duplicates
/// ordered by input index).
pub fn cgm_dominance_counts<E: Executor>(
    exec: &E,
    v: usize,
    pts: &[(Point2, u64)],
) -> AlgoResult<Vec<u64>> {
    if v == 0 {
        return Err(AlgoError::Input("v must be >= 1".into()));
    }
    let n = pts.len();
    if n == 0 {
        return Ok(Vec::new());
    }

    // Sort by (y, x, id) → y-ranks (offsets are driver glue on counts).
    let by_y: Vec<(i64, i64, u64, u64)> =
        pts.iter().enumerate().map(|(id, &(p, w))| (p.y, p.x, id as u64, w)).collect();
    let sorted_y = cgm_sort(exec, v, by_y)?;
    // yr = global position in this order.
    let with_yr: Vec<(i64, i64, u64, u64, u64)> = sorted_y
        .into_iter()
        .enumerate()
        .map(|(yr, (y, x, id, w))| (x, y, id, w, yr as u64))
        .collect();

    // Sort by (x, y, id) → x-ranks.
    let recs: Vec<Rec6> = {
        let sorted_x = cgm_sort(exec, v, with_yr)?;
        sorted_x
            .into_iter()
            .enumerate()
            .map(|(xr, (x, y, id, w, yr))| (x, y, w, id, xr as u64, yr))
            .collect()
    };

    let prog = DomSweep { n, v };
    let states = distribute(recs, v)
        .into_iter()
        .map(|pts| DomState { pts, answers: Vec::new(), bases: Vec::new() })
        .collect();
    let res = exec.execute(&prog, states)?;
    let mut out = vec![0u64; n];
    for s in res.states {
        for (id, cnt) in s.answers {
            out[id as usize] = cnt;
        }
    }
    Ok(out)
}

/// Sequential reference: O(n²) pairwise with the same tie rule.
pub fn seq_dominance_counts(pts: &[(Point2, u64)]) -> Vec<u64> {
    pts.iter()
        .enumerate()
        .map(|(i, &(p, _))| {
            pts.iter()
                .enumerate()
                .filter(|&(j, &(q, _))| {
                    j != i && q.x <= p.x && q.y <= p.y && ((q.x, q.y) != (p.x, p.y) || j < i)
                })
                .map(|(_, &(_, w))| w)
                .fold(0u64, |a, b| a.wrapping_add(b))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_bsp::SeqExecutor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fenwick_prefix_sums() {
        let mut f = Fenwick::new(8);
        f.add(0, 5);
        f.add(3, 2);
        f.add(7, 1);
        assert_eq!(f.prefix(0), 0);
        assert_eq!(f.prefix(1), 5);
        assert_eq!(f.prefix(4), 7);
        assert_eq!(f.prefix(8), 8);
    }

    #[test]
    fn matches_reference_random() {
        let mut rng = StdRng::seed_from_u64(12);
        let pts: Vec<(Point2, u64)> = (0..250)
            .map(|_| {
                (Point2::new(rng.gen_range(-40..40), rng.gen_range(-40..40)), rng.gen_range(1..10))
            })
            .collect();
        let want = seq_dominance_counts(&pts);
        let got = cgm_dominance_counts(&SeqExecutor, 7, &pts).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn chain_counts_everything_below() {
        // Diagonal: point i dominates exactly points 0..i, unit weights.
        let pts: Vec<(Point2, u64)> = (0..50).map(|i| (Point2::new(i, i), 1)).collect();
        let got = cgm_dominance_counts(&SeqExecutor, 5, &pts).unwrap();
        let want: Vec<u64> = (0..50).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn anti_chain_counts_nothing() {
        let pts: Vec<(Point2, u64)> = (0..30).map(|i| (Point2::new(i, -i), 3)).collect();
        let got = cgm_dominance_counts(&SeqExecutor, 4, &pts).unwrap();
        assert_eq!(got, vec![0; 30]);
    }

    #[test]
    fn exact_duplicates_half_count() {
        let pts = vec![(Point2::new(5, 5), 7), (Point2::new(5, 5), 9)];
        let got = cgm_dominance_counts(&SeqExecutor, 2, &pts).unwrap();
        assert_eq!(got, vec![0, 7]);
    }

    #[test]
    fn empty_and_single() {
        assert!(cgm_dominance_counts(&SeqExecutor, 2, &[]).unwrap().is_empty());
        let got = cgm_dominance_counts(&SeqExecutor, 2, &[(Point2::new(0, 0), 4)]).unwrap();
        assert_eq!(got, vec![0]);
    }
}
