//! CGM area of the union of axis-parallel rectangles — Table 1, Group B.
//!
//! λ = O(1): sort the `2n` vertical-edge events by `(x, typ, id)`;
//! broadcast chunk boundaries; forward rectangles crossing a slab boundary
//! to the slabs they reach (memory `O(n/v + crossings)`, see DESIGN.md);
//! each slab owner runs the classical coverage-segment-tree sweep over its
//! x-range and the slab areas add up.

use crate::common::{distribute, AlgoError, AlgoResult};
use crate::sort::cgm_sort;
use em_bsp::{BspProgram, Executor, Mailbox, Step};
use em_serial::impl_serial_struct;

/// A rectangle `[x1, x2) × [y1, y2)` with exact integer coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Rect {
    /// Left edge.
    pub x1: i64,
    /// Right edge (exclusive).
    pub x2: i64,
    /// Bottom edge.
    pub y1: i64,
    /// Top edge (exclusive).
    pub y2: i64,
}
impl_serial_struct!(Rect { x1, x2, y1, y2 });

impl Rect {
    /// Construct, normalizing is the caller's job (x1 < x2, y1 < y2).
    pub fn new(x1: i64, x2: i64, y1: i64, y2: i64) -> Self {
        Rect { x1, x2, y1, y2 }
    }
}

/// Coverage segment tree over a fixed sorted list of y-coordinates:
/// supports add/remove of `[y1, y2)` intervals and queries of the total
/// covered length — the classical union-of-rectangles sweep structure.
#[derive(Debug)]
pub struct CoverageTree {
    ys: Vec<i64>,
    count: Vec<u32>,
    covered: Vec<i64>,
}

impl CoverageTree {
    /// Build over sorted, deduplicated y-coordinates.
    pub fn new(ys: Vec<i64>) -> Self {
        debug_assert!(ys.windows(2).all(|w| w[0] < w[1]));
        let slots = ys.len().saturating_sub(1).max(1);
        CoverageTree { ys, count: vec![0; 4 * slots], covered: vec![0; 4 * slots] }
    }

    /// Total covered length.
    pub fn covered(&self) -> i64 {
        if self.ys.len() < 2 {
            0
        } else {
            self.covered[1]
        }
    }

    /// Add (`delta = 1`) or remove (`delta = -1`) the interval `[y1, y2)`.
    pub fn update(&mut self, y1: i64, y2: i64, delta: i32) {
        if self.ys.len() < 2 || y1 >= y2 {
            return;
        }
        let l = self.ys.partition_point(|&y| y < y1);
        let r = self.ys.partition_point(|&y| y < y2);
        if l >= r {
            return;
        }
        self.update_node(1, 0, self.ys.len() - 1, l, r, delta);
    }

    fn update_node(&mut self, node: usize, lo: usize, hi: usize, l: usize, r: usize, delta: i32) {
        if r <= lo || hi <= l {
            return;
        }
        if l <= lo && hi <= r {
            self.count[node] = (self.count[node] as i64 + delta as i64) as u32;
        } else {
            let mid = (lo + hi) / 2;
            self.update_node(2 * node, lo, mid, l, r, delta);
            self.update_node(2 * node + 1, mid, hi, l, r, delta);
        }
        self.covered[node] = if self.count[node] > 0 {
            self.ys[hi] - self.ys[lo]
        } else if hi - lo == 1 {
            0
        } else {
            self.covered[2 * node] + self.covered[2 * node + 1]
        };
    }
}

/// A sweep event: `(x, typ, id, rect)`; `typ` 0 = close (right edge),
/// 1 = open (left edge).
type REvent = (i64, u8, u64, Rect);

/// State of the area sweep stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AreaState {
    /// Sorted event chunk.
    pub events: Vec<REvent>,
    /// This slab's area contribution (wrapped `u64` of an `i64` value).
    pub area: u64,
    /// Scratch: slab bounds stashed between supersteps.
    pub bounds: Vec<i64>,
}
impl_serial_struct!(AreaState { events, area, bounds });

/// The area sweep BSP program (run after a CGM sort of the events).
#[derive(Debug, Clone)]
pub struct AreaSweep {
    /// ⌈2n/v⌉ for sizing.
    pub chunk: usize,
    /// `v`.
    pub v: usize,
    /// Crossing-forward budget per processor.
    pub max_crossings: usize,
}

impl BspProgram for AreaSweep {
    type State = AreaState;
    /// `(tag, a, b, c, d)`: tag 0 = boundary `(first_x, _, _, _)`,
    /// tag 1 = crossing rect `(x2, y1, y2, _)`.
    type Msg = (u8, i64, i64, i64, i64);

    fn superstep(
        &self,
        step: usize,
        mb: &mut Mailbox<(u8, i64, i64, i64, i64)>,
        state: &mut AreaState,
    ) -> Step {
        let v = mb.nprocs();
        match step {
            0 => {
                if let Some(&(x, ..)) = state.events.first() {
                    for dst in 0..v {
                        mb.send(dst, (0, x, 0, 0, 0));
                    }
                }
                Step::Continue
            }
            1 => {
                let mut firsts: Vec<(usize, i64)> = mb
                    .take_incoming()
                    .into_iter()
                    .filter(|e| e.msg.0 == 0)
                    .map(|e| (e.src, e.msg.1))
                    .collect();
                firsts.sort_unstable();
                let me = mb.pid();
                let Some(idx) = firsts.iter().position(|&(src, _)| src == me) else {
                    return Step::Continue; // empty chunk
                };
                let slab_start = firsts[idx].1;
                let slab_end = firsts.get(idx + 1).map_or(i64::MAX, |&(_, x)| x);
                for &(_, typ, _, r) in &state.events {
                    if typ == 1 && r.x2 > slab_end {
                        for &(src, start) in &firsts {
                            if src > me && start < r.x2 {
                                mb.send(src, (1, r.x2, r.y1, r.y2, 0));
                            }
                        }
                    }
                }
                state.bounds = vec![slab_start, slab_end];
                Step::Continue
            }
            _ => {
                if state.bounds.len() != 2 {
                    return Step::Halt; // empty chunk
                }
                let (slab_start, slab_end) = (state.bounds[0], state.bounds[1]);
                let crossings: Vec<Rect> = mb
                    .take_incoming()
                    .into_iter()
                    .filter(|e| e.msg.0 == 1)
                    .map(|e| Rect::new(slab_start, e.msg.1, e.msg.2, e.msg.3))
                    .collect();
                state.area =
                    sweep_slab_area(&state.events, &crossings, slab_start, slab_end) as u64;
                state.bounds.clear();
                Step::Halt
            }
        }
    }

    fn max_state_bytes(&self) -> usize {
        64 + 41 * (self.chunk + 4) + 32 * (2 * self.chunk + self.max_crossings + 4)
    }

    fn max_comm_bytes(&self) -> usize {
        (33 + 16) * (self.max_crossings + self.v + 2) * 2 + 256
    }
}

/// Sweep one slab: classical coverage-tree area sweep over the x-range
/// `[slab_start, slab_end)`, seeded with the crossing rectangles.
fn sweep_slab_area(events: &[REvent], crossings: &[Rect], slab_start: i64, slab_end: i64) -> i64 {
    // y-coordinate universe of everything active in this slab.
    let mut ys: Vec<i64> = events
        .iter()
        .flat_map(|&(_, _, _, r)| [r.y1, r.y2])
        .chain(crossings.iter().flat_map(|r| [r.y1, r.y2]))
        .collect();
    ys.sort_unstable();
    ys.dedup();
    let mut tree = CoverageTree::new(ys);
    for r in crossings {
        tree.update(r.y1, r.y2, 1);
    }
    let mut area: i64 = 0;
    let mut prev_x = slab_start;
    let mut i = 0;
    while i < events.len() {
        let x = events[i].0;
        let clipped = x.clamp(slab_start, slab_end);
        area += tree.covered() * (clipped - prev_x);
        prev_x = clipped;
        while i < events.len() && events[i].0 == x {
            let (_, typ, _, r) = events[i];
            // A close at exactly slab_start belongs to a rectangle that
            // ends where this slab begins: it was never seeded (crossing
            // forwards require start < x2) and covers nothing here — skip,
            // or the coverage count would underflow.
            if !(typ == 0 && x == slab_start) {
                tree.update(r.y1, r.y2, if typ == 1 { 1 } else { -1 });
            }
            i += 1;
        }
    }
    // Tail: active coverage (rects whose close lies in a later slab) up to
    // slab_end — but slab_end is the next slab's first event x, and every
    // still-open rect reaches it (its close event is a later event).
    if slab_end != i64::MAX {
        area += tree.covered() * (slab_end - prev_x);
    }
    area
}

/// Total area of the union of `rects` (exact, `u64`).
pub fn cgm_union_area<E: Executor>(exec: &E, v: usize, rects: &[Rect]) -> AlgoResult<u64> {
    cgm_union_area_with_budget(exec, v, rects, rects.len())
}

/// [`cgm_union_area`] with an explicit bound on how many rectangles may
/// cross into any single slab (sizes μ/γ for out-of-core execution).
pub fn cgm_union_area_with_budget<E: Executor>(
    exec: &E,
    v: usize,
    rects: &[Rect],
    max_crossings: usize,
) -> AlgoResult<u64> {
    if v == 0 {
        return Err(AlgoError::Input("v must be >= 1".into()));
    }
    if rects.iter().any(|r| r.x1 >= r.x2 || r.y1 >= r.y2) {
        return Err(AlgoError::Input("rectangles need x1 < x2 and y1 < y2".into()));
    }
    if rects.is_empty() {
        return Ok(0);
    }
    let events: Vec<REvent> = rects
        .iter()
        .enumerate()
        .flat_map(|(id, &r)| [(r.x1, 1u8, id as u64, r), (r.x2, 0u8, id as u64, r)])
        .collect();
    let n = events.len();
    let sorted = cgm_sort(exec, v, events)?;
    let prog = AreaSweep { chunk: n.div_ceil(v).max(1), v, max_crossings };
    let states = distribute(sorted, v)
        .into_iter()
        .map(|events| AreaState { events, area: 0, bounds: Vec::new() })
        .collect();
    let res = exec.execute(&prog, states)?;
    Ok(res.states.iter().map(|s| s.area).sum())
}

/// Sequential reference: global coverage-tree sweep.
pub fn seq_union_area(rects: &[Rect]) -> u64 {
    if rects.is_empty() {
        return 0;
    }
    let mut events: Vec<(i64, u8, Rect)> =
        rects.iter().flat_map(|&r| [(r.x1, 1u8, r), (r.x2, 0u8, r)]).collect();
    events.sort_unstable_by_key(|&(x, typ, _)| (x, typ));
    let mut ys: Vec<i64> = rects.iter().flat_map(|r| [r.y1, r.y2]).collect();
    ys.sort_unstable();
    ys.dedup();
    let mut tree = CoverageTree::new(ys);
    let mut area: i64 = 0;
    let mut prev_x = events[0].0;
    for &(x, typ, r) in &events {
        area += tree.covered() * (x - prev_x);
        prev_x = x;
        tree.update(r.y1, r.y2, if typ == 1 { 1 } else { -1 });
    }
    area as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_bsp::SeqExecutor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rects(n: usize, seed: u64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x1 = rng.gen_range(-300..280);
                let y1 = rng.gen_range(-300..280);
                Rect::new(x1, x1 + rng.gen_range(1..120), y1, y1 + rng.gen_range(1..120))
            })
            .collect()
    }

    #[test]
    fn coverage_tree_basic() {
        let mut t = CoverageTree::new(vec![0, 2, 5, 9]);
        assert_eq!(t.covered(), 0);
        t.update(0, 5, 1);
        assert_eq!(t.covered(), 5);
        t.update(2, 9, 1);
        assert_eq!(t.covered(), 9);
        t.update(0, 5, -1);
        assert_eq!(t.covered(), 7);
        t.update(2, 9, -1);
        assert_eq!(t.covered(), 0);
    }

    #[test]
    fn matches_reference_random() {
        for seed in [16, 17, 18] {
            let rects = random_rects(120, seed);
            let want = seq_union_area(&rects);
            let got = cgm_union_area(&SeqExecutor, 6, &rects).unwrap();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn disjoint_rects_sum() {
        let rects = vec![Rect::new(0, 2, 0, 3), Rect::new(10, 12, 0, 5)];
        assert_eq!(cgm_union_area(&SeqExecutor, 3, &rects).unwrap(), 6 + 10);
    }

    #[test]
    fn nested_rects_take_outer() {
        let rects = vec![Rect::new(0, 10, 0, 10), Rect::new(2, 5, 2, 5)];
        assert_eq!(cgm_union_area(&SeqExecutor, 4, &rects).unwrap(), 100);
    }

    #[test]
    fn identical_rects_counted_once() {
        let rects = vec![Rect::new(1, 4, 1, 4); 7];
        assert_eq!(cgm_union_area(&SeqExecutor, 3, &rects).unwrap(), 9);
    }

    #[test]
    fn empty_and_invalid() {
        assert_eq!(cgm_union_area(&SeqExecutor, 2, &[]).unwrap(), 0);
        assert!(matches!(
            cgm_union_area(&SeqExecutor, 2, &[Rect::new(3, 3, 0, 1)]),
            Err(AlgoError::Input(_))
        ));
    }
}
