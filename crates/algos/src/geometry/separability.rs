//! CGM linear separability of two point sets — Table 1, Group B ("uni-
//! and multi-directional separability"). Two sets are linearly separable
//! (by a line they don't cross) exactly when their convex hulls do not
//! intersect; the CGM algorithm computes both hulls (λ = O(1) each) and
//! decides disjointness locally on the (small) hulls with exact `i128`
//! predicates.
//!
//! *Uni-directional* separability — is there a separating line
//! perpendicular to a **given** direction? — needs only the extreme
//! projections of each set: a single λ = 2 reduction, also provided.

use crate::common::{distribute, AlgoError, AlgoResult};
use crate::geometry::hull::cgm_convex_hull_with_budget;
use crate::geometry::point::{cross, Point2};
use em_bsp::{BspProgram, Executor, Mailbox, Step};
use em_serial::impl_serial_struct;

/// Does point `p` lie on segment `a..b` (inclusive)? Assumes collinear.
fn on_segment(a: Point2, b: Point2, p: Point2) -> bool {
    p.x >= a.x.min(b.x) && p.x <= a.x.max(b.x) && p.y >= a.y.min(b.y) && p.y <= a.y.max(b.y)
}

/// Exact closed segment intersection test.
pub fn segments_intersect(a: Point2, b: Point2, c: Point2, d: Point2) -> bool {
    let d1 = cross(c, d, a);
    let d2 = cross(c, d, b);
    let d3 = cross(a, b, c);
    let d4 = cross(a, b, d);
    if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) && ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
        return true;
    }
    (d1 == 0 && on_segment(c, d, a))
        || (d2 == 0 && on_segment(c, d, b))
        || (d3 == 0 && on_segment(a, b, c))
        || (d4 == 0 && on_segment(a, b, d))
}

/// Is `p` inside or on the boundary of the convex polygon `poly` (CCW,
/// may be degenerate: a point or a segment)?
pub fn point_in_convex(poly: &[Point2], p: Point2) -> bool {
    match poly.len() {
        0 => false,
        1 => poly[0] == p,
        2 => cross(poly[0], poly[1], p) == 0 && on_segment(poly[0], poly[1], p),
        m => (0..m).all(|i| cross(poly[i], poly[(i + 1) % m], p) >= 0),
    }
}

/// Do two convex polygons (possibly degenerate) intersect (closed sets)?
pub fn convex_polygons_intersect(a: &[Point2], b: &[Point2]) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    // A vertex of one inside the other covers containment; otherwise any
    // boundary crossing shows up as an edge pair intersection.
    if a.iter().any(|&p| point_in_convex(b, p)) || b.iter().any(|&p| point_in_convex(a, p)) {
        return true;
    }
    let edges = |poly: &[Point2]| -> Vec<(Point2, Point2)> {
        match poly.len() {
            0 | 1 => Vec::new(),
            2 => vec![(poly[0], poly[1])],
            m => (0..m).map(|i| (poly[i], poly[(i + 1) % m])).collect(),
        }
    };
    for &(p1, p2) in &edges(a) {
        for &(q1, q2) in &edges(b) {
            if segments_intersect(p1, p2, q1, q2) {
                return true;
            }
        }
    }
    false
}

/// Multi-directional separability: is there *any* line separating the two
/// sets (hulls disjoint as closed sets)? Empty sets are trivially
/// separable.
pub fn cgm_separable<E: Executor>(
    exec: &E,
    v: usize,
    a: Vec<Point2>,
    b: Vec<Point2>,
) -> AlgoResult<bool> {
    let budget = (a.len().max(b.len()) / 2).max(1024);
    cgm_separable_with_budget(exec, v, a, b, budget)
}

/// [`cgm_separable`] with an explicit hull-gather budget (see
/// [`cgm_convex_hull_with_budget`]) for out-of-core machines whose memory
/// cannot hold half the input.
pub fn cgm_separable_with_budget<E: Executor>(
    exec: &E,
    v: usize,
    a: Vec<Point2>,
    b: Vec<Point2>,
    max_hull_points: usize,
) -> AlgoResult<bool> {
    let ha = cgm_convex_hull_with_budget(exec, v, a, max_hull_points)?;
    let hb = cgm_convex_hull_with_budget(exec, v, b, max_hull_points)?;
    Ok(!convex_polygons_intersect(&ha, &hb))
}

/// State of the uni-directional reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniState {
    /// `(projection, set_tag)` pairs held by this processor.
    pub proj: Vec<(i64, u8)>,
    /// Verdict computed on processor 0: 0 = no, 1 = A before B,
    /// 2 = B before A.
    pub verdict: u8,
}
impl_serial_struct!(UniState { proj, verdict });

/// Uni-directional separability program: reduce per-set extremes of the
/// projections, decide on processor 0. λ = 2.
#[derive(Debug, Clone)]
pub struct UniSeparable {
    /// ⌈(|A|+|B|)/v⌉ for sizing.
    pub chunk: usize,
}

impl BspProgram for UniSeparable {
    type State = UniState;
    /// `(set_tag, min_proj, max_proj)` per processor.
    type Msg = (u8, i64, i64);

    fn superstep(
        &self,
        step: usize,
        mb: &mut Mailbox<(u8, i64, i64)>,
        state: &mut UniState,
    ) -> Step {
        match step {
            0 => {
                for tag in [0u8, 1] {
                    let it = state.proj.iter().filter(|&&(_, t)| t == tag).map(|&(x, _)| x);
                    if let (Some(lo), Some(hi)) = (it.clone().min(), it.max()) {
                        mb.send(0, (tag, lo, hi));
                    }
                }
                Step::Continue
            }
            _ => {
                if mb.pid() == 0 {
                    let mut a = (i64::MAX, i64::MIN);
                    let mut b = (i64::MAX, i64::MIN);
                    for env in mb.take_incoming() {
                        let (tag, lo, hi) = env.msg;
                        let slot = if tag == 0 { &mut a } else { &mut b };
                        slot.0 = slot.0.min(lo);
                        slot.1 = slot.1.max(hi);
                    }
                    state.verdict = if a.1 <= b.0 && a.0 != i64::MAX && b.0 != i64::MAX {
                        1
                    } else if b.1 <= a.0 && a.0 != i64::MAX && b.0 != i64::MAX {
                        2
                    } else if a.0 == i64::MAX || b.0 == i64::MAX {
                        1 // an empty set is trivially separable
                    } else {
                        0
                    };
                }
                Step::Halt
            }
        }
    }

    fn max_state_bytes(&self) -> usize {
        64 + 17 * (self.chunk + 2)
    }

    fn max_comm_bytes(&self) -> usize {
        40 * 8 + 256
    }
}

/// Uni-directional separability: can `a` and `b` be separated by a line
/// perpendicular to direction `(dx, dy)` (overlapping extremes touch is
/// allowed)? Direction components must fit 31 bits (projections are exact
/// in `i64` for 31-bit coordinates).
pub fn cgm_separable_in_direction<E: Executor>(
    exec: &E,
    v: usize,
    a: &[Point2],
    b: &[Point2],
    dir: (i64, i64),
) -> AlgoResult<bool> {
    if v == 0 {
        return Err(AlgoError::Input("v must be >= 1".into()));
    }
    if dir == (0, 0) {
        return Err(AlgoError::Input("zero direction".into()));
    }
    let limit = 1i64 << 31;
    if dir.0.abs() >= limit
        || dir.1.abs() >= limit
        || a.iter().chain(b).any(|p| p.x.abs() >= limit || p.y.abs() >= limit)
    {
        return Err(AlgoError::Input("coordinates/direction must fit 31 bits".into()));
    }
    let proj = |p: &Point2| p.x * dir.0 + p.y * dir.1;
    let tagged: Vec<(i64, u8)> =
        a.iter().map(|p| (proj(p), 0u8)).chain(b.iter().map(|p| (proj(p), 1u8))).collect();
    if tagged.is_empty() {
        return Ok(true);
    }
    let prog = UniSeparable { chunk: tagged.len().div_ceil(v).max(1) };
    let states =
        distribute(tagged, v).into_iter().map(|proj| UniState { proj, verdict: 0 }).collect();
    let res = exec.execute(&prog, states)?;
    Ok(res.states[0].verdict != 0)
}

/// Sequential reference for multi-directional separability.
pub fn seq_separable(a: &[Point2], b: &[Point2]) -> bool {
    use crate::geometry::hull::seq_convex_hull;
    !convex_polygons_intersect(&seq_convex_hull(a), &seq_convex_hull(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_bsp::SeqExecutor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cloud(n: usize, cx: i64, cy: i64, r: i64, seed: u64) -> Vec<Point2> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point2::new(cx + rng.gen_range(-r..=r), cy + rng.gen_range(-r..=r)))
            .collect()
    }

    #[test]
    fn disjoint_clouds_are_separable() {
        let a = cloud(100, -500, 0, 100, 90);
        let b = cloud(100, 500, 0, 100, 91);
        assert!(seq_separable(&a, &b));
        assert!(cgm_separable(&SeqExecutor, 5, a.clone(), b.clone()).unwrap());
        assert!(cgm_separable_in_direction(&SeqExecutor, 5, &a, &b, (1, 0)).unwrap());
        // Perpendicular direction does not separate them.
        assert!(!cgm_separable_in_direction(&SeqExecutor, 5, &a, &b, (0, 1)).unwrap());
    }

    #[test]
    fn interleaved_clouds_are_not_separable() {
        let a = cloud(120, 0, 0, 300, 92);
        let b = cloud(120, 50, 50, 300, 93);
        assert!(!seq_separable(&a, &b));
        assert!(!cgm_separable(&SeqExecutor, 5, a, b).unwrap());
    }

    #[test]
    fn nested_hulls_are_not_separable() {
        // b strictly inside hull of a, without vertex containment failing.
        let a = vec![
            Point2::new(-100, -100),
            Point2::new(100, -100),
            Point2::new(100, 100),
            Point2::new(-100, 100),
        ];
        let b = vec![Point2::new(0, 0), Point2::new(5, 5)];
        assert!(!cgm_separable(&SeqExecutor, 3, a, b).unwrap());
    }

    #[test]
    fn crossing_segments_without_contained_vertices() {
        // Two thin crossing "X" sets: no vertex inside the other hull.
        let a = vec![Point2::new(-10, -10), Point2::new(10, 10)];
        let b = vec![Point2::new(-10, 10), Point2::new(10, -10)];
        assert!(!cgm_separable(&SeqExecutor, 2, a, b).unwrap());
    }

    #[test]
    fn touching_hulls_count_as_intersecting() {
        let a = vec![Point2::new(0, 0), Point2::new(0, 10), Point2::new(-10, 5)];
        let b = vec![Point2::new(0, 5), Point2::new(10, 0), Point2::new(10, 10)];
        assert!(!cgm_separable(&SeqExecutor, 2, a, b).unwrap());
    }

    #[test]
    fn empty_sets_are_trivially_separable() {
        assert!(cgm_separable(&SeqExecutor, 2, vec![], cloud(5, 0, 0, 10, 94)).unwrap());
        assert!(cgm_separable_in_direction(&SeqExecutor, 2, &[], &[], (1, 1)).unwrap());
    }

    #[test]
    fn matches_reference_on_random_pairs() {
        let mut rng = StdRng::seed_from_u64(95);
        for _ in 0..10 {
            let gap: i64 = rng.gen_range(-200..400);
            let a = cloud(60, 0, 0, 150, rng.gen());
            let b = cloud(60, 150 + gap, 0, 150, rng.gen());
            let want = seq_separable(&a, &b);
            let got = cgm_separable(&SeqExecutor, 6, a, b).unwrap();
            assert_eq!(got, want, "gap {gap}");
        }
    }
}
