//! CGM 3D maxima — Table 1, Group B. A point is *maximal* when no other
//! point strictly dominates it in all three coordinates.
//!
//! λ = O(1): sort by `x` (CGM sample sort), then every processor builds
//! the 2D `(y, z)` staircase of its chunk and sends it to all
//! lower-numbered processors; a point survives if neither its own chunk's
//! suffix nor any higher chunk's staircase strictly dominates its `(y, z)`.
//!
//! Requires **pairwise distinct x coordinates** (checked by the driver):
//! chunk boundaries of the x-sort are then strict, so "higher chunk" means
//! "strictly larger x". This is the usual general-position assumption; the
//! sequential reference handles arbitrary inputs.

use crate::common::{distribute, AlgoError, AlgoResult};
use crate::geometry::point::Point3;
use crate::sort::cgm_sort;
use em_bsp::{BspProgram, Executor, Mailbox, Step};
use em_serial::impl_serial_struct;

/// A 2D staircase over `(y, z)`: the set of points not strictly dominated
/// in `(y, z)`, kept sorted by ascending `y` with strictly descending `z`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Staircase {
    entries: Vec<(i64, i64)>, // (y, z), y ascending, z strictly descending
}

impl Staircase {
    /// Build from arbitrary `(y, z)` pairs.
    pub fn build(mut pts: Vec<(i64, i64)>) -> Self {
        pts.sort_unstable_by_key(|&(y, z)| (std::cmp::Reverse(y), std::cmp::Reverse(z)));
        let mut entries: Vec<(i64, i64)> = Vec::new();
        let mut best_z = i64::MIN;
        for (y, z) in pts {
            if z > best_z {
                entries.push((y, z));
                best_z = z;
            }
        }
        entries.reverse();
        Staircase { entries }
    }

    /// Does some staircase point strictly dominate `(y, z)` (both
    /// coordinates strictly larger)?
    pub fn dominates(&self, y: i64, z: i64) -> bool {
        // First entry with y' > y; its z is the max z among all y' > y
        // because z decreases as y increases... it *increases* towards
        // smaller y, so the max z among entries with y' > y is attained at
        // the smallest such y'.
        let idx = self.entries.partition_point(|&(ey, _)| ey <= y);
        idx < self.entries.len() && self.entries[idx].1 > z
    }

    /// Insert one point, keeping the staircase invariant (amortized
    /// O(log n) plus removals).
    pub fn insert(&mut self, y: i64, z: i64) {
        // Skip if some entry weakly dominates (y', z') ≥ (y, z).
        let idx = self.entries.partition_point(|&(ey, _)| ey < y);
        if idx < self.entries.len() && self.entries[idx].1 >= z {
            return; // entry with y' ≥ y and z' ≥ z exists
        }
        // Remove entries weakly dominated by the new point: y' ≤ y, z' ≤ z.
        // They form a suffix of entries[..idx] (z grows towards smaller y),
        // plus possibly one same-y entry at idx with smaller z.
        let end = if idx < self.entries.len() && self.entries[idx].0 == y { idx + 1 } else { idx };
        let mut first = idx;
        while first > 0 && self.entries[first - 1].1 <= z {
            first -= 1;
        }
        self.entries.splice(first..end, [(y, z)]);
    }

    /// Raw entries (for message transport).
    pub fn entries(&self) -> &[(i64, i64)] {
        &self.entries
    }

    /// Reconstruct from transported entries (already staircase-shaped).
    pub fn from_entries(entries: Vec<(i64, i64)>) -> Self {
        Staircase { entries }
    }
}

/// State of the maxima sweep stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaximaState {
    /// x-sorted points of this chunk.
    pub pts: Vec<Point3>,
    /// Surviving maximal points (output).
    pub maxima: Vec<Point3>,
}
impl_serial_struct!(MaximaState { pts, maxima });

/// The staircase-exchange BSP program (run after a CGM sort by x).
#[derive(Debug, Clone)]
pub struct MaximaSweep {
    /// ⌈n/v⌉ for sizing.
    pub chunk: usize,
    /// `v`.
    pub v: usize,
}

impl BspProgram for MaximaSweep {
    type State = MaximaState;
    type Msg = Vec<(i64, i64)>;

    fn superstep(
        &self,
        step: usize,
        mb: &mut Mailbox<Vec<(i64, i64)>>,
        state: &mut MaximaState,
    ) -> Step {
        match step {
            0 => {
                let stair = Staircase::build(state.pts.iter().map(|p| (p.y, p.z)).collect());
                for dst in 0..mb.pid() {
                    mb.send(dst, stair.entries().to_vec());
                }
                Step::Continue
            }
            _ => {
                let received: Vec<Staircase> = mb
                    .take_incoming()
                    .into_iter()
                    .map(|e| Staircase::from_entries(e.msg))
                    .collect();
                // Sweep own chunk right-to-left (descending x): a point is
                // killed by its chunk's strict suffix or any higher chunk.
                let mut local = Staircase::default();
                let mut maxima = Vec::new();
                for p in state.pts.iter().rev() {
                    let dominated =
                        local.dominates(p.y, p.z) || received.iter().any(|s| s.dominates(p.y, p.z));
                    if !dominated {
                        maxima.push(*p);
                    }
                    local.insert(p.y, p.z);
                }
                maxima.reverse();
                state.maxima = maxima;
                Step::Halt
            }
        }
    }

    fn max_state_bytes(&self) -> usize {
        64 + 24 * (2 * self.chunk + 4) + 24 * self.chunk
    }

    fn max_comm_bytes(&self) -> usize {
        // A processor may broadcast its staircase (≤ chunk entries) to all
        // lower processors, and receive up to v staircases.
        16 * self.chunk * self.v + 40 * self.v + 256
    }
}

/// Maximal points of `points` (strict dominance), in ascending `(x, y, z)`
/// order. Requires pairwise distinct x coordinates.
pub fn cgm_maxima3d<E: Executor>(
    exec: &E,
    v: usize,
    points: Vec<Point3>,
) -> AlgoResult<Vec<Point3>> {
    if v == 0 {
        return Err(AlgoError::Input("v must be >= 1".into()));
    }
    if points.is_empty() {
        return Ok(points);
    }
    let mut xs: Vec<i64> = points.iter().map(|p| p.x).collect();
    xs.sort_unstable();
    if xs.windows(2).any(|w| w[0] == w[1]) {
        return Err(AlgoError::Input(
            "cgm_maxima3d requires pairwise distinct x coordinates".into(),
        ));
    }
    let n = points.len();
    let sorted = cgm_sort(exec, v, points)?;
    let prog = MaximaSweep { chunk: n.div_ceil(v).max(1), v };
    let states = distribute(sorted, v)
        .into_iter()
        .map(|pts| MaximaState { pts, maxima: Vec::new() })
        .collect();
    let res = exec.execute(&prog, states)?;
    Ok(res.states.into_iter().flat_map(|s| s.maxima).collect())
}

/// Sequential reference (handles arbitrary inputs, including equal x):
/// O(n²) pairwise check, used as ground truth.
pub fn seq_maxima3d(points: &[Point3]) -> Vec<Point3> {
    let mut out: Vec<Point3> = points
        .iter()
        .copied()
        .filter(|p| !points.iter().any(|q| q.x > p.x && q.y > p.y && q.z > p.z))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_bsp::SeqExecutor;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point3> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs: Vec<i64> = (0..n as i64).collect();
        xs.shuffle(&mut rng);
        xs.into_iter()
            .map(|x| Point3::new(x, rng.gen_range(-100..100), rng.gen_range(-100..100)))
            .collect()
    }

    #[test]
    fn staircase_dominance() {
        let s = Staircase::build(vec![(0, 10), (5, 5), (10, 1), (3, 3)]);
        assert!(s.dominates(-1, 9)); // (0,10)
        assert!(s.dominates(4, 4)); // (5,5)
        assert!(!s.dominates(10, 1)); // nothing strictly beyond
        assert!(!s.dominates(0, 10)); // strict: equal doesn't dominate
        assert!(s.dominates(9, 0)); // (10,1)
        assert!(!s.dominates(11, 0));
    }

    #[test]
    fn matches_reference_on_random_points() {
        for seed in [8, 9, 10] {
            let pts = random_points(300, seed);
            let mut want = seq_maxima3d(&pts);
            want.sort_unstable();
            let mut got = cgm_maxima3d(&SeqExecutor, 6, pts).unwrap();
            got.sort_unstable();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn single_chain_keeps_only_top() {
        // Strictly increasing in all coords: only the last is maximal.
        let pts: Vec<Point3> = (0..50).map(|i| Point3::new(i, i, i)).collect();
        let got = cgm_maxima3d(&SeqExecutor, 4, pts).unwrap();
        assert_eq!(got, vec![Point3::new(49, 49, 49)]);
    }

    #[test]
    fn anti_chain_keeps_everything() {
        // x up, y down: nothing dominates anything.
        let pts: Vec<Point3> = (0..30).map(|i| Point3::new(i, -i, 0)).collect();
        let got = cgm_maxima3d(&SeqExecutor, 4, pts.clone()).unwrap();
        assert_eq!(got.len(), 30);
    }

    #[test]
    fn duplicate_x_rejected() {
        let pts = vec![Point3::new(1, 2, 3), Point3::new(1, 5, 6)];
        assert!(matches!(cgm_maxima3d(&SeqExecutor, 2, pts), Err(AlgoError::Input(_))));
    }

    #[test]
    fn empty_input() {
        assert!(cgm_maxima3d(&SeqExecutor, 3, vec![]).unwrap().is_empty());
    }
}
