//! CGM batched next-element / predecessor search — Table 1, Group B
//! ("next element search on line segments", in its order-theoretic core):
//! given a set of keys `S` and a batch of queries `Q`, find for every
//! query the largest key `≤` it.
//!
//! λ = O(1): sort keys and queries together (CGM sample sort on tagged
//! records), then each processor scans its chunk; chunk-initial queries
//! are resolved with the maximum key announced by lower-numbered
//! processors (one broadcast round).

use crate::common::{distribute, AlgoError, AlgoResult};
use crate::sort::cgm_sort;
use em_bsp::{BspProgram, Executor, Mailbox, Step};
use em_serial::impl_serial_struct;

/// Tagged record: `(value, tag, id)` with `tag = 0` for keys and `1` for
/// queries, so at equal value a key sorts before the queries it answers.
type Tagged = (i64, u8, u64);

/// State of the scan stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredState {
    /// Sorted tagged records of this chunk.
    pub items: Vec<Tagged>,
    /// `(query id, predecessor)` answers (`i64::MIN` encodes "none").
    pub answers: Vec<(u64, i64)>,
}
impl_serial_struct!(PredState { items, answers });

/// The scan BSP program (run after a CGM sort of the tagged records).
#[derive(Debug, Clone)]
pub struct PredScan {
    /// ⌈(|S|+|Q|)/v⌉ for sizing.
    pub chunk: usize,
    /// `v`.
    pub v: usize,
}

impl BspProgram for PredScan {
    type State = PredState;
    type Msg = i64;

    fn superstep(&self, step: usize, mb: &mut Mailbox<i64>, state: &mut PredState) -> Step {
        match step {
            0 => {
                // Announce my largest key (if any) to all higher processors.
                if let Some(&(val, _, _)) = state.items.iter().rev().find(|&&(_, tag, _)| tag == 0)
                {
                    for dst in mb.pid() + 1..mb.nprocs() {
                        mb.send(dst, val);
                    }
                }
                Step::Continue
            }
            _ => {
                let mut last = mb.take_incoming().iter().map(|e| e.msg).max().unwrap_or(i64::MIN);
                let mut answers = Vec::new();
                for &(val, tag, id) in &state.items {
                    if tag == 0 {
                        last = last.max(val);
                    } else {
                        answers.push((id, last));
                    }
                }
                state.answers = answers;
                Step::Halt
            }
        }
    }

    fn max_state_bytes(&self) -> usize {
        64 + (17 + 16) * (2 * self.chunk + 4)
    }

    fn max_comm_bytes(&self) -> usize {
        24 * self.v + 64
    }
}

/// For each query, the largest key `≤` it (`None` if every key is larger).
///
/// Keys equal to the query count as predecessors. `i64::MIN` may not be
/// used as a key (it encodes "no predecessor" internally).
pub fn cgm_predecessor<E: Executor>(
    exec: &E,
    v: usize,
    keys: &[i64],
    queries: &[i64],
) -> AlgoResult<Vec<Option<i64>>> {
    if v == 0 {
        return Err(AlgoError::Input("v must be >= 1".into()));
    }
    if keys.contains(&i64::MIN) {
        return Err(AlgoError::Input("i64::MIN is reserved".into()));
    }
    if queries.is_empty() {
        return Ok(Vec::new());
    }
    let tagged: Vec<Tagged> = keys
        .iter()
        .map(|&k| (k, 0u8, 0u64))
        .chain(queries.iter().enumerate().map(|(i, &q)| (q, 1u8, i as u64)))
        .collect();
    let n = tagged.len();
    let sorted = cgm_sort(exec, v, tagged)?;
    let prog = PredScan { chunk: n.div_ceil(v).max(1), v };
    let states = distribute(sorted, v)
        .into_iter()
        .map(|items| PredState { items, answers: Vec::new() })
        .collect();
    let res = exec.execute(&prog, states)?;
    let mut out = vec![None; queries.len()];
    for s in res.states {
        for (id, pred) in s.answers {
            out[id as usize] = if pred == i64::MIN { None } else { Some(pred) };
        }
    }
    Ok(out)
}

/// Sequential reference via binary search.
pub fn seq_predecessor(keys: &[i64], queries: &[i64]) -> Vec<Option<i64>> {
    let mut sorted = keys.to_vec();
    sorted.sort_unstable();
    queries
        .iter()
        .map(|&q| {
            let idx = sorted.partition_point(|&k| k <= q);
            if idx == 0 {
                None
            } else {
                Some(sorted[idx - 1])
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_bsp::SeqExecutor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_reference_random() {
        let mut rng = StdRng::seed_from_u64(11);
        let keys: Vec<i64> = (0..200).map(|_| rng.gen_range(-500..500)).collect();
        let queries: Vec<i64> = (0..300).map(|_| rng.gen_range(-600..600)).collect();
        let want = seq_predecessor(&keys, &queries);
        let got = cgm_predecessor(&SeqExecutor, 6, &keys, &queries).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn exact_matches_count_as_predecessors() {
        let got = cgm_predecessor(&SeqExecutor, 3, &[10, 20], &[10, 15, 20, 25, 5]).unwrap();
        assert_eq!(got, vec![Some(10), Some(10), Some(20), Some(20), None]);
    }

    #[test]
    fn no_keys_means_no_predecessors() {
        let got = cgm_predecessor(&SeqExecutor, 2, &[], &[1, 2]).unwrap();
        assert_eq!(got, vec![None, None]);
    }

    #[test]
    fn duplicate_keys_and_queries() {
        let got = cgm_predecessor(&SeqExecutor, 4, &[5, 5, 5], &[5, 5, 4]).unwrap();
        assert_eq!(got, vec![Some(5), Some(5), None]);
    }

    #[test]
    fn reserved_key_rejected() {
        assert!(matches!(
            cgm_predecessor(&SeqExecutor, 2, &[i64::MIN], &[0]),
            Err(AlgoError::Input(_))
        ));
    }
}
