//! CGM 2D convex hull — the Table 1 Group B representative for the
//! hull/Voronoi family. λ = O(1): sort by `(x, y)` (CGM sample sort),
//! compute local hulls of the x-contiguous chunks, gather the local hull
//! vertices on processor 0 and stitch.
//!
//! Correctness of the gather: every vertex of the global hull is a vertex
//! of the local hull of its own x-contiguous chunk (a point inside its
//! chunk's hull is inside the global hull). Memory: the gathered set can
//! degenerate to all `n` points (e.g. points on a circle); the driver
//! takes an explicit `max_hull_points` budget and the external-memory
//! simulators raise a typed γ-violation if it is exceeded, instead of
//! silently corrupting state.

use crate::common::{distribute, AlgoError, AlgoResult};
use crate::geometry::point::{cross, Point2};
use crate::sort::cgm_sort;
use em_bsp::{BspProgram, Executor, Mailbox, Step};
use em_serial::impl_serial_struct;

/// State of the gather stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HullState {
    /// This processor's x-sorted points.
    pub pts: Vec<Point2>,
    /// The final hull (populated on processor 0).
    pub hull: Vec<Point2>,
}
impl_serial_struct!(HullState { pts, hull });

/// The local-hull + gather BSP program (run after a CGM sort).
#[derive(Debug, Clone)]
pub struct HullGather {
    /// ⌈n/v⌉ for sizing.
    pub chunk: usize,
    /// Gather budget: max points processor 0 may receive.
    pub max_hull_points: usize,
}

impl BspProgram for HullGather {
    type State = HullState;
    type Msg = Vec<Point2>;

    fn superstep(&self, step: usize, mb: &mut Mailbox<Vec<Point2>>, state: &mut HullState) -> Step {
        match step {
            0 => {
                let local = monotone_chain(&state.pts);
                mb.send(0, local);
                Step::Continue
            }
            _ => {
                if mb.pid() == 0 {
                    let mut candidates: Vec<Point2> =
                        mb.take_incoming().into_iter().flat_map(|e| e.msg).collect();
                    candidates.sort_unstable();
                    candidates.dedup();
                    state.hull = monotone_chain(&candidates);
                }
                Step::Halt
            }
        }
    }

    fn max_state_bytes(&self) -> usize {
        64 + 16 * (2 * self.chunk + self.max_hull_points + 4)
    }

    fn max_comm_bytes(&self) -> usize {
        16 * self.max_hull_points + 1024
    }
}

/// Convex hull of `points`, counter-clockwise starting from the
/// lexicographically smallest vertex. Collinear boundary points are
/// dropped. Uses the default gather budget `max(n/2, 4096)`.
pub fn cgm_convex_hull<E: Executor>(
    exec: &E,
    v: usize,
    points: Vec<Point2>,
) -> AlgoResult<Vec<Point2>> {
    let budget = (points.len() / 2).max(4096).min(points.len().max(16));
    cgm_convex_hull_with_budget(exec, v, points, budget)
}

/// [`cgm_convex_hull`] with an explicit gather budget (`max_hull_points`
/// total local-hull vertices across all processors). Raise it if the
/// executor reports a communication-budget violation.
pub fn cgm_convex_hull_with_budget<E: Executor>(
    exec: &E,
    v: usize,
    points: Vec<Point2>,
    max_hull_points: usize,
) -> AlgoResult<Vec<Point2>> {
    if v == 0 {
        return Err(AlgoError::Input("v must be >= 1".into()));
    }
    if points.len() < 3 {
        let mut p = points;
        p.sort_unstable();
        p.dedup();
        return Ok(p);
    }
    let n = points.len();
    let sorted = cgm_sort(exec, v, points)?;
    let prog = HullGather { chunk: n.div_ceil(v).max(1), max_hull_points };
    let states =
        distribute(sorted, v).into_iter().map(|pts| HullState { pts, hull: Vec::new() }).collect();
    let res = exec.execute(&prog, states)?;
    Ok(res.states.into_iter().next().expect("processor 0").hull)
}

/// Andrew's monotone chain on a *sorted, deduplicated-enough* slice;
/// sorts/dedups defensively. Returns the hull counter-clockwise from the
/// lexicographically smallest point, without collinear boundary points.
pub fn monotone_chain(points: &[Point2]) -> Vec<Point2> {
    let mut pts: Vec<Point2> = points.to_vec();
    pts.sort_unstable();
    pts.dedup();
    let n = pts.len();
    if n <= 2 {
        return pts;
    }
    let mut hull: Vec<Point2> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0 {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev() {
        while hull.len() >= lower_len && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0 {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point repeats the first
                // Degenerate all-collinear input: the two passes leave [a, b].
    hull
}

/// Sequential reference — identical algorithm run on the full input.
pub fn seq_convex_hull(points: &[Point2]) -> Vec<Point2> {
    monotone_chain(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_bsp::SeqExecutor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn square_with_interior_points() {
        let mut pts =
            vec![Point2::new(0, 0), Point2::new(10, 0), Point2::new(10, 10), Point2::new(0, 10)];
        for i in 1..9 {
            pts.push(Point2::new(i, 5));
        }
        let got = cgm_convex_hull(&SeqExecutor, 3, pts.clone()).unwrap();
        assert_eq!(got, seq_convex_hull(&pts));
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn random_points_match_reference() {
        let mut rng = StdRng::seed_from_u64(6);
        let pts: Vec<Point2> = (0..400)
            .map(|_| Point2::new(rng.gen_range(-1000..1000), rng.gen_range(-1000..1000)))
            .collect();
        let want = seq_convex_hull(&pts);
        let got = cgm_convex_hull(&SeqExecutor, 8, pts).unwrap();
        assert_eq!(got, want);
        assert!(got.len() >= 3);
    }

    #[test]
    fn collinear_input() {
        let pts: Vec<Point2> = (0..20).map(|i| Point2::new(i, 2 * i)).collect();
        let got = cgm_convex_hull(&SeqExecutor, 4, pts).unwrap();
        assert_eq!(got, vec![Point2::new(0, 0), Point2::new(19, 38)]);
    }

    #[test]
    fn duplicates_and_tiny_inputs() {
        let got = cgm_convex_hull(&SeqExecutor, 2, vec![Point2::new(1, 1); 10]).unwrap();
        assert_eq!(got, vec![Point2::new(1, 1)]);
        assert!(cgm_convex_hull(&SeqExecutor, 2, vec![]).unwrap().is_empty());
        let two = vec![Point2::new(3, 1), Point2::new(1, 2)];
        assert_eq!(
            cgm_convex_hull(&SeqExecutor, 2, two).unwrap(),
            vec![Point2::new(1, 2), Point2::new(3, 1)]
        );
    }

    #[test]
    fn hull_is_convex_and_contains_all_points() {
        let mut rng = StdRng::seed_from_u64(7);
        let pts: Vec<Point2> =
            (0..200).map(|_| Point2::new(rng.gen_range(-50..50), rng.gen_range(-50..50))).collect();
        let hull = cgm_convex_hull(&SeqExecutor, 5, pts.clone()).unwrap();
        let m = hull.len();
        // Strictly convex turns.
        for i in 0..m {
            let a = hull[i];
            let b = hull[(i + 1) % m];
            let c = hull[(i + 2) % m];
            assert!(cross(a, b, c) > 0, "non-convex corner at {i}");
        }
        // Every input point on or inside.
        for p in &pts {
            for i in 0..m {
                let a = hull[i];
                let b = hull[(i + 1) % m];
                assert!(cross(a, b, *p) >= 0, "point {p:?} outside edge {i}");
            }
        }
    }
}
