//! CGM lower envelope of non-intersecting **horizontal** segments (the
//! skyline special case of Table 1's "lower envelope" row; the blockwise
//! communication structure — sort, slab decomposition, crossing-segment
//! forwarding, local sweep — is identical to the general case).
//!
//! A segment is `(x1, x2, y)` covering the half-open interval `[x1, x2)`.
//! The envelope maps every `x` in the covered domain to the minimum `y`
//! among segments covering `x`, as a compressed breakpoint list
//! `(x, Some(y))` / `(x, None)`.
//!
//! λ = O(1): sort the `2n` events by `(x, typ, segid)`; broadcast chunk
//! boundaries (one round); forward segments whose interval crosses a slab
//! boundary to the slabs they reach (one round — memory is `O(n/v +
//! crossings)`, see DESIGN.md); sweep each slab locally.

use crate::common::{distribute, AlgoError, AlgoResult};
use crate::sort::cgm_sort;
use em_bsp::{BspProgram, Executor, Mailbox, Step};
use em_serial::impl_serial_struct;
use std::collections::BTreeMap;

/// A sweep event: `(x, typ, segid, x1, x2, y)`; `typ` 0 = close, 1 = open,
/// so closes sort before opens at the same `x` (half-open semantics).
type Event = (i64, u8, u64, i64, i64, i64);

/// State of the envelope sweep stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvState {
    /// Sorted event chunk.
    pub events: Vec<Event>,
    /// Skyline breakpoints emitted for this slab.
    pub out: Vec<(i64, Option<i64>)>,
}
impl_serial_struct!(EnvState { events, out });

/// The envelope sweep BSP program (run after a CGM sort of the events).
#[derive(Debug, Clone)]
pub struct EnvSweep {
    /// ⌈2n/v⌉ for sizing.
    pub chunk: usize,
    /// `v`.
    pub v: usize,
    /// Crossing-forward budget per processor (segments).
    pub max_crossings: usize,
}

impl BspProgram for EnvSweep {
    type State = EnvState;
    /// `(tag, a, b, c)`: tag 0 = boundary announcement `(first_x, _, _)`,
    /// tag 1 = crossing segment `(x1, x2, y)`.
    type Msg = (u8, i64, i64, i64);

    fn superstep(
        &self,
        step: usize,
        mb: &mut Mailbox<(u8, i64, i64, i64)>,
        state: &mut EnvState,
    ) -> Step {
        let v = mb.nprocs();
        match step {
            0 => {
                if let Some(&(x, ..)) = state.events.first() {
                    for dst in 0..v {
                        mb.send(dst, (0, x, 0, 0));
                    }
                }
                Step::Continue
            }
            1 => {
                // Boundaries: slab of proc i is [first_x_i, first_x_of_next
                // nonempty proc), in x-space.
                let mut firsts: Vec<(usize, i64)> = Vec::new();
                let mut crossings: Vec<(i64, i64, i64)> = Vec::new();
                for env in mb.take_incoming() {
                    match env.msg.0 {
                        0 => firsts.push((env.src, env.msg.1)),
                        _ => crossings.push((env.msg.1, env.msg.2, env.msg.3)),
                    }
                }
                debug_assert!(crossings.is_empty(), "crossings arrive in step 2");
                firsts.sort_unstable();
                let me = mb.pid();
                let my_slab = firsts.iter().position(|&(src, _)| src == me);
                let (slab_start, slab_end) = match my_slab {
                    None => {
                        // Empty chunk: nothing to sweep, nothing to forward.
                        return Step::Continue;
                    }
                    Some(idx) => (firsts[idx].1, firsts.get(idx + 1).map_or(i64::MAX, |&(_, x)| x)),
                };
                // Forward opens whose interval extends past my slab end to
                // every later nonempty processor whose slab it reaches.
                for &(_, typ, _, x1, x2, y) in &state.events {
                    if typ == 1 && x2 > slab_end {
                        for &(src, start) in &firsts {
                            if src > me && start < x2 {
                                mb.send(src, (1, x1, x2, y));
                            }
                        }
                    }
                }
                // Stash slab bounds for step 2 via the output field.
                state.out = vec![(slab_start, None), (slab_end, None)];
                Step::Continue
            }
            _ => {
                let crossings: Vec<(i64, i64, i64)> = mb
                    .take_incoming()
                    .into_iter()
                    .filter(|e| e.msg.0 == 1)
                    .map(|e| (e.msg.1, e.msg.2, e.msg.3))
                    .collect();
                if state.out.len() != 2 {
                    return Step::Halt; // empty chunk
                }
                let slab_start = state.out[0].0;
                let slab_end = state.out[1].0;
                state.out = sweep_slab(&state.events, &crossings, slab_start, slab_end);
                Step::Halt
            }
        }
    }

    fn max_state_bytes(&self) -> usize {
        64 + 35 * (self.chunk + 4) + 17 * (2 * self.chunk + self.max_crossings + 4)
    }

    fn max_comm_bytes(&self) -> usize {
        // Boundary broadcast + crossing forwards to up to v processors.
        (25 + 16) * (self.max_crossings + self.v + 2) * 2 + 256
    }
}

/// Sweep one slab: local events plus crossing segments active from
/// `slab_start`; emit compressed breakpoints within `[slab_start,
/// slab_end)`.
fn sweep_slab(
    events: &[Event],
    crossings: &[(i64, i64, i64)],
    slab_start: i64,
    slab_end: i64,
) -> Vec<(i64, Option<i64>)> {
    // Active multiset of y values.
    let mut active: BTreeMap<i64, u32> = BTreeMap::new();
    for &(_, _, y) in crossings {
        *active.entry(y).or_insert(0) += 1;
    }
    let mut out: Vec<(i64, Option<i64>)> = Vec::new();
    let emit = |out: &mut Vec<(i64, Option<i64>)>, x: i64, val: Option<i64>| {
        if x >= slab_end {
            return;
        }
        if out.last().map(|&(_, v)| v) != Some(val) {
            if out.last().map(|&(px, _)| px) == Some(x) {
                out.pop();
            }
            if out.last().map(|&(_, v)| v) != Some(val) {
                out.push((x, val));
            }
        }
    };
    let min_of = |active: &BTreeMap<i64, u32>| active.keys().next().copied();

    let mut i = 0;
    emit(&mut out, slab_start, min_of(&active));
    while i < events.len() {
        let x = events[i].0;
        while i < events.len() && events[i].0 == x {
            let (_, typ, _, _, _, y) = events[i];
            if typ == 0 {
                // A close at exactly slab_start belongs to a segment whose
                // interval ends where this slab begins: it was never seeded
                // (crossing forwards require start < x2) and never opened
                // locally — skip it, or it would decrement the count of a
                // *different* active segment with the same y.
                if x == slab_start {
                    i += 1;
                    continue;
                }
                let c = active.get_mut(&y).expect("close matches an active open");
                *c -= 1;
                if *c == 0 {
                    active.remove(&y);
                }
            } else {
                *active.entry(y).or_insert(0) += 1;
            }
            i += 1;
        }
        emit(&mut out, x.max(slab_start), min_of(&active));
    }
    out
}

/// Compute the lower envelope of horizontal segments `(x1, x2, y)` over
/// half-open intervals `[x1, x2)`. Returns compressed breakpoints: from
/// each `x` (inclusive) the minimum `y`, or `None` where nothing covers.
/// The list ends with `(max x2, None)` when any segment exists.
pub fn cgm_lower_envelope<E: Executor>(
    exec: &E,
    v: usize,
    segments: &[(i64, i64, i64)],
) -> AlgoResult<Vec<(i64, Option<i64>)>> {
    cgm_lower_envelope_with_budget(exec, v, segments, segments.len())
}

/// [`cgm_lower_envelope`] with an explicit bound on how many segments may
/// cross into any single slab (sizes μ/γ for out-of-core execution; the
/// default budget of `n` is always safe but large). The external-memory
/// simulators raise a typed budget violation if it is exceeded.
pub fn cgm_lower_envelope_with_budget<E: Executor>(
    exec: &E,
    v: usize,
    segments: &[(i64, i64, i64)],
    max_crossings: usize,
) -> AlgoResult<Vec<(i64, Option<i64>)>> {
    if v == 0 {
        return Err(AlgoError::Input("v must be >= 1".into()));
    }
    if segments.iter().any(|&(x1, x2, _)| x1 >= x2) {
        return Err(AlgoError::Input("segments need x1 < x2".into()));
    }
    if segments.is_empty() {
        return Ok(Vec::new());
    }
    let events: Vec<Event> = segments
        .iter()
        .enumerate()
        .flat_map(|(id, &(x1, x2, y))| {
            [(x1, 1u8, id as u64, x1, x2, y), (x2, 0u8, id as u64, x1, x2, y)]
        })
        .collect();
    let n = events.len();
    let sorted = cgm_sort(exec, v, events)?;
    let prog = EnvSweep { chunk: n.div_ceil(v).max(1), v, max_crossings };
    let states = distribute(sorted, v)
        .into_iter()
        .map(|events| EnvState { events, out: Vec::new() })
        .collect();
    let res = exec.execute(&prog, states)?;

    // Concatenate per-slab outputs and compress.
    let mut out: Vec<(i64, Option<i64>)> = Vec::new();
    for s in res.states {
        for (x, val) in s.out {
            if out.last().map(|&(_, v)| v) != Some(val) {
                out.push((x, val));
            }
        }
    }
    Ok(out)
}

/// Sequential reference: global sweep.
pub fn seq_lower_envelope(segments: &[(i64, i64, i64)]) -> Vec<(i64, Option<i64>)> {
    if segments.is_empty() {
        return Vec::new();
    }
    let mut events: Vec<(i64, u8, i64)> =
        segments.iter().flat_map(|&(x1, x2, y)| [(x1, 1u8, y), (x2, 0u8, y)]).collect();
    events.sort_unstable();
    let mut active: BTreeMap<i64, u32> = BTreeMap::new();
    let mut out: Vec<(i64, Option<i64>)> = Vec::new();
    let mut i = 0;
    while i < events.len() {
        let x = events[i].0;
        while i < events.len() && events[i].0 == x {
            let (_, typ, y) = events[i];
            if typ == 0 {
                let c = active.get_mut(&y).expect("close matches open");
                *c -= 1;
                if *c == 0 {
                    active.remove(&y);
                }
            } else {
                *active.entry(y).or_insert(0) += 1;
            }
            i += 1;
        }
        let val = active.keys().next().copied();
        if out.last().map(|&(_, v)| v) != Some(val) {
            out.push((x, val));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_bsp::SeqExecutor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_segments(n: usize, seed: u64) -> Vec<(i64, i64, i64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x1 = rng.gen_range(-500..480);
                let x2 = x1 + rng.gen_range(1..200);
                (x1, x2, rng.gen_range(-100..100))
            })
            .collect()
    }

    #[test]
    fn matches_reference_random() {
        for seed in [13, 14, 15] {
            let segs = random_segments(150, seed);
            let want = seq_lower_envelope(&segs);
            let got = cgm_lower_envelope(&SeqExecutor, 6, &segs).unwrap();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn staircase_of_overlapping_segments() {
        let segs = vec![(0, 10, 5), (2, 8, 3), (4, 6, 1)];
        let got = cgm_lower_envelope(&SeqExecutor, 3, &segs).unwrap();
        assert_eq!(
            got,
            vec![(0, Some(5)), (2, Some(3)), (4, Some(1)), (6, Some(3)), (8, Some(5)), (10, None)]
        );
    }

    #[test]
    fn gaps_produce_none() {
        let segs = vec![(0, 2, 7), (5, 6, 9)];
        let got = cgm_lower_envelope(&SeqExecutor, 4, &segs).unwrap();
        assert_eq!(got, vec![(0, Some(7)), (2, None), (5, Some(9)), (6, None)]);
    }

    #[test]
    fn adjacent_half_open_segments_merge_cleanly() {
        let segs = vec![(0, 5, 4), (5, 10, 4)];
        let got = cgm_lower_envelope(&SeqExecutor, 4, &segs).unwrap();
        assert_eq!(got, vec![(0, Some(4)), (10, None)]);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(cgm_lower_envelope(&SeqExecutor, 2, &[]).unwrap().is_empty());
        assert!(matches!(
            cgm_lower_envelope(&SeqExecutor, 2, &[(3, 3, 0)]),
            Err(AlgoError::Input(_))
        ));
        let one = cgm_lower_envelope(&SeqExecutor, 8, &[(1, 4, -2)]).unwrap();
        assert_eq!(one, vec![(1, Some(-2)), (4, None)]);
    }
}
