//! CGM permutation routing — Table 1, Group A, "Permutation". λ = 2:
//! one all-to-all in which every record travels to the processor owning
//! its destination index, then a local placement step.

use crate::common::{distribute, max_item_bytes, AlgoError, AlgoResult, ChunkMap, Rec};
use em_bsp::{BspProgram, Executor, Mailbox, Step};
use em_serial::impl_serial_struct_generic;

/// State: records tagged with their destination index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PermuteState<T> {
    /// `(dst_index, record)` pairs held by this processor.
    pub data: Vec<(u64, T)>,
}
impl_serial_struct_generic!(PermuteState<T> { data });

/// The permutation-routing BSP program.
#[derive(Debug, Clone)]
pub struct PermuteProg<T> {
    /// Distribution of the `n` destination slots over `v` processors.
    pub map: ChunkMap,
    /// Upper bound on one record's encoded bytes.
    pub item_bytes: usize,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> PermuteProg<T> {
    /// Program for routing `n` records over `v` processors.
    pub fn new(n: usize, v: usize, item_bytes: usize) -> Self {
        PermuteProg { map: ChunkMap { n, v }, item_bytes, _marker: std::marker::PhantomData }
    }
}

impl<T: Rec> BspProgram for PermuteProg<T> {
    type State = PermuteState<T>;
    type Msg = Vec<(u64, T)>;

    fn superstep(
        &self,
        step: usize,
        mb: &mut Mailbox<Vec<(u64, T)>>,
        state: &mut PermuteState<T>,
    ) -> Step {
        match step {
            0 => {
                let data = std::mem::take(&mut state.data);
                let v = mb.nprocs();
                let mut per_dst: Vec<Vec<(u64, T)>> = (0..v).map(|_| Vec::new()).collect();
                for (dst, item) in data {
                    per_dst[self.map.owner(dst as usize)].push((dst, item));
                }
                for (proc, chunk) in per_dst.into_iter().enumerate() {
                    if !chunk.is_empty() {
                        mb.send(proc, chunk);
                    }
                }
                Step::Continue
            }
            _ => {
                let mut received: Vec<(u64, T)> =
                    mb.take_incoming().into_iter().flat_map(|e| e.msg).collect();
                received.sort_unstable_by_key(|&(dst, _)| dst);
                state.data = received;
                Step::Halt
            }
        }
    }

    fn max_state_bytes(&self) -> usize {
        let chunk = self.map.n.div_ceil(self.map.v).max(1);
        64 + (self.item_bytes + 8) * (chunk + 2)
    }

    fn max_comm_bytes(&self) -> usize {
        let chunk = self.map.n.div_ceil(self.map.v).max(1);
        (self.item_bytes + 8) * (chunk + 2) + 40 * self.map.v + 256
    }
}

/// Apply a permutation: returns `out` with `out[perm[i]] = items[i]`.
///
/// `perm` must be a permutation of `0..items.len()`; this is checked and
/// a duplicate/out-of-range destination is rejected.
pub fn cgm_permute<E: Executor, T: Rec>(
    exec: &E,
    v: usize,
    items: Vec<T>,
    perm: &[usize],
) -> AlgoResult<Vec<T>> {
    if v == 0 {
        return Err(AlgoError::Input("v must be >= 1".into()));
    }
    if perm.len() != items.len() {
        return Err(AlgoError::Input(format!(
            "permutation has {} entries for {} items",
            perm.len(),
            items.len()
        )));
    }
    let n = items.len();
    if n == 0 {
        return Ok(items);
    }
    let mut seen = vec![false; n];
    for &d in perm {
        if d >= n || seen[d] {
            return Err(AlgoError::Input(format!("invalid destination {d}")));
        }
        seen[d] = true;
    }
    let item_bytes = max_item_bytes(&items);
    let tagged: Vec<(u64, T)> = perm.iter().map(|&d| d as u64).zip(items).collect();
    let prog = PermuteProg::<T>::new(n, v, item_bytes);
    let states = distribute(tagged, v).into_iter().map(|data| PermuteState { data }).collect();
    let res = exec.execute(&prog, states)?;
    Ok(res.states.into_iter().flat_map(|s| s.data).map(|(_, item)| item).collect())
}

/// Sequential reference.
pub fn seq_permute<T: Clone>(items: &[T], perm: &[usize]) -> Vec<T> {
    let mut out: Vec<Option<T>> = vec![None; items.len()];
    for (item, &d) in items.iter().zip(perm) {
        out[d] = Some(item.clone());
    }
    out.into_iter().map(|x| x.expect("total permutation")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_bsp::SeqExecutor;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn random_permutation_round_trip() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 200;
        let items: Vec<u64> = (0..n as u64).map(|x| x * 10).collect();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rng);
        let want = seq_permute(&items, &perm);
        let got = cgm_permute(&SeqExecutor, 7, items, &perm).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn identity_and_reverse() {
        let items: Vec<u32> = (0..50).collect();
        let id: Vec<usize> = (0..50).collect();
        assert_eq!(cgm_permute(&SeqExecutor, 4, items.clone(), &id).unwrap(), items);
        let rev: Vec<usize> = (0..50).rev().collect();
        let want: Vec<u32> = (0..50).rev().collect();
        assert_eq!(cgm_permute(&SeqExecutor, 4, items, &rev).unwrap(), want);
    }

    #[test]
    fn invalid_permutations_rejected() {
        let items = vec![1u8, 2, 3];
        assert!(matches!(
            cgm_permute(&SeqExecutor, 2, items.clone(), &[0, 1]),
            Err(AlgoError::Input(_))
        ));
        assert!(matches!(
            cgm_permute(&SeqExecutor, 2, items.clone(), &[0, 0, 1]),
            Err(AlgoError::Input(_))
        ));
        assert!(matches!(
            cgm_permute(&SeqExecutor, 2, items, &[0, 1, 5]),
            Err(AlgoError::Input(_))
        ));
    }

    #[test]
    fn empty_input() {
        let got = cgm_permute::<_, u64>(&SeqExecutor, 3, vec![], &[]).unwrap();
        assert!(got.is_empty());
    }
}
