//! CGM matrix transpose — Table 1, Group A, "Matrix transpose". The
//! transpose of an `r × c` matrix stored row-major is the fixed
//! permutation `(i, j) → (j, i)`, routed with one all-to-all (λ = 2) via
//! the permutation program.

use crate::common::{AlgoError, AlgoResult, Rec};
use crate::permute::cgm_permute;
use em_bsp::Executor;

/// Transpose an `r × c` matrix given row-major as `data`; returns the
/// `c × r` result row-major.
pub fn cgm_transpose<E: Executor, T: Rec>(
    exec: &E,
    v: usize,
    r: usize,
    c: usize,
    data: Vec<T>,
) -> AlgoResult<Vec<T>> {
    if data.len() != r * c {
        return Err(AlgoError::Input(format!(
            "matrix {r}x{c} needs {} elements, got {}",
            r * c,
            data.len()
        )));
    }
    if data.is_empty() {
        return Ok(data);
    }
    // Element at (i, j) = index i*c + j moves to index j*r + i.
    let perm: Vec<usize> = (0..r * c)
        .map(|idx| {
            let (i, j) = (idx / c, idx % c);
            j * r + i
        })
        .collect();
    cgm_permute(exec, v, data, &perm)
}

/// Sequential reference.
pub fn seq_transpose<T: Clone>(r: usize, c: usize, data: &[T]) -> Vec<T> {
    assert_eq!(data.len(), r * c);
    let mut out = Vec::with_capacity(r * c);
    for j in 0..c {
        for i in 0..r {
            out.push(data[i * c + j].clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_bsp::SeqExecutor;

    #[test]
    fn transpose_rectangular() {
        let r = 6;
        let c = 9;
        let data: Vec<u64> = (0..(r * c) as u64).collect();
        let want = seq_transpose(r, c, &data);
        let got = cgm_transpose(&SeqExecutor, 5, r, c, data).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn double_transpose_is_identity() {
        let r = 4;
        let c = 7;
        let data: Vec<u32> = (0..(r * c) as u32).map(|x| x * 3).collect();
        let once = cgm_transpose(&SeqExecutor, 3, r, c, data.clone()).unwrap();
        let twice = cgm_transpose(&SeqExecutor, 3, c, r, once).unwrap();
        assert_eq!(twice, data);
    }

    #[test]
    fn degenerate_shapes() {
        // Row vector, column vector, single element.
        let row: Vec<u8> = vec![1, 2, 3];
        assert_eq!(cgm_transpose(&SeqExecutor, 2, 1, 3, row.clone()).unwrap(), row);
        assert_eq!(cgm_transpose(&SeqExecutor, 2, 3, 1, row.clone()).unwrap(), row);
        assert_eq!(cgm_transpose(&SeqExecutor, 2, 1, 1, vec![9u8]).unwrap(), vec![9]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        assert!(matches!(
            cgm_transpose(&SeqExecutor, 2, 2, 3, vec![1u8; 5]),
            Err(AlgoError::Input(_))
        ));
    }
}
