//! Shared plumbing for the CGM algorithm drivers: record bounds, input
//! distribution, and the driver error type.

use em_bsp::ExecError;
use em_serial::Serial;
use std::fmt;

/// The bound every sortable/routable record must satisfy.
///
/// `Ord` gives deterministic comparisons (geometry uses exact `i64`
/// coordinates precisely so this holds), `Serial` lets the record live in
/// external memory, and `Clone + Send + 'static` let it cross executor
/// threads.
pub trait Rec: Serial + Clone + Send + Ord + fmt::Debug + 'static {}
impl<T: Serial + Clone + Send + Ord + fmt::Debug + 'static> Rec for T {}

/// Errors from the algorithm drivers.
#[derive(Debug)]
pub enum AlgoError {
    /// The underlying executor failed (BSP error, disk error, ...).
    Exec(ExecError),
    /// The input violated a precondition of the algorithm.
    Input(String),
}

impl fmt::Display for AlgoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgoError::Exec(e) => write!(f, "executor error: {e}"),
            AlgoError::Input(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for AlgoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlgoError::Exec(e) => Some(e.as_ref()),
            AlgoError::Input(_) => None,
        }
    }
}

impl From<ExecError> for AlgoError {
    fn from(e: ExecError) -> Self {
        AlgoError::Exec(e)
    }
}

/// Result alias for the drivers.
pub type AlgoResult<T> = Result<T, AlgoError>;

/// Split `items` into `v` contiguous chunks whose sizes differ by at most
/// one (the CGM input distribution: processor `i` holds the `i`-th chunk).
pub fn distribute<T>(items: Vec<T>, v: usize) -> Vec<Vec<T>> {
    assert!(v > 0, "need at least one virtual processor");
    let n = items.len();
    let base = n / v;
    let extra = n % v;
    let mut out = Vec::with_capacity(v);
    let mut it = items.into_iter();
    for i in 0..v {
        let take = base + usize::from(i < extra);
        out.push(it.by_ref().take(take).collect());
    }
    out
}

/// Largest encoded length over `items` (used to size μ and γ); at least 1.
pub fn max_item_bytes<T: Serial>(items: &[T]) -> usize {
    items.iter().map(Serial::encoded_len).max().unwrap_or(0).max(1)
}

/// The owner of global index `idx` when `n` items are distributed over
/// `v` processors by [`distribute`], together with helpers for chunk
/// arithmetic. Chunk sizes are `⌈n/v⌉` for the first `n mod v` chunks and
/// `⌊n/v⌋` after.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkMap {
    /// Total items.
    pub n: usize,
    /// Virtual processors.
    pub v: usize,
}

impl ChunkMap {
    /// Size of processor `i`'s chunk.
    pub fn chunk_len(&self, i: usize) -> usize {
        self.n / self.v + usize::from(i < self.n % self.v)
    }

    /// Global index of the first item of processor `i`.
    pub fn chunk_start(&self, i: usize) -> usize {
        let base = self.n / self.v;
        let extra = self.n % self.v;
        i * base + i.min(extra)
    }

    /// Which processor owns global index `idx`.
    pub fn owner(&self, idx: usize) -> usize {
        debug_assert!(idx < self.n);
        let base = self.n / self.v;
        let extra = self.n % self.v;
        let big = extra * (base + 1);
        if idx < big {
            idx / (base + 1)
        } else {
            (idx - big).checked_div(base).map_or(self.v - 1, |q| extra + q)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribute_balances() {
        let chunks = distribute((0..10).collect::<Vec<u32>>(), 3);
        assert_eq!(chunks[0], vec![0, 1, 2, 3]);
        assert_eq!(chunks[1], vec![4, 5, 6]);
        assert_eq!(chunks[2], vec![7, 8, 9]);
    }

    #[test]
    fn distribute_handles_fewer_items_than_procs() {
        let chunks = distribute(vec![1u8, 2], 4);
        assert_eq!(chunks, vec![vec![1], vec![2], vec![], vec![]]);
    }

    #[test]
    fn chunk_map_round_trips() {
        for (n, v) in [(10, 3), (7, 7), (5, 8), (100, 4), (1, 1)] {
            let m = ChunkMap { n, v };
            let mut idx = 0;
            for i in 0..v {
                assert_eq!(m.chunk_start(i), idx, "start of chunk {i} for n={n} v={v}");
                for _ in 0..m.chunk_len(i) {
                    assert_eq!(m.owner(idx), i, "owner of {idx} for n={n} v={v}");
                    idx += 1;
                }
            }
            assert_eq!(idx, n);
        }
    }

    #[test]
    fn max_item_bytes_floor_is_one() {
        let empty: Vec<u64> = Vec::new();
        assert_eq!(max_item_bytes(&empty), 1);
        assert_eq!(max_item_bytes(&[1u64]), 8);
        assert_eq!(max_item_bytes(&[vec![0u8; 5], vec![0u8; 2]]), 13);
    }
}
